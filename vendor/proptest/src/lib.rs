//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the exact surface its property tests use: the
//! [`proptest!`] macro (including `#![proptest_config(..)]`), the
//! [`strategy::Strategy`] trait with `prop_map`, [`strategy::Just`],
//! [`strategy::any`], `prop_oneof!` (weighted and unweighted),
//! [`collection::vec`], integer-range strategies, simple `"[a-z]{0,30}"`
//! character-class string patterns, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case reports its deterministic case seed
//!   instead of a minimized input;
//! * value generation is driven by a fixed per-test RNG (seeded from the
//!   test name), so runs are reproducible without a persistence file.

pub mod test_runner {
    use rand::{RngCore, SeedableRng};
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Deterministic RNG handed to strategies during generation.
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// Build from a 64-bit seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng(rand::rngs::StdRng::seed_from_u64(seed))
        }

        /// Next 64 uniform bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Next 128 uniform bits.
        pub fn next_u128(&mut self) -> u128 {
            ((self.0.next_u64() as u128) << 64) | self.0.next_u64() as u128
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u128) -> u128 {
            debug_assert!(n > 0);
            // Modulo bias is ~2^-64 for the small spans used in tests.
            self.next_u128() % n
        }

        /// Uniform `usize` in `[lo, hi]`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            lo + self.below((hi - lo) as u128 + 1) as usize
        }
    }

    /// Runner configuration (`cases` is the number of accepted cases to run).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// How many generated cases must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Outcome of one generated case: hard failure or `prop_assume!` reject.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure — aborts the test.
        Fail(String),
        /// Precondition unmet — the case is skipped, not failed.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    fn name_seed(name: &str) -> u64 {
        // DefaultHasher::new() uses fixed keys, so this is stable run-to-run.
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        h.finish()
    }

    /// Drive one property: keep generating cases until `config.cases` have
    /// passed, tolerating up to 10x rejections, panicking on the first
    /// failure with the case seed for replay.
    pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = name_seed(name);
        let mut passed = 0u32;
        let mut attempts = 0u32;
        let max_attempts = config.cases.saturating_mul(10).max(1);
        while passed < config.cases && attempts < max_attempts {
            let case_seed = base ^ (attempts as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            attempts += 1;
            let mut rng = TestRng::new(case_seed);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property `{name}` failed (case seed {case_seed:#x}): {msg}")
                }
            }
        }
        assert!(
            passed >= config.cases,
            "property `{name}`: too many rejected cases ({passed}/{} passed in {attempts} attempts)",
            config.cases,
        );
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A recipe producing values of `Value` from a [`TestRng`].
    pub trait Strategy {
        /// The value type this strategy generates.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of its payload.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Types with a canonical "uniform over the whole domain" strategy.
    pub trait Arbitrary: Sized {
        /// Draw one uniform value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u128() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u8, u16, u32, u64, u128, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy for [`Arbitrary`] types; construct with [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u128;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    match (hi - lo).checked_add(1) {
                        Some(span) => lo + rng.below(span as u128) as $t,
                        // Full-domain range: every draw is in bounds.
                        None => rng.next_u128() as $t,
                    }
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    match (<$t>::MAX - self.start).checked_add(1) {
                        Some(span) => self.start + rng.below(span as u128) as $t,
                        None => rng.next_u128() as $t,
                    }
                }
            }
        )*};
    }
    impl_range_strategies!(u8, u16, u32, u64, usize);

    // u128 spans overflow the sampler's u128 arithmetic at the extremes, so
    // it gets a hand-written set.
    impl Strategy for Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.below(self.end - self.start)
        }
    }
    impl Strategy for RangeInclusive<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            match (hi - lo).checked_add(1) {
                Some(span) => lo + rng.below(span),
                None => rng.next_u128(),
            }
        }
    }
    impl Strategy for RangeFrom<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            match (u128::MAX - self.start).checked_add(1) {
                Some(span) => self.start + rng.below(span),
                None => rng.next_u128(),
            }
        }
    }

    /// Weighted choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms; total weight must be > 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            assert!(
                arms.iter().any(|(w, _)| *w > 0),
                "all-zero prop_oneof weights"
            );
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total as u128) as u64;
            for (w, strat) in &self.arms {
                if pick < *w as u64 {
                    return strat.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    /// Character-class string patterns like `"[a-z0-9|,. ]{0,30}"`.
    ///
    /// Supported grammar (the subset the workspace's fuzz tests use): a
    /// sequence of atoms, each a literal char or a `[...]` class with
    /// `a-z`-style ranges, optionally followed by `{n}` or `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_pattern(self, rng)
        }
    }

    fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let alphabet: Vec<char> = if c == '[' {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                while let Some(d) = chars.next() {
                    if d == ']' {
                        break;
                    }
                    if d == '-' {
                        if let (Some(lo), Some(&hi)) = (prev, chars.peek()) {
                            if hi != ']' {
                                chars.next();
                                set.extend(
                                    ((lo as u32 + 1)..=hi as u32).filter_map(char::from_u32),
                                );
                                prev = None;
                                continue;
                            }
                        }
                    }
                    set.push(d);
                    prev = Some(d);
                }
                assert!(
                    !set.is_empty(),
                    "empty character class in pattern {pattern:?}"
                );
                set
            } else {
                vec![c]
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&d| d != '}').collect();
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n} in pattern"),
                        n.trim().parse().expect("bad {m,n} in pattern"),
                    ),
                    None => {
                        let n: usize = spec.trim().parse().expect("bad {n} in pattern");
                        (n, n)
                    }
                }
            } else {
                (1usize, 1usize)
            };
            let count = rng.usize_in(min, max);
            for _ in 0..count {
                out.push(alphabet[rng.usize_in(0, alphabet.len() - 1)]);
            }
        }
        out
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive element-count bounds for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.min, self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running [`test_runner::run_cases`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __wk_config = $cfg;
            $crate::test_runner::run_cases(&__wk_config, stringify!($name), |__wk_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __wk_rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Weighted (`w => strat`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__wk_l, __wk_r) = (&$left, &$right);
        if !(__wk_l == __wk_r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __wk_l,
                    __wk_r,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__wk_l, __wk_r) = (&$left, &$right);
        if !(__wk_l == __wk_r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    __wk_l,
                    __wk_r,
                ),
            ));
        }
    }};
}

/// `assert_ne!` flavor of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__wk_l, __wk_r) = (&$left, &$right);
        if __wk_l == __wk_r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __wk_l,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__wk_l, __wk_r) = (&$left, &$right);
        if __wk_l == __wk_r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`: {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    format!($($fmt)+),
                    __wk_l,
                ),
            ));
        }
    }};
}

/// Skip (don't fail) the current case when a precondition is unmet.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..500 {
            assert!((3..17u64).contains(&(3u64..17).generate(&mut rng)));
            assert!((5..=5usize).contains(&(5usize..=5).generate(&mut rng)));
            assert!((1u128..).generate(&mut rng) >= 1);
        }
    }

    #[test]
    fn vec_and_pattern_shapes() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            let v = crate::collection::vec(any::<u8>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = "[a-c]{0,4}x".generate(&mut rng);
            assert!(s.len() <= 5 && s.ends_with('x'));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c) || c == 'x'));
        }
    }

    #[test]
    fn oneof_honors_zero_weight() {
        let mut rng = TestRng::new(3);
        for _ in 0..100 {
            let v = prop_oneof![3 => Just(1u8), 0 => Just(2u8)].generate(&mut rng);
            assert_eq!(v, 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_round_trip(a in 0u64..100, b in any::<u64>()) {
            prop_assume!(a != 55);
            prop_assert!(a < 100);
            prop_assert_eq!(a + (b / 2), (b / 2) + a);
            prop_assert_ne!(a, 200);
        }
    }
}
