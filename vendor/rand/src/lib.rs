//! Offline vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the exact surface it uses: the [`RngCore`] /
//! [`SeedableRng`] / [`Rng`] traits, [`rngs::StdRng`] (xoshiro256** seeded
//! via SplitMix64 — deterministic across platforms and releases, which is
//! all the simulation needs), and [`rngs::mock::StepRng`] for tests.
//!
//! Not a cryptographic RNG and not stream-compatible with upstream
//! `rand::rngs::StdRng`; every consumer in this workspace seeds explicitly
//! and only relies on *internal* determinism.

use std::fmt;

/// Error type for fallible RNG operations. The vendored generators are
/// infallible; this exists so `try_fill_bytes` signatures match rand 0.8.
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    /// Construct an error with a static message.
    pub fn new(msg: &'static str) -> Error {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Core RNG interface (rand 0.8 shape).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; infallible for every generator here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Seedable construction (rand 0.8 shape).
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 exactly like
    /// upstream rand does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod sample {
    /// Types producible uniformly from raw RNG output via `Rng::gen`.
    pub trait Standard: Sized {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u8 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() as u8
        }
    }
    impl Standard for u32 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }
    impl Standard for u64 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }
    impl Standard for u128 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }
    impl Standard for usize {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() as usize
        }
    }
    impl Standard for bool {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32() & 1 == 1
        }
    }
    impl Standard for f64 {
        fn sample<R: super::RngCore + ?Sized>(rng: &mut R) -> Self {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Unsigned integer ranges usable with `Rng::gen_range`.
    pub trait SampleRange<T> {
        fn sample_from<R: super::RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_from<R: super::RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "gen_range: empty range");
                    let span = (self.end - self.start) as u128;
                    // Rejection-free modulo is fine here: spans are tiny
                    // relative to 2^64, callers are simulations not crypto.
                    let wide = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    self.start + wide as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_from<R: super::RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi - lo) as u128 + 1;
                    let wide = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                    lo + wide as $t
                }
            }
        )*};
    }
    impl_range!(u8, u16, u32, u64, usize);
}

pub use sample::{SampleRange, Standard};

/// Convenience methods over any [`RngCore`] (rand 0.8 shape).
pub trait Rng: RngCore {
    /// Uniform value in `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        <f64 as Standard>::sample(self) < p
    }

    /// Uniform value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Fill a byte slice (alias of `fill_bytes`).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{Error, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn next(&mut self) -> u64 {
            let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            r
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let v = self.next().to_le_bytes();
                chunk.copy_from_slice(&v[..chunk.len()]);
            }
        }
        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }

    pub mod mock {
        use super::super::{Error, RngCore};

        /// Arithmetic-sequence mock generator (rand 0.8 `mock::StepRng`).
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            a: u64,
        }

        impl StepRng {
            /// Start at `initial`, adding `increment` per draw.
            pub fn new(initial: u64, increment: u64) -> StepRng {
                StepRng {
                    v: initial,
                    a: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }
            fn next_u64(&mut self) -> u64 {
                let r = self.v;
                self.v = self.v.wrapping_add(self.a);
                r
            }
            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let v = self.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&v[..chunk.len()]);
                }
            }
            fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
                self.fill_bytes(dest);
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..1);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(10, 3);
        assert_eq!(r.next_u64(), 10);
        assert_eq!(r.next_u64(), 13);
        assert_eq!(r.next_u64(), 16);
    }
}
