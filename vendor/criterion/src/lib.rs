//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the harness subset its benches use: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs one warm-up
//! iteration, then `sample_size` timed iterations, and reports min / mean /
//! max wall-clock time per iteration. No statistics, plotting, or baseline
//! comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Build from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.full)
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: sample_size.max(1),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<60} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    println!(
        "{id:<60} time: [{} {} {}]",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max),
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Set how many timed iterations each benchmark records.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Criterion {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Run a parameterized benchmark; `input` is passed to the closure.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

/// Define a benchmark group function from a config and target list.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_smoke() {
        let mut c = Criterion::default().sample_size(3);
        let mut ran = 0usize;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(2u64 + 2));
            ran += 1;
        });
        let mut group = c.benchmark_group("grp");
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| std::hint::black_box(x * 2));
            ran += 1;
        });
        group.finish();
        assert_eq!(ran, 2);
    }

    #[test]
    fn id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("mul", 64).to_string(), "mul/64");
    }
}
