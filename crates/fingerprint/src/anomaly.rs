//! Anomaly classifiers: wire bit errors and MITM key substitution.
//!
//! Not every batch-GCD hit is a weak key. §3.3.5: bit-flipped moduli behave
//! like random integers and surface with *smooth* divisors (products of many
//! small primes); the paper sets them aside. §3.3.3: an ISP substituting a
//! fixed key into customers' certificates shows up as one modulus served at
//! many IPs under many different subjects.

use std::collections::HashMap;
use wk_bigint::{first_primes, Natural};
use wk_scan::ModulusId;

/// Verdict on a raw batch-GCD divisor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DivisorKind {
    /// The divisor is (overwhelmingly likely) a large shared prime — a
    /// genuine weak-key hit.
    SharedPrime,
    /// The divisor factors entirely over small primes — the signature of a
    /// bit error, not a flawed implementation.
    SmoothBitError,
    /// Mixed: a small-prime part times a large cofactor.
    Mixed,
}

/// Classify a nontrivial divisor by stripping its small-prime part
/// (first 2048 primes, the same bound the OpenSSL fingerprint uses).
pub fn classify_divisor(g: &Natural) -> DivisorKind {
    assert!(!g.is_zero() && !g.is_one(), "divisor must be nontrivial");
    let mut rest = g.clone();
    let mut stripped_any = false;
    for &p in first_primes(2048).iter() {
        while rest.rem_limb(p) == 0 {
            rest = &rest / p;
            stripped_any = true;
        }
        if rest.is_one() {
            break;
        }
    }
    if rest.is_one() {
        DivisorKind::SmoothBitError
    } else if stripped_any {
        DivisorKind::Mixed
    } else {
        DivisorKind::SharedPrime
    }
}

/// Is a modulus plausibly a well-formed RSA modulus of roughly
/// `expected_bits`? Bit-flipped moduli are usually even, out of size, or
/// divisible by small primes. Thin wrapper over
/// [`wk_keygen::plausible_modulus`] so analysis code needs only this crate.
pub fn is_well_formed_modulus(n: &Natural, expected_bits: u64) -> bool {
    wk_keygen::plausible_modulus(n, expected_bits)
}

/// An observation tuple for MITM detection: modulus, serving IP, and the
/// rendered certificate subject.
#[derive(Clone, Debug)]
pub struct KeyObservation {
    /// Which modulus was served.
    pub modulus: ModulusId,
    /// From which IP.
    pub ip: u32,
    /// Under which certificate subject.
    pub subject: String,
}

/// A modulus served at many IPs under many *different* subjects — the
/// Internet-Rimon signature. Repeated default keys also appear at many IPs,
/// but under the *same* default subject, which is the discriminator.
#[derive(Clone, Debug)]
pub struct MitmSuspect {
    /// The substituted modulus.
    pub modulus: ModulusId,
    /// Distinct IPs serving it.
    pub ip_count: usize,
    /// Distinct certificate subjects observed with it.
    pub subject_count: usize,
}

/// Scan observations for MITM-style key substitution: at least `min_ips`
/// distinct IPs and at least `min_subjects` distinct subjects per modulus.
pub fn detect_key_substitution(
    observations: &[KeyObservation],
    min_ips: usize,
    min_subjects: usize,
) -> Vec<MitmSuspect> {
    let mut by_modulus: HashMap<ModulusId, (Vec<u32>, Vec<String>)> = HashMap::new();
    for obs in observations {
        let (ips, subjects) = by_modulus.entry(obs.modulus).or_default();
        if !ips.contains(&obs.ip) {
            ips.push(obs.ip);
        }
        if !subjects.contains(&obs.subject) {
            subjects.push(obs.subject.clone());
        }
    }
    let mut suspects: Vec<MitmSuspect> = by_modulus
        .into_iter()
        .filter(|(_, (ips, subjects))| ips.len() >= min_ips && subjects.len() >= min_subjects)
        .map(|(modulus, (ips, subjects))| MitmSuspect {
            modulus,
            ip_count: ips.len(),
            subject_count: subjects.len(),
        })
        .collect();
    suspects.sort_by_key(|s| s.modulus);
    suspects
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn smooth_divisor_flagged_as_bit_error() {
        // 2^4 * 3^2 * 5 * 7 * 11 = 55440: fully smooth.
        assert_eq!(classify_divisor(&nat(55440)), DivisorKind::SmoothBitError);
        assert_eq!(classify_divisor(&nat(2)), DivisorKind::SmoothBitError);
    }

    #[test]
    fn large_prime_divisor_is_shared_prime() {
        // 2^89-1 is a Mersenne prime, far above the small-prime bound.
        let p = &(&Natural::one() << 89u64) - &Natural::one();
        assert_eq!(classify_divisor(&p), DivisorKind::SharedPrime);
    }

    #[test]
    fn mixed_divisor_detected() {
        let p = &(&Natural::one() << 89u64) - &Natural::one();
        let mixed = &p * &nat(6);
        assert_eq!(classify_divisor(&mixed), DivisorKind::Mixed);
    }

    #[test]
    fn mitm_detection_requires_subject_diversity() {
        let obs_same_subject: Vec<KeyObservation> = (0..10)
            .map(|i| KeyObservation {
                modulus: ModulusId(1),
                ip: i,
                subject: "CN=Default Common Name".into(), // repeated default key
            })
            .collect();
        assert!(
            detect_key_substitution(&obs_same_subject, 5, 3).is_empty(),
            "default-cert repetition must not look like MITM"
        );

        let obs_diverse: Vec<KeyObservation> = (0..10)
            .map(|i| KeyObservation {
                modulus: ModulusId(2),
                ip: i,
                subject: format!("CN=customer-{i}"),
            })
            .collect();
        let suspects = detect_key_substitution(&obs_diverse, 5, 3);
        assert_eq!(suspects.len(), 1);
        assert_eq!(suspects[0].modulus, ModulusId(2));
        assert_eq!(suspects[0].ip_count, 10);
        assert_eq!(suspects[0].subject_count, 10);
    }

    #[test]
    fn mitm_threshold_on_ip_count() {
        let obs: Vec<KeyObservation> = (0..3)
            .map(|i| KeyObservation {
                modulus: ModulusId(3),
                ip: i,
                subject: format!("CN={i}"),
            })
            .collect();
        assert!(detect_key_substitution(&obs, 5, 3).is_empty());
        assert_eq!(detect_key_substitution(&obs, 3, 3).len(), 1);
    }

    #[test]
    fn well_formed_modulus_wrapper() {
        // 2^127-1 times 2^89-1 gives a ~216-bit odd semiprime.
        let a = &(&Natural::one() << 127u64) - &Natural::one();
        let b = &(&Natural::one() << 89u64) - &Natural::one();
        let n = &a * &b;
        assert!(is_well_formed_modulus(&n, 216));
        assert!(!is_well_formed_modulus(&(&n << 1u64), 217)); // even
    }
}
