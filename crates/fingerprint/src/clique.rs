//! Nine-prime clique detection (§3.3.1, the IBM bug).
//!
//! IBM Remote Supervisor Adapter II / BladeCenter Management Module cards
//! generated every key as a product of two primes from a fixed pool of
//! nine, producing at most 36 distinct moduli. In the prime-sharing graph
//! this looks unmistakable: a connected component whose moduli *vastly*
//! outnumber its primes. Detection works from factored moduli alone — which
//! is exactly how the paper identified IBM's certificates, since the
//! subjects never name IBM.

use crate::prime_pool::FactoredModulus;
use std::collections::BTreeMap;
use wk_bigint::Natural;
use wk_scan::ModulusId;

/// A detected prime clique: a small prime set covering many moduli.
#[derive(Clone, Debug)]
pub struct PrimeClique {
    /// The primes of the pool (sorted).
    pub primes: Vec<Natural>,
    /// Every modulus built from those primes.
    pub moduli: Vec<ModulusId>,
}

/// Find connected components of the prime-sharing graph and report those
/// that look like fixed-pool generators: components where
/// `moduli >= primes` and at least `min_moduli` moduli participate.
///
/// An ordinary shared-prime population (one pooled prime + one fresh prime
/// per key) has roughly one *more* prime than moduli per component, so the
/// `moduli >= primes` test cleanly separates the two shapes.
pub fn detect_cliques(factored: &[FactoredModulus], min_moduli: usize) -> Vec<PrimeClique> {
    // Union-find over primes.
    let mut prime_ids: BTreeMap<Vec<u8>, usize> = BTreeMap::new();
    let mut primes: Vec<Natural> = Vec::new();
    let mut id_of = |p: &Natural, primes: &mut Vec<Natural>| -> usize {
        let key = p.to_bytes_be();
        if let Some(&i) = prime_ids.get(&key) {
            return i;
        }
        let i = primes.len();
        primes.push(p.clone());
        prime_ids.insert(key, i);
        i
    };

    let mut edges: Vec<(usize, usize, ModulusId)> = Vec::new();
    for f in factored {
        let a = id_of(&f.p, &mut primes);
        let b = id_of(&f.q, &mut primes);
        edges.push((a, b, f.id));
    }

    let mut parent: Vec<usize> = (0..primes.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for &(a, b, _) in &edges {
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    }

    // Group primes and moduli per component root.
    let mut comp_primes: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..primes.len() {
        let root = find(&mut parent, i);
        comp_primes.entry(root).or_default().push(i);
    }
    let mut comp_moduli: BTreeMap<usize, Vec<ModulusId>> = BTreeMap::new();
    for &(a, _, id) in &edges {
        let root = find(&mut parent, a);
        comp_moduli.entry(root).or_default().push(id);
    }

    let mut cliques = Vec::new();
    for (root, prime_idxs) in comp_primes {
        let moduli = comp_moduli.remove(&root).unwrap_or_default();
        if moduli.len() >= min_moduli && moduli.len() >= prime_idxs.len() {
            let mut ps: Vec<Natural> = prime_idxs.iter().map(|&i| primes[i].clone()).collect();
            ps.sort();
            let mut ms = moduli;
            ms.sort();
            ms.dedup();
            cliques.push(PrimeClique {
                primes: ps,
                moduli: ms,
            });
        }
    }
    cliques
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    fn fm(id: u32, p: u64, q: u64) -> FactoredModulus {
        FactoredModulus {
            id: ModulusId(id),
            p: nat(p),
            q: nat(q),
        }
    }

    #[test]
    fn triangle_clique_detected() {
        // Pool {3,5,7}: moduli 15, 35, 21 — 3 moduli over 3 primes.
        let factored = vec![fm(0, 3, 5), fm(1, 5, 7), fm(2, 3, 7)];
        let cliques = detect_cliques(&factored, 3);
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].primes, vec![nat(3), nat(5), nat(7)]);
        assert_eq!(cliques[0].moduli.len(), 3);
    }

    #[test]
    fn shared_pool_shape_not_reported() {
        // One pooled prime (3) + fresh seconds: 4 moduli over 5 primes —
        // the ordinary entropy-hole shape must NOT look like a clique.
        let factored = vec![fm(0, 3, 11), fm(1, 3, 13), fm(2, 3, 17), fm(3, 3, 19)];
        let cliques = detect_cliques(&factored, 3);
        assert!(cliques.is_empty(), "star shape misdetected as clique");
    }

    #[test]
    fn min_moduli_threshold_respected() {
        let factored = vec![fm(0, 3, 5), fm(1, 5, 7), fm(2, 3, 7)];
        assert!(detect_cliques(&factored, 4).is_empty());
    }

    #[test]
    fn multiple_components_separated() {
        let factored = vec![
            // Clique on {3,5,7}.
            fm(0, 3, 5),
            fm(1, 5, 7),
            fm(2, 3, 7),
            // Separate star on 11.
            fm(3, 11, 13),
            fm(4, 11, 17),
        ];
        let cliques = detect_cliques(&factored, 3);
        assert_eq!(cliques.len(), 1);
        assert!(!cliques[0].primes.contains(&nat(11)));
    }

    #[test]
    fn nine_prime_pool_saturated() {
        // All 36 pairs over 9 small distinct primes.
        let primes = [3u64, 5, 7, 11, 13, 17, 19, 23, 29];
        let mut factored = Vec::new();
        let mut id = 0;
        for i in 0..9 {
            for j in (i + 1)..9 {
                factored.push(fm(id, primes[i], primes[j]));
                id += 1;
            }
        }
        let cliques = detect_cliques(&factored, 10);
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].primes.len(), 9);
        assert_eq!(cliques[0].moduli.len(), 36);
    }
}
