//! Shared-prime-pool label extrapolation (§3.3.2).
//!
//! "In the vast majority of cases, devices sharing prime factors were
//! identified as the same vendor. We used this information to extrapolate
//! vendors for some certificates we could not otherwise identify": build a
//! pool of prime factors per subject-identified vendor, then label any
//! modulus using a pooled prime with that vendor — flagging the documented
//! overlaps (IBM/Siemens, Xerox/Dell) instead of silently relabeling.

use std::collections::{BTreeMap, HashMap};
use wk_bigint::Natural;
use wk_scan::{ModulusId, VendorId};

/// A factored modulus: id plus recovered primes.
#[derive(Clone, Debug)]
pub struct FactoredModulus {
    /// Interned id in the dataset.
    pub id: ModulusId,
    /// Smaller prime.
    pub p: Natural,
    /// Larger prime.
    pub q: Natural,
}

/// A prime shared across moduli labeled with different vendors — the
/// Xerox/Dell and IBM/Siemens situations the paper investigates by hand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VendorOverlap {
    /// The shared prime.
    pub prime: Natural,
    /// Vendors whose subject-labeled moduli use it.
    pub vendors: Vec<VendorId>,
}

/// Result of prime-pool extrapolation.
#[derive(Clone, Debug, Default)]
pub struct ExtrapolationResult {
    /// Labels gained purely through shared primes (not in the input labels).
    pub extrapolated: HashMap<ModulusId, VendorId>,
    /// Cross-vendor prime overlaps discovered.
    pub overlaps: Vec<VendorOverlap>,
}

/// Extrapolate vendor labels through shared primes.
///
/// `factored` lists every factored modulus; `subject_labels` carries the
/// labels derived from certificate subjects. Unlabeled moduli pick up the
/// vendor of any pooled prime they use; a prime claimed by several vendors
/// is reported as an overlap and *not* used for extrapolation.
pub fn extrapolate(
    factored: &[FactoredModulus],
    subject_labels: &HashMap<ModulusId, VendorId>,
) -> ExtrapolationResult {
    // Pool: prime -> set of vendors seen using it (BTreeMap for
    // deterministic overlap ordering).
    let mut pool: BTreeMap<Vec<u8>, (Natural, Vec<VendorId>)> = BTreeMap::new();
    for f in factored {
        let Some(&vendor) = subject_labels.get(&f.id) else {
            continue;
        };
        for prime in [&f.p, &f.q] {
            let entry = pool
                .entry(prime.to_bytes_be())
                .or_insert_with(|| (prime.clone(), Vec::new()));
            if !entry.1.contains(&vendor) {
                entry.1.push(vendor);
            }
        }
    }

    let overlaps: Vec<VendorOverlap> = pool
        .values()
        .filter(|(_, vendors)| vendors.len() > 1)
        .map(|(prime, vendors)| VendorOverlap {
            prime: prime.clone(),
            vendors: vendors.clone(),
        })
        .collect();

    let mut extrapolated = HashMap::new();
    for f in factored {
        if subject_labels.contains_key(&f.id) {
            continue;
        }
        for prime in [&f.p, &f.q] {
            if let Some((_, vendors)) = pool.get(&prime.to_bytes_be()) {
                if let [vendor] = vendors.as_slice() {
                    extrapolated.insert(f.id, *vendor);
                    break;
                }
            }
        }
    }
    ExtrapolationResult {
        extrapolated,
        overlaps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    fn fm(id: u32, p: u64, q: u64) -> FactoredModulus {
        FactoredModulus {
            id: ModulusId(id),
            p: nat(p),
            q: nat(q),
        }
    }

    #[test]
    fn unlabeled_modulus_gains_vendor_of_shared_prime() {
        // Modulus 0 (labeled Fritz!Box) and modulus 1 (unlabeled, IP-octet
        // cert) share prime 7: the paper's Fritz!Box extrapolation.
        let factored = vec![fm(0, 7, 11), fm(1, 7, 13)];
        let mut labels = HashMap::new();
        labels.insert(ModulusId(0), VendorId::FritzBox);
        let result = extrapolate(&factored, &labels);
        assert_eq!(
            result.extrapolated.get(&ModulusId(1)),
            Some(&VendorId::FritzBox)
        );
        assert!(result.overlaps.is_empty());
    }

    #[test]
    fn already_labeled_moduli_untouched() {
        let factored = vec![fm(0, 7, 11), fm(1, 7, 13)];
        let mut labels = HashMap::new();
        labels.insert(ModulusId(0), VendorId::Xerox);
        labels.insert(ModulusId(1), VendorId::Xerox);
        let result = extrapolate(&factored, &labels);
        assert!(result.extrapolated.is_empty());
    }

    #[test]
    fn cross_vendor_overlap_reported_not_extrapolated() {
        // Prime 7 used by both a Xerox-labeled and a Dell-labeled modulus;
        // modulus 2 is unlabeled and also uses 7.
        let factored = vec![fm(0, 7, 11), fm(1, 7, 13), fm(2, 7, 17)];
        let mut labels = HashMap::new();
        labels.insert(ModulusId(0), VendorId::Xerox);
        labels.insert(ModulusId(1), VendorId::Dell);
        let result = extrapolate(&factored, &labels);
        assert_eq!(result.overlaps.len(), 1);
        assert_eq!(result.overlaps[0].prime, nat(7));
        assert!(result.overlaps[0].vendors.contains(&VendorId::Xerox));
        assert!(result.overlaps[0].vendors.contains(&VendorId::Dell));
        // Ambiguous prime: no extrapolation.
        assert!(result.extrapolated.is_empty());
    }

    #[test]
    fn no_labels_no_output() {
        let factored = vec![fm(0, 7, 11), fm(1, 7, 13)];
        let result = extrapolate(&factored, &HashMap::new());
        assert!(result.extrapolated.is_empty());
        assert!(result.overlaps.is_empty());
    }

    #[test]
    fn second_prime_also_extrapolates() {
        // The unlabeled modulus shares its q, not its p.
        let factored = vec![fm(0, 7, 11), fm(1, 5, 11)];
        let mut labels = HashMap::new();
        labels.insert(ModulusId(0), VendorId::Ibm);
        let result = extrapolate(&factored, &labels);
        assert_eq!(result.extrapolated.get(&ModulusId(1)), Some(&VendorId::Ibm));
    }
}
