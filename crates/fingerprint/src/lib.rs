//! # wk-fingerprint — identifying the implementations behind weak keys
//!
//! §3.3 of the paper, as code. Given certificates and factored moduli,
//! attribute keys to vendor implementations and separate genuine weak keys
//! from look-alikes:
//!
//! * [`rules`] — certificate-subject fingerprints for every vendor whose
//!   defaults carry a marker (Juniper's `CN=system generated`, Cisco's
//!   model-in-OU, the Fritz!Box SANs, ...);
//! * [`prime_pool`] — shared-prime label extrapolation for subject-less
//!   certificates, with cross-vendor overlap reporting (Xerox/Dell,
//!   IBM/Siemens);
//! * [`clique`] — nine-prime clique detection, the structural signature of
//!   the IBM RSA-II/BladeCenter generator;
//! * [`openssl`] — the Mironov prime-shape fingerprint classifying vendors
//!   as likely-OpenSSL / not-OpenSSL (Table 5), with the safe-prime caveat;
//! * [`anomaly`] — bit-error (smooth-divisor) classification and MITM
//!   key-substitution detection (Internet Rimon).
//!
//! Everything here reads only observable data (certificates, moduli,
//! recovered factors); the simulator's ground truth is used exclusively by
//! tests to score these fingerprints.

#![forbid(unsafe_code)]

pub mod anomaly;
pub mod clique;
pub mod openssl;
pub mod prime_pool;
pub mod rules;

pub use anomaly::{
    classify_divisor, detect_key_substitution, is_well_formed_modulus, DivisorKind, KeyObservation,
    MitmSuspect,
};
pub use clique::{detect_cliques, PrimeClique};
pub use openssl::{classify_primes, OpensslClass, OpensslVerdict, MIN_PRIMES};
pub use prime_pool::{extrapolate, ExtrapolationResult, FactoredModulus, VendorOverlap};
pub use rules::{identify_vendor, is_ip_octet_subject, VendorLabel};
