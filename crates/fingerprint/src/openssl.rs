//! The OpenSSL prime fingerprint (§3.3.4, after Mironov).
//!
//! OpenSSL rejects candidate primes `p` with `p ≡ 1 (mod q)` for the first
//! 2048 (odd) primes `q`. A random prime survives that test only ≈7.5% of
//! the time, so the recovered primes of factored keys classify the
//! generating implementation: all-satisfying ⇒ likely OpenSSL; mostly
//! failing ⇒ definitely not OpenSSL. The fingerprint needs private keys, so
//! it covers only vendors with factored moduli (Table 5's caveat).

use wk_bigint::Natural;
use wk_keygen::satisfies_openssl_shape;

/// Classification of an implementation's prime generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpensslClass {
    /// Every recovered prime satisfies the predicate: likely OpenSSL
    /// (or exclusively safe primes — ruled out separately).
    LikelyOpenssl,
    /// A substantial fraction of primes fail: definitely not OpenSSL.
    NotOpenssl,
    /// Too few primes recovered to classify.
    Inconclusive,
}

/// Per-vendor fingerprint summary.
#[derive(Clone, Debug)]
pub struct OpensslVerdict {
    /// Number of distinct primes examined.
    pub primes_examined: usize,
    /// How many satisfied the predicate.
    pub satisfying: usize,
    /// The resulting class.
    pub class: OpensslClass,
    /// Whether every prime was a safe prime — if so, the LikelyOpenssl
    /// verdict would be unfounded (the paper checks exactly this).
    pub all_safe_primes: bool,
}

/// Minimum examined primes for a confident verdict.
pub const MIN_PRIMES: usize = 4;

/// Classify a vendor from its recovered primes.
pub fn classify_primes(primes: &[Natural]) -> OpensslVerdict {
    let mut distinct: Vec<&Natural> = primes.iter().collect();
    distinct.sort();
    distinct.dedup();
    let satisfying = distinct
        .iter()
        .filter(|p| satisfies_openssl_shape(p))
        .count();
    let all_safe = !distinct.is_empty() && distinct.iter().all(|p| is_safe_prime(p));
    let class = if distinct.len() < MIN_PRIMES {
        OpensslClass::Inconclusive
    } else if satisfying == distinct.len() {
        OpensslClass::LikelyOpenssl
    } else {
        OpensslClass::NotOpenssl
    };
    OpensslVerdict {
        primes_examined: distinct.len(),
        satisfying,
        class,
        all_safe_primes: all_safe,
    }
}

/// Is `p` a safe prime (`(p-1)/2` also prime)?
fn is_safe_prime(p: &Natural) -> bool {
    if p.is_even() || p.is_one() || p.is_zero() {
        return false;
    }
    let half = &(p - &Natural::one()) >> 1u64;
    half.is_probable_prime_fixed() && p.is_probable_prime_fixed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wk_keygen::{generate_prime, PrimeShaping};

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(404)
    }

    #[test]
    fn openssl_primes_classified_likely() {
        let mut r = rng();
        let primes: Vec<Natural> = (0..8)
            .map(|_| generate_prime(&mut r, 64, PrimeShaping::OpensslStyle))
            .collect();
        let verdict = classify_primes(&primes);
        assert_eq!(verdict.class, OpensslClass::LikelyOpenssl);
        assert_eq!(verdict.satisfying, verdict.primes_examined);
        assert!(
            !verdict.all_safe_primes,
            "random OpenSSL primes are not all safe"
        );
    }

    #[test]
    fn plain_primes_classified_not_openssl() {
        let mut r = rng();
        // 12 plain primes: expected satisfying ≈ 1; all-satisfying is
        // (0.075)^12 ≈ 10^-13.
        let primes: Vec<Natural> = (0..12)
            .map(|_| generate_prime(&mut r, 64, PrimeShaping::Plain))
            .collect();
        let verdict = classify_primes(&primes);
        assert_eq!(verdict.class, OpensslClass::NotOpenssl);
        assert!(verdict.satisfying < verdict.primes_examined);
    }

    #[test]
    fn few_primes_inconclusive() {
        let mut r = rng();
        let primes: Vec<Natural> = (0..2)
            .map(|_| generate_prime(&mut r, 64, PrimeShaping::OpensslStyle))
            .collect();
        assert_eq!(classify_primes(&primes).class, OpensslClass::Inconclusive);
        assert_eq!(classify_primes(&[]).class, OpensslClass::Inconclusive);
    }

    #[test]
    fn duplicates_counted_once() {
        let mut r = rng();
        let p = generate_prime(&mut r, 64, PrimeShaping::OpensslStyle);
        let primes = vec![p.clone(), p.clone(), p];
        assert_eq!(classify_primes(&primes).primes_examined, 1);
    }

    #[test]
    fn safe_primes_flagged() {
        let mut r = rng();
        let primes: Vec<Natural> = (0..MIN_PRIMES)
            .map(|_| generate_prime(&mut r, 48, PrimeShaping::Safe))
            .collect();
        let verdict = classify_primes(&primes);
        // Safe primes satisfy the predicate (no small odd factor of p-1)...
        assert_eq!(verdict.class, OpensslClass::LikelyOpenssl);
        // ...but the all-safe flag warns the verdict is unreliable.
        assert!(verdict.all_safe_primes);
    }
}
