//! Certificate-subject fingerprinting (§3.3.1).
//!
//! "We identified the majority of host records using certificate subjects"
//! — vendors' default certificates carry stable distinguishing strings.
//! These rules intentionally read **only** the certificate, never the
//! simulator's ground truth; accuracy against ground truth is evaluated in
//! the integration tests.

use wk_cert::Certificate;
use wk_scan::VendorId;

/// A fingerprinting verdict: vendor plus, where the certificate carries it,
/// the model string (Cisco's OU field, Dell's Imaging group).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct VendorLabel {
    /// The identified vendor.
    pub vendor: VendorId,
    /// Model, when the certificate names one.
    pub model: Option<String>,
}

impl VendorLabel {
    fn plain(vendor: VendorId) -> Self {
        VendorLabel {
            vendor,
            model: None,
        }
    }

    fn with_model(vendor: VendorId, model: &str) -> Self {
        VendorLabel {
            vendor,
            model: Some(model.to_string()),
        }
    }
}

/// Identify the vendor of a certificate from subject strings and SANs.
///
/// Returns `None` for certificates carrying no vendor marker (IP-octet CNs,
/// IBM's customer-named subjects) — those are labeled, if at all, by
/// shared-prime extrapolation ([`crate::prime_pool`]).
pub fn identify_vendor(cert: &Certificate) -> Option<VendorLabel> {
    let cn = cert.subject.common_name.as_deref().unwrap_or("");
    let org = cert.subject.organization.as_deref().unwrap_or("");
    let ou = cert.subject.organizational_unit.as_deref().unwrap_or("");

    // Juniper: "every Juniper certificate contained the field 'CN=system
    // generated'".
    if cn == "system generated" {
        return Some(VendorLabel::plain(VendorId::Juniper));
    }
    // Cisco: model in the OU.
    if org.contains("Cisco") {
        let model = if ou.is_empty() {
            None
        } else {
            Some(ou.to_string())
        };
        return Some(VendorLabel {
            vendor: VendorId::Cisco,
            model,
        });
    }
    // McAfee SnapGear: all-defaults subject, identified via the console page.
    if cn == "Default Common Name" && org == "Default Organization" {
        return Some(VendorLabel::with_model(VendorId::McAfee, "SnapGear"));
    }
    // Fritz!Box: characteristic SANs or myfritz.net CNs.
    if cert
        .subject_alt_names
        .iter()
        .any(|s| s == "fritz.box" || s.ends_with(".fritz.box") || s == "fritz.fonwlan.box")
        || cn.ends_with(".myfritz.net")
    {
        return Some(VendorLabel::plain(VendorId::FritzBox));
    }
    // Dell Imaging Group before generic Dell.
    if ou == "Dell Imaging Group" {
        return Some(VendorLabel::with_model(VendorId::Dell, "Imaging"));
    }
    // O=<vendor> identifications.
    let by_org: &[(&str, VendorId)] = &[
        ("Hewlett-Packard", VendorId::Hp),
        ("ZyXEL", VendorId::Zyxel),
        ("TP-LINK", VendorId::TpLink),
        ("Xerox", VendorId::Xerox),
        ("D-Link", VendorId::DLink),
        ("Dell Inc.", VendorId::Dell),
        ("Conel s.r.o.", VendorId::Conel),
        ("Sangfor", VendorId::Sangfor),
        ("Huawei", VendorId::Huawei),
        ("Schmid Telecom", VendorId::SchmidTelecom),
        ("Siemens Building Automation", VendorId::Siemens),
    ];
    for (marker, vendor) in by_org {
        if org.contains(marker) {
            let model = if ou.is_empty() {
                None
            } else {
                Some(ou.to_string())
            };
            return Some(VendorLabel {
                vendor: *vendor,
                model,
            });
        }
    }
    // CN-marker identifications.
    let by_cn: &[(&str, VendorId)] = &[
        ("mGuard", VendorId::Innominate),
        ("SpeedTouch", VendorId::Thomson),
        ("Linksys", VendorId::Linksys),
        ("FortiGate", VendorId::Fortinet),
        ("Kronos", VendorId::Kronos),
        ("NetVanta", VendorId::Adtran),
    ];
    for (marker, vendor) in by_cn {
        if cn.contains(marker) {
            return Some(VendorLabel::plain(*vendor));
        }
    }
    None
}

/// Is the subject nothing but an IP address in dotted octets? These tens of
/// thousands of certificates are only labelable via shared primes (§3.3.2).
pub fn is_ip_octet_subject(cert: &Certificate) -> bool {
    let Some(cn) = cert.subject.common_name.as_deref() else {
        return false;
    };
    if cert.subject.organization.is_some() || cert.subject.organizational_unit.is_some() {
        return false;
    }
    let octets: Vec<&str> = cn.split('.').collect();
    octets.len() == 4
        && octets
            .iter()
            .all(|o| o.parse::<u8>().is_ok() && !o.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wk_bigint::Natural;
    use wk_cert::{MonthDate, SubjectStyle};

    fn cert(style: SubjectStyle, tag: u64) -> Certificate {
        style.certificate(tag, tag, Natural::from(35u64), MonthDate::new(2012, 6))
    }

    #[test]
    fn juniper_rule() {
        let c = cert(SubjectStyle::JuniperSystemGenerated, 1);
        assert_eq!(
            identify_vendor(&c),
            Some(VendorLabel {
                vendor: VendorId::Juniper,
                model: None
            })
        );
    }

    #[test]
    fn cisco_rule_extracts_model() {
        let c = cert(
            SubjectStyle::CiscoModelInOu {
                model: "RV220W".into(),
            },
            1,
        );
        let label = identify_vendor(&c).unwrap();
        assert_eq!(label.vendor, VendorId::Cisco);
        assert_eq!(label.model.as_deref(), Some("RV220W"));
    }

    #[test]
    fn mcafee_defaults_rule() {
        let c = cert(SubjectStyle::McAfeeSnapGearDefaults, 1);
        assert_eq!(identify_vendor(&c).unwrap().vendor, VendorId::McAfee);
    }

    #[test]
    fn fritzbox_san_and_myfritz_rules() {
        let by_san = cert(SubjectStyle::FritzBoxLocalSans, 1);
        assert_eq!(identify_vendor(&by_san).unwrap().vendor, VendorId::FritzBox);
        let by_cn = cert(
            SubjectStyle::FritzBoxMyfritz {
                subdomain: "box".into(),
            },
            2,
        );
        assert_eq!(identify_vendor(&by_cn).unwrap().vendor, VendorId::FritzBox);
    }

    #[test]
    fn org_rules() {
        for (org, vendor) in [
            ("Hewlett-Packard", VendorId::Hp),
            ("ZyXEL", VendorId::Zyxel),
            ("TP-LINK", VendorId::TpLink),
            ("Xerox", VendorId::Xerox),
        ] {
            let c = cert(
                SubjectStyle::OrganizationNames {
                    organization: org.into(),
                },
                1,
            );
            assert_eq!(identify_vendor(&c).unwrap().vendor, vendor, "{org}");
        }
    }

    #[test]
    fn dell_imaging_beats_generic_dell() {
        let c = cert(
            SubjectStyle::OrganizationAndUnit {
                organization: "Dell Inc.".into(),
                unit: "Dell Imaging Group".into(),
            },
            1,
        );
        let label = identify_vendor(&c).unwrap();
        assert_eq!(label.vendor, VendorId::Dell);
        assert_eq!(label.model.as_deref(), Some("Imaging"));
    }

    #[test]
    fn ip_octets_unidentified() {
        let c = cert(SubjectStyle::IpOctetsOnly { ip: [10, 1, 2, 3] }, 1);
        assert_eq!(identify_vendor(&c), None);
        assert!(is_ip_octet_subject(&c));
    }

    #[test]
    fn ibm_customer_subject_unidentified() {
        let c = cert(
            SubjectStyle::IbmCustomerNamed {
                customer_org: "Acme Corp".into(),
            },
            1,
        );
        assert_eq!(identify_vendor(&c), None, "IBM certs carry no IBM marker");
        assert!(!is_ip_octet_subject(&c));
    }

    #[test]
    fn ip_octet_subject_rejects_nonsense() {
        let c = cert(
            SubjectStyle::GenericVendorCn {
                vendor_cn: "300.1.2.3".into(),
            },
            1,
        );
        assert!(!is_ip_octet_subject(&c));
        let c2 = cert(
            SubjectStyle::GenericVendorCn {
                vendor_cn: "a.b.c.d".into(),
            },
            1,
        );
        assert!(!is_ip_octet_subject(&c2));
    }

    #[test]
    fn all_registry_vulnerable_styles_covered_or_deliberately_not() {
        // Styles that must identify: everything except IBM and IP-octet.
        for spec in wk_scan::registry() {
            if let wk_scan::StylePick::Fixed(style) = &spec.style {
                let c = cert(style.clone(), 7);
                let label = identify_vendor(&c);
                match style {
                    SubjectStyle::IbmCustomerNamed { .. } | SubjectStyle::IpOctetsOnly { .. } => {
                        assert!(label.is_none())
                    }
                    _ => assert_eq!(
                        label.map(|l| l.vendor),
                        Some(spec.vendor),
                        "style {style:?} must identify {:?}",
                        spec.vendor
                    ),
                }
            }
        }
    }
}
