//! Property-based tests for the fingerprinting mechanisms, using real key
//! material from `wk-keygen`.

use proptest::prelude::*;
use std::collections::HashMap;
use wk_bigint::Natural;
use wk_fingerprint::{
    classify_divisor, classify_primes, detect_cliques, extrapolate, DivisorKind, FactoredModulus,
    OpensslClass,
};
use wk_keygen::{KeygenBehavior, ModelKeygen, PrimeShaping};
use wk_scan::{ModulusId, VendorId};

fn clique_population(seed: u64, draws: usize) -> Vec<FactoredModulus> {
    let mut gen = ModelKeygen::new(
        KeygenBehavior::NinePrime {
            shaping: PrimeShaping::Plain,
        },
        128,
        seed,
    );
    let mut seen = HashMap::new();
    let mut out = Vec::new();
    for _ in 0..draws {
        let k = gen.generate();
        let key = k.public.n.to_bytes_be();
        if seen.contains_key(&key) {
            continue;
        }
        let id = ModulusId(seen.len() as u32);
        seen.insert(key, id);
        let (p, q) = if k.p <= k.q { (k.p, k.q) } else { (k.q, k.p) };
        out.push(FactoredModulus { id, p, q });
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A nine-prime population is always detected as exactly one clique
    /// containing every modulus, once enough draws accumulate.
    #[test]
    fn nine_prime_clique_always_detected(seed in 0u64..1000) {
        let factored = clique_population(seed, 60);
        prop_assume!(factored.len() >= 10);
        let cliques = detect_cliques(&factored, 6);
        prop_assert_eq!(cliques.len(), 1);
        prop_assert!(cliques[0].primes.len() <= 9);
        prop_assert_eq!(cliques[0].moduli.len(), factored.len());
    }

    /// Star-shaped (shared-pool) populations are never misdetected as
    /// cliques: one pooled prime with fresh second primes.
    #[test]
    fn shared_pool_never_a_clique(seed in 0u64..1000, n in 4usize..12) {
        let mut gen = ModelKeygen::new(
            KeygenBehavior::SharedPrimePool { shaping: PrimeShaping::Plain, pool_size: 1 },
            128,
            seed,
        );
        let factored: Vec<FactoredModulus> = (0..n)
            .map(|i| {
                let k = gen.generate();
                let (p, q) = if k.p <= k.q { (k.p, k.q) } else { (k.q, k.p) };
                FactoredModulus { id: ModulusId(i as u32), p, q }
            })
            .collect();
        let cliques = detect_cliques(&factored, 3);
        prop_assert!(cliques.is_empty(), "star misdetected: {cliques:?}");
    }

    /// Extrapolation is conservative: it never changes an existing label
    /// and only adds labels reachable through genuinely shared primes.
    #[test]
    fn extrapolation_conservative(seed in 0u64..1000, labeled in 1usize..5) {
        let mut gen = ModelKeygen::new(
            KeygenBehavior::SharedPrimePool { shaping: PrimeShaping::Plain, pool_size: 2 },
            128,
            seed,
        );
        let factored: Vec<FactoredModulus> = (0..8usize)
            .map(|i| {
                let k = gen.generate();
                let (p, q) = if k.p <= k.q { (k.p, k.q) } else { (k.q, k.p) };
                FactoredModulus { id: ModulusId(i as u32), p, q }
            })
            .collect();
        let mut labels = HashMap::new();
        for f in factored.iter().take(labeled) {
            labels.insert(f.id, VendorId::Juniper);
        }
        let result = extrapolate(&factored, &labels);
        // Never relabels inputs.
        for id in labels.keys() {
            prop_assert!(!result.extrapolated.contains_key(id));
        }
        // Every extrapolated modulus shares a prime with a labeled one.
        for id in result.extrapolated.keys() {
            let f = factored.iter().find(|f| &f.id == id).unwrap();
            let linked = factored.iter().filter(|g| labels.contains_key(&g.id)).any(|g| {
                f.p == g.p || f.p == g.q || f.q == g.p || f.q == g.q
            });
            prop_assert!(linked, "extrapolated label without a shared prime");
        }
    }

    /// Divisor classification: products of small primes are always smooth;
    /// a genuine half-size prime factor is never classified smooth.
    #[test]
    fn divisor_classification(seed in 0u64..1000) {
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(seed)
        };
        let p = wk_keygen::generate_prime(&mut rng, 64, PrimeShaping::Plain);
        prop_assert_eq!(classify_divisor(&p), DivisorKind::SharedPrime);
        let smooth = Natural::from(2u64 * 3 * 5 * 7 * 11 * 13);
        prop_assert_eq!(classify_divisor(&smooth), DivisorKind::SmoothBitError);
        prop_assert_eq!(classify_divisor(&(&p * &smooth)), DivisorKind::Mixed);
    }

    /// The OpenSSL classifier is consistent: OpenSSL-shaped prime sets are
    /// never classified NotOpenssl, and vice versa plain sets of >= 8 are
    /// never classified LikelyOpenssl.
    #[test]
    fn openssl_classifier_directions(seed in 0u64..500) {
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(seed)
        };
        let shaped: Vec<Natural> = (0..6)
            .map(|_| wk_keygen::generate_prime(&mut rng, 64, PrimeShaping::OpensslStyle))
            .collect();
        prop_assert_eq!(classify_primes(&shaped).class, OpensslClass::LikelyOpenssl);
        let plain: Vec<Natural> = (0..10)
            .map(|_| wk_keygen::generate_prime(&mut rng, 64, PrimeShaping::Plain))
            .collect();
        // P(all 10 satisfy by chance) = 0.075^10 ≈ 5.6e-12.
        prop_assert_ne!(classify_primes(&plain).class, OpensslClass::LikelyOpenssl);
    }
}
