//! Month-granular dates.
//!
//! The study selects "one representative scan per month" (§3.1), so every
//! longitudinal structure in the reproduction is keyed by a [`MonthDate`].

use core::fmt;

/// A calendar month: the time resolution of the study.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonthDate {
    /// Four-digit year.
    pub year: u16,
    /// Month 1-12.
    pub month: u8,
}

impl MonthDate {
    /// Construct, validating the month.
    ///
    /// # Panics
    /// Panics if `month` is not in `1..=12`.
    pub const fn new(year: u16, month: u8) -> Self {
        assert!(month >= 1 && month <= 12, "month out of range");
        MonthDate { year, month }
    }

    /// Months since January year 0 — a total order convenient for arithmetic.
    pub const fn index(self) -> u32 {
        self.year as u32 * 12 + (self.month as u32 - 1)
    }

    /// Inverse of [`MonthDate::index`].
    pub const fn from_index(index: u32) -> Self {
        MonthDate {
            year: (index / 12) as u16,
            month: (index % 12 + 1) as u8,
        }
    }

    /// The following month.
    pub const fn next(self) -> Self {
        Self::from_index(self.index() + 1)
    }

    /// Add `months`.
    pub const fn plus(self, months: u32) -> Self {
        Self::from_index(self.index() + months)
    }

    /// Whole months from `earlier` to `self` (0 if `earlier` is later).
    pub const fn months_since(self, earlier: MonthDate) -> u32 {
        self.index().saturating_sub(earlier.index())
    }

    /// Iterate every month from `self` through `end` inclusive.
    pub fn through(self, end: MonthDate) -> impl Iterator<Item = MonthDate> {
        (self.index()..=end.index()).map(MonthDate::from_index)
    }
}

impl fmt::Display for MonthDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

impl fmt::Debug for MonthDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for (y, m) in [(2010u16, 7u8), (2012, 1), (2016, 12), (0, 1)] {
            let d = MonthDate::new(y, m);
            assert_eq!(MonthDate::from_index(d.index()), d);
        }
    }

    #[test]
    fn ordering_matches_chronology() {
        assert!(MonthDate::new(2010, 7) < MonthDate::new(2010, 12));
        assert!(MonthDate::new(2010, 12) < MonthDate::new(2011, 1));
    }

    #[test]
    fn next_wraps_year() {
        assert_eq!(MonthDate::new(2011, 12).next(), MonthDate::new(2012, 1));
        assert_eq!(MonthDate::new(2011, 1).next(), MonthDate::new(2011, 2));
    }

    #[test]
    fn months_since() {
        let a = MonthDate::new(2012, 6);
        let b = MonthDate::new(2014, 4);
        assert_eq!(b.months_since(a), 22);
        assert_eq!(a.months_since(b), 0);
    }

    #[test]
    fn through_is_inclusive() {
        let months: Vec<_> = MonthDate::new(2010, 11)
            .through(MonthDate::new(2011, 2))
            .collect();
        assert_eq!(
            months,
            vec![
                MonthDate::new(2010, 11),
                MonthDate::new(2010, 12),
                MonthDate::new(2011, 1),
                MonthDate::new(2011, 2),
            ]
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(MonthDate::new(2014, 4).to_string(), "2014-04");
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn invalid_month_panics() {
        let _ = MonthDate::new(2010, 13);
    }
}
