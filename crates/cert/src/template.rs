//! Per-vendor default-certificate templates.
//!
//! §3.3.1 of the paper: "for vulnerable implementations end users typically
//! did not alter the default certificate values provided by the device", so
//! the default subject is a reliable vendor fingerprint. Every style below
//! is taken from a default the paper describes.

use crate::certificate::{Certificate, DistinguishedName};
use crate::time::MonthDate;
use wk_bigint::Natural;

/// The default-certificate style a device model ships with.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum SubjectStyle {
    /// `O=<vendor>` in the DN (Hewlett-Packard, Xerox, TP-LINK, Conel).
    OrganizationNames { organization: String },
    /// Cisco: the OU field carries the exact model ("the organizational
    /// unit section of the distinguished name refers to the model").
    CiscoModelInOu { model: String },
    /// Juniper: every certificate is exactly `CN=system generated` — no
    /// vendor or model named.
    JuniperSystemGenerated,
    /// McAfee SnapGear: `CN=Default Common Name, O=Default Organization,
    /// OU=Default Unit` — identified via the served management console page.
    McAfeeSnapGearDefaults,
    /// Fritz!Box with myfritz.net dynamic-DNS common names.
    FritzBoxMyfritz { subdomain: String },
    /// Fritz!Box with the characteristic local SANs
    /// (`fritz.box`, `www.fritz.box`, ...).
    FritzBoxLocalSans,
    /// `O=<org>, OU=<unit>` — e.g. Dell's `OU=Dell Imaging Group`
    /// machines that share primes with Xerox (§3.3.2), or Huawei's
    /// India business unit (§4.4).
    OrganizationAndUnit { organization: String, unit: String },
    /// Only an IP address in dotted octets as the CN — unidentifiable from
    /// the subject alone; labeled by shared-prime extrapolation (§3.3.2).
    IpOctetsOnly { ip: [u8; 4] },
    /// IBM RSA-II / BladeCenter: subjects carry the *customer's*
    /// organization, not IBM; identified purely by the nine-prime moduli.
    IbmCustomerNamed { customer_org: String },
    /// Siemens Building Automation interfaces.
    SiemensBuildingAutomation,
    /// A plain named default used by the remaining fingerprintable vendors.
    GenericVendorCn { vendor_cn: String },
}

impl SubjectStyle {
    /// Materialize the subject DN and SANs for one device.
    ///
    /// `device_tag` individualizes fields that vary per device (serial-
    /// derived hostnames); styles that are constant across devices ignore it.
    pub fn materialize(&self, device_tag: u64) -> (DistinguishedName, Vec<String>) {
        match self {
            SubjectStyle::OrganizationNames { organization } => (
                DistinguishedName {
                    common_name: Some(format!("device-{device_tag:08x}")),
                    organization: Some(organization.clone()),
                    ..Default::default()
                },
                vec![],
            ),
            SubjectStyle::CiscoModelInOu { model } => (
                DistinguishedName {
                    common_name: Some(format!("sb-{device_tag:08x}")),
                    organization: Some("Cisco Systems, Inc.".into()),
                    organizational_unit: Some(model.clone()),
                    ..Default::default()
                },
                vec![],
            ),
            SubjectStyle::JuniperSystemGenerated => {
                (DistinguishedName::cn("system generated"), vec![])
            }
            SubjectStyle::McAfeeSnapGearDefaults => (
                DistinguishedName {
                    common_name: Some("Default Common Name".into()),
                    organization: Some("Default Organization".into()),
                    organizational_unit: Some("Default Unit".into()),
                    ..Default::default()
                },
                vec![],
            ),
            SubjectStyle::FritzBoxMyfritz { subdomain } => (
                DistinguishedName::cn(&format!("{subdomain}{device_tag:06x}.myfritz.net")),
                vec![],
            ),
            SubjectStyle::FritzBoxLocalSans => (
                DistinguishedName::cn("fritz.box"),
                vec![
                    "fritz.fonwlan.box".into(),
                    "fritz.box".into(),
                    "www.fritz.box".into(),
                    "myfritz.box".into(),
                    "www.myfritz.box".into(),
                ],
            ),
            SubjectStyle::OrganizationAndUnit { organization, unit } => (
                DistinguishedName {
                    common_name: Some(format!("host-{device_tag:08x}")),
                    organization: Some(organization.clone()),
                    organizational_unit: Some(unit.clone()),
                    ..Default::default()
                },
                vec![],
            ),
            SubjectStyle::IpOctetsOnly { ip } => {
                let [a, b, c, d] = ip;
                (DistinguishedName::cn(&format!("{a}.{b}.{c}.{d}")), vec![])
            }
            SubjectStyle::IbmCustomerNamed { customer_org } => (
                DistinguishedName {
                    common_name: Some(format!("mgmt-{device_tag:06x}")),
                    // Customer organizations vary per deployment; none of
                    // them name IBM (§3.3.1).
                    organization: Some(format!("{customer_org} {:02}", device_tag % 40)),
                    ..Default::default()
                },
                vec![],
            ),
            SubjectStyle::SiemensBuildingAutomation => (
                DistinguishedName {
                    common_name: Some(format!("bacnet-{device_tag:06x}")),
                    organization: Some("Siemens Building Automation".into()),
                    ..Default::default()
                },
                vec![],
            ),
            SubjectStyle::GenericVendorCn { vendor_cn } => (
                DistinguishedName {
                    common_name: Some(vendor_cn.clone()),
                    ..Default::default()
                },
                vec![],
            ),
        }
    }

    /// Build a full self-signed default certificate for a device.
    pub fn certificate(
        &self,
        serial: u64,
        device_tag: u64,
        modulus: Natural,
        not_before: MonthDate,
    ) -> Certificate {
        let (subject, sans) = self.materialize(device_tag);
        Certificate::self_signed(serial, subject, sans, modulus, not_before)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn juniper_constant_across_devices() {
        let s = SubjectStyle::JuniperSystemGenerated;
        let (a, _) = s.materialize(1);
        let (b, _) = s.materialize(2);
        assert_eq!(a, b);
        assert_eq!(a.common_name.as_deref(), Some("system generated"));
    }

    #[test]
    fn cisco_model_in_ou() {
        let s = SubjectStyle::CiscoModelInOu {
            model: "RV220W".into(),
        };
        let (dn, _) = s.materialize(7);
        assert_eq!(dn.organizational_unit.as_deref(), Some("RV220W"));
        assert!(dn.render().contains("OU=RV220W"));
    }

    #[test]
    fn mcafee_defaults_quote_the_paper() {
        let (dn, _) = SubjectStyle::McAfeeSnapGearDefaults.materialize(0);
        assert_eq!(
            dn.render(),
            "CN=Default Common Name, O=Default Organization, OU=Default Unit"
        );
    }

    #[test]
    fn fritzbox_sans_match_paper_list() {
        let (_, sans) = SubjectStyle::FritzBoxLocalSans.materialize(0);
        for expected in [
            "fritz.fonwlan.box",
            "fritz.box",
            "www.fritz.box",
            "myfritz.box",
        ] {
            assert!(sans.iter().any(|s| s == expected), "missing {expected}");
        }
    }

    #[test]
    fn ip_octets_only_renders_dotted_quad() {
        let s = SubjectStyle::IpOctetsOnly {
            ip: [192, 168, 178, 1],
        };
        let (dn, _) = s.materialize(0);
        assert_eq!(dn.common_name.as_deref(), Some("192.168.178.1"));
        assert!(dn.organization.is_none(), "must not identify a vendor");
    }

    #[test]
    fn ibm_subject_does_not_name_ibm() {
        let s = SubjectStyle::IbmCustomerNamed {
            customer_org: "Example Corp".into(),
        };
        let (dn, _) = s.materialize(3);
        assert!(!dn.render().contains("IBM"));
    }

    #[test]
    fn certificate_carries_modulus_and_date() {
        let s = SubjectStyle::JuniperSystemGenerated;
        let c = s.certificate(42, 1, nat(323), MonthDate::new(2011, 10));
        assert_eq!(c.modulus, nat(323));
        assert_eq!(c.not_before, MonthDate::new(2011, 10));
        assert!(c.is_self_signed());
        assert!(!c.browser_trusted);
    }

    #[test]
    fn myfritz_names_vary_per_device() {
        let s = SubjectStyle::FritzBoxMyfritz {
            subdomain: "box".into(),
        };
        let (a, _) = s.materialize(1);
        let (b, _) = s.materialize(2);
        assert_ne!(a.common_name, b.common_name);
        assert!(a.common_name.unwrap().ends_with(".myfritz.net"));
    }
}
