//! # wk-cert — structured TLS certificates and vendor default templates
//!
//! Certificates as the study's fingerprints see them: distinguished names,
//! subject alternative names, chain position, validity, and the RSA public
//! key — no ASN.1/DER layer (fingerprinting never reads raw bytes; see the
//! DESIGN.md substitution table).
//!
//! * [`Certificate`] / [`DistinguishedName`] — the observation model,
//!   including the Internet-Rimon key-substitution transform and leaf
//!   selection for Rapid7-style unchained intermediates.
//! * [`SubjectStyle`] — per-vendor default-certificate templates quoted from
//!   the paper's §3.3 (Juniper's `CN=system generated`, McAfee SnapGear's
//!   `Default Common Name`, Fritz!Box SANs, Cisco's model-in-OU, ...).
//! * [`MonthDate`] — the study's month-granular time axis.

#![forbid(unsafe_code)]

mod certificate;
mod template;
mod time;

pub use certificate::{select_leaf, Certificate, DistinguishedName};
pub use template::SubjectStyle;
pub use time::MonthDate;
