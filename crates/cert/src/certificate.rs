//! The certificate model.
//!
//! Fingerprinting in the paper uses distinguished-name strings, subject
//! alternative names, chain position, and the public key — never raw ASN.1.
//! The model therefore keeps certificates structured and skips DER entirely
//! (DESIGN.md substitution table).

use crate::time::MonthDate;
use wk_bigint::Natural;

/// An X.509-style distinguished name, limited to the fields the study's
/// fingerprints read.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct DistinguishedName {
    /// CN
    pub common_name: Option<String>,
    /// O
    pub organization: Option<String>,
    /// OU
    pub organizational_unit: Option<String>,
    /// C
    pub country: Option<String>,
}

impl DistinguishedName {
    /// Build with just a common name.
    pub fn cn(common_name: &str) -> Self {
        DistinguishedName {
            common_name: Some(common_name.to_string()),
            ..Default::default()
        }
    }

    /// Render in the usual `CN=..., O=..., OU=..., C=...` display form.
    pub fn render(&self) -> String {
        let mut parts = Vec::new();
        if let Some(v) = &self.common_name {
            parts.push(format!("CN={v}"));
        }
        if let Some(v) = &self.organization {
            parts.push(format!("O={v}"));
        }
        if let Some(v) = &self.organizational_unit {
            parts.push(format!("OU={v}"));
        }
        if let Some(v) = &self.country {
            parts.push(format!("C={v}"));
        }
        parts.join(", ")
    }
}

/// A TLS certificate as observed by a scan.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Certificate {
    /// Serial number (unique within the simulation).
    pub serial: u64,
    /// Subject distinguished name.
    pub subject: DistinguishedName,
    /// Issuer distinguished name; equals `subject` for self-signed certs.
    pub issuer: DistinguishedName,
    /// DNS subject alternative names.
    pub subject_alt_names: Vec<String>,
    /// RSA modulus of the subject public key.
    pub modulus: Natural,
    /// RSA public exponent.
    pub exponent: u64,
    /// First month of validity.
    pub not_before: MonthDate,
    /// Months of validity.
    pub validity_months: u32,
    /// CA certificate (intermediates in Rapid7 scan data).
    pub is_ca: bool,
    /// Whether the certificate chains to a browser-trusted root. Almost
    /// never true for the vulnerable population (\[21\]; §2.4).
    pub browser_trusted: bool,
}

impl Certificate {
    /// Self-signed device certificate (the overwhelmingly common case).
    pub fn self_signed(
        serial: u64,
        subject: DistinguishedName,
        subject_alt_names: Vec<String>,
        modulus: Natural,
        not_before: MonthDate,
    ) -> Self {
        Certificate {
            serial,
            issuer: subject.clone(),
            subject,
            subject_alt_names,
            modulus,
            exponent: 65537,
            not_before,
            validity_months: 120,
            is_ca: false,
            browser_trusted: false,
        }
    }

    /// Is the certificate self-signed (subject == issuer)?
    pub fn is_self_signed(&self) -> bool {
        self.subject == self.issuer
    }

    /// Valid during `month`?
    pub fn valid_at(&self, month: MonthDate) -> bool {
        month >= self.not_before && month.months_since(self.not_before) < self.validity_months
    }

    /// Return a copy with the public key replaced — the Internet Rimon
    /// man-in-the-middle transformation (§3.3.3): "only the public key and
    /// the signature were changed; the rest of the certificate remained
    /// unchanged".
    pub fn with_substituted_key(&self, modulus: Natural) -> Certificate {
        Certificate {
            modulus,
            ..self.clone()
        }
    }
}

/// Reconstruct chains within the set of certificates presented at one IP
/// and return the index of the *leaf* ("the lowest certificate in the
/// chain", §3.1) — the certificate that is not the issuer of any other
/// presented certificate.
///
/// Rapid7 scan data includes unchained intermediates; the other sources
/// exclude or pre-chain them. Running everything through this selector
/// normalizes the difference.
pub fn select_leaf(certs: &[Certificate]) -> Option<usize> {
    if certs.is_empty() {
        return None;
    }
    let mut candidates: Vec<usize> = (0..certs.len())
        .filter(|&i| {
            // A leaf's subject is not the issuer of any *other* cert.
            !certs
                .iter()
                .enumerate()
                .any(|(j, c)| j != i && c.issuer == certs[i].subject && !c.is_self_signed())
        })
        .collect();
    // Prefer non-CA leaves (an intermediate may be issuer-less in the set).
    if candidates.len() > 1 {
        let non_ca: Vec<usize> = candidates
            .iter()
            .copied()
            .filter(|&i| !certs[i].is_ca)
            .collect();
        if !non_ca.is_empty() {
            candidates = non_ca;
        }
    }
    candidates.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nat(v: u64) -> Natural {
        Natural::from(v)
    }

    fn date() -> MonthDate {
        MonthDate::new(2012, 6)
    }

    #[test]
    fn dn_render_order_and_omission() {
        let dn = DistinguishedName {
            common_name: Some("system generated".into()),
            organization: None,
            organizational_unit: Some("SRX".into()),
            country: None,
        };
        assert_eq!(dn.render(), "CN=system generated, OU=SRX");
        assert_eq!(DistinguishedName::default().render(), "");
    }

    #[test]
    fn self_signed_detection() {
        let c = Certificate::self_signed(1, DistinguishedName::cn("x"), vec![], nat(35), date());
        assert!(c.is_self_signed());
        let mut d = c.clone();
        d.issuer = DistinguishedName::cn("SomeCA");
        assert!(!d.is_self_signed());
    }

    #[test]
    fn validity_window() {
        let mut c =
            Certificate::self_signed(1, DistinguishedName::cn("x"), vec![], nat(35), date());
        c.validity_months = 12;
        assert!(!c.valid_at(MonthDate::new(2012, 5)));
        assert!(c.valid_at(MonthDate::new(2012, 6)));
        assert!(c.valid_at(MonthDate::new(2013, 5)));
        assert!(!c.valid_at(MonthDate::new(2013, 6)));
    }

    #[test]
    fn key_substitution_preserves_everything_else() {
        let c = Certificate::self_signed(
            7,
            DistinguishedName::cn("192.168.1.1"),
            vec!["fritz.box".into()],
            nat(35),
            date(),
        );
        let m = c.with_substituted_key(nat(77));
        assert_eq!(m.modulus, nat(77));
        assert_eq!(m.subject, c.subject);
        assert_eq!(m.subject_alt_names, c.subject_alt_names);
        assert_eq!(m.serial, c.serial);
    }

    #[test]
    fn leaf_selection_with_intermediate() {
        let ca_dn = DistinguishedName::cn("Example Intermediate CA");
        let mut ca = Certificate::self_signed(1, ca_dn.clone(), vec![], nat(101), date());
        ca.is_ca = true;
        ca.issuer = DistinguishedName::cn("Example Root");
        let mut leaf =
            Certificate::self_signed(2, DistinguishedName::cn("device"), vec![], nat(35), date());
        leaf.issuer = ca_dn;
        let certs = vec![ca, leaf];
        assert_eq!(select_leaf(&certs), Some(1));
    }

    #[test]
    fn leaf_selection_single_self_signed() {
        let c = Certificate::self_signed(1, DistinguishedName::cn("d"), vec![], nat(35), date());
        assert_eq!(select_leaf(&[c]), Some(0));
        assert_eq!(select_leaf(&[]), None);
    }

    #[test]
    fn leaf_selection_prefers_non_ca_on_ties() {
        // Two unrelated certs at one IP (issuer links absent): pick non-CA.
        let mut ca = Certificate::self_signed(
            1,
            DistinguishedName::cn("Stray CA"),
            vec![],
            nat(101),
            date(),
        );
        ca.is_ca = true;
        let leaf =
            Certificate::self_signed(2, DistinguishedName::cn("device"), vec![], nat(35), date());
        assert_eq!(select_leaf(&[ca, leaf]), Some(1));
    }
}
