//! Typed errors for the audit daemon.
//!
//! A long-running service cannot afford library panics (the wk-lint
//! no-panic-in-lib rule covers this crate), so every failure the feed or
//! persistence layer can produce surfaces here as a variant.

use std::fmt;
use std::io;
use std::path::PathBuf;
use wk_batchgcd::{CorpusError, IncrementalError};
use wk_cert::MonthDate;
use wk_cluster::ClusterError;

/// Everything that can go wrong inside the audit daemon.
#[derive(Debug)]
pub enum ServiceError {
    /// Filesystem failure outside the shard store / tree cache layers.
    Io(io::Error),
    /// Shard-store failure (open, append, read).
    Corpus(CorpusError),
    /// Tree-cache failure (open, build, delta run).
    Incremental(IncrementalError),
    /// Multi-process cluster failure during a delegated month close.
    Cluster(ClusterError),
    /// `run_metadata.json` or `labels.tsv` exists but cannot be parsed.
    Metadata {
        /// The unreadable file.
        path: PathBuf,
        /// What failed.
        message: String,
    },
    /// On-disk state that no crash window can produce — e.g. the committed
    /// watermark claims more moduli than the shard store holds, or the
    /// watermark count does not land on a shard boundary.
    CorruptState {
        /// What invariant is violated.
        message: String,
    },
    /// A `MonthClose` event arrived out of order.
    MonthMismatch {
        /// The month the daemon expected to close next.
        expected: MonthDate,
        /// The month the event carried.
        got: MonthDate,
    },
    /// A feed observation carried a zero modulus, which batch GCD rejects.
    InvalidModulus,
    /// The feed channel disconnected before a `Shutdown` event.
    FeedClosed,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(e) => write!(f, "service I/O error: {e}"),
            ServiceError::Corpus(e) => write!(f, "shard store error: {e}"),
            ServiceError::Incremental(e) => write!(f, "tree cache error: {e}"),
            ServiceError::Cluster(e) => write!(f, "cluster month-close error: {e}"),
            ServiceError::Metadata { path, message } => {
                write!(f, "bad metadata file {}: {message}", path.display())
            }
            ServiceError::CorruptState { message } => {
                write!(f, "unrecoverable on-disk state: {message}")
            }
            ServiceError::MonthMismatch { expected, got } => {
                write!(
                    f,
                    "month-close out of order: expected {expected}, got {got}"
                )
            }
            ServiceError::InvalidModulus => write!(f, "feed observation carried a zero modulus"),
            ServiceError::FeedClosed => write!(f, "feed channel closed before shutdown"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            ServiceError::Corpus(e) => Some(e),
            ServiceError::Incremental(e) => Some(e),
            ServiceError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl From<CorpusError> for ServiceError {
    fn from(e: CorpusError) -> Self {
        ServiceError::Corpus(e)
    }
}

impl From<IncrementalError> for ServiceError {
    fn from(e: IncrementalError) -> Self {
        ServiceError::Incremental(e)
    }
}

impl From<ClusterError> for ServiceError {
    fn from(e: ClusterError) -> Self {
        ServiceError::Cluster(e)
    }
}
