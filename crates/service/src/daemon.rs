//! The audit daemon: ingest, month-close transactions, crash recovery, and
//! the provenance-stamped query layer.
//!
//! ## Month-close protocol (DESIGN.md §10)
//!
//! 1. Read the delta watermark **from disk**: the shard store's committed
//!    modulus count, never an in-process counter — a crash between
//!    in-memory ingest and shard export can therefore never double-ingest
//!    or skip a month.
//! 2. `incremental_batch_gcd`: append the delta shards, update + persist
//!    the tree cache.
//! 3. Refresh the hot query index from the result.
//! 4. Persist `labels.tsv` (derived metadata — vendor labels, first-seen
//!    and factored-since months).
//! 5. Persist `run_metadata.json` — the **commit point**. Until this
//!    rename lands, recovery treats the month as uncommitted.
//!
//! ## Recovery (every [`AuditDaemon::open`])
//!
//! * Remove `*.tmp` orphans (staged writes that never published).
//! * If the tree cache validates against the full shard store, the last
//!   month's persist completed: **roll forward** and re-commit the
//!   watermark.
//! * Otherwise **roll back**: delete trailing shards beyond the committed
//!   watermark (appends always start a new shard, so the watermark lands
//!   on a shard boundary), then reopen; if the cache still does not
//!   validate, rebuild it from the store. Either way the surviving corpus
//!   is byte-identical to a committed state — never a hybrid.

use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};
use std::time::Duration;
use weakkeys::partition_statuses;
use wk_analysis::attribute_moduli;
use wk_batchgcd::{incremental_batch_gcd, BatchGcdResult, IncrementalError, ShardStore, TreeCache};
use wk_bigint::Natural;
use wk_cert::MonthDate;
use wk_cluster::{run_cluster, ClusterSpec};
use wk_scan::{ModulusId, ModulusStore, VendorId};

use crate::error::ServiceError;
use crate::feed::{FeedEvent, FeedReceiver, HostObservation};
use crate::provenance::{clean_tmp_orphans, write_atomic, LabelLedger, Provenance, Watermark};

/// Tree-cache section files, for the rebuild path that clears a corrupt
/// cache directory (names from DESIGN.md §8.2).
const CACHE_SECTIONS: [&str; 4] = ["roots.wkc", "top.wkc", "hits.wkc", "recips.wkc"];

/// Static configuration of an audit daemon instance.
#[derive(Clone, Debug)]
pub struct AuditConfig {
    /// Service directory: shard store, tree cache, and metadata live here.
    pub dir: PathBuf,
    /// Maximum moduli per corpus shard.
    pub shard_capacity: usize,
    /// Worker threads for the batch-GCD pool.
    pub threads: usize,
    /// First month the feed covers; months are sequential from here, so
    /// month identity survives restarts as `start_month + months_closed`.
    pub start_month: MonthDate,
    /// When set, month-close phase 1 is delegated to a real multi-process
    /// cluster of `wk-cluster-node` workers instead of running in this
    /// process (DESIGN.md §12.7). Phases 2–3 and every commit/crash-window
    /// property of the close protocol are unchanged.
    pub cluster: Option<ClusterClose>,
}

/// How a cluster-delegated month close runs its worker fleet.
#[derive(Clone, Debug)]
pub struct ClusterClose {
    /// Path to the `wk-cluster-node` binary
    /// ([`wk_cluster::sibling_node_bin`] finds it next to the current
    /// executable).
    pub node_bin: PathBuf,
    /// Worker processes to spawn per close.
    pub nodes: u32,
    /// Lease staleness window shared by the fleet.
    pub stale_after: Duration,
    /// Heartbeat interval shared by the fleet.
    pub heartbeat_every: Duration,
    /// Idle-sweep poll interval shared by the fleet.
    pub poll_every: Duration,
}

impl ClusterClose {
    /// A fleet of `nodes` workers with production-shaped lease timing
    /// (mirrors [`wk_cluster::ClusterSpec::new`]).
    pub fn new(node_bin: PathBuf, nodes: u32) -> ClusterClose {
        ClusterClose {
            node_bin,
            nodes,
            stale_after: Duration::from_secs(30),
            heartbeat_every: Duration::from_secs(5),
            poll_every: Duration::from_millis(250),
        }
    }
}

impl AuditConfig {
    /// A small config rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>, start_month: MonthDate) -> AuditConfig {
        AuditConfig {
            dir: dir.into(),
            shard_capacity: 8,
            threads: 2,
            start_month,
            cluster: None,
        }
    }

    fn store_dir(&self) -> PathBuf {
        self.dir.join("store")
    }

    fn cluster_dir(&self) -> PathBuf {
        self.dir.join("cluster")
    }

    fn cache_dir(&self) -> PathBuf {
        self.dir.join("cache")
    }

    fn metadata_path(&self) -> PathBuf {
        self.dir.join("run_metadata.json")
    }

    fn labels_path(&self) -> PathBuf {
        self.dir.join("labels.tsv")
    }
}

/// What [`AuditDaemon::open`] had to do to reach a consistent state —
/// surfaced for tests and operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Recovery {
    /// Fresh service directory, nothing on disk yet.
    Fresh,
    /// Disk state matched the committed watermark exactly.
    Clean,
    /// An uncommitted but fully persisted month was adopted and committed.
    RolledForward,
    /// Trailing uncommitted shards were discarded back to the watermark.
    RolledBack,
    /// The tree cache was rebuilt from the (committed) shard store.
    RebuiltCache,
}

/// Summary of one committed month-close transaction.
#[derive(Clone, Debug)]
pub struct MonthReport {
    /// The month that closed.
    pub month: MonthDate,
    /// New distinct moduli this month contributed.
    pub new_moduli: usize,
    /// Corpus size after the close.
    pub total_moduli: u64,
    /// Vulnerable moduli across the whole corpus after the close.
    pub vulnerable: usize,
    /// Moduli whose factorization first appeared this month.
    pub newly_factored: usize,
}

/// Result of draining a feed with [`AuditDaemon::run`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeSummary {
    /// Host observations ingested.
    pub hosts_ingested: u64,
    /// Months closed and committed.
    pub months_closed: u32,
}

/// Answer to "is this modulus factored / which vendor / since when".
#[derive(Clone, Debug)]
pub struct QueryAnswer {
    /// Whether the modulus has ever been observed by the feed.
    pub known: bool,
    /// Whether a committed analysis pass factored it.
    pub factored: bool,
    /// The recovered factors, when factored.
    pub factors: Option<(Natural, Natural)>,
    /// Vendor attribution (subject label or shared-prime extrapolation).
    pub vendor: Option<VendorId>,
    /// Month the modulus was first observed.
    pub first_seen: Option<MonthDate>,
    /// Month its factorization first appeared in a committed pass.
    pub factored_since: Option<MonthDate>,
    /// The corpus/cache state the answer was computed from.
    pub provenance: Provenance,
}

/// The hot query index, refreshed at every month close and on restart.
#[derive(Clone, Debug, Default)]
struct QueryIndex {
    vulnerable: HashSet<ModulusId>,
    factors: HashMap<ModulusId, (Natural, Natural)>,
    vendors: HashMap<ModulusId, VendorId>,
}

/// A long-running key-audit daemon over one service directory.
pub struct AuditDaemon {
    config: AuditConfig,
    store: ShardStore,
    cache: TreeCache,
    moduli: ModulusStore,
    ledger: LabelLedger,
    index: QueryIndex,
    watermark: Watermark,
    recovery: Recovery,
}

impl AuditDaemon {
    /// Open (or initialise) the service directory, running crash recovery
    /// as needed, and return a daemon whose in-memory state mirrors a
    /// committed on-disk state.
    pub fn open(config: AuditConfig) -> Result<AuditDaemon, ServiceError> {
        fs::create_dir_all(&config.dir)?;
        clean_tmp_orphans(&config.dir)?;
        clean_tmp_orphans(&config.store_dir())?;
        clean_tmp_orphans(&config.cache_dir())?;

        let committed = match fs::read_to_string(config.metadata_path()) {
            Ok(src) => Some(Watermark::from_json(&src, &config.metadata_path())?),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };

        // Fresh bootstrap: nothing committed and no corpus on disk.
        let store_exists = config.store_dir().is_dir();
        if committed.is_none() && !store_exists {
            let store = ShardStore::create(
                &config.store_dir(),
                config.shard_capacity,
                std::iter::empty(),
            )?;
            let (cache, result) = TreeCache::build(&config.cache_dir(), &store, config.threads)?;
            let mut daemon = AuditDaemon {
                config,
                store,
                cache,
                moduli: ModulusStore::default(),
                ledger: LabelLedger::default(),
                index: QueryIndex::default(),
                watermark: Watermark::empty(0),
                recovery: Recovery::Fresh,
            };
            daemon.refresh_index(&result);
            daemon.commit_metadata(0, None)?;
            return Ok(daemon);
        }

        let mut store = ShardStore::open(&config.store_dir())?;
        let committed_moduli = committed.as_ref().map(|w| w.corpus_moduli).unwrap_or(0);
        if store.total_moduli() < committed_moduli {
            return Err(ServiceError::CorruptState {
                message: format!(
                    "watermark commits {committed_moduli} moduli but the shard store holds {}",
                    store.total_moduli()
                ),
            });
        }

        // Decide between roll-forward and roll-back by whether the cache
        // binds to the full store as found on disk.
        let mut recovery;
        let (cache, rebuild_result) = match Self::try_open_cache(&config.cache_dir(), &store)? {
            Some(cache) => {
                recovery = if store.total_moduli() == committed_moduli {
                    Recovery::Clean
                } else {
                    Recovery::RolledForward
                };
                (cache, None)
            }
            None => {
                // Roll back to the committed boundary, then bind or rebuild.
                if store.total_moduli() > committed_moduli {
                    store = Self::rollback_store(&config, store, committed_moduli)?;
                    recovery = Recovery::RolledBack;
                } else {
                    recovery = Recovery::RebuiltCache;
                }
                match Self::try_open_cache(&config.cache_dir(), &store)? {
                    Some(cache) => (cache, None),
                    None => {
                        recovery = Recovery::RebuiltCache;
                        for name in CACHE_SECTIONS {
                            let path = config.cache_dir().join(name);
                            if path.exists() {
                                fs::remove_file(&path)?;
                            }
                        }
                        let (cache, result) =
                            TreeCache::build(&config.cache_dir(), &store, config.threads)?;
                        (cache, Some(result))
                    }
                }
            }
        };

        // Rebuild the in-memory modulus store from the committed shards —
        // the disk is the source of truth for ids and the delta watermark.
        let mut moduli = ModulusStore::default();
        for index in 0..store.shard_count() {
            for n in store.read_shard(index as u32)? {
                moduli.intern(&n);
            }
        }
        if moduli.len() as u64 != store.total_moduli() {
            return Err(ServiceError::CorruptState {
                message: format!(
                    "shards replay to {} distinct moduli but the store counts {}",
                    moduli.len(),
                    store.total_moduli()
                ),
            });
        }

        // Month accounting: a rolled-forward corpus is one close past the
        // committed watermark.
        let mut months_closed = committed.as_ref().map(|w| w.months_closed).unwrap_or(0);
        if recovery == Recovery::RolledForward {
            months_closed += 1;
        }
        if months_closed == 0 && store.total_moduli() > 0 {
            // A first month persisted fully but its watermark never landed.
            months_closed = 1;
            recovery = Recovery::RolledForward;
        }
        let last_month = (months_closed > 0).then(|| config.start_month.plus(months_closed - 1));

        // Derived metadata: prune entries past the surviving corpus, then
        // backfill anything the corpus has that the (possibly stale) label
        // file predates.
        let mut ledger = match fs::read_to_string(config.labels_path()) {
            Ok(src) => LabelLedger::from_tsv(&src, &config.labels_path())?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => LabelLedger::default(),
            Err(e) => return Err(e.into()),
        };
        ledger.truncate(moduli.len());

        let mut daemon = AuditDaemon {
            config,
            store,
            cache,
            moduli,
            ledger,
            index: QueryIndex::default(),
            watermark: Watermark::empty(0),
            recovery,
        };

        // Rebuild the hot index from the committed corpus: either the
        // rebuild pass already produced the full result, or an empty-delta
        // incremental run reconstructs it from the cached hits.
        let result = match rebuild_result {
            Some(result) => result,
            None => incremental_batch_gcd(
                &mut daemon.store,
                &mut daemon.cache,
                &[],
                daemon.config.shard_capacity.max(1),
                daemon.config.threads,
            )?,
        };
        if let Some(backfill) = last_month {
            for id in (0..daemon.moduli.len() as u32).map(ModulusId) {
                daemon.ledger.first_seen.entry(id).or_insert(backfill);
            }
        }
        daemon.refresh_index(&result);
        if let Some(backfill) = last_month {
            for id in daemon.index.factors.keys() {
                daemon.ledger.factored_since.entry(*id).or_insert(backfill);
            }
        }

        // Re-commit so disk reflects exactly the adopted state.
        daemon.commit_metadata(months_closed, last_month)?;
        Ok(daemon)
    }

    /// Open the cache if it exists and binds to `store`; `None` on a stale
    /// or corrupt cache (both are recoverable), error otherwise.
    fn try_open_cache(dir: &Path, store: &ShardStore) -> Result<Option<TreeCache>, ServiceError> {
        if !TreeCache::exists(dir) {
            return Ok(None);
        }
        match TreeCache::open(dir, store) {
            Ok(cache) => Ok(Some(cache)),
            Err(IncrementalError::Stale { .. }) | Err(IncrementalError::CacheCorrupt { .. }) => {
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Delete trailing shards beyond the committed modulus count and reopen
    /// the store. Appends always start a new shard, so a committed count
    /// lands exactly on a shard boundary; anything else is corruption.
    fn rollback_store(
        config: &AuditConfig,
        store: ShardStore,
        committed_moduli: u64,
    ) -> Result<ShardStore, ServiceError> {
        let mut cumulative = 0u64;
        let mut keep = 0usize;
        for meta in store.shards() {
            if cumulative == committed_moduli {
                break;
            }
            cumulative += meta.count;
            keep += 1;
        }
        if cumulative != committed_moduli {
            return Err(ServiceError::CorruptState {
                message: format!(
                    "committed count {committed_moduli} does not land on a shard boundary"
                ),
            });
        }
        let doomed: Vec<PathBuf> = (keep..store.shard_count())
            .map(|i| store.shard_path(i as u32))
            .collect();
        drop(store);
        for path in doomed {
            fs::remove_file(&path)?;
        }
        wk_batchgcd::fsync_dir(&config.store_dir())?;
        Ok(ShardStore::open(&config.store_dir())?)
    }

    /// Recompute the hot query index from a full-corpus batch result.
    fn refresh_index(&mut self, result: &BatchGcdResult) {
        let partition = partition_statuses(&result.raw_divisors, &result.statuses);
        let (vendors, _overlaps) =
            attribute_moduli(&partition.factored, &self.ledger.subject_vendor);
        let mut factors = HashMap::new();
        for f in &partition.factored {
            factors.insert(f.id, (f.p.clone(), f.q.clone()));
        }
        self.index = QueryIndex {
            vulnerable: partition.vulnerable,
            factors,
            vendors,
        };
    }

    /// Persist `labels.tsv` then `run_metadata.json` (the commit point) and
    /// adopt the new watermark in memory.
    fn commit_metadata(
        &mut self,
        months_closed: u32,
        last_month: Option<MonthDate>,
    ) -> Result<(), ServiceError> {
        write_atomic(&self.config.labels_path(), self.ledger.to_tsv().as_bytes())?;
        let watermark = Watermark {
            months_closed,
            last_month,
            corpus_moduli: self.store.total_moduli(),
            corpus_tag: self.store.state_tag(),
            cache_tag: self.cache.state_tag(),
            shard_capacity: self.store.capacity(),
        };
        write_atomic(&self.config.metadata_path(), watermark.to_json().as_bytes())?;
        self.watermark = watermark;
        Ok(())
    }

    /// What recovery path the last [`AuditDaemon::open`] took.
    pub fn recovery(&self) -> Recovery {
        self.recovery
    }

    /// The committed watermark.
    pub fn watermark(&self) -> &Watermark {
        &self.watermark
    }

    /// The month currently open for ingestion.
    pub fn current_month(&self) -> MonthDate {
        self.config.start_month.plus(self.watermark.months_closed)
    }

    /// Distinct moduli observed so far (committed and in-flight).
    pub fn observed_moduli(&self) -> usize {
        self.moduli.len()
    }

    /// Ingest one host observation into the open month.
    ///
    /// # Errors
    /// [`ServiceError::InvalidModulus`] for a zero modulus (batch GCD would
    /// reject the whole delta later; the feed path reports it per host).
    pub fn ingest(&mut self, obs: &HostObservation) -> Result<ModulusId, ServiceError> {
        if obs.modulus.is_zero() {
            return Err(ServiceError::InvalidModulus);
        }
        let id = self.moduli.intern(&obs.modulus);
        let month = self.current_month();
        self.ledger.first_seen.entry(id).or_insert(month);
        if let Some(vendor) = obs.vendor {
            self.ledger.subject_vendor.entry(id).or_insert(vendor);
        }
        Ok(id)
    }

    /// Close the open month: run the incremental pass over this month's
    /// delta, refresh the query index, and commit. See the module docs for
    /// the step ordering and crash windows.
    pub fn close_month(&mut self, month: MonthDate) -> Result<MonthReport, ServiceError> {
        let expected = self.current_month();
        if month != expected {
            return Err(ServiceError::MonthMismatch {
                expected,
                got: month,
            });
        }
        // The delta watermark comes from the *persisted* corpus count, not
        // an in-process counter: after any crash/restart the two agree, and
        // a re-delivered month cannot double-ingest.
        let persisted = usize::try_from(self.store.total_moduli()).unwrap_or(usize::MAX);
        let delta = self.moduli.moduli_since(persisted).to_vec();
        let before_factored: HashSet<ModulusId> = self.index.factors.keys().copied().collect();

        let result = match self.config.cluster.clone() {
            Some(cluster) => self.close_on_cluster(&delta, &cluster)?,
            None => incremental_batch_gcd(
                &mut self.store,
                &mut self.cache,
                &delta,
                self.config.shard_capacity.max(1),
                self.config.threads,
            )?,
        };
        self.refresh_index(&result);
        let mut newly_factored = 0;
        for id in self.index.factors.keys() {
            if !before_factored.contains(id) {
                self.ledger.factored_since.entry(*id).or_insert(month);
                newly_factored += 1;
            }
        }
        self.commit_metadata(self.watermark.months_closed + 1, Some(month))?;
        Ok(MonthReport {
            month,
            new_moduli: delta.len(),
            total_moduli: self.store.total_moduli(),
            vulnerable: self.index.vulnerable.len(),
            newly_factored,
        })
    }

    /// Month-close phase 1 on a real multi-process cluster: append the
    /// delta shards, run the worker fleet over the whole store, then
    /// persist a tree cache from the assembly so subsequent opens,
    /// recoveries, and queries see exactly what an in-process close would
    /// have produced (the result is byte-identical by construction).
    ///
    /// Crash windows match the in-process path: the committed watermark
    /// still lands last, an interrupted close leaves either trailing
    /// uncommitted shards (rolled back on reopen) or a fully persisted
    /// cache (rolled forward). Leftover cluster state from an interrupted
    /// close is swept by the next run — stale exchange roots no longer
    /// bind to the store's state tag.
    fn close_on_cluster(
        &mut self,
        delta: &[Natural],
        cluster: &ClusterClose,
    ) -> Result<BatchGcdResult, ServiceError> {
        if !delta.is_empty() {
            self.store
                .append(self.config.shard_capacity.max(1), delta)?;
        }
        let mut spec = ClusterSpec::new(
            self.config.cluster_dir(),
            cluster.node_bin.clone(),
            cluster.nodes,
        );
        spec.stale_after = cluster.stale_after;
        spec.heartbeat_every = cluster.heartbeat_every;
        spec.poll_every = cluster.poll_every;
        let outcome = run_cluster(&self.config.store_dir(), &spec, self.config.threads)?;
        let assembly = outcome.assembly;
        self.cache = TreeCache::from_parts(
            &self.config.cache_dir(),
            &self.store,
            assembly.shard_products,
            assembly.top_product,
            &assembly.result,
        )?;
        Ok(assembly.result)
    }

    /// Drain a feed until `Shutdown` (or every sender hangs up).
    pub fn run(&mut self, feed: &FeedReceiver) -> Result<ServeSummary, ServiceError> {
        let mut summary = ServeSummary::default();
        while let Some(event) = feed.recv() {
            match event {
                FeedEvent::Host(obs) => {
                    self.ingest(&obs)?;
                    summary.hosts_ingested += 1;
                }
                FeedEvent::MonthClose(month) => {
                    self.close_month(month)?;
                    summary.months_closed += 1;
                }
                FeedEvent::Shutdown => return Ok(summary),
            }
        }
        Ok(summary)
    }

    /// Answer "is this modulus factored / which vendor / since when" from
    /// the hot index, stamped with the provenance of the committed state
    /// the index was built from. Moduli ingested after the last month close
    /// are `known` but not yet analyzed.
    pub fn query(&self, modulus: &Natural) -> QueryAnswer {
        let provenance = Provenance {
            corpus_tag: self.watermark.corpus_tag,
            cache_tag: self.watermark.cache_tag,
            corpus_moduli: self.watermark.corpus_moduli,
            months_closed: self.watermark.months_closed,
            last_month: self.watermark.last_month,
        };
        let Some(id) = self.moduli.lookup(modulus) else {
            return QueryAnswer {
                known: false,
                factored: false,
                factors: None,
                vendor: None,
                first_seen: None,
                factored_since: None,
                provenance,
            };
        };
        let factors = self.index.factors.get(&id).cloned();
        QueryAnswer {
            known: true,
            factored: factors.is_some(),
            factors,
            vendor: self.index.vendors.get(&id).copied(),
            first_seen: self.ledger.first_seen.get(&id).copied(),
            factored_since: self.ledger.factored_since.get(&id).copied(),
            provenance,
        }
    }

    /// Verify the in-memory provenance tags against the on-disk stores —
    /// what an auditor does with a query answer in hand.
    pub fn verify_provenance(&self) -> Result<(), ServiceError> {
        let store = ShardStore::open(&self.config.store_dir())?;
        if store.state_tag() != self.watermark.corpus_tag {
            return Err(ServiceError::CorruptState {
                message: "corpus state tag does not match the committed watermark".to_string(),
            });
        }
        let cache = TreeCache::open(&self.config.cache_dir(), &store)?;
        if cache.state_tag() != self.watermark.cache_tag {
            return Err(ServiceError::CorruptState {
                message: "cache state tag does not match the committed watermark".to_string(),
            });
        }
        Ok(())
    }
}
