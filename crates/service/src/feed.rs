//! The live scan feed: bounded channel, events, and a simulated producer.
//!
//! The daemon consumes [`FeedEvent`]s from a [`FeedReceiver`]; producers
//! push through the matching [`FeedSender`]. The channel is *bounded*
//! ([`feed_channel`] wraps [`std::sync::mpsc::sync_channel`]), so a
//! producer that outruns the daemon blocks instead of growing an unbounded
//! queue — the backpressure policy of DESIGN.md §10. The sender counts the
//! sends that hit a full channel, making backpressure observable.
//!
//! [`SimulatedFeed`] generates a deterministic multi-month workload from
//! the same entropy-failure key generators the study simulator uses: a
//! shared-prime device line (whose keys batch GCD will factor) mixed with
//! healthy hosts, some repeat observations, and subject-derived vendor
//! labels on a subset of the flawed hosts so prime-pool extrapolation has
//! anchors to spread from.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use wk_bigint::Natural;
use wk_cert::MonthDate;
use wk_keygen::{KeygenBehavior, ModelKeygen, PrimeShaping};
use wk_scan::VendorId;

use crate::error::ServiceError;

/// One host sighting pushed by the live feed.
#[derive(Clone, Debug)]
pub struct HostObservation {
    /// Host address (opaque to the daemon; provenance only).
    pub ip: u32,
    /// The RSA modulus the host served.
    pub modulus: Natural,
    /// Vendor named by the certificate subject, where it carried a marker.
    pub vendor: Option<VendorId>,
}

/// Events flowing from the scan feed into the daemon.
#[derive(Clone, Debug)]
pub enum FeedEvent {
    /// A host sighting within the current month.
    Host(HostObservation),
    /// The named month is complete: export the delta, run the incremental
    /// batch-GCD pass, refresh the query index, commit the watermark.
    MonthClose(MonthDate),
    /// Drain and stop.
    Shutdown,
}

/// Producer half of the bounded feed channel.
#[derive(Clone)]
pub struct FeedSender {
    tx: SyncSender<FeedEvent>,
    backpressure_hits: Arc<AtomicU64>,
}

impl FeedSender {
    /// Push an event, blocking while the channel is full.
    ///
    /// # Errors
    /// [`ServiceError::FeedClosed`] if the daemon hung up.
    pub fn send(&self, event: FeedEvent) -> Result<(), ServiceError> {
        // try_send first so a full channel is counted before blocking.
        match self.tx.try_send(event) {
            Ok(()) => Ok(()),
            Err(TrySendError::Disconnected(_)) => Err(ServiceError::FeedClosed),
            Err(TrySendError::Full(event)) => {
                self.backpressure_hits.fetch_add(1, Ordering::Relaxed);
                self.tx.send(event).map_err(|_| ServiceError::FeedClosed)
            }
        }
    }

    /// How many sends found the channel full and had to block.
    pub fn backpressure_hits(&self) -> u64 {
        self.backpressure_hits.load(Ordering::Relaxed)
    }
}

/// Consumer half of the bounded feed channel.
pub struct FeedReceiver {
    rx: Receiver<FeedEvent>,
}

impl FeedReceiver {
    /// Next event; `None` once every sender has hung up.
    pub fn recv(&self) -> Option<FeedEvent> {
        self.rx.recv().ok()
    }
}

/// A bounded feed channel holding at most `bound` in-flight events.
pub fn feed_channel(bound: usize) -> (FeedSender, FeedReceiver) {
    let (tx, rx) = sync_channel(bound);
    (
        FeedSender {
            tx,
            backpressure_hits: Arc::new(AtomicU64::new(0)),
        },
        FeedReceiver { rx },
    )
}

/// Configuration for the simulated live feed.
#[derive(Clone, Copy, Debug)]
pub struct FeedConfig {
    /// First month the feed covers.
    pub start_month: MonthDate,
    /// How many months to produce.
    pub months: u32,
    /// Entropy-starved (shared prime pool) hosts per month.
    pub flawed_per_month: usize,
    /// Healthy hosts per month.
    pub healthy_per_month: usize,
    /// RSA modulus size in bits.
    pub bits: u64,
    /// Shared prime pool size (smaller = more collisions).
    pub pool_size: usize,
    /// Deterministic seed.
    pub seed: u64,
}

impl FeedConfig {
    /// A small deterministic workload: three months, heavy prime sharing.
    pub fn test_small() -> FeedConfig {
        FeedConfig {
            start_month: MonthDate::new(2012, 1),
            months: 3,
            flawed_per_month: 8,
            healthy_per_month: 5,
            bits: 512,
            pool_size: 5,
            seed: 2016,
        }
    }
}

/// Deterministic generator of a multi-month [`FeedEvent`] stream.
pub struct SimulatedFeed {
    config: FeedConfig,
    flawed: ModelKeygen,
    healthy: ModelKeygen,
    next_ip: u32,
    last_flawed: Option<Natural>,
}

impl SimulatedFeed {
    /// Build the feed from a config.
    pub fn new(config: FeedConfig) -> SimulatedFeed {
        SimulatedFeed {
            config,
            flawed: ModelKeygen::new(
                KeygenBehavior::SharedPrimePool {
                    shaping: PrimeShaping::OpensslStyle,
                    pool_size: config.pool_size,
                },
                config.bits,
                config.seed,
            ),
            healthy: ModelKeygen::new(
                KeygenBehavior::Healthy {
                    shaping: PrimeShaping::OpensslStyle,
                },
                config.bits,
                config.seed ^ 0x5eed,
            ),
            next_ip: 0x0a00_0001,
            last_flawed: None,
        }
    }

    fn ip(&mut self) -> u32 {
        let ip = self.next_ip;
        self.next_ip = self.next_ip.wrapping_add(1);
        ip
    }

    /// Events for one month: host sightings followed by the month close.
    pub fn month_events(&mut self, month: MonthDate) -> Vec<FeedEvent> {
        let mut events = Vec::new();
        for i in 0..self.config.flawed_per_month {
            let n = self.flawed.generate().public.n;
            // Subject markers on alternate flawed hosts only: the rest must
            // be attributed by shared-prime extrapolation, as in §3.3.
            let vendor = (i % 2 == 0).then_some(VendorId::Juniper);
            events.push(FeedEvent::Host(HostObservation {
                ip: self.ip(),
                modulus: n.clone(),
                vendor,
            }));
            self.last_flawed = Some(n);
        }
        // One repeat sighting per month: the same device observed at a new
        // address — the store must deduplicate, not double-ingest.
        if let Some(n) = self.last_flawed.clone() {
            events.push(FeedEvent::Host(HostObservation {
                ip: self.ip(),
                modulus: n,
                vendor: None,
            }));
        }
        for _ in 0..self.config.healthy_per_month {
            events.push(FeedEvent::Host(HostObservation {
                ip: self.ip(),
                modulus: self.healthy.generate().public.n,
                vendor: None,
            }));
        }
        events.push(FeedEvent::MonthClose(month));
        events
    }

    /// The full event stream: every month's sightings and closes, then
    /// [`FeedEvent::Shutdown`].
    pub fn events(mut self) -> Vec<FeedEvent> {
        let mut events = Vec::new();
        let start = self.config.start_month;
        for offset in 0..self.config.months {
            events.extend(self.month_events(start.plus(offset)));
        }
        events.push(FeedEvent::Shutdown);
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feed_is_deterministic_and_shaped() {
        let a = SimulatedFeed::new(FeedConfig::test_small()).events();
        let b = SimulatedFeed::new(FeedConfig::test_small()).events();
        assert_eq!(a.len(), b.len());
        let closes = a
            .iter()
            .filter(|e| matches!(e, FeedEvent::MonthClose(_)))
            .count();
        assert_eq!(closes, 3);
        assert!(matches!(a.last(), Some(FeedEvent::Shutdown)));
        // Determinism: same moduli in the same order.
        for (x, y) in a.iter().zip(&b) {
            if let (FeedEvent::Host(hx), FeedEvent::Host(hy)) = (x, y) {
                assert_eq!(hx.modulus, hy.modulus);
            }
        }
    }

    #[test]
    fn bounded_channel_applies_backpressure() {
        let (tx, rx) = feed_channel(1);
        tx.send(FeedEvent::Shutdown).unwrap();
        // Channel full: a second send from another thread blocks until the
        // consumer drains one slot.
        let tx2 = tx.clone();
        let producer = std::thread::spawn(move || tx2.send(FeedEvent::Shutdown));
        while tx.backpressure_hits() == 0 {
            std::thread::yield_now();
        }
        assert!(rx.recv().is_some());
        producer.join().unwrap().unwrap();
        assert!(rx.recv().is_some());
        assert!(tx.backpressure_hits() >= 1);
    }

    #[test]
    fn send_after_hangup_is_a_typed_error() {
        let (tx, rx) = feed_channel(4);
        drop(rx);
        assert!(matches!(
            tx.send(FeedEvent::Shutdown),
            Err(ServiceError::FeedClosed)
        ));
    }
}
