//! # wk-service — the live key-audit daemon
//!
//! The paper's measurement is a continuous workload: monthly scan
//! snapshots feeding an ever-growing factorization corpus. This crate
//! recasts the one-shot pipeline as a long-running service:
//!
//! * [`feed`] — a bounded, backpressured event channel
//!   ([`feed_channel`]) plus a deterministic simulated scan feed
//!   ([`SimulatedFeed`]) pushing host sightings and month-close events;
//! * [`daemon`] — [`AuditDaemon`]: host sightings intern into a
//!   [`wk_scan::ModulusStore`]; each [`FeedEvent::MonthClose`] exports the
//!   month's delta to the persistent
//!   [`ShardStore`](wk_batchgcd::ShardStore) and resolves it against the
//!   cached corpus with
//!   [`incremental_batch_gcd`](wk_batchgcd::incremental_batch_gcd), then
//!   refreshes a hot query index and commits a durable watermark;
//! * [`provenance`] — every query answer carries a [`Provenance`] record
//!   binding it to the exact corpus state tag, cache state tag, and
//!   ingestion watermark it was computed from (the same
//!   `run_metadata.json` record committed on disk).
//!
//! The daemon crash-restarts cleanly from the on-disk shard store + tree
//! cache, including mid-persist crashes: recovery rolls the corpus forward
//! or back to a *committed* state — never a hybrid (protocol in
//! DESIGN.md §10, durability guarantees in §8.2).
//!
//! ```no_run
//! use wk_cert::MonthDate;
//! use wk_service::{AuditConfig, AuditDaemon, FeedConfig, SimulatedFeed};
//!
//! let start = MonthDate::new(2012, 1);
//! let mut daemon = AuditDaemon::open(AuditConfig::new("/tmp/wk-audit", start))?;
//! let mut feed = SimulatedFeed::new(FeedConfig::test_small());
//! for event in feed.month_events(start) {
//!     match event {
//!         wk_service::FeedEvent::Host(obs) => {
//!             daemon.ingest(&obs)?;
//!         }
//!         wk_service::FeedEvent::MonthClose(month) => {
//!             let report = daemon.close_month(month)?;
//!             println!("{}: {} factorable", report.month, report.vulnerable);
//!         }
//!         wk_service::FeedEvent::Shutdown => break,
//!     }
//! }
//! # Ok::<(), wk_service::ServiceError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod daemon;
pub mod error;
pub mod feed;
pub mod provenance;

pub use daemon::{
    AuditConfig, AuditDaemon, ClusterClose, MonthReport, QueryAnswer, Recovery, ServeSummary,
};
pub use error::ServiceError;
pub use feed::{
    feed_channel, FeedConfig, FeedEvent, FeedReceiver, FeedSender, HostObservation, SimulatedFeed,
};
pub use provenance::{Provenance, Watermark};
