//! Provenance records and durable daemon metadata.
//!
//! Every query answer carries a [`Provenance`] — a `run_metadata.json`-style
//! record binding the answer to the exact corpus and cache state it was
//! computed from: the shard store's state tag, the tree cache's state tag,
//! and the ingestion watermark (how many moduli and months the answer
//! covers). The same record is what the daemon commits to disk at each
//! month close (`run_metadata.json`), making the watermark the durable
//! commit point of the month-close protocol (DESIGN.md §10).
//!
//! All files are written atomically: payload to `<name>.tmp`, fsync,
//! rename over `<name>`, then fsync of the containing directory (the §8.2
//! durability guarantee — without the directory fsync a crash can lose a
//! "committed" rename).

use std::collections::HashMap;
use std::fs;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use wk_batchgcd::fsync_dir;
use wk_cert::MonthDate;
use wk_scan::{ModulusId, VendorId};

use crate::error::ServiceError;

/// Schema tag written into every `run_metadata.json`.
pub const METADATA_SCHEMA: &str = "wk-service/run_metadata/v1";

/// The durable ingestion watermark: what the daemon has committed.
///
/// Written to `run_metadata.json` as the *last* step of a month close —
/// every earlier step (shard append, cache persist, label persist) is
/// recoverable, so the watermark write is the transaction commit point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Watermark {
    /// Number of month-close transactions committed.
    pub months_closed: u32,
    /// The last committed month (`None` before the first close).
    pub last_month: Option<MonthDate>,
    /// Distinct moduli covered by the committed corpus — the `moduli_since`
    /// watermark for the next delta, always read back from disk on restart.
    pub corpus_moduli: u64,
    /// [`wk_batchgcd::ShardStore::state_tag`] of the committed corpus.
    pub corpus_tag: u64,
    /// [`wk_batchgcd::TreeCache::state_tag`] of the committed cache.
    pub cache_tag: u64,
    /// Shard capacity the corpus was written with.
    pub shard_capacity: u64,
}

impl Watermark {
    /// The empty watermark of a freshly initialised service directory.
    pub fn empty(shard_capacity: u64) -> Watermark {
        Watermark {
            months_closed: 0,
            last_month: None,
            corpus_moduli: 0,
            corpus_tag: 0,
            cache_tag: 0,
            shard_capacity,
        }
    }

    /// Render as the `run_metadata.json` document.
    pub fn to_json(&self) -> String {
        let (month_str, month_index) = match self.last_month {
            Some(m) => (format!("\"{m}\""), i64::from(m.index())),
            None => ("null".to_string(), -1),
        };
        format!(
            "{{\n  \"schema\": \"{METADATA_SCHEMA}\",\n  \"months_closed\": {},\n  \"last_month\": {month_str},\n  \"last_month_index\": {month_index},\n  \"corpus_moduli\": {},\n  \"corpus_state_tag\": \"{:#018x}\",\n  \"cache_state_tag\": \"{:#018x}\",\n  \"shard_capacity\": {}\n}}\n",
            self.months_closed, self.corpus_moduli, self.corpus_tag, self.cache_tag, self.shard_capacity,
        )
    }

    /// Parse a `run_metadata.json` document written by [`Watermark::to_json`].
    pub fn from_json(src: &str, path: &Path) -> Result<Watermark, ServiceError> {
        let bad = |message: &str| ServiceError::Metadata {
            path: path.to_path_buf(),
            message: message.to_string(),
        };
        if json_string(src, "schema").as_deref() != Some(METADATA_SCHEMA) {
            return Err(bad("unknown schema"));
        }
        let months_closed = json_u64(src, "months_closed").ok_or_else(|| bad("months_closed"))?;
        let month_index =
            json_i64(src, "last_month_index").ok_or_else(|| bad("last_month_index"))?;
        let last_month = if month_index < 0 {
            None
        } else {
            Some(MonthDate::from_index(
                u32::try_from(month_index).map_err(|_| bad("last_month_index range"))?,
            ))
        };
        Ok(Watermark {
            months_closed: u32::try_from(months_closed).map_err(|_| bad("months_closed range"))?,
            last_month,
            corpus_moduli: json_u64(src, "corpus_moduli").ok_or_else(|| bad("corpus_moduli"))?,
            corpus_tag: json_u64(src, "corpus_state_tag").ok_or_else(|| bad("corpus_state_tag"))?,
            cache_tag: json_u64(src, "cache_state_tag").ok_or_else(|| bad("cache_state_tag"))?,
            shard_capacity: json_u64(src, "shard_capacity").ok_or_else(|| bad("shard_capacity"))?,
        })
    }
}

/// The provenance record attached to every query answer: the watermark the
/// answer was computed under. Identical in content to the committed
/// `run_metadata.json`, so a caller can re-verify an answer against the
/// on-disk state tags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Provenance {
    /// Shard-store state tag the answer's index was built from.
    pub corpus_tag: u64,
    /// Tree-cache state tag the answer's index was built from.
    pub cache_tag: u64,
    /// Distinct moduli the analysis covers.
    pub corpus_moduli: u64,
    /// Month-close transactions the analysis covers.
    pub months_closed: u32,
    /// Last analyzed month.
    pub last_month: Option<MonthDate>,
}

impl Provenance {
    /// Render as a one-line JSON record.
    pub fn to_json(&self) -> String {
        let month = match self.last_month {
            Some(m) => format!("\"{m}\""),
            None => "null".to_string(),
        };
        format!(
            "{{\"corpus_state_tag\": \"{:#018x}\", \"cache_state_tag\": \"{:#018x}\", \"corpus_moduli\": {}, \"months_closed\": {}, \"last_month\": {month}}}",
            self.corpus_tag, self.cache_tag, self.corpus_moduli, self.months_closed,
        )
    }
}

/// Per-modulus durable metadata: when each modulus was first observed,
/// which vendor its certificate subject named (if any), and the month its
/// factorization first appeared. Persisted as `labels.tsv` alongside the
/// watermark; derived data (the factorizations themselves live in the tree
/// cache), so a stale copy after a crash only costs label freshness, never
/// corpus integrity.
#[derive(Clone, Debug, Default)]
pub struct LabelLedger {
    /// Month each modulus id was first pushed by the feed.
    pub first_seen: HashMap<ModulusId, MonthDate>,
    /// Subject-derived vendor label, where the feed carried one.
    pub subject_vendor: HashMap<ModulusId, VendorId>,
    /// Month each modulus id first showed up factored.
    pub factored_since: HashMap<ModulusId, MonthDate>,
}

impl LabelLedger {
    /// Drop every entry at or past `len` — used after a crash rollback when
    /// the label file outlived the corpus state it described.
    pub fn truncate(&mut self, len: usize) {
        let keep = |id: &ModulusId| (id.0 as usize) < len;
        self.first_seen.retain(|id, _| keep(id));
        self.subject_vendor.retain(|id, _| keep(id));
        self.factored_since.retain(|id, _| keep(id));
    }

    /// Serialize to the `labels.tsv` format.
    pub fn to_tsv(&self) -> String {
        let mut ids: Vec<ModulusId> = self.first_seen.keys().copied().collect();
        ids.sort();
        let mut out =
            String::from("# wk-service labels v1: id\tfirst_seen\tvendor\tfactored_since\n");
        for id in ids {
            let Some(first) = self.first_seen.get(&id) else {
                continue;
            };
            let vendor = self
                .subject_vendor
                .get(&id)
                .map(|v| vendor_token(*v))
                .unwrap_or("-");
            let factored = self
                .factored_since
                .get(&id)
                .map(|m| m.index().to_string())
                .unwrap_or_else(|| "-".to_string());
            out.push_str(&format!(
                "{}\t{}\t{vendor}\t{factored}\n",
                id.0,
                first.index()
            ));
        }
        out
    }

    /// Parse a `labels.tsv` document written by [`LabelLedger::to_tsv`].
    pub fn from_tsv(src: &str, path: &Path) -> Result<LabelLedger, ServiceError> {
        let bad = |line: usize, message: &str| ServiceError::Metadata {
            path: path.to_path_buf(),
            message: format!("line {line}: {message}"),
        };
        let mut ledger = LabelLedger::default();
        for (i, line) in src.lines().enumerate() {
            let n = i + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            let [f_id, f_first, f_vendor, f_factored] = fields.as_slice() else {
                return Err(bad(n, "expected 4 tab-separated fields"));
            };
            let id = ModulusId(f_id.parse().map_err(|_| bad(n, "bad modulus id"))?);
            let first: u32 = f_first
                .parse()
                .map_err(|_| bad(n, "bad first_seen index"))?;
            ledger.first_seen.insert(id, MonthDate::from_index(first));
            if *f_vendor != "-" {
                let vendor =
                    parse_vendor_token(f_vendor).ok_or_else(|| bad(n, "unknown vendor"))?;
                ledger.subject_vendor.insert(id, vendor);
            }
            if *f_factored != "-" {
                let idx: u32 = f_factored
                    .parse()
                    .map_err(|_| bad(n, "bad factored index"))?;
                ledger.factored_since.insert(id, MonthDate::from_index(idx));
            }
        }
        Ok(ledger)
    }
}

/// Stable serialization token for a vendor label.
pub fn vendor_token(v: VendorId) -> &'static str {
    match v {
        VendorId::Juniper => "Juniper",
        VendorId::Innominate => "Innominate",
        VendorId::Ibm => "Ibm",
        VendorId::Siemens => "Siemens",
        VendorId::Cisco => "Cisco",
        VendorId::Hp => "Hp",
        VendorId::Thomson => "Thomson",
        VendorId::FritzBox => "FritzBox",
        VendorId::Linksys => "Linksys",
        VendorId::Fortinet => "Fortinet",
        VendorId::Zyxel => "Zyxel",
        VendorId::Dell => "Dell",
        VendorId::Kronos => "Kronos",
        VendorId::Xerox => "Xerox",
        VendorId::McAfee => "McAfee",
        VendorId::TpLink => "TpLink",
        VendorId::Conel => "Conel",
        VendorId::Adtran => "Adtran",
        VendorId::DLink => "DLink",
        VendorId::Huawei => "Huawei",
        VendorId::Sangfor => "Sangfor",
        VendorId::SchmidTelecom => "SchmidTelecom",
        VendorId::Background => "Background",
    }
}

/// Inverse of [`vendor_token`].
pub fn parse_vendor_token(s: &str) -> Option<VendorId> {
    Some(match s {
        "Juniper" => VendorId::Juniper,
        "Innominate" => VendorId::Innominate,
        "Ibm" => VendorId::Ibm,
        "Siemens" => VendorId::Siemens,
        "Cisco" => VendorId::Cisco,
        "Hp" => VendorId::Hp,
        "Thomson" => VendorId::Thomson,
        "FritzBox" => VendorId::FritzBox,
        "Linksys" => VendorId::Linksys,
        "Fortinet" => VendorId::Fortinet,
        "Zyxel" => VendorId::Zyxel,
        "Dell" => VendorId::Dell,
        "Kronos" => VendorId::Kronos,
        "Xerox" => VendorId::Xerox,
        "McAfee" => VendorId::McAfee,
        "TpLink" => VendorId::TpLink,
        "Conel" => VendorId::Conel,
        "Adtran" => VendorId::Adtran,
        "DLink" => VendorId::DLink,
        "Huawei" => VendorId::Huawei,
        "Sangfor" => VendorId::Sangfor,
        "SchmidTelecom" => VendorId::SchmidTelecom,
        "Background" => VendorId::Background,
        _ => return None,
    })
}

/// Atomically publish `bytes` at `path`: write `<path>.tmp`, fsync, rename,
/// fsync the directory. The reader either sees the old content or the new —
/// never a torn write, even across power loss (DESIGN.md §8.2).
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        fsync_dir(parent)?;
    }
    Ok(())
}

/// The scratch name `write_atomic` stages through.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Remove stray `*.tmp` files in `dir` left by a crash mid-stage (written
/// but never renamed). Publishing is the rename, so a tmp orphan is never
/// part of committed state; removing it restores the directory to exactly
/// its last published content.
pub fn clean_tmp_orphans(dir: &Path) -> io::Result<()> {
    if !dir.exists() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let is_tmp = path.extension().map(|e| e == "tmp").unwrap_or(false);
        if is_tmp && path.is_file() {
            fs::remove_file(&path)?;
        }
    }
    Ok(())
}

// --- minimal hand-rolled JSON field readers (no serde in this workspace) ---

/// Raw value substring for `"key": <value>` — up to `,`, `}`, or newline.
fn json_raw<'a>(src: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\"");
    let at = src.find(&pat)?;
    let rest = src.get(at + pat.len()..)?;
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest.get(..end)?.trim_end())
}

/// String-typed field (`"key": "value"`).
fn json_string(src: &str, key: &str) -> Option<String> {
    let raw = json_raw(src, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    Some(inner.to_string())
}

/// Unsigned field — accepts a plain number or a quoted `0x...` tag.
fn json_u64(src: &str, key: &str) -> Option<u64> {
    let raw = json_raw(src, key)?;
    if let Some(inner) = raw.strip_prefix('"').and_then(|r| r.strip_suffix('"')) {
        if let Some(hex) = inner.strip_prefix("0x") {
            return u64::from_str_radix(hex, 16).ok();
        }
        return inner.parse().ok();
    }
    raw.parse().ok()
}

/// Signed field (for the `-1` no-month sentinel).
fn json_i64(src: &str, key: &str) -> Option<i64> {
    json_raw(src, key)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watermark_json_roundtrip() {
        let w = Watermark {
            months_closed: 3,
            last_month: Some(MonthDate::new(2012, 3)),
            corpus_moduli: 123,
            corpus_tag: 0xdead_beef_0bad_f00d,
            cache_tag: 42,
            shard_capacity: 64,
        };
        let json = w.to_json();
        let back = Watermark::from_json(&json, Path::new("x")).unwrap();
        assert_eq!(w, back);
        // The empty watermark roundtrips the None month.
        let e = Watermark::empty(16);
        let back = Watermark::from_json(&e.to_json(), Path::new("x")).unwrap();
        assert_eq!(e, back);
    }

    #[test]
    fn watermark_rejects_garbage() {
        assert!(Watermark::from_json("{}", Path::new("x")).is_err());
        assert!(Watermark::from_json("not json", Path::new("x")).is_err());
        let w = Watermark::empty(4)
            .to_json()
            .replace(METADATA_SCHEMA, "other/schema");
        assert!(Watermark::from_json(&w, Path::new("x")).is_err());
    }

    #[test]
    fn ledger_tsv_roundtrip() {
        let mut ledger = LabelLedger::default();
        ledger
            .first_seen
            .insert(ModulusId(0), MonthDate::new(2012, 1));
        ledger
            .first_seen
            .insert(ModulusId(7), MonthDate::new(2012, 2));
        ledger
            .subject_vendor
            .insert(ModulusId(7), VendorId::Juniper);
        ledger
            .factored_since
            .insert(ModulusId(0), MonthDate::new(2012, 2));
        let tsv = ledger.to_tsv();
        let back = LabelLedger::from_tsv(&tsv, Path::new("x")).unwrap();
        assert_eq!(back.first_seen, ledger.first_seen);
        assert_eq!(back.subject_vendor, ledger.subject_vendor);
        assert_eq!(back.factored_since, ledger.factored_since);
    }

    #[test]
    fn ledger_truncate_drops_new_ids() {
        let mut ledger = LabelLedger::default();
        for i in 0..10u32 {
            ledger
                .first_seen
                .insert(ModulusId(i), MonthDate::new(2012, 1));
        }
        ledger
            .factored_since
            .insert(ModulusId(9), MonthDate::new(2012, 1));
        ledger.truncate(5);
        assert_eq!(ledger.first_seen.len(), 5);
        assert!(ledger.factored_since.is_empty());
    }

    #[test]
    fn vendor_tokens_roundtrip() {
        for v in [
            VendorId::Juniper,
            VendorId::Ibm,
            VendorId::FritzBox,
            VendorId::SchmidTelecom,
            VendorId::Background,
        ] {
            assert_eq!(parse_vendor_token(vendor_token(v)), Some(v));
        }
        assert_eq!(parse_vendor_token("NotAVendor"), None);
    }

    #[test]
    fn atomic_write_publishes_and_cleans() {
        let dir = wk_batchgcd::scratch_dir("service-prov-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run_metadata.json");
        write_atomic(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        // A stray tmp (simulated crash between write and rename) is removed
        // without touching the published file.
        fs::write(tmp_path(&path), b"torn").unwrap();
        clean_tmp_orphans(&dir).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        assert!(!tmp_path(&path).exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
