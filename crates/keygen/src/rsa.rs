//! RSA key construction and (raw) operations.
//!
//! Keys are built from primes produced by [`crate::primes`]; whether those
//! primes are fresh, pooled, or from the IBM nine-prime generator is decided
//! by the caller (see [`crate::flawed`]). Raw textbook RSA (no padding) is
//! provided because the paper's threat model — passive decryption of TLS
//! RSA key exchange — is demonstrated at that layer in the examples.

use crate::primes::{generate_prime, PrimeShaping};
use rand::RngCore;
use wk_bigint::Natural;

/// The universally used public exponent.
pub const PUBLIC_EXPONENT: u64 = 65537;

/// An RSA public key: modulus and exponent.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    /// Modulus `N = p*q`.
    pub n: Natural,
    /// Public exponent `e`.
    pub e: Natural,
}

/// An RSA private key, retaining the prime factorization.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RsaPrivateKey {
    /// The public half.
    pub public: RsaPublicKey,
    /// First prime factor.
    pub p: Natural,
    /// Second prime factor.
    pub q: Natural,
    /// Private exponent `d = e^{-1} mod lcm(p-1, q-1)`.
    pub d: Natural,
}

/// Errors from key construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KeygenError {
    /// The two primes are equal; `N = p^2` is trivially factorable.
    EqualPrimes,
    /// `e` shares a factor with `p-1` or `q-1`; no private exponent exists.
    ExponentNotInvertible,
    /// An input was not prime (checked probabilistically).
    NotPrime,
}

impl std::fmt::Display for KeygenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KeygenError::EqualPrimes => write!(f, "p == q"),
            KeygenError::ExponentNotInvertible => {
                write!(f, "e not invertible modulo lcm(p-1, q-1)")
            }
            KeygenError::NotPrime => write!(f, "input factor is not prime"),
        }
    }
}

impl std::error::Error for KeygenError {}

impl RsaPublicKey {
    /// Raw (textbook) RSA: `m^e mod N`. No padding — demonstration only.
    pub fn encrypt_raw(&self, m: &Natural) -> Natural {
        m.mod_pow(&self.e, &self.n)
    }

    /// Verify a raw signature: `sig^e mod N == digest`.
    pub fn verify_raw(&self, digest: &Natural, sig: &Natural) -> bool {
        &sig.mod_pow(&self.e, &self.n) == digest
    }

    /// Bit length of the modulus.
    pub fn bits(&self) -> u64 {
        self.n.bit_len()
    }
}

impl RsaPrivateKey {
    /// Build a key from two distinct primes, validating them.
    pub fn from_primes(p: Natural, q: Natural) -> Result<RsaPrivateKey, KeygenError> {
        if p == q {
            return Err(KeygenError::EqualPrimes);
        }
        if !p.is_probable_prime_fixed() || !q.is_probable_prime_fixed() {
            return Err(KeygenError::NotPrime);
        }
        let e = Natural::from(PUBLIC_EXPONENT);
        let p1 = &p - &Natural::one();
        let q1 = &q - &Natural::one();
        // lcm(p-1, q-1) = (p-1)(q-1)/gcd(p-1, q-1)
        let lambda = &(&p1 * &q1) / &p1.gcd(&q1);
        let d = e
            .mod_inverse(&lambda)
            .ok_or(KeygenError::ExponentNotInvertible)?;
        let n = &p * &q;
        Ok(RsaPrivateKey {
            public: RsaPublicKey { n, e },
            p,
            q,
            d,
        })
    }

    /// Generate a fresh keypair: two primes of `bits/2` bits each.
    ///
    /// Retries until the primes are distinct and `e` is invertible, exactly
    /// as real implementations do.
    pub fn generate<R: RngCore + ?Sized>(
        rng: &mut R,
        bits: u64,
        shaping: PrimeShaping,
    ) -> RsaPrivateKey {
        loop {
            let p = generate_prime(rng, bits / 2, shaping);
            let q = generate_prime(rng, bits / 2, shaping);
            match RsaPrivateKey::from_primes(p, q) {
                Ok(key) => return key,
                Err(_) => continue,
            }
        }
    }

    /// Raw RSA decryption: `c^d mod N`.
    pub fn decrypt_raw(&self, c: &Natural) -> Natural {
        c.mod_pow(&self.d, &self.public.n)
    }

    /// Raw RSA decryption via the Chinese Remainder Theorem — two
    /// half-size exponentiations plus a recombination, the standard ~4x
    /// speedup real implementations use. Produces exactly the same result
    /// as [`RsaPrivateKey::decrypt_raw`].
    pub fn decrypt_crt(&self, c: &Natural) -> Natural {
        let p1 = &self.p - &Natural::one();
        let q1 = &self.q - &Natural::one();
        let dp = &self.d % &p1;
        let dq = &self.d % &q1;
        let mp = (c % &self.p).mod_pow(&dp, &self.p);
        let mq = (c % &self.q).mod_pow(&dq, &self.q);
        // Garner: m = mq + q * ((mp - mq) * q^{-1} mod p)
        let q_inv = self
            .q
            .mod_inverse(&self.p)
            // lint:allow(no-panic-in-lib) invariant: from_primes rejects p == q, so q is invertible mod p
            .expect("p, q distinct primes: q invertible mod p");
        let diff = if mp >= mq {
            &mp - &mq
        } else {
            &(&self.p - &(&(&mq - &mp) % &self.p)) % &self.p
        };
        let h = diff.mod_mul(&q_inv, &self.p);
        &mq + &(&self.q * &h)
    }

    /// Raw RSA signature: `digest^d mod N`.
    pub fn sign_raw(&self, digest: &Natural) -> Natural {
        digest.mod_pow(&self.d, &self.public.n)
    }

    /// Recover a private key from a modulus and one known factor — the
    /// attack step after batch GCD finds a shared prime.
    pub fn from_factor(n: &Natural, p: &Natural) -> Result<RsaPrivateKey, KeygenError> {
        let (q, r) = n.div_rem(p);
        if !r.is_zero() {
            return Err(KeygenError::NotPrime);
        }
        RsaPrivateKey::from_primes(p.clone(), q)
    }
}

/// Is `n` a well-formed RSA modulus for `bits`-bit keys: odd, composite,
/// and of plausible size? Used by the bit-error classifier — moduli hit by
/// bit flips are usually even or have small factors.
pub fn plausible_modulus(n: &Natural, bits: u64) -> bool {
    if n.is_even() || n.bit_len() < bits - 1 || n.bit_len() > bits {
        return false;
    }
    // A well-formed modulus has no small prime factors.
    wk_bigint::first_primes(100)
        .iter()
        .all(|&p| n.rem_limb(p) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xabcd)
    }

    #[test]
    fn generated_key_round_trips() {
        let mut r = rng();
        let key = RsaPrivateKey::generate(&mut r, 128, PrimeShaping::OpensslStyle);
        assert_eq!(key.public.n, &key.p * &key.q);
        for m in [0u64, 1, 42, 0xdead_beef] {
            let m = Natural::from(m);
            let c = key.public.encrypt_raw(&m);
            assert_eq!(key.decrypt_raw(&c), m);
        }
    }

    #[test]
    fn sign_verify_round_trips() {
        let mut r = rng();
        let key = RsaPrivateKey::generate(&mut r, 128, PrimeShaping::Plain);
        let digest = Natural::from(0x1234_5678u64);
        let sig = key.sign_raw(&digest);
        assert!(key.public.verify_raw(&digest, &sig));
        assert!(!key.public.verify_raw(&Natural::from(0x999u64), &sig));
    }

    #[test]
    fn equal_primes_rejected() {
        let mut r = rng();
        let p = generate_prime(&mut r, 64, PrimeShaping::Plain);
        assert_eq!(
            RsaPrivateKey::from_primes(p.clone(), p),
            Err(KeygenError::EqualPrimes)
        );
    }

    #[test]
    fn composite_factor_rejected() {
        assert_eq!(
            RsaPrivateKey::from_primes(Natural::from(15u64), Natural::from(7u64)),
            Err(KeygenError::NotPrime)
        );
    }

    #[test]
    fn from_factor_recovers_private_key() {
        let mut r = rng();
        let key = RsaPrivateKey::generate(&mut r, 128, PrimeShaping::Plain);
        let recovered = RsaPrivateKey::from_factor(&key.public.n, &key.p).unwrap();
        assert_eq!(recovered.public.n, key.public.n);
        // Same factorization, possibly swapped order; d must decrypt.
        let c = key.public.encrypt_raw(&Natural::from(77u64));
        assert_eq!(recovered.decrypt_raw(&c), Natural::from(77u64));
    }

    #[test]
    fn from_factor_rejects_nonfactor() {
        let mut r = rng();
        let key = RsaPrivateKey::generate(&mut r, 128, PrimeShaping::Plain);
        let not_factor = generate_prime(&mut r, 64, PrimeShaping::Plain);
        assert!(RsaPrivateKey::from_factor(&key.public.n, &not_factor).is_err());
    }

    #[test]
    fn plausible_modulus_filters() {
        let mut r = rng();
        let key = RsaPrivateKey::generate(&mut r, 128, PrimeShaping::Plain);
        assert!(plausible_modulus(&key.public.n, 128));
        // Flip the low bit: even -> implausible.
        let mut flipped = key.public.n.clone();
        flipped.set_bit(0, false);
        assert!(!plausible_modulus(&flipped, 128));
        // Too small.
        assert!(!plausible_modulus(&Natural::from(3u64), 128));
    }

    #[test]
    fn bits_reports_modulus_size() {
        let mut r = rng();
        let key = RsaPrivateKey::generate(&mut r, 128, PrimeShaping::Plain);
        assert!(key.public.bits() == 127 || key.public.bits() == 128);
    }
}
