//! Population-scale models of flawed key generation.
//!
//! `wk-rng` + [`crate::mechanism`] model *why* two devices produce related
//! keys; this module models the *aggregate effect* efficiently enough to
//! generate tens of thousands of keys for the scan simulator:
//!
//! * [`KeygenBehavior::SharedPrimePool`] — the canonical flaw: the first
//!   prime collides across devices (drawn from a small pool), the second is
//!   fresh. Batch GCD factors every key whose pool prime is used twice.
//! * [`KeygenBehavior::NinePrime`] — the IBM Remote Supervisor Adapter II /
//!   BladeCenter bug: both primes come from a fixed pool of nine, giving 36
//!   possible public keys (§3.3.1).
//! * [`KeygenBehavior::RepeatedKeys`] — devices shipping identical keys
//!   (shared across IPs but *not* factorable by GCD), e.g. hardcoded default
//!   certificates.
//! * [`KeygenBehavior::Healthy`] — fresh unique primes; never factorable.

use crate::primes::{generate_prime, PrimeShaping};
use crate::rsa::RsaPrivateKey;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::HashSet;
use wk_bigint::Natural;

/// A pool of distinct primes shared by a device population.
#[derive(Clone, Debug)]
pub struct PrimePool {
    primes: Vec<Natural>,
    shaping: PrimeShaping,
}

impl PrimePool {
    /// Generate `count` distinct primes of `bits` bits.
    pub fn generate<R: RngCore + ?Sized>(
        rng: &mut R,
        count: usize,
        bits: u64,
        shaping: PrimeShaping,
    ) -> Self {
        let mut seen: HashSet<Vec<u8>> = HashSet::with_capacity(count);
        let mut primes = Vec::with_capacity(count);
        while primes.len() < count {
            let p = generate_prime(rng, bits, shaping);
            if seen.insert(p.to_bytes_be()) {
                primes.push(p);
            }
        }
        PrimePool { primes, shaping }
    }

    /// The primes in the pool.
    pub fn primes(&self) -> &[Natural] {
        &self.primes
    }

    /// Pool size.
    pub fn len(&self) -> usize {
        self.primes.len()
    }

    /// True when empty (never for generated pools).
    pub fn is_empty(&self) -> bool {
        self.primes.is_empty()
    }

    /// Shaping of the pooled primes.
    pub fn shaping(&self) -> PrimeShaping {
        self.shaping
    }

    /// Draw one prime uniformly.
    pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> &Natural {
        &self.primes[rng.gen_range(0..self.primes.len())]
    }

    /// Draw two *distinct* primes uniformly.
    pub fn sample_pair<R: RngCore + ?Sized>(&self, rng: &mut R) -> (&Natural, &Natural) {
        assert!(self.primes.len() >= 2, "pool too small for a pair");
        let i = rng.gen_range(0..self.primes.len());
        let mut j = rng.gen_range(0..self.primes.len() - 1);
        if j >= i {
            j += 1;
        }
        (&self.primes[i], &self.primes[j])
    }
}

/// Statistical key-generation behavior of a device model.
#[derive(Clone, Debug)]
pub enum KeygenBehavior {
    /// Fresh unique primes for every key.
    Healthy { shaping: PrimeShaping },
    /// First prime from a shared pool of `pool_size` primes, second fresh:
    /// the boot-time entropy-hole signature.
    SharedPrimePool {
        shaping: PrimeShaping,
        pool_size: usize,
    },
    /// Both primes from a fixed pool of nine (the IBM bug): 36 possible
    /// moduli in total.
    NinePrime { shaping: PrimeShaping },
    /// Every device ships one of `distinct` hardcoded keys.
    RepeatedKeys {
        shaping: PrimeShaping,
        distinct: usize,
    },
}

impl KeygenBehavior {
    /// Does this behavior produce batch-GCD-factorable keys (given enough
    /// devices)?
    pub fn is_gcd_vulnerable(&self) -> bool {
        matches!(
            self,
            KeygenBehavior::SharedPrimePool { .. } | KeygenBehavior::NinePrime { .. }
        )
    }
}

/// A materialized key generator for one device model.
///
/// Deterministic given `(behavior, bits, seed)` so simulated studies are
/// exactly reproducible.
pub struct ModelKeygen {
    behavior: KeygenBehavior,
    bits: u64,
    pool: Option<PrimePool>,
    repeated: Vec<RsaPrivateKey>,
    rng: rand::rngs::StdRng,
}

impl ModelKeygen {
    /// Materialize pools for the behavior. `bits` is the modulus size;
    /// primes are `bits/2`.
    pub fn new(behavior: KeygenBehavior, bits: u64, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let pool =
            match &behavior {
                KeygenBehavior::SharedPrimePool { shaping, pool_size } => Some(
                    PrimePool::generate(&mut rng, *pool_size, bits / 2, *shaping),
                ),
                KeygenBehavior::NinePrime { shaping } => {
                    Some(PrimePool::generate(&mut rng, 9, bits / 2, *shaping))
                }
                _ => None,
            };
        let repeated = match &behavior {
            KeygenBehavior::RepeatedKeys { shaping, distinct } => (0..*distinct)
                .map(|_| RsaPrivateKey::generate(&mut rng, bits, *shaping))
                .collect(),
            _ => Vec::new(),
        };
        ModelKeygen {
            behavior,
            bits,
            pool,
            repeated,
            rng,
        }
    }

    /// The behavior this generator models.
    pub fn behavior(&self) -> &KeygenBehavior {
        &self.behavior
    }

    /// The shared prime pool, when the behavior has one.
    pub fn pool(&self) -> Option<&PrimePool> {
        self.pool.as_ref()
    }

    /// Generate one device's key.
    pub fn generate(&mut self) -> RsaPrivateKey {
        match &self.behavior {
            KeygenBehavior::Healthy { shaping } => {
                RsaPrivateKey::generate(&mut self.rng, self.bits, *shaping)
            }
            KeygenBehavior::SharedPrimePool { shaping, .. } => {
                // lint:allow(no-panic-in-lib) invariant: new() materializes the pool for every pool-backed behavior
                let pool = self.pool.as_ref().expect("pool materialized");
                loop {
                    let p = pool.sample(&mut self.rng).clone();
                    let q = generate_prime(&mut self.rng, self.bits / 2, *shaping);
                    if let Ok(key) = RsaPrivateKey::from_primes(p, q) {
                        return key;
                    }
                }
            }
            KeygenBehavior::NinePrime { .. } => {
                // lint:allow(no-panic-in-lib) invariant: new() materializes the pool for every pool-backed behavior
                let pool = self.pool.as_ref().expect("pool materialized");
                loop {
                    let (p, q) = pool.sample_pair(&mut self.rng);
                    let (p, q) = (p.clone(), q.clone());
                    if let Ok(key) = RsaPrivateKey::from_primes(p, q) {
                        return key;
                    }
                }
            }
            KeygenBehavior::RepeatedKeys { .. } => {
                let i = self.rng.gen_range(0..self.repeated.len());
                self.repeated[i].clone()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    const BITS: u64 = 128;

    #[test]
    fn prime_pool_distinct() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let pool = PrimePool::generate(&mut rng, 20, 32, PrimeShaping::Plain);
        let mut set = HashSet::new();
        for p in pool.primes() {
            assert!(set.insert(p.to_bytes_be()), "duplicate prime in pool");
            assert!(p.is_probable_prime_fixed());
        }
    }

    #[test]
    fn sample_pair_never_equal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let pool = PrimePool::generate(&mut rng, 9, 32, PrimeShaping::Plain);
        for _ in 0..100 {
            let (a, b) = pool.sample_pair(&mut rng);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn shared_pool_keys_share_first_primes() {
        let behavior = KeygenBehavior::SharedPrimePool {
            shaping: PrimeShaping::OpensslStyle,
            pool_size: 3,
        };
        let mut gen = ModelKeygen::new(behavior, BITS, 42);
        let keys: Vec<_> = (0..30).map(|_| gen.generate()).collect();
        // With 30 keys over a 3-prime pool, pigeonhole guarantees shared ps.
        let mut by_p: HashMap<Vec<u8>, usize> = HashMap::new();
        for k in &keys {
            *by_p.entry(k.p.to_bytes_be()).or_default() += 1;
        }
        assert!(by_p.len() <= 3);
        assert!(by_p.values().any(|&c| c >= 2));
        // Second primes must all be distinct (fresh).
        let qs: HashSet<_> = keys.iter().map(|k| k.q.to_bytes_be()).collect();
        assert_eq!(qs.len(), keys.len());
    }

    #[test]
    fn nine_prime_produces_at_most_36_moduli() {
        let behavior = KeygenBehavior::NinePrime {
            shaping: PrimeShaping::Plain,
        };
        let mut gen = ModelKeygen::new(behavior, BITS, 7);
        let moduli: HashSet<_> = (0..300)
            .map(|_| gen.generate().public.n.to_bytes_be())
            .collect();
        assert!(moduli.len() <= 36, "got {} distinct moduli", moduli.len());
        assert!(moduli.len() > 20, "sampling should cover most of the 36");
    }

    #[test]
    fn healthy_keys_all_coprime() {
        let behavior = KeygenBehavior::Healthy {
            shaping: PrimeShaping::OpensslStyle,
        };
        let mut gen = ModelKeygen::new(behavior, BITS, 3);
        let keys: Vec<_> = (0..10).map(|_| gen.generate()).collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert!(
                    keys[i].public.n.gcd(&keys[j].public.n).is_one(),
                    "healthy keys share a factor"
                );
            }
        }
    }

    #[test]
    fn repeated_keys_draw_from_fixed_set() {
        let behavior = KeygenBehavior::RepeatedKeys {
            shaping: PrimeShaping::Plain,
            distinct: 2,
        };
        let mut gen = ModelKeygen::new(behavior, BITS, 5);
        let moduli: HashSet<_> = (0..50)
            .map(|_| gen.generate().public.n.to_bytes_be())
            .collect();
        assert_eq!(moduli.len(), 2);
    }

    #[test]
    fn vulnerability_classification() {
        assert!(KeygenBehavior::SharedPrimePool {
            shaping: PrimeShaping::Plain,
            pool_size: 5
        }
        .is_gcd_vulnerable());
        assert!(KeygenBehavior::NinePrime {
            shaping: PrimeShaping::Plain
        }
        .is_gcd_vulnerable());
        assert!(!KeygenBehavior::Healthy {
            shaping: PrimeShaping::Plain
        }
        .is_gcd_vulnerable());
        assert!(!KeygenBehavior::RepeatedKeys {
            shaping: PrimeShaping::Plain,
            distinct: 1
        }
        .is_gcd_vulnerable());
    }

    #[test]
    fn deterministic_across_runs() {
        let mk = |seed| {
            let behavior = KeygenBehavior::SharedPrimePool {
                shaping: PrimeShaping::Plain,
                pool_size: 2,
            };
            let mut g = ModelKeygen::new(behavior, BITS, seed);
            g.generate().public.n
        };
        assert_eq!(mk(9), mk(9));
        assert_ne!(mk(9), mk(10));
    }
}
