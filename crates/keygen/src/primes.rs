//! Prime generation with implementation-specific shaping.
//!
//! Mironov observed that OpenSSL's `BN_generate_prime` rejects candidates
//! `p` where `p - 1` is divisible by any of the first 2048 (odd) primes —
//! a safety margin against p-1 factoring attacks. A random prime satisfies
//! this by chance only ≈ 7.5% of the time, so the *prime itself* fingerprints
//! the implementation that generated it ([paper §3.3.4]). This module
//! generates primes with or without that shaping, and exposes the predicate
//! the fingerprint crate tests.

use rand::RngCore;
use std::sync::OnceLock;
use wk_bigint::{first_primes, Natural};

/// How candidate primes are filtered, distinguishing implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrimeShaping {
    /// OpenSSL-style: reject `p` when `p ≡ 1 (mod q)` for any of the first
    /// 2048 odd primes `q`.
    OpensslStyle,
    /// No shaping beyond primality — the "definitely not OpenSSL" class.
    Plain,
    /// Safe primes: `(p-1)/2` is also prime. Satisfies the OpenSSL
    /// predicate trivially, which is why the paper checks that no vulnerable
    /// implementation generates *exclusively* safe primes before trusting
    /// the fingerprint.
    Safe,
}

/// The first 2048 odd primes (3, 5, ..., 17891), as checked by OpenSSL.
pub fn openssl_check_primes() -> &'static [u64] {
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| first_primes(2049)[1..].to_vec())
}

/// Does `p` satisfy the OpenSSL prime-shape predicate — `p ≢ 1 (mod q)` for
/// every `q` in the first 2048 odd primes?
///
/// Moduli from OpenSSL-generated keys satisfy this for *every* prime factor;
/// a random prime satisfies it with probability ≈ Π(1 - 1/(q-1)) ≈ 7.5%.
pub fn satisfies_openssl_shape(p: &Natural) -> bool {
    openssl_check_primes().iter().all(|&q| p.rem_limb(q) != 1)
}

/// Generate a prime of exactly `bits` bits with the given shaping, drawing
/// candidates from `rng`.
///
/// Candidates are redrawn (not incremented) on failure so that every
/// attempt consumes generator output — this matches the divergence model:
/// how long the search runs determines how much of the entropy stream is
/// consumed.
///
/// # Panics
/// Panics if `bits < 8`, if OpenSSL shaping is requested below 16 bits
/// (no 8-bit prime has `p-1` free of small odd factors — the search would
/// never terminate), or if `Safe` shaping is requested with `bits > 128`
/// (cost guard for the simulator).
pub fn generate_prime<R: RngCore + ?Sized>(
    rng: &mut R,
    bits: u64,
    shaping: PrimeShaping,
) -> Natural {
    assert!(bits >= 8, "prime size too small: {bits} bits");
    assert!(
        shaping != PrimeShaping::OpensslStyle || bits >= 16,
        "no {bits}-bit prime can satisfy the OpenSSL shape (p-1 would need \
         to be a power of two)"
    );
    if shaping == PrimeShaping::Safe {
        assert!(
            bits <= 128,
            "safe-prime generation above 128 bits is too slow for the simulator"
        );
        return generate_safe_prime(rng, bits);
    }
    loop {
        let mut candidate = Natural::random_bits_exact(rng, bits);
        candidate.set_bit(0, true); // force odd
        if shaping == PrimeShaping::OpensslStyle && !satisfies_openssl_shape(&candidate) {
            continue;
        }
        if candidate.is_probable_prime_fixed() {
            return candidate;
        }
    }
}

/// Generate a safe prime: `p` prime with `(p-1)/2` prime.
fn generate_safe_prime<R: RngCore + ?Sized>(rng: &mut R, bits: u64) -> Natural {
    loop {
        // Generate p' of bits-1 bits, test p = 2p'+1.
        let p_half = generate_prime(rng, bits - 1, PrimeShaping::Plain);
        let p = &(&p_half << 1u64) + &Natural::one();
        if p.bit_len() == bits && p.is_probable_prime_fixed() {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xfeed)
    }

    #[test]
    fn check_prime_list_shape() {
        let primes = openssl_check_primes();
        assert_eq!(primes.len(), 2048);
        assert_eq!(primes[0], 3);
        assert!(primes.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn generated_primes_are_prime_and_sized() {
        let mut r = rng();
        for bits in [16u64, 32, 64, 128] {
            for shaping in [PrimeShaping::Plain, PrimeShaping::OpensslStyle] {
                let p = generate_prime(&mut r, bits, shaping);
                assert_eq!(p.bit_len(), bits, "bits={bits} {shaping:?}");
                assert!(p.is_probable_prime_fixed());
            }
        }
    }

    #[test]
    fn openssl_shaping_satisfies_predicate() {
        let mut r = rng();
        for _ in 0..10 {
            let p = generate_prime(&mut r, 64, PrimeShaping::OpensslStyle);
            assert!(satisfies_openssl_shape(&p));
        }
    }

    #[test]
    fn plain_primes_mostly_fail_predicate() {
        // ≈7.5% acceptance: 40 plain primes should include several failures.
        let mut r = rng();
        let satisfied = (0..40)
            .filter(|_| satisfies_openssl_shape(&generate_prime(&mut r, 64, PrimeShaping::Plain)))
            .count();
        assert!(
            satisfied < 20,
            "plain primes look OpenSSL-shaped: {satisfied}/40"
        );
    }

    #[test]
    fn safe_primes_are_safe_and_satisfy_predicate() {
        let mut r = rng();
        let p = generate_prime(&mut r, 32, PrimeShaping::Safe);
        assert!(p.is_probable_prime_fixed());
        let half = &(&p - &Natural::one()) >> 1u64;
        assert!(half.is_probable_prime_fixed());
        // A safe prime p = 2p'+1: p-1 = 2p' has no small odd prime factors
        // besides possibly p' itself, so the predicate holds whenever
        // p' > 17891 — true at 31 bits.
        assert!(satisfies_openssl_shape(&p));
    }

    #[test]
    fn known_values_of_predicate() {
        // p = 7: p-1 = 6 divisible by 3 -> fails.
        assert!(!satisfies_openssl_shape(&Natural::from(7u64)));
        // p = 5: p-1 = 4 = 2^2, no odd prime factors -> passes.
        assert!(satisfies_openssl_shape(&Natural::from(5u64)));
        // p = 2^127-1: p-1 = 2*(2^126-1); 2^126-1 divisible by 3 -> fails.
        let m127 = &(&Natural::one() << 127u64) - &Natural::one();
        assert!(!satisfies_openssl_shape(&m127));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        assert_eq!(
            generate_prime(&mut a, 64, PrimeShaping::OpensslStyle),
            generate_prime(&mut b, 64, PrimeShaping::OpensslStyle)
        );
    }
}
