//! # wk-keygen — RSA key generation over modeled entropy sources
//!
//! Three layers, from mechanism to population scale:
//!
//! * [`primes`] — prime generation with implementation-specific shaping:
//!   OpenSSL's reject-`p ≡ 1 (mod q)` rule (the Mironov fingerprint), plain
//!   primes, and safe primes.
//! * [`rsa`] — keypair construction, raw RSA operations, and
//!   [`rsa::RsaPrivateKey::from_factor`], the step that turns a batch-GCD
//!   hit into a full private key.
//! * [`mechanism`] — a faithful, slow reproduction of the entropy-hole →
//!   shared-prime causal chain on top of `wk-rng`'s device models.
//! * [`flawed`] — fast statistical equivalents used by the scan simulator
//!   to generate whole device populations (shared-prime pools, the IBM
//!   nine-prime generator, repeated default keys, healthy baselines).
//!
//! ```
//! use wk_keygen::{PrimeShaping, RsaPrivateKey};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let key = RsaPrivateKey::generate(&mut rng, 128, PrimeShaping::OpensslStyle);
//! let c = key.public.encrypt_raw(&wk_bigint::Natural::from(42u64));
//! assert_eq!(key.decrypt_raw(&c), wk_bigint::Natural::from(42u64));
//! ```

#![forbid(unsafe_code)]

pub mod flawed;
pub mod mechanism;
pub mod primes;
pub mod rsa;

pub use flawed::{KeygenBehavior, ModelKeygen, PrimePool};
pub use mechanism::{device_generate_keypair, KeygenTiming};
pub use primes::{generate_prime, openssl_check_primes, satisfies_openssl_shape, PrimeShaping};
pub use rsa::{plausible_modulus, KeygenError, RsaPrivateKey, RsaPublicKey, PUBLIC_EXPONENT};
