//! End-to-end mechanism demonstration: from entropy-hole boot to
//! shared-prime keys.
//!
//! This module wires the `wk-rng` device models into real prime generation
//! to reproduce the paper's §2.4 narrative *mechanistically*, not just
//! statistically: two devices boot with identical pool states, generate an
//! identical first prime, and diverge during the second prime search when
//! one device's clock crosses a second boundary.
//!
//! The population simulator does not use this path (it is ~1000x slower than
//! [`crate::flawed::ModelKeygen`]); it exists to validate that the
//! statistical model in `flawed` has the right mechanism behind it.

use crate::rsa::RsaPrivateKey;
use rand::RngCore;
use wk_bigint::Natural;
use wk_rng::{DeviceBootProfile, OpensslRand, SimClock, UrandomModel};

/// Simulated timing of one key generation run.
#[derive(Clone, Copy, Debug)]
pub struct KeygenTiming {
    /// Boot timestamp (seconds).
    pub boot_time: u64,
    /// Seconds elapsed during the first prime search (clock advances after
    /// the first prime is found).
    pub first_prime_seconds: u64,
}

/// Generate an RSA keypair on a modeled device, OpenSSL-style.
///
/// The first prime is found with the clock frozen at `boot_time` (the
/// search completes within a second); the clock then advances by
/// `first_prime_seconds` before the second search begins — this is the
/// divergence point the paper describes.
pub fn device_generate_keypair(
    profile: &DeviceBootProfile,
    timing: KeygenTiming,
    device_serial: u64,
    bits: u64,
) -> RsaPrivateKey {
    let clock = SimClock::at(timing.boot_time);
    let mut urandom = UrandomModel::boot(profile, clock.clone(), device_serial, device_serial);
    let mut rand = OpensslRand::seed_from_urandom(&mut urandom, 1);

    let p = search_prime(&mut rand, bits / 2);
    clock.advance(timing.first_prime_seconds);
    loop {
        let q = search_prime(&mut rand, bits / 2);
        if let Ok(key) = RsaPrivateKey::from_primes(p.clone(), q) {
            return key;
        }
    }
}

/// OpenSSL-style prime search over the modeled generator.
fn search_prime<R: RngCore>(rng: &mut R, bits: u64) -> Natural {
    crate::primes::generate_prime(rng, bits, crate::primes::PrimeShaping::OpensslStyle)
}

#[cfg(test)]
mod tests {
    use super::*;

    const BITS: u64 = 128;

    fn hole() -> DeviceBootProfile {
        DeviceBootProfile::entropy_hole("netscreen-fw-6.2")
    }

    #[test]
    fn same_boot_divergent_search_shares_exactly_one_prime() {
        // Device A's first prime search takes 1s, device B's takes 2s: the
        // second prime draws see different clock values and diverge.
        let a = device_generate_keypair(
            &hole(),
            KeygenTiming {
                boot_time: 1_330_000_000,
                first_prime_seconds: 1,
            },
            1,
            BITS,
        );
        let b = device_generate_keypair(
            &hole(),
            KeygenTiming {
                boot_time: 1_330_000_000,
                first_prime_seconds: 2,
            },
            2,
            BITS,
        );
        assert_eq!(a.p, b.p, "first primes must collide");
        assert_ne!(a.q, b.q, "second primes must diverge");
        assert_ne!(a.public.n, b.public.n);
        // And the attack works: one gcd recovers the shared prime.
        let g = a.public.n.gcd(&b.public.n);
        assert_eq!(g, a.p);
    }

    #[test]
    fn same_boot_same_timing_repeats_entire_key() {
        let t = KeygenTiming {
            boot_time: 1_330_000_000,
            first_prime_seconds: 1,
        };
        let a = device_generate_keypair(&hole(), t, 1, BITS);
        let b = device_generate_keypair(&hole(), t, 2, BITS);
        assert_eq!(a.public.n, b.public.n, "identical timing repeats the key");
    }

    #[test]
    fn different_boot_seconds_unrelated_keys() {
        let a = device_generate_keypair(
            &hole(),
            KeygenTiming {
                boot_time: 1_330_000_000,
                first_prime_seconds: 1,
            },
            1,
            BITS,
        );
        let b = device_generate_keypair(
            &hole(),
            KeygenTiming {
                boot_time: 1_330_000_777,
                first_prime_seconds: 1,
            },
            2,
            BITS,
        );
        assert_ne!(a.p, b.p);
        assert!(a.public.n.gcd(&b.public.n).is_one());
    }

    #[test]
    fn healthy_profile_unrelated_even_with_same_timing() {
        let profile = DeviceBootProfile::healthy("fixed-fw-7.0");
        let t = KeygenTiming {
            boot_time: 1_400_000_000,
            first_prime_seconds: 1,
        };
        let a = device_generate_keypair(&profile, t, 1, BITS);
        let b = device_generate_keypair(&profile, t, 2, BITS);
        assert_ne!(a.p, b.p);
        assert!(a.public.n.gcd(&b.public.n).is_one());
    }
}
