//! Property-based tests for key generation.

use proptest::prelude::*;
use rand::SeedableRng;
use wk_bigint::Natural;
use wk_keygen::{
    generate_prime, satisfies_openssl_shape, KeygenBehavior, ModelKeygen, PrimeShaping,
    RsaPrivateKey,
};

fn rng_from(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated keypair satisfies the RSA correctness invariant on
    /// random messages, via both plain and CRT decryption.
    #[test]
    fn keypair_round_trip(seed in 0u64..5000, msg in 0u64..u64::MAX) {
        let mut rng = rng_from(seed);
        let key = RsaPrivateKey::generate(&mut rng, 128, PrimeShaping::Plain);
        let m = &Natural::from(msg) % &key.public.n;
        let c = key.public.encrypt_raw(&m);
        prop_assert_eq!(key.decrypt_raw(&c), m.clone());
        prop_assert_eq!(key.decrypt_crt(&c), m);
    }

    /// OpenSSL-shaped primes always satisfy the Mironov predicate and are
    /// prime; bit length is exact.
    #[test]
    fn openssl_prime_invariants(seed in 0u64..5000, bits in 4u64..7) {
        let bits = 1 << bits; // 16..64 (no OpenSSL-shaped prime exists at 8 bits)
        let mut rng = rng_from(seed);
        let p = generate_prime(&mut rng, bits, PrimeShaping::OpensslStyle);
        prop_assert_eq!(p.bit_len(), bits);
        prop_assert!(p.is_probable_prime_fixed());
        prop_assert!(satisfies_openssl_shape(&p));
    }

    /// Shared-pool populations: same-seed determinism, distinct moduli,
    /// second primes never collide.
    #[test]
    fn shared_pool_population_invariants(seed in 0u64..2000, n in 3usize..12) {
        let behavior = KeygenBehavior::SharedPrimePool {
            shaping: PrimeShaping::Plain,
            pool_size: 2,
        };
        let mut g1 = ModelKeygen::new(behavior.clone(), 128, seed);
        let mut g2 = ModelKeygen::new(behavior, 128, seed);
        let keys1: Vec<_> = (0..n).map(|_| g1.generate()).collect();
        let keys2: Vec<_> = (0..n).map(|_| g2.generate()).collect();
        for (a, b) in keys1.iter().zip(keys2.iter()) {
            prop_assert_eq!(&a.public.n, &b.public.n, "determinism");
        }
        let mut qs: Vec<_> = keys1.iter().map(|k| k.q.to_bytes_be()).collect();
        qs.sort();
        qs.dedup();
        prop_assert_eq!(qs.len(), n, "fresh second primes never collide");
        // Every key must factor via the pool prime: gcd of any two keys
        // sharing p recovers it.
        for k in &keys1 {
            prop_assert_eq!(&k.p * &k.q, k.public.n.clone());
        }
    }

    /// from_factor inverts any generated key.
    #[test]
    fn from_factor_total(seed in 0u64..3000) {
        let mut rng = rng_from(seed);
        let key = RsaPrivateKey::generate(&mut rng, 128, PrimeShaping::OpensslStyle);
        let rec = RsaPrivateKey::from_factor(&key.public.n, &key.q).unwrap();
        let m = Natural::from(seed + 2);
        prop_assert_eq!(rec.decrypt_raw(&rec.public.encrypt_raw(&m)), m);
    }

    /// Signing and verification are consistent, and verification rejects a
    /// perturbed digest.
    #[test]
    fn sign_verify_consistency(seed in 0u64..3000, digest in 1u64..u64::MAX) {
        let mut rng = rng_from(seed);
        let key = RsaPrivateKey::generate(&mut rng, 128, PrimeShaping::Plain);
        let d = &Natural::from(digest) % &key.public.n;
        let sig = key.sign_raw(&d);
        prop_assert!(key.public.verify_raw(&d, &sig));
        let other = &(&d + &Natural::one()) % &key.public.n;
        prop_assert!(!key.public.verify_raw(&other, &sig));
    }
}

#[test]
fn crt_matches_plain_on_many_messages() {
    let mut rng = rng_from(99);
    let key = RsaPrivateKey::generate(&mut rng, 256, PrimeShaping::OpensslStyle);
    for i in 0..50u64 {
        let m = &Natural::from(i * 0x9e37_79b9 + 7) % &key.public.n;
        let c = key.public.encrypt_raw(&m);
        assert_eq!(key.decrypt_crt(&c), key.decrypt_raw(&c), "i={i}");
    }
}
