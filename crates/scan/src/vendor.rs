//! The vendor/model registry: every fingerprintable device population in
//! the study, with its disclosure-response category, default-certificate
//! style, key-generation flaw, OpenSSL classification (Table 5), and
//! population curve (Figures 1, 3-10) at unit scale.
//!
//! Unit scale is ≈1:100 of paper magnitudes (documented per experiment in
//! EXPERIMENTS.md); [`crate::StudyConfig::scale`] rescales uniformly.

use crate::curve::Curve;
use wk_cert::{MonthDate, SubjectStyle};
use wk_keygen::PrimeShaping;

/// Vendors tracked by the simulator (the subset of Table 2 with enough
/// devices for time-series figures, plus the post-2012 newcomers of §4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VendorId {
    Juniper,
    Innominate,
    Ibm,
    Siemens,
    Cisco,
    Hp,
    Thomson,
    FritzBox,
    Linksys,
    Fortinet,
    Zyxel,
    Dell,
    Kronos,
    Xerox,
    McAfee,
    TpLink,
    Conel,
    Adtran,
    DLink,
    Huawei,
    Sangfor,
    SchmidTelecom,
    /// The non-fingerprinted remainder of the HTTPS host population.
    Background,
}

impl VendorId {
    /// Human-readable vendor name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            VendorId::Juniper => "Juniper",
            VendorId::Innominate => "Innominate",
            VendorId::Ibm => "IBM",
            VendorId::Siemens => "Siemens",
            VendorId::Cisco => "Cisco",
            VendorId::Hp => "HP",
            VendorId::Thomson => "Thomson",
            VendorId::FritzBox => "Fritz!Box",
            VendorId::Linksys => "Linksys",
            VendorId::Fortinet => "Fortinet",
            VendorId::Zyxel => "ZyXEL",
            VendorId::Dell => "Dell",
            VendorId::Kronos => "Kronos",
            VendorId::Xerox => "Xerox",
            VendorId::McAfee => "McAfee",
            VendorId::TpLink => "TP-LINK",
            VendorId::Conel => "Conel s.r.o.",
            VendorId::Adtran => "ADTRAN",
            VendorId::DLink => "D-Link",
            VendorId::Huawei => "Huawei",
            VendorId::Sangfor => "Sangfor",
            VendorId::SchmidTelecom => "Schmid Telecom",
            VendorId::Background => "(unfingerprinted)",
        }
    }
}

/// Vendor response to the 2012 disclosure (Table 2 categories).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResponseCategory {
    /// Released a public security advisory.
    PublicAdvisory,
    /// Responded substantively in private, no public advisory.
    PrivateResponse,
    /// Only an automated acknowledgment.
    AutoResponse,
    /// Never responded.
    NoResponse,
    /// Introduced the flaw after the 2012 disclosure (§4.4) — not among the
    /// 37 originally notified.
    NewlyVulnerableSince2012,
}

/// Where a model's key material comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeySource {
    /// Fresh unique primes (never factorable).
    Healthy,
    /// First prime from the named shared pool, second fresh — the
    /// entropy-hole signature. Vendors sharing a `group` share primes
    /// (the Xerox / Dell-Imaging overlap, §3.3.2).
    SharedPool {
        group: &'static str,
        pool_size: usize,
    },
    /// Both primes from the named nine-prime pool (IBM, §3.3.1).
    NinePrime { group: &'static str },
    /// Serve a complete modulus drawn from the named nine-prime pool
    /// (the Siemens certificate using an IBM modulus, §3.3.1).
    BorrowNinePrimeModulus { group: &'static str },
}

/// How a device of this model picks its default-certificate style.
#[derive(Clone, Debug)]
pub enum StylePick {
    /// All devices use one style.
    Fixed(SubjectStyle),
    /// Fritz!Box reality (§3.3.2): some devices carry identifying SANs or
    /// myfritz.net names, others only an IP-octet CN (labelable only by
    /// shared primes).
    FritzBoxMix,
}

/// One device model's full specification.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Vendor.
    pub vendor: VendorId,
    /// Model string (shown in Cisco OUs; `None` when indistinct).
    pub model: Option<&'static str>,
    /// Default-certificate style.
    pub style: StylePick,
    /// Key source for *vulnerable* devices of this model.
    pub vulnerable_keys: KeySource,
    /// Prime shaping — the Table 5 OpenSSL classification.
    pub shaping: PrimeShaping,
    /// Population curve at unit scale.
    pub curve: Curve,
    /// Cisco end-of-life announcement month (Figure 7), if any.
    pub eol_announced: Option<MonthDate>,
    /// Response category for Table 2 grouping.
    pub response: ResponseCategory,
}

fn fixed(style: SubjectStyle) -> StylePick {
    StylePick::Fixed(style)
}

fn org(name: &str) -> StylePick {
    fixed(SubjectStyle::OrganizationNames {
        organization: name.to_string(),
    })
}

fn cn(name: &str) -> StylePick {
    fixed(SubjectStyle::GenericVendorCn {
        vendor_cn: name.to_string(),
    })
}

/// The full registry. Curve anchors transcribe the shapes of Figures 1 and
/// 3-10; see EXPERIMENTS.md for the per-figure mapping and the scale note.
#[allow(clippy::vec_init_then_push)] // the long push-per-model form keeps each figure's block self-contained
pub fn registry() -> Vec<ModelSpec> {
    use PrimeShaping::{OpensslStyle, Plain};
    use ResponseCategory::*;
    use VendorId::*;
    let mut specs = Vec::new();

    // ---- Figure 3: Juniper (public advisory 04+07/2012; vulnerable hosts
    // RISE for two years after; biggest drop of the dataset at Heartbleed,
    // where ~30K total / >9K vulnerable went dark; NetScreen crash reports).
    // Table 5: does NOT satisfy the OpenSSL fingerprint.
    specs.push(ModelSpec {
        vendor: Juniper,
        model: None,
        style: fixed(SubjectStyle::JuniperSystemGenerated),
        vulnerable_keys: KeySource::SharedPool {
            group: "juniper",
            pool_size: 40,
        },
        shaping: Plain,
        curve: Curve::from_points(&[
            (2010, 7, 420.0, 90.0),
            (2011, 10, 520.0, 130.0),
            (2012, 6, 600.0, 180.0),
            (2013, 6, 680.0, 230.0),
            (2014, 4, 755.0, 282.0),
            (2014, 5, 450.0, 190.0), // Heartbleed cliff (between the 04 and 05 scans)
            (2015, 7, 430.0, 185.0),
            (2016, 4, 400.0, 175.0),
        ]),
        eol_announced: None,
        response: PublicAdvisory,
    });

    // ---- Figure 4: Innominate mGuard (public advisory 06/2012; vulnerable
    // population *flat* for four years; total rises — fixed in new devices).
    specs.push(ModelSpec {
        vendor: Innominate,
        model: Some("mGuard"),
        style: cn("mGuard"),
        vulnerable_keys: KeySource::SharedPool {
            group: "innominate",
            pool_size: 8,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 20.0, 14.0),
            (2012, 6, 42.0, 30.0),
            (2014, 4, 60.0, 30.0),
            (2016, 4, 80.0, 29.0),
        ]),
        eol_announced: None,
        response: PublicAdvisory,
    });

    // ---- Figure 5: IBM RSA-II / BladeCenter (CVE-2012-2187; 36 possible
    // keys from 9 primes; already declining by 2012; sharp Heartbleed drop;
    // declines because devices go offline, not because users patch).
    // Total population unknown in the paper (certs don't name IBM), so the
    // curve's total tracks the vulnerable count.
    specs.push(ModelSpec {
        vendor: Ibm,
        model: Some("RSA-II/BladeCenter"),
        style: fixed(SubjectStyle::IbmCustomerNamed {
            customer_org: "Customer Org".into(),
        }),
        vulnerable_keys: KeySource::NinePrime { group: "ibm" },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 100.0, 100.0),
            (2012, 6, 72.0, 72.0),
            (2014, 4, 52.0, 52.0),
            (2014, 5, 22.0, 22.0), // Heartbleed cliff (the series' largest step)
            (2016, 4, 15.0, 15.0),
        ]),
        eol_announced: None,
        response: PublicAdvisory,
    });

    // ---- Siemens Building Automation: ~15K certs at paper scale, of which
    // 2,441 used an IBM modulus (from 02/2013) and 18 were otherwise
    // vulnerable. Table 5: does NOT satisfy the fingerprint.
    specs.push(ModelSpec {
        vendor: Siemens,
        model: Some("Building Automation"),
        style: fixed(SubjectStyle::SiemensBuildingAutomation),
        vulnerable_keys: KeySource::SharedPool {
            group: "siemens",
            pool_size: 2,
        },
        shaping: Plain,
        curve: Curve::from_points(&[
            (2010, 7, 80.0, 0.0),
            (2013, 1, 120.0, 3.0),
            (2016, 4, 150.0, 3.0),
        ]),
        eol_announced: None,
        response: AutoResponse,
    });
    // The IBM-modulus-bearing Siemens population appears 02/2013 and stays.
    specs.push(ModelSpec {
        vendor: Siemens,
        model: Some("Building Automation (IBM modulus)"),
        style: fixed(SubjectStyle::SiemensBuildingAutomation),
        vulnerable_keys: KeySource::BorrowNinePrimeModulus { group: "ibm" },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2013, 1, 0.0, 0.0),
            (2013, 2, 10.0, 10.0),
            (2016, 4, 12.0, 12.0),
        ]),
        eol_announced: None,
        response: AutoResponse,
    });

    // ---- Figures 6-7: Cisco small business (private response only;
    // vulnerable hosts rise through 2014 then start declining; per-model
    // EOL announcements begin slow total declines, announcement preceding
    // end-of-sale by months). Table 5: satisfies OpenSSL fingerprint.
    // (model name, EOL announcement month, curve anchors).
    type CiscoModelRow = (
        &'static str,
        Option<(u16, u8)>,
        &'static [(u16, u8, f64, f64)],
    );
    let cisco_models: [CiscoModelRow; 5] = [
        // RV082: EOL announced, never vulnerable in our labels (Fig 7 note).
        (
            "RV082",
            Some((2015, 1)),
            &[
                (2010, 7, 90.0, 0.0),
                (2015, 1, 140.0, 0.0),
                (2016, 4, 110.0, 0.0),
            ],
        ),
        (
            "RV120W",
            Some((2014, 7)),
            &[
                (2010, 7, 20.0, 2.0),
                (2012, 6, 80.0, 14.0),
                (2014, 7, 120.0, 26.0),
                (2016, 4, 95.0, 18.0),
            ],
        ),
        (
            "RV220W",
            Some((2014, 3)),
            &[
                (2010, 7, 10.0, 1.0),
                (2012, 6, 70.0, 12.0),
                (2014, 3, 110.0, 24.0),
                (2016, 4, 80.0, 15.0),
            ],
        ),
        (
            "RV180/180W",
            Some((2015, 6)),
            &[
                (2011, 6, 0.0, 0.0),
                (2012, 6, 40.0, 8.0),
                (2015, 6, 100.0, 20.0),
                (2016, 4, 90.0, 17.0),
            ],
        ),
        (
            "SA520/540",
            Some((2013, 5)),
            &[
                (2010, 7, 60.0, 10.0),
                (2013, 5, 100.0, 22.0),
                (2016, 4, 60.0, 12.0),
            ],
        ),
    ];
    for (model, eol, pts) in cisco_models {
        specs.push(ModelSpec {
            vendor: Cisco,
            model: Some(model),
            style: fixed(SubjectStyle::CiscoModelInOu {
                model: model.to_string(),
            }),
            vulnerable_keys: KeySource::SharedPool {
                group: "cisco",
                pool_size: 20,
            },
            shaping: OpensslStyle,
            curve: Curve::from_points(pts),
            eol_announced: eol.map(|(y, m)| MonthDate::new(y, m)),
            response: PrivateResponse,
        });
    }

    // ---- Figure 8: HP iLO (private response; vulnerable peak 2012 then
    // steady decline; iLO crashed when Heartbleed-scanned -> drop in total
    // and vulnerable after 04/2014).
    specs.push(ModelSpec {
        vendor: Hp,
        model: Some("iLO"),
        style: org("Hewlett-Packard"),
        vulnerable_keys: KeySource::SharedPool {
            group: "hp",
            pool_size: 10,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 800.0, 40.0),
            (2012, 3, 900.0, 60.0),
            (2014, 4, 1000.0, 36.0),
            (2014, 6, 850.0, 22.0), // Heartbleed crash fallout
            (2016, 4, 800.0, 10.0),
        ]),
        eol_announced: None,
        response: PrivateResponse,
    });

    // ---- Figure 9: the ten never-responded vendors. Shapes: gradual
    // decline; Thomson/Linksys/ZyXEL/McAfee vulnerable decline TRACKS the
    // total decline; Fritz!Box rises then declines (fixed ~2014).
    specs.push(ModelSpec {
        vendor: Thomson,
        model: None,
        style: cn("SpeedTouch"),
        vulnerable_keys: KeySource::SharedPool {
            group: "thomson",
            pool_size: 25,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 500.0, 150.0),
            (2012, 6, 350.0, 100.0),
            (2014, 4, 200.0, 45.0),
            (2016, 4, 90.0, 8.0),
        ]),
        eol_announced: None,
        response: NoResponse,
    });
    specs.push(ModelSpec {
        vendor: FritzBox,
        model: None,
        style: StylePick::FritzBoxMix,
        vulnerable_keys: KeySource::SharedPool {
            group: "fritzbox",
            pool_size: 30,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 200.0, 10.0),
            (2012, 6, 700.0, 90.0),
            (2014, 1, 1200.0, 200.0), // vulnerable peak, then fixed in new devices
            (2015, 7, 1400.0, 130.0),
            (2016, 4, 1500.0, 80.0),
        ]),
        eol_announced: None,
        response: NoResponse,
    });
    specs.push(ModelSpec {
        vendor: Linksys,
        model: None,
        style: cn("Linksys WRV"),
        vulnerable_keys: KeySource::SharedPool {
            group: "linksys",
            pool_size: 8,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 1500.0, 30.0),
            (2013, 6, 900.0, 15.0),
            (2016, 4, 500.0, 3.0),
        ]),
        eol_announced: None,
        response: NoResponse,
    });
    specs.push(ModelSpec {
        vendor: Fortinet,
        model: Some("FortiGate"),
        style: cn("FortiGate"),
        vulnerable_keys: KeySource::SharedPool {
            group: "fortinet",
            pool_size: 5,
        },
        shaping: Plain, // Table 5: does not satisfy
        curve: Curve::from_points(&[
            (2010, 7, 500.0, 18.0),
            (2013, 6, 1200.0, 12.0),
            (2016, 4, 2000.0, 6.0),
        ]),
        eol_announced: None,
        response: NoResponse,
    });
    specs.push(ModelSpec {
        vendor: Zyxel,
        model: None,
        style: org("ZyXEL"),
        vulnerable_keys: KeySource::SharedPool {
            group: "zyxel",
            pool_size: 15,
        },
        shaping: Plain, // Table 5: does not satisfy
        curve: Curve::from_points(&[
            (2010, 7, 800.0, 80.0),
            (2013, 6, 600.0, 40.0),
            (2016, 4, 400.0, 8.0),
        ]),
        eol_announced: None,
        response: NoResponse,
    });
    // Dell: majority of vulnerable keys from its own (OpenSSL-shaped) pool;
    // the "Dell Imaging Group" machines share the Xerox pool (§3.3.2).
    specs.push(ModelSpec {
        vendor: Dell,
        model: None,
        style: org("Dell Inc."),
        vulnerable_keys: KeySource::SharedPool {
            group: "dell",
            pool_size: 4,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 200.0, 13.0),
            (2013, 6, 300.0, 7.0),
            (2016, 4, 400.0, 1.0),
        ]),
        eol_announced: None,
        response: NoResponse,
    });
    specs.push(ModelSpec {
        vendor: Dell,
        model: Some("Imaging"),
        style: fixed(SubjectStyle::OrganizationAndUnit {
            organization: "Dell Inc.".into(),
            unit: "Dell Imaging Group".into(),
        }),
        vulnerable_keys: KeySource::SharedPool {
            group: "xerox",
            pool_size: 6,
        },
        shaping: Plain, // Xerox primes
        curve: Curve::from_points(&[(2010, 7, 6.0, 4.0), (2016, 4, 6.0, 2.0)]),
        eol_announced: None,
        response: NoResponse,
    });
    specs.push(ModelSpec {
        vendor: Kronos,
        model: Some("4500"),
        style: cn("Kronos 4500"),
        vulnerable_keys: KeySource::SharedPool {
            group: "kronos",
            pool_size: 3,
        },
        shaping: Plain, // Table 5: does not satisfy
        curve: Curve::from_points(&[(2010, 7, 60.0, 6.0), (2016, 4, 80.0, 2.0)]),
        eol_announced: None,
        response: NoResponse,
    });
    specs.push(ModelSpec {
        vendor: Xerox,
        model: None,
        style: org("Xerox"),
        vulnerable_keys: KeySource::SharedPool {
            group: "xerox",
            pool_size: 6,
        },
        shaping: Plain, // Table 5: does not satisfy
        curve: Curve::from_points(&[
            (2010, 7, 60.0, 6.0),
            (2013, 6, 70.0, 4.0),
            (2016, 4, 80.0, 2.0),
        ]),
        eol_announced: None,
        response: NoResponse,
    });
    specs.push(ModelSpec {
        vendor: McAfee,
        model: Some("SnapGear"),
        style: fixed(SubjectStyle::McAfeeSnapGearDefaults),
        vulnerable_keys: KeySource::SharedPool {
            group: "mcafee",
            pool_size: 2,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 60.0, 4.0),
            (2013, 6, 40.0, 2.0),
            (2016, 4, 20.0, 0.0),
        ]),
        eol_announced: None,
        response: NoResponse,
    });
    specs.push(ModelSpec {
        vendor: TpLink,
        model: None,
        style: org("TP-LINK"),
        vulnerable_keys: KeySource::SharedPool {
            group: "tplink",
            pool_size: 12,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 600.0, 60.0),
            (2013, 6, 500.0, 45.0),
            (2016, 4, 400.0, 30.0),
        ]),
        eol_announced: None,
        response: NoResponse,
    });
    // Conel s.r.o. appears in §3.3.1's O=vendor list; small population.
    specs.push(ModelSpec {
        vendor: Conel,
        model: None,
        style: org("Conel s.r.o."),
        vulnerable_keys: KeySource::SharedPool {
            group: "conel",
            pool_size: 2,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[(2010, 7, 15.0, 3.0), (2016, 4, 20.0, 2.0)]),
        eol_announced: None,
        response: AutoResponse,
    });

    // ---- Figure 10: newly vulnerable since 2012 (§4.4).
    specs.push(ModelSpec {
        vendor: Adtran,
        model: Some("NetVanta"),
        style: cn("NetVanta"),
        vulnerable_keys: KeySource::SharedPool {
            group: "adtran",
            pool_size: 4,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 400.0, 0.0),
            (2014, 12, 700.0, 0.0),
            (2015, 1, 710.0, 2.0), // HTTPS RSA flaw newly introduced 2015
            (2016, 4, 800.0, 20.0),
        ]),
        eol_announced: None,
        response: NewlyVulnerableSince2012,
    });
    specs.push(ModelSpec {
        vendor: DLink,
        model: None,
        style: org("D-Link"),
        vulnerable_keys: KeySource::SharedPool {
            group: "dlink",
            pool_size: 25,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 400.0, 5.0),
            (2012, 6, 800.0, 8.0),
            (2014, 6, 1400.0, 60.0),
            (2016, 4, 2000.0, 150.0), // dramatic rise
        ]),
        eol_announced: None,
        response: NewlyVulnerableSince2012,
    });
    specs.push(ModelSpec {
        vendor: Huawei,
        model: Some("India BU"),
        style: fixed(SubjectStyle::OrganizationAndUnit {
            organization: "Huawei".into(),
            unit: "India BU".into(),
        }),
        vulnerable_keys: KeySource::SharedPool {
            group: "huawei",
            pool_size: 30,
        },
        shaping: Plain, // Table 5: does not satisfy
        curve: Curve::from_points(&[
            (2010, 7, 100.0, 0.0),
            (2015, 3, 400.0, 0.0),
            (2015, 4, 420.0, 5.0),   // first vulnerable hosts April 2015
            (2016, 4, 600.0, 300.0), // dramatic increase
        ]),
        eol_announced: None,
        response: NewlyVulnerableSince2012,
    });
    specs.push(ModelSpec {
        vendor: Sangfor,
        model: None,
        style: org("Sangfor"),
        vulnerable_keys: KeySource::SharedPool {
            group: "sangfor",
            pool_size: 4,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 50.0, 0.0),
            (2013, 6, 170.0, 0.0),
            (2014, 1, 200.0, 2.0),
            (2016, 4, 400.0, 20.0),
        ]),
        eol_announced: None,
        response: NewlyVulnerableSince2012,
    });
    specs.push(ModelSpec {
        vendor: SchmidTelecom,
        model: None,
        style: fixed(SubjectStyle::OrganizationAndUnit {
            organization: "Schmid Telecom".into(),
            unit: "India".into(),
        }),
        vulnerable_keys: KeySource::SharedPool {
            group: "schmid",
            pool_size: 2,
        },
        shaping: OpensslStyle,
        curve: Curve::from_points(&[
            (2010, 7, 8.0, 0.0),
            (2012, 10, 9.0, 0.0),
            (2013, 1, 10.0, 2.0),
            (2016, 4, 15.0, 8.0),
        ]),
        eol_announced: None,
        response: NewlyVulnerableSince2012,
    });

    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{HEARTBLEED, STUDY_END, STUDY_START};

    #[test]
    fn registry_nonempty_and_consistent() {
        let specs = registry();
        assert!(specs.len() >= 20, "got {}", specs.len());
        for s in &specs {
            assert!(s.curve.peak_total() >= s.curve.peak_vulnerable());
            // Every curve must be meaningful somewhere inside the study.
            let (t, _) = s.curve.at(STUDY_END);
            let (t0, _) = s.curve.at(STUDY_START);
            assert!(t > 0.0 || t0 > 0.0, "{:?} never populated", s.vendor);
        }
    }

    #[test]
    fn juniper_shape_claims() {
        let spec = registry()
            .into_iter()
            .find(|s| s.vendor == VendorId::Juniper)
            .unwrap();
        // Vulnerable hosts RISE from disclosure (2012-06) to just before
        // Heartbleed (Figure 3's headline).
        let (_, v_disclosure) = spec.curve.at(MonthDate::new(2012, 6));
        let (_, v_pre_hb) = spec.curve.at(MonthDate::new(2014, 3));
        assert!(v_pre_hb > v_disclosure);
        // Largest single drop at Heartbleed.
        let (t_pre, v_pre) = spec.curve.at(MonthDate::new(2014, 3));
        let (t_post, v_post) = spec.curve.at(MonthDate::new(2014, 5));
        assert!(t_pre - t_post > 100.0);
        assert!(v_pre - v_post > 50.0);
        let _ = HEARTBLEED;
    }

    #[test]
    fn innominate_vulnerable_flat_after_advisory() {
        let spec = registry()
            .into_iter()
            .find(|s| s.vendor == VendorId::Innominate)
            .unwrap();
        let (_, v2012) = spec.curve.at(MonthDate::new(2012, 6));
        let (_, v2016) = spec.curve.at(MonthDate::new(2016, 4));
        assert!((v2012 - v2016).abs() <= 2.0, "mGuard vulnerable stays flat");
        let (t2012, _) = spec.curve.at(MonthDate::new(2012, 6));
        let (t2016, _) = spec.curve.at(MonthDate::new(2016, 4));
        assert!(t2016 > t2012, "total keeps rising");
    }

    #[test]
    fn newly_vulnerable_start_at_zero() {
        for v in [VendorId::Adtran, VendorId::Huawei, VendorId::Sangfor] {
            let spec = registry().into_iter().find(|s| s.vendor == v).unwrap();
            let (_, v2012) = spec.curve.at(MonthDate::new(2012, 6));
            let (_, v2016) = spec.curve.at(MonthDate::new(2016, 4));
            assert_eq!(v2012, 0.0, "{v:?} must be clean in 2012");
            assert!(v2016 > 0.0, "{v:?} must be vulnerable by 2016");
        }
    }

    #[test]
    fn xerox_and_dell_imaging_share_pool_group() {
        let specs = registry();
        let xerox = specs.iter().find(|s| s.vendor == VendorId::Xerox).unwrap();
        let dell_imaging = specs
            .iter()
            .find(|s| s.vendor == VendorId::Dell && s.model == Some("Imaging"))
            .unwrap();
        match (&xerox.vulnerable_keys, &dell_imaging.vulnerable_keys) {
            (KeySource::SharedPool { group: g1, .. }, KeySource::SharedPool { group: g2, .. }) => {
                assert_eq!(g1, g2)
            }
            other => panic!("expected shared pools, got {other:?}"),
        }
    }

    #[test]
    fn cisco_models_have_staggered_eols() {
        let specs = registry();
        let eols: Vec<MonthDate> = specs
            .iter()
            .filter(|s| s.vendor == VendorId::Cisco)
            .filter_map(|s| s.eol_announced)
            .collect();
        assert_eq!(eols.len(), 5);
        let mut sorted = eols.clone();
        sorted.sort();
        sorted.dedup();
        assert!(sorted.len() >= 4, "EOL dates must be staggered");
    }

    #[test]
    fn table5_classification_examples() {
        let specs = registry();
        let shaping_of = |v: VendorId| {
            specs
                .iter()
                .find(|s| s.vendor == v)
                .map(|s| s.shaping)
                .unwrap()
        };
        // "Do not satisfy" column.
        for v in [
            VendorId::Juniper,
            VendorId::Fortinet,
            VendorId::Huawei,
            VendorId::Kronos,
            VendorId::Xerox,
            VendorId::Zyxel,
            VendorId::Siemens,
        ] {
            assert_eq!(shaping_of(v), PrimeShaping::Plain, "{v:?}");
        }
        // "Satisfy" column.
        for v in [
            VendorId::Cisco,
            VendorId::Hp,
            VendorId::Ibm,
            VendorId::Innominate,
            VendorId::McAfee,
            VendorId::TpLink,
        ] {
            assert_eq!(shaping_of(v), PrimeShaping::OpensslStyle, "{v:?}");
        }
    }
}
