//! The five scan sources and their methodological artifacts.
//!
//! §3.1: EFF SSL Observatory (07/2010, 12/2010), the P&Q scan (10/2011),
//! Ecosystem (06/2012-01/2014), Rapid7 Sonar (10/2013-05/2015), and Censys
//! (07/2015-04/2016). "Artifacts from the different scan methodologies used
//! by each team are clearly visible" in Figure 1 — modeled here as per-source
//! coverage factors, plus Rapid7's unchained intermediate certificates.

use wk_cert::MonthDate;

/// One of the five historical scan effort the study aggregates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScanSource {
    /// EFF SSL Observatory: Nmap + custom Python client, scans spanning
    /// two-three months each.
    Eff,
    /// Heninger et al.'s October 2011 scan ("P&Q").
    PandQ,
    /// Durumeric et al.'s HTTPS Ecosystem scans (ZMap, 18h full sweeps).
    Ecosystem,
    /// Rapid7 Project Sonar weekly scans.
    Rapid7,
    /// The Censys search engine's daily scans.
    Censys,
}

impl ScanSource {
    /// Display name matching the paper's figure legends.
    pub fn name(self) -> &'static str {
        match self {
            ScanSource::Eff => "EFF",
            ScanSource::PandQ => "P&Q",
            ScanSource::Ecosystem => "Ecosystem",
            ScanSource::Rapid7 => "Rapid7",
            ScanSource::Censys => "Censys",
        }
    }

    /// Fraction of the live population a scan from this source observes.
    /// Slow Nmap-era sweeps miss more hosts than ZMap-era ones; the jumps
    /// between levels reproduce Figure 1's visible methodology artifacts.
    pub fn coverage(self) -> f64 {
        match self {
            ScanSource::Eff => 0.75,
            ScanSource::PandQ => 0.80,
            ScanSource::Ecosystem => 0.90,
            ScanSource::Rapid7 => 0.86,
            ScanSource::Censys => 0.97,
        }
    }

    /// Rapid7 "included sets of intermediate certificates without
    /// explicitly chaining them" (§3.1); other sources exclude or pre-chain.
    pub fn includes_unchained_intermediates(self) -> bool {
        matches!(self, ScanSource::Rapid7)
    }

    /// All sources, in chronological order of first activity.
    pub fn all() -> [ScanSource; 5] {
        [
            ScanSource::Eff,
            ScanSource::PandQ,
            ScanSource::Ecosystem,
            ScanSource::Rapid7,
            ScanSource::Censys,
        ]
    }
}

/// First month of the aggregated study.
pub const STUDY_START: MonthDate = MonthDate::new(2010, 7);
/// Last month of the aggregated study.
pub const STUDY_END: MonthDate = MonthDate::new(2016, 4);
/// The Heartbleed disclosure month (§4.1) — annotated in several figures.
pub const HEARTBLEED: MonthDate = MonthDate::new(2014, 4);

/// Which source provides the representative scan for `month`, if any.
///
/// Months with several active sources pick the most complete (later-era)
/// one; months where no source was scanning return `None`, reproducing the
/// gaps visible in Figure 1.
pub fn source_for_month(month: MonthDate) -> Option<ScanSource> {
    let m = |y, mo| MonthDate::new(y, mo);
    // EFF: two scans, July and December 2010.
    if month == m(2010, 7) || month == m(2010, 12) {
        return Some(ScanSource::Eff);
    }
    // P&Q: October 2011.
    if month == m(2011, 10) {
        return Some(ScanSource::PandQ);
    }
    // Censys, daily 07/2015 - 04/2016: preferred when active.
    if month >= m(2015, 7) && month <= m(2016, 4) {
        return Some(ScanSource::Censys);
    }
    // Rapid7, weekly 10/2013 - 05/2015: preferred over Ecosystem overlap.
    if month >= m(2013, 10) && month <= m(2015, 5) {
        return Some(ScanSource::Rapid7);
    }
    // Ecosystem, 06/2012 - 01/2014.
    if month >= m(2012, 6) && month <= m(2014, 1) {
        return Some(ScanSource::Ecosystem);
    }
    None
}

/// Every (month, source) pair of the study, in order.
pub fn study_months() -> Vec<(MonthDate, ScanSource)> {
    STUDY_START
        .through(STUDY_END)
        .filter_map(|m| source_for_month(m).map(|s| (m, s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_in_unit_interval() {
        for s in ScanSource::all() {
            assert!(s.coverage() > 0.0 && s.coverage() <= 1.0);
        }
    }

    #[test]
    fn timeline_matches_paper() {
        let m = |y, mo| MonthDate::new(y, mo);
        assert_eq!(source_for_month(m(2010, 7)), Some(ScanSource::Eff));
        assert_eq!(source_for_month(m(2010, 8)), None); // gap
        assert_eq!(source_for_month(m(2010, 12)), Some(ScanSource::Eff));
        assert_eq!(source_for_month(m(2011, 10)), Some(ScanSource::PandQ));
        assert_eq!(source_for_month(m(2011, 11)), None);
        assert_eq!(source_for_month(m(2012, 6)), Some(ScanSource::Ecosystem));
        assert_eq!(source_for_month(m(2013, 9)), Some(ScanSource::Ecosystem));
        assert_eq!(source_for_month(m(2013, 10)), Some(ScanSource::Rapid7));
        assert_eq!(source_for_month(m(2015, 5)), Some(ScanSource::Rapid7));
        assert_eq!(source_for_month(m(2015, 6)), None); // gap between Rapid7 and Censys
        assert_eq!(source_for_month(m(2015, 7)), Some(ScanSource::Censys));
        assert_eq!(source_for_month(m(2016, 4)), Some(ScanSource::Censys));
    }

    #[test]
    fn study_months_ordered_and_bounded() {
        let months = study_months();
        assert!(months.len() > 40, "several years of monthly scans");
        assert!(months.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(months.first().unwrap().0, STUDY_START);
        assert_eq!(months.last().unwrap().0, STUDY_END);
    }

    #[test]
    fn heartbleed_month_is_scanned() {
        assert_eq!(source_for_month(HEARTBLEED), Some(ScanSource::Rapid7));
    }

    #[test]
    fn only_rapid7_has_unchained_intermediates() {
        for s in ScanSource::all() {
            assert_eq!(
                s.includes_unchained_intermediates(),
                s == ScanSource::Rapid7
            );
        }
    }
}
