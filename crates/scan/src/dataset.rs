//! Dataset representation: interned certificates and moduli, host records,
//! scans, and ground truth.
//!
//! The paper's MySQL store is replaced by in-memory interning (DESIGN.md
//! substitution table): at laptop scale the whole six-year dataset fits in
//! RAM, and interning gives exactly the two distinct-count quantities
//! Table 1 reports (distinct certificates, distinct moduli).

use crate::source::ScanSource;
use crate::vendor::VendorId;
use std::collections::HashMap;
use wk_bigint::Natural;
use wk_cert::{Certificate, MonthDate};

/// Interned modulus handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModulusId(pub u32);

/// Interned certificate handle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CertId(pub u32);

/// Application protocol a record was observed on (Table 4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Protocol {
    Https,
    Ssh,
    Imaps,
    Pop3s,
    Smtps,
}

impl Protocol {
    /// Protocol name as printed in Table 4.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Https => "HTTPS",
            Protocol::Ssh => "SSH",
            Protocol::Imaps => "IMAPS",
            Protocol::Pop3s => "POP3S",
            Protocol::Smtps => "SMTPS",
        }
    }

    /// All protocols in Table 4 column order.
    pub fn all() -> [Protocol; 5] {
        [
            Protocol::Https,
            Protocol::Ssh,
            Protocol::Imaps,
            Protocol::Pop3s,
            Protocol::Smtps,
        ]
    }
}

/// Deduplicating store of RSA moduli.
#[derive(Default, Clone)]
pub struct ModulusStore {
    values: Vec<Natural>,
    index: HashMap<Vec<u8>, ModulusId>,
}

impl ModulusStore {
    /// Intern a modulus, returning its stable id.
    pub fn intern(&mut self, n: &Natural) -> ModulusId {
        let key = n.to_bytes_be();
        if let Some(&id) = self.index.get(&key) {
            return id;
        }
        let id = ModulusId(self.values.len() as u32);
        self.values.push(n.clone());
        self.index.insert(key, id);
        id
    }

    /// Look up a modulus by id.
    pub fn get(&self, id: ModulusId) -> &Natural {
        &self.values[id.0 as usize]
    }

    /// Find the id of a modulus if already interned.
    pub fn lookup(&self, n: &Natural) -> Option<ModulusId> {
        self.index.get(&n.to_bytes_be()).copied()
    }

    /// Number of distinct moduli.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no modulus has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All distinct moduli in id order — the batch-GCD input.
    pub fn all(&self) -> &[Natural] {
        &self.values
    }

    /// The moduli interned at or after id `start`, in id order — the delta
    /// a new scan month contributes on top of a corpus already exported and
    /// analyzed through id `start - 1`. Ids are assigned monotonically by
    /// [`ModulusStore::intern`], so recording [`ModulusStore::len`] before
    /// ingesting a month and calling `moduli_since(snapshot)` afterwards
    /// yields exactly the new distinct moduli, ready for
    /// [`incremental_batch_gcd`](wk_batchgcd::incremental_batch_gcd).
    /// A `start` at or past the current length yields an empty slice.
    pub fn moduli_since(&self, start: usize) -> &[Natural] {
        self.values.get(start..).unwrap_or(&[])
    }

    /// Export the corpus to a persistent on-disk shard store (DESIGN.md
    /// §7) under `dir`, at most `capacity` moduli per shard, in id order —
    /// so shard-streamed batch GCD sees the same input order as
    /// [`ModulusStore::all`] and produces identical output. The store
    /// outlives this process; reopen it with
    /// [`ShardStore::open`](wk_batchgcd::ShardStore::open).
    pub fn export_shards(
        &self,
        dir: &std::path::Path,
        capacity: usize,
    ) -> Result<wk_batchgcd::ShardStore, wk_batchgcd::CorpusError> {
        wk_batchgcd::ShardStore::create(dir, capacity, &self.values)
    }
}

/// Deduplicating store of certificates (distinctness by full content).
#[derive(Default, Clone)]
pub struct CertStore {
    values: Vec<Certificate>,
    index: HashMap<Certificate, CertId>,
}

impl CertStore {
    /// Intern a certificate, returning its stable id.
    pub fn intern(&mut self, c: Certificate) -> CertId {
        if let Some(&id) = self.index.get(&c) {
            return id;
        }
        let id = CertId(self.values.len() as u32);
        self.values.push(c.clone());
        self.index.insert(c, id);
        id
    }

    /// Look up a certificate by id.
    pub fn get(&self, id: CertId) -> &Certificate {
        &self.values[id.0 as usize]
    }

    /// Number of distinct certificates.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over (id, certificate).
    pub fn iter(&self) -> impl Iterator<Item = (CertId, &Certificate)> {
        self.values
            .iter()
            .enumerate()
            .map(|(i, c)| (CertId(i as u32), c))
    }
}

/// One observed (IP, certificate chain, key) tuple in one scan — the
/// paper's "host record".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostRecord {
    /// IPv4 address as a u32.
    pub ip: u32,
    /// Certificates presented (none for SSH; >1 when a Rapid7 scan includes
    /// an unchained intermediate).
    pub certs: Vec<CertId>,
    /// The RSA modulus observed on the wire. Normally the leaf cert's key;
    /// differs under MITM key substitution or wire bit errors.
    pub modulus: ModulusId,
    /// Whether the host negotiates only RSA key exchange (no (EC)DHE):
    /// such hosts are passively decryptable once their key is factored
    /// (§2.1: 74% of vulnerable devices in the April 2016 snapshot).
    pub rsa_kex_only: bool,
}

/// One representative scan of one protocol in one month.
#[derive(Clone, Debug)]
pub struct Scan {
    /// Month of the scan.
    pub date: MonthDate,
    /// Which effort produced it.
    pub source: ScanSource,
    /// Protocol scanned.
    pub protocol: Protocol,
    /// Host records.
    pub records: Vec<HostRecord>,
}

/// Why a modulus is what it is — the simulator's ground truth, used to
/// validate the measurement pipeline (never consulted by it).
#[derive(Clone, Debug, Default)]
pub struct ModulusTruth {
    /// Vendor whose device generated the key (None for background noise or
    /// corrupted moduli).
    pub vendor: Option<VendorId>,
    /// Generated with a factorable-key flaw.
    pub weak: bool,
    /// Produced by a wire/storage bit error from some valid modulus.
    pub corrupted: bool,
    /// The Internet-Rimon substituted key.
    pub mitm: bool,
}

/// Ground truth for the whole dataset.
#[derive(Clone, Debug, Default)]
pub struct GroundTruth {
    /// Per-modulus truth records.
    pub moduli: HashMap<ModulusId, ModulusTruth>,
    /// Per-certificate vendor of the generating device.
    pub cert_vendor: HashMap<CertId, VendorId>,
}

/// The full simulated dataset: what six years of scans delivered.
pub struct StudyDataset {
    /// All scans (HTTPS monthly series plus one snapshot per other
    /// protocol), in chronological order per protocol.
    pub scans: Vec<Scan>,
    /// Distinct certificates.
    pub certs: CertStore,
    /// Distinct RSA moduli across all protocols.
    pub moduli: ModulusStore,
    /// Simulator ground truth for validation.
    pub truth: GroundTruth,
}

impl StudyDataset {
    /// HTTPS scans in chronological order.
    pub fn https_scans(&self) -> impl Iterator<Item = &Scan> {
        self.scans.iter().filter(|s| s.protocol == Protocol::Https)
    }

    /// Scans for one protocol.
    pub fn protocol_scans(&self, protocol: Protocol) -> impl Iterator<Item = &Scan> {
        self.scans.iter().filter(move |s| s.protocol == protocol)
    }

    /// Total host records across all scans (Table 1's first row).
    pub fn total_host_records(&self) -> usize {
        self.scans.iter().map(|s| s.records.len()).sum()
    }

    /// Total HTTPS host records.
    pub fn https_host_records(&self) -> usize {
        self.https_scans().map(|s| s.records.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wk_cert::DistinguishedName;

    #[test]
    fn modulus_store_dedupes() {
        let mut store = ModulusStore::default();
        let a = store.intern(&Natural::from(35u64));
        let b = store.intern(&Natural::from(35u64));
        let c = store.intern(&Natural::from(77u64));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(a), &Natural::from(35u64));
        assert_eq!(store.lookup(&Natural::from(77u64)), Some(c));
        assert_eq!(store.lookup(&Natural::from(1u64)), None);
    }

    #[test]
    fn moduli_since_returns_the_delta_after_a_snapshot() {
        let mut store = ModulusStore::default();
        store.intern(&Natural::from(33u64));
        store.intern(&Natural::from(323u64));
        let snapshot = store.len();
        store.intern(&Natural::from(33u64)); // duplicate: no new id
        store.intern(&Natural::from(39u64));
        store.intern(&Natural::from(437u64));
        assert_eq!(
            store.moduli_since(snapshot),
            &[Natural::from(39u64), Natural::from(437u64)]
        );
        assert_eq!(store.moduli_since(0), store.all());
        assert!(store.moduli_since(store.len()).is_empty());
        assert!(store.moduli_since(store.len() + 7).is_empty());
    }

    #[test]
    fn export_shards_roundtrips_in_id_order() {
        let mut store = ModulusStore::default();
        for v in [33u64, 39, 323, 437, 667] {
            store.intern(&Natural::from(v));
        }
        let dir = wk_batchgcd::scratch_dir("scan-export");
        let shards = store.export_shards(&dir, 2).unwrap();
        assert_eq!(shards.total_moduli(), 5);
        assert_eq!(shards.shard_count(), 3);
        let mut back = Vec::new();
        for i in 0..shards.shard_count() as u32 {
            back.extend(shards.read_shard(i).unwrap());
        }
        assert_eq!(back, store.all());
        shards.remove().unwrap();
    }

    #[test]
    fn cert_store_dedupes_by_content() {
        let mut store = CertStore::default();
        let c1 = Certificate::self_signed(
            1,
            DistinguishedName::cn("a"),
            vec![],
            Natural::from(35u64),
            MonthDate::new(2012, 1),
        );
        let id1 = store.intern(c1.clone());
        let id2 = store.intern(c1.clone());
        assert_eq!(id1, id2);
        let mut c2 = c1.clone();
        c2.serial = 2;
        assert_ne!(store.intern(c2), id1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn protocol_names_table4_order() {
        let names: Vec<_> = Protocol::all().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["HTTPS", "SSH", "IMAPS", "POP3S", "SMTPS"]);
    }

    #[test]
    fn dataset_accessors() {
        let dataset = StudyDataset {
            scans: vec![
                Scan {
                    date: MonthDate::new(2012, 6),
                    source: ScanSource::Ecosystem,
                    protocol: Protocol::Https,
                    records: vec![HostRecord {
                        ip: 1,
                        certs: vec![],
                        modulus: ModulusId(0),
                        rsa_kex_only: true,
                    }],
                },
                Scan {
                    date: MonthDate::new(2016, 4),
                    source: ScanSource::Censys,
                    protocol: Protocol::Ssh,
                    records: vec![
                        HostRecord {
                            ip: 2,
                            certs: vec![],
                            modulus: ModulusId(1),
                            rsa_kex_only: false,
                        },
                        HostRecord {
                            ip: 3,
                            certs: vec![],
                            modulus: ModulusId(1),
                            rsa_kex_only: false,
                        },
                    ],
                },
            ],
            certs: CertStore::default(),
            moduli: ModulusStore::default(),
            truth: GroundTruth::default(),
        };
        assert_eq!(dataset.total_host_records(), 3);
        assert_eq!(dataset.https_host_records(), 1);
        assert_eq!(dataset.protocol_scans(Protocol::Ssh).count(), 1);
    }
}
