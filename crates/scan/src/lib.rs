//! # wk-scan — the internet-wide scan simulator
//!
//! Replaces the paper's six years of aggregated scan data (EFF, P&Q,
//! Ecosystem, Rapid7 Sonar, Censys — 1.5B host records) with a generative
//! model that exercises the identical measurement pipeline (DESIGN.md
//! substitution table):
//!
//! * [`vendor`] — the vendor/model registry: response categories (Table 2),
//!   default-certificate styles (§3.3), key-generation flaws, OpenSSL
//!   classification (Table 5), and unit-scale population curves transcribing
//!   Figures 1 and 3-10;
//! * [`curve`] — piecewise-linear population targets;
//! * [`source`] — the five scan methodologies, their active months,
//!   coverage artifacts, and the Rapid7 unchained-intermediates quirk;
//! * [`simulate`] — the monthly engine: population reconciliation, IP churn
//!   and recycling, MITM key substitution, wire bit errors, multi-protocol
//!   snapshots (Table 4);
//! * [`dataset`] — interned certificates/moduli, host records, scans, and
//!   ground truth for pipeline validation.
//!
//! ```no_run
//! use wk_scan::{run_study, StudyConfig};
//! let dataset = run_study(&StudyConfig::test_small());
//! assert!(dataset.moduli.len() > 0);
//! ```

#![forbid(unsafe_code)]

pub mod config;
pub mod counterfactual;
pub mod curve;
pub mod dataset;
pub mod simulate;
pub mod snapshot;
pub mod source;
pub mod vendor;

pub use config::StudyConfig;
pub use counterfactual::UniversalFix;
pub use curve::{Anchor, Curve};
pub use dataset::{
    CertId, CertStore, GroundTruth, HostRecord, ModulusId, ModulusStore, ModulusTruth, Protocol,
    Scan, StudyDataset,
};
pub use simulate::{run_study, Simulator};
pub use source::{source_for_month, study_months, ScanSource, HEARTBLEED, STUDY_END, STUDY_START};
pub use vendor::{registry, KeySource, ModelSpec, ResponseCategory, StylePick, VendorId};
