//! Study configuration.

use crate::counterfactual::UniversalFix;

/// Parameters of a simulated six-year study run.
///
/// Defaults reproduce the paper-shaped dataset at laptop scale; the
/// `test_small` profile shrinks everything for fast unit/integration tests.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    /// Master seed: the entire study is a deterministic function of the
    /// config, so every run (and every reported number) is reproducible.
    pub seed: u64,
    /// Multiplier applied to the unit-scale vendor curves.
    pub scale: f64,
    /// RSA modulus size in bits. The phenomena under study are independent
    /// of key size; 128 keeps six years of key generation fast.
    pub modulus_bits: u64,
    /// Healthy, unfingerprinted HTTPS hosts added to the population
    /// (Figure 1's large non-device remainder).
    pub background_hosts: usize,
    /// SSH host population (Table 4); a handful of vulnerable hosts.
    pub ssh_hosts: usize,
    /// Vulnerable SSH hosts among `ssh_hosts` (Table 4: 723 of 6.3M).
    pub ssh_vulnerable: usize,
    /// IMAPS/POP3S/SMTPS host population each (Table 4; zero vulnerable).
    pub mail_hosts: usize,
    /// Probability a host record's modulus suffers a single wire/storage
    /// bit flip (§3.3.5: 107 of 313,330 vulnerable moduli, i.e. rare).
    pub bit_error_per_record: f64,
    /// Enable the Internet-Rimon ISP key-substitution MITM (§3.3.3).
    pub enable_mitm: bool,
    /// IPs behind the MITM ISP (paper: 922).
    pub mitm_ips: usize,
    /// Monthly probability a device's IP churns.
    pub ip_churn_monthly: f64,
    /// Probability a freed IP is recycled to a new device of the same
    /// vendor (drives the vulnerable/non-vulnerable IP transitions of §4.1).
    pub ip_recycle_prob: f64,
    /// Counterfactual mode (§5.1 open problem): when set, every vendor
    /// ships fixed key generation in new devices from the given month.
    pub universal_fix: Option<UniversalFix>,
}

impl StudyConfig {
    /// Default laptop-scale study (~1:100 of paper magnitudes).
    pub fn default_scale() -> Self {
        StudyConfig {
            seed: 20161114, // IMC'16 opening day
            scale: 1.0,
            modulus_bits: 128,
            background_hosts: 6000,
            ssh_hosts: 1500,
            ssh_vulnerable: 7,
            mail_hosts: 600,
            bit_error_per_record: 4e-5,
            enable_mitm: true,
            mitm_ips: 9,
            ip_churn_monthly: 0.01,
            ip_recycle_prob: 0.35,
            universal_fix: None,
        }
    }

    /// Small, fast profile for tests: ~1:10 of the default.
    pub fn test_small() -> Self {
        StudyConfig {
            scale: 0.12,
            background_hosts: 300,
            ssh_hosts: 120,
            ssh_vulnerable: 4,
            mail_hosts: 60,
            mitm_ips: 4,
            ..Self::default_scale()
        }
    }
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self::default_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_consistent() {
        for cfg in [StudyConfig::default_scale(), StudyConfig::test_small()] {
            assert!(cfg.scale > 0.0);
            assert!(cfg.modulus_bits >= 64);
            assert!(cfg.ssh_vulnerable <= cfg.ssh_hosts);
            assert!(cfg.bit_error_per_record < 0.01);
            assert!((0.0..=1.0).contains(&cfg.ip_churn_monthly));
            assert!((0.0..=1.0).contains(&cfg.ip_recycle_prob));
        }
    }

    #[test]
    fn test_profile_is_smaller() {
        let d = StudyConfig::default_scale();
        let t = StudyConfig::test_small();
        assert!(t.scale < d.scale);
        assert!(t.background_hosts < d.background_hosts);
    }
}
