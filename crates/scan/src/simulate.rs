//! The six-year study simulator.
//!
//! Drives every device population month by month along its vendor curve,
//! generates keys with the modeled flaws, allocates and churns IPs, applies
//! the Internet-Rimon MITM and wire bit errors, and emits one representative
//! scan per month per the source timeline — producing a [`StudyDataset`]
//! with the same structure the paper's aggregated scan corpus has.

use crate::config::StudyConfig;

use crate::dataset::{
    CertId, CertStore, GroundTruth, HostRecord, ModulusId, ModulusStore, ModulusTruth, Protocol,
    Scan, StudyDataset,
};
use crate::source::{study_months, STUDY_END, STUDY_START};
use crate::vendor::{registry, KeySource, ModelSpec, StylePick};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use wk_bigint::Natural;
use wk_cert::{Certificate, MonthDate, SubjectStyle};
use wk_keygen::{generate_prime, PrimePool, PrimeShaping, RsaPrivateKey};

/// A live simulated device.
#[derive(Clone, Debug)]
struct Device {
    ip: u32,
    cert: CertId,
    modulus: ModulusId,
    mitm: bool,
    rsa_kex_only: bool,
}

/// Mutable per-model population state.
struct ModelState {
    spec: ModelSpec,
    weak: Vec<Device>,
    healthy: Vec<Device>,
    freed_ips: Vec<u32>,
    next_tag: u64,
}

/// The simulator.
pub struct Simulator {
    config: StudyConfig,
    rng: StdRng,
    moduli: ModulusStore,
    certs: CertStore,
    truth: GroundTruth,
    models: Vec<ModelState>,
    background: Vec<Device>,
    background_freed: Vec<u32>,
    /// IPs released by any device population and reusable anywhere: the
    /// cross-vendor churn behind §4.1's "new certificates were due to IP
    /// churn" observation.
    global_freed: Vec<u32>,
    /// Shared "default certificate" pool: many real devices ship literally
    /// identical certificates (key included), which is why the paper sees
    /// ~2x more handshakes than distinct certificates per scan (Table 3).
    default_certs: Vec<(CertId, ModulusId)>,
    shared_pools: BTreeMap<&'static str, PrimePool>,
    nine_pools: BTreeMap<&'static str, PrimePool>,
    next_ip: u32,
    next_serial: u64,
    intermediate_cert: CertId,
    rimon_modulus: ModulusId,
    scans: Vec<Scan>,
}

impl Simulator {
    /// Set up pools, stores, and static artifacts.
    pub fn new(config: &StudyConfig) -> Simulator {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut moduli = ModulusStore::default();
        let mut certs = CertStore::default();
        let mut truth = GroundTruth::default();
        let mut specs = registry();
        // Counterfactual mode: rewrite every vendor curve so no new
        // vulnerable devices deploy after the fix month (§5.1 experiment).
        if let Some(fix) = &config.universal_fix {
            for spec in &mut specs {
                spec.curve = fix.apply(&spec.curve);
            }
        }

        // Materialize shared pools: one per group, sized to the largest
        // request among specs using the group (scaled, min 2).
        let mut pool_sizes: BTreeMap<&'static str, usize> = BTreeMap::new();
        let mut nine_groups: Vec<&'static str> = Vec::new();
        let mut pool_shaping: BTreeMap<&'static str, PrimeShaping> = BTreeMap::new();
        for spec in &specs {
            match &spec.vulnerable_keys {
                KeySource::SharedPool { group, pool_size } => {
                    let scaled = ((*pool_size as f64 * config.scale).ceil() as usize).max(2);
                    let e = pool_sizes.entry(group).or_insert(scaled);
                    *e = (*e).max(scaled);
                    pool_shaping.insert(group, spec.shaping);
                }
                KeySource::NinePrime { group } | KeySource::BorrowNinePrimeModulus { group } => {
                    if !nine_groups.contains(group) {
                        nine_groups.push(group);
                    }
                    pool_shaping.insert(group, spec.shaping);
                }
                KeySource::Healthy => {}
            }
        }
        let prime_bits = config.modulus_bits / 2;
        let shared_pools: BTreeMap<&'static str, PrimePool> = pool_sizes
            .iter()
            .map(|(&g, &size)| {
                (
                    g,
                    PrimePool::generate(&mut rng, size, prime_bits, pool_shaping[g]),
                )
            })
            .collect();
        let nine_pools: BTreeMap<&'static str, PrimePool> = nine_groups
            .iter()
            .map(|&g| {
                (
                    g,
                    PrimePool::generate(&mut rng, 9, prime_bits, pool_shaping[g]),
                )
            })
            .collect();

        // Static artifacts: the shared intermediate CA cert (Rapid7 quirk)
        // and the Internet-Rimon substituted key (1024-bit in the paper; we
        // use twice the study modulus size, never factorable).
        let ca_key =
            RsaPrivateKey::generate(&mut rng, config.modulus_bits, PrimeShaping::OpensslStyle);
        let mut ca_cert = Certificate::self_signed(
            u64::MAX,
            wk_cert::DistinguishedName::cn("Example Intermediate CA"),
            vec![],
            ca_key.public.n.clone(),
            STUDY_START,
        );
        ca_cert.is_ca = true;
        let ca_modulus = moduli.intern(&ca_key.public.n);
        truth.moduli.insert(ca_modulus, ModulusTruth::default());
        let intermediate_cert = certs.intern(ca_cert);

        let rimon_key =
            RsaPrivateKey::generate(&mut rng, config.modulus_bits * 2, PrimeShaping::Plain);
        let rimon_modulus = moduli.intern(&rimon_key.public.n);
        truth.moduli.insert(
            rimon_modulus,
            ModulusTruth {
                mitm: true,
                ..Default::default()
            },
        );

        let models = specs
            .into_iter()
            .map(|spec| ModelState {
                spec,
                weak: Vec::new(),
                healthy: Vec::new(),
                freed_ips: Vec::new(),
                next_tag: 1,
            })
            .collect();

        Simulator {
            config: config.clone(),
            rng,
            moduli,
            certs,
            truth,
            models,
            background: Vec::new(),
            background_freed: Vec::new(),
            global_freed: Vec::new(),
            default_certs: Vec::new(),
            shared_pools,
            nine_pools,
            next_ip: 0x0a00_0000,
            next_serial: 1,
            intermediate_cert,
            rimon_modulus,
            scans: Vec::new(),
        }
    }

    /// Run the full study and return the dataset.
    pub fn run(mut self) -> StudyDataset {
        let scan_schedule: BTreeMap<MonthDate, crate::source::ScanSource> =
            study_months().into_iter().collect();
        for month in STUDY_START.through(STUDY_END) {
            self.evolve_populations(month);
            if let Some(&source) = scan_schedule.get(&month) {
                let scan = self.emit_https_scan(month, source);
                self.scans.push(scan);
            }
        }
        self.emit_other_protocols();
        StudyDataset {
            scans: self.scans,
            certs: self.certs,
            moduli: self.moduli,
            truth: self.truth,
        }
    }

    /// Advance every population to its monthly target.
    fn evolve_populations(&mut self, month: MonthDate) {
        let scale = self.config.scale;
        for idx in 0..self.models.len() {
            let (target_total, target_weak) = self.models[idx].spec.curve.targets(month, scale);
            let target_healthy = target_total - target_weak;
            self.reconcile(idx, month, target_weak, true);
            self.reconcile(idx, month, target_healthy, false);
            self.churn(idx);
        }
        self.evolve_background(month);
    }

    /// Grow or shrink one model's weak/healthy sub-population.
    fn reconcile(&mut self, idx: usize, month: MonthDate, target: u32, weak: bool) {
        loop {
            let current = if weak {
                self.models[idx].weak.len()
            } else {
                self.models[idx].healthy.len()
            };
            if current == target as usize {
                return;
            }
            if current > target as usize {
                // Remove a random device; its IP returns to the pool.
                let list_len = current;
                let pick = self.rng.gen_range(0..list_len);
                let dev = if weak {
                    self.models[idx].weak.swap_remove(pick)
                } else {
                    self.models[idx].healthy.swap_remove(pick)
                };
                // Half of released IPs return to the ISP at large (and may
                // be handed to an unrelated host); half stay in the same
                // deployment's block.
                if self.rng.gen_bool(0.5) {
                    self.global_freed.push(dev.ip);
                } else {
                    self.models[idx].freed_ips.push(dev.ip);
                }
            } else {
                let dev = self.spawn_device(idx, month, weak);
                if weak {
                    self.models[idx].weak.push(dev);
                } else {
                    self.models[idx].healthy.push(dev);
                }
            }
        }
    }

    /// Create one device: key, certificate, IP.
    fn spawn_device(&mut self, idx: usize, month: MonthDate, weak: bool) -> Device {
        let tag = self.models[idx].next_tag;
        self.models[idx].next_tag += 1;
        let vendor = self.models[idx].spec.vendor;
        let shaping = self.models[idx].spec.shaping;
        let key_source = self.models[idx].spec.vulnerable_keys.clone();

        let modulus_value = if weak {
            self.weak_modulus(&key_source, shaping)
        } else {
            self.healthy_modulus(shaping)
        };
        let modulus = self.moduli.intern(&modulus_value);
        self.truth
            .moduli
            .entry(modulus)
            .or_insert_with(|| ModulusTruth {
                vendor: Some(vendor),
                weak,
                ..Default::default()
            });

        let style = self.pick_style(idx, tag);
        let serial = self.next_serial;
        self.next_serial += 1;
        let cert = style.certificate(serial, tag, modulus_value, month);
        let cert = self.certs.intern(cert);
        self.truth.cert_vendor.insert(cert, vendor);

        let ip = self.allocate_ip(idx);
        // §2.1: roughly three quarters of device management interfaces
        // negotiate only RSA key exchange.
        let rsa_kex_only = self.rng.gen_bool(0.74);
        Device {
            ip,
            cert,
            modulus,
            mitm: false,
            rsa_kex_only,
        }
    }

    /// Weak-key modulus per the model's key source.
    fn weak_modulus(&mut self, source: &KeySource, shaping: PrimeShaping) -> Natural {
        let prime_bits = self.config.modulus_bits / 2;
        match source {
            KeySource::Healthy => self.healthy_modulus(shaping),
            KeySource::SharedPool { group, .. } => {
                let pool = &self.shared_pools[group];
                loop {
                    let p = pool.sample(&mut self.rng).clone();
                    let q = generate_prime(&mut self.rng, prime_bits, shaping);
                    if p != q {
                        return &p * &q;
                    }
                }
            }
            KeySource::NinePrime { group } | KeySource::BorrowNinePrimeModulus { group } => {
                let pool = &self.nine_pools[group];
                let (p, q) = pool.sample_pair(&mut self.rng);
                p * q
            }
        }
    }

    /// Fresh-prime modulus (healthy device).
    fn healthy_modulus(&mut self, shaping: PrimeShaping) -> Natural {
        let prime_bits = self.config.modulus_bits / 2;
        loop {
            let p = generate_prime(&mut self.rng, prime_bits, shaping);
            let q = generate_prime(&mut self.rng, prime_bits, shaping);
            if p != q {
                return &p * &q;
            }
        }
    }

    /// Resolve the per-device certificate style.
    fn pick_style(&mut self, idx: usize, tag: u64) -> SubjectStyle {
        match &self.models[idx].spec.style {
            StylePick::Fixed(style) => style.clone(),
            StylePick::FritzBoxMix => {
                let roll: f64 = self.rng.gen();
                if roll < 0.55 {
                    SubjectStyle::FritzBoxLocalSans
                } else if roll < 0.8 {
                    SubjectStyle::FritzBoxMyfritz {
                        subdomain: "box".into(),
                    }
                } else {
                    // Only an IP-octet CN: labelable solely via shared primes.
                    let ip = 0xc0a8_0000u32 | (tag as u32 & 0xffff);
                    SubjectStyle::IpOctetsOnly {
                        ip: ip.to_be_bytes(),
                    }
                }
            }
        }
    }

    /// Allocate an IP: recycle from the model's freed pool with the
    /// configured probability, else fresh.
    fn allocate_ip(&mut self, idx: usize) -> u32 {
        let recycle = !self.models[idx].freed_ips.is_empty()
            && self.rng.gen_bool(self.config.ip_recycle_prob);
        if recycle {
            let pos = self.rng.gen_range(0..self.models[idx].freed_ips.len());
            self.models[idx].freed_ips.swap_remove(pos)
        } else {
            self.next_ip += 1;
            self.next_ip
        }
    }

    /// Monthly IP churn over one model's live devices.
    fn churn(&mut self, idx: usize) {
        let p = self.config.ip_churn_monthly;
        if p <= 0.0 {
            return;
        }
        for list in [true, false] {
            let len = if list {
                self.models[idx].weak.len()
            } else {
                self.models[idx].healthy.len()
            };
            for d in 0..len {
                if self.rng.gen_bool(p) {
                    let old_ip = if list {
                        self.models[idx].weak[d].ip
                    } else {
                        self.models[idx].healthy[d].ip
                    };
                    self.models[idx].freed_ips.push(old_ip);
                    let new_ip = self.allocate_ip(idx);
                    if list {
                        self.models[idx].weak[d].ip = new_ip;
                    } else {
                        self.models[idx].healthy[d].ip = new_ip;
                    }
                }
            }
        }
    }

    /// Background (unfingerprinted) HTTPS population: grows linearly from
    /// 30% to 100% of the configured size across the study; some hosts are
    /// behind the MITM ISP.
    fn evolve_background(&mut self, month: MonthDate) {
        let total_months = STUDY_END.months_since(STUDY_START) as f64;
        let progress = month.months_since(STUDY_START) as f64 / total_months;
        let target = (self.config.background_hosts as f64 * (0.3 + 0.7 * progress)) as usize;
        while self.background.len() > target {
            let pick = self.rng.gen_range(0..self.background.len());
            let dev = self.background.swap_remove(pick);
            self.background_freed.push(dev.ip);
        }
        while self.background.len() < target {
            let dev = self.spawn_background_device(month);
            self.background.push(dev);
        }
    }

    fn spawn_background_device(&mut self, month: MonthDate) -> Device {
        // Prefer globally released IPs (cross-population churn), then the
        // background pool, then fresh space.
        let ip = if !self.global_freed.is_empty() && self.rng.gen_bool(self.config.ip_recycle_prob)
        {
            let pos = self.rng.gen_range(0..self.global_freed.len());
            self.global_freed.swap_remove(pos)
        } else if !self.background_freed.is_empty()
            && self.rng.gen_bool(self.config.ip_recycle_prob)
        {
            let pos = self.rng.gen_range(0..self.background_freed.len());
            self.background_freed.swap_remove(pos)
        } else {
            self.next_ip += 1;
            self.next_ip
        };
        // MITM-fronted hosts keep individual certificates: the Rimon
        // signature is one key under many *different* subjects.
        let mitm = self.config.enable_mitm && self.background.len() < self.config.mitm_ips;
        // Roughly 60% of embedded hosts ship one of a small set of
        // literally identical default certificates (key included): the
        // reason per-scan handshakes exceed distinct certificates ~2:1 in
        // Table 3. These keys repeat across IPs but are healthy — repeated,
        // not factorable.
        let (cert, modulus) = if !mitm && self.rng.gen_bool(0.60) {
            let pool_target = (self.config.background_hosts / 60).max(1);
            if self.default_certs.len() < pool_target {
                let n = self.healthy_modulus(PrimeShaping::OpensslStyle);
                let modulus = self.moduli.intern(&n);
                self.truth.moduli.entry(modulus).or_default();
                let serial = self.next_serial;
                self.next_serial += 1;
                let style = SubjectStyle::GenericVendorCn {
                    vendor_cn: "localhost.localdomain".into(),
                };
                let cert = self
                    .certs
                    .intern(style.certificate(serial, serial, n, month));
                self.default_certs.push((cert, modulus));
            }
            let pick = self.rng.gen_range(0..self.default_certs.len());
            self.default_certs[pick]
        } else {
            let n = self.healthy_modulus(PrimeShaping::OpensslStyle);
            let modulus = self.moduli.intern(&n);
            self.truth.moduli.entry(modulus).or_default();
            let serial = self.next_serial;
            self.next_serial += 1;
            let style = SubjectStyle::IpOctetsOnly {
                ip: ip.to_be_bytes(),
            };
            let cert = self
                .certs
                .intern(style.certificate(serial, serial, n, month));
            (cert, modulus)
        };
        // MITM: the first `mitm_ips` background devices sit behind the
        // Internet-Rimon ISP for the entire study.
        // General web servers support (EC)DHE far more often than devices.
        let rsa_kex_only = self.rng.gen_bool(0.3);
        Device {
            ip,
            cert,
            modulus,
            mitm,
            rsa_kex_only,
        }
    }

    /// Emit the month's representative HTTPS scan.
    fn emit_https_scan(&mut self, month: MonthDate, source: crate::source::ScanSource) -> Scan {
        let coverage = source.coverage();
        let mut records = Vec::new();
        // Borrow-checker friendly: collect device snapshots first.
        let mut live: Vec<Device> = Vec::new();
        for m in &self.models {
            live.extend(m.weak.iter().cloned());
            live.extend(m.healthy.iter().cloned());
        }
        live.extend(self.background.iter().cloned());

        for dev in live {
            if !self.rng.gen_bool(coverage) {
                continue;
            }
            records.push(self.observe(&dev, source));
        }
        Scan {
            date: month,
            source,
            protocol: Protocol::Https,
            records,
        }
    }

    /// Produce one host record, applying MITM substitution, unchained
    /// intermediates, and wire bit errors.
    fn observe(&mut self, dev: &Device, source: crate::source::ScanSource) -> HostRecord {
        let mut certs = Vec::with_capacity(2);
        let mut modulus = dev.modulus;
        let mut cert_id = dev.cert;

        if dev.mitm {
            // The ISP substitutes its fixed key into the device's cert.
            let rimon_n = self.moduli.get(self.rimon_modulus).clone();
            let substituted = self.certs.get(dev.cert).with_substituted_key(rimon_n);
            cert_id = self.certs.intern(substituted);
            modulus = self.rimon_modulus;
        } else if self.config.bit_error_per_record > 0.0
            && self.rng.gen_bool(self.config.bit_error_per_record)
        {
            // One random bit flips on the wire.
            let original = self.moduli.get(dev.modulus).clone();
            let bit = self.rng.gen_range(0..original.bit_len().max(1));
            let mut corrupted = original.clone();
            corrupted.set_bit(bit, !corrupted.bit(bit));
            if !corrupted.is_zero() {
                // A bit-flipped modulus is a random integer, not a weak key
                // (§3.3.5 sets these aside rather than counting them as
                // flawed implementations).
                modulus = self.moduli.intern(&corrupted);
                self.truth.moduli.entry(modulus).or_insert(ModulusTruth {
                    vendor: None,
                    weak: false,
                    corrupted: true,
                    mitm: false,
                });
                let substituted = self.certs.get(dev.cert).with_substituted_key(corrupted);
                cert_id = self.certs.intern(substituted);
            }
        }

        certs.push(cert_id);
        if source.includes_unchained_intermediates() && self.rng.gen_bool(0.08) {
            certs.push(self.intermediate_cert);
        }
        HostRecord {
            ip: dev.ip,
            certs,
            modulus,
            rsa_kex_only: dev.rsa_kex_only,
        }
    }

    /// One-shot scans for the non-HTTPS protocols of Table 4.
    fn emit_other_protocols(&mut self) {
        // SSH: Censys snapshot 10/2015; a handful of vulnerable host keys.
        let ssh_pool = PrimePool::generate(
            &mut self.rng,
            2,
            self.config.modulus_bits / 2,
            PrimeShaping::OpensslStyle,
        );
        let mut ssh_records = Vec::new();
        for i in 0..self.config.ssh_hosts {
            let weak = i < self.config.ssh_vulnerable;
            let n = if weak {
                let p = ssh_pool.sample(&mut self.rng).clone();
                let q = generate_prime(
                    &mut self.rng,
                    self.config.modulus_bits / 2,
                    PrimeShaping::OpensslStyle,
                );
                &p * &q
            } else {
                self.healthy_modulus(PrimeShaping::OpensslStyle)
            };
            let modulus = self.moduli.intern(&n);
            self.truth.moduli.entry(modulus).or_insert(ModulusTruth {
                vendor: None,
                weak,
                ..Default::default()
            });
            self.next_ip += 1;
            ssh_records.push(HostRecord {
                ip: self.next_ip,
                certs: vec![],
                modulus,
                rsa_kex_only: false,
            });
        }
        self.scans.push(Scan {
            date: MonthDate::new(2015, 10),
            source: crate::source::ScanSource::Censys,
            protocol: Protocol::Ssh,
            records: ssh_records,
        });

        // Mail protocols: Censys snapshots 04/2016, zero vulnerable.
        for protocol in [Protocol::Imaps, Protocol::Pop3s, Protocol::Smtps] {
            let mut records = Vec::new();
            for _ in 0..self.config.mail_hosts {
                let n = self.healthy_modulus(PrimeShaping::OpensslStyle);
                let modulus = self.moduli.intern(&n);
                self.truth.moduli.entry(modulus).or_default();
                self.next_ip += 1;
                let serial = self.next_serial;
                self.next_serial += 1;
                let cert = SubjectStyle::GenericVendorCn {
                    vendor_cn: "mail".into(),
                }
                .certificate(serial, serial, n, MonthDate::new(2016, 4));
                let cert = self.certs.intern(cert);
                records.push(HostRecord {
                    ip: self.next_ip,
                    certs: vec![cert],
                    modulus,
                    rsa_kex_only: false,
                });
            }
            self.scans.push(Scan {
                date: MonthDate::new(2016, 4),
                source: crate::source::ScanSource::Censys,
                protocol,
                records,
            });
        }
    }
}

/// Run the full simulated study for `config`.
pub fn run_study(config: &StudyConfig) -> StudyDataset {
    Simulator::new(config).run()
}
