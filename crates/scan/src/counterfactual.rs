//! Counterfactual population dynamics — the paper's §5.1 open problem.
//!
//! "We hypothesize that [the eventual decline] is likely due to newer
//! products using updated versions of the Linux kernel... It remains an
//! open problem to design an experiment to test this hypothesis."
//!
//! The simulator can run that experiment: a [`UniversalFix`] rewrites every
//! vendor curve so that from a chosen month no *new* vulnerable devices are
//! deployed — vulnerable populations can then only decay through natural
//! device retirement — while totals are untouched. Comparing the measured
//! vulnerable series of the baseline and counterfactual runs quantifies how
//! much of each vendor's observed trajectory is explained by the
//! fixed-in-new-devices mechanism.

use crate::curve::{Anchor, Curve};
use wk_cert::MonthDate;

/// The counterfactual: all vendors ship fixed key generation in new devices
/// from `from`; already-deployed vulnerable devices retire at
/// `monthly_retirement` (fraction per month).
#[derive(Clone, Copy, Debug)]
pub struct UniversalFix {
    /// First month in which every newly deployed device is healthy.
    pub from: MonthDate,
    /// Monthly natural-retirement fraction of the vulnerable stock.
    pub monthly_retirement: f64,
}

impl UniversalFix {
    /// The kernel mitigations landed July 2012 (§2.5); allowing a shipping
    /// lag, new products are fixed from early 2013, and embedded devices
    /// retire slowly (~2%/month).
    pub fn kernel_patch_2012() -> Self {
        UniversalFix {
            from: MonthDate::new(2013, 1),
            monthly_retirement: 0.02,
        }
    }

    /// Apply to a vendor curve: vulnerable targets after `from` are capped
    /// by the decayed stock; totals are unchanged. Vendors whose original
    /// curve declines faster keep their faster decline (`min`).
    pub fn apply(&self, curve: &Curve) -> Curve {
        let (_, stock_at_fix) = curve.at(self.from);
        // Resample on a monthly grid covering the original anchor span so
        // the exponential decay is represented piecewise-linearly. An empty
        // anchor list is impossible per the Curve constructor invariant; pass
        // the curve through unchanged rather than panicking in library code.
        let (Some(first), Some(last)) = (curve.anchors().first(), curve.anchors().last()) else {
            return curve.clone();
        };
        let (first, last) = (first.month, last.month);
        let mut anchors = Vec::new();
        for month in first.through(last) {
            let (total, vulnerable) = curve.at(month);
            let capped = if month < self.from {
                vulnerable
            } else {
                let elapsed = month.months_since(self.from) as f64;
                let decayed = stock_at_fix * (1.0 - self.monthly_retirement).powf(elapsed);
                vulnerable.min(decayed)
            };
            anchors.push(Anchor {
                month,
                total,
                vulnerable: capped.min(total),
            });
        }
        Curve::new(anchors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rising_curve() -> Curve {
        Curve::from_points(&[
            (2010, 7, 100.0, 10.0),
            (2014, 7, 400.0, 120.0),
            (2016, 4, 600.0, 300.0),
        ])
    }

    #[test]
    fn totals_unchanged() {
        let fix = UniversalFix::kernel_patch_2012();
        let original = rising_curve();
        let fixed = fix.apply(&original);
        for month in [
            MonthDate::new(2011, 1),
            MonthDate::new(2014, 7),
            MonthDate::new(2016, 4),
        ] {
            assert!((fixed.at(month).0 - original.at(month).0).abs() < 1e-9);
        }
    }

    #[test]
    fn pre_fix_vulnerable_unchanged() {
        let fix = UniversalFix::kernel_patch_2012();
        let original = rising_curve();
        let fixed = fix.apply(&original);
        let month = MonthDate::new(2012, 6);
        assert!((fixed.at(month).1 - original.at(month).1).abs() < 0.51);
    }

    #[test]
    fn post_fix_vulnerable_decays_instead_of_rising() {
        let fix = UniversalFix::kernel_patch_2012();
        let original = rising_curve();
        let fixed = fix.apply(&original);
        let end = MonthDate::new(2016, 4);
        let (_, v_fixed) = fixed.at(end);
        let (_, v_orig) = original.at(end);
        assert!(v_orig > 250.0);
        // Stock at 2013-01 ≈ 77; 39 months of 2% decay ≈ 35.
        assert!(v_fixed < 50.0, "decayed stock: {v_fixed}");
        assert!(v_fixed > 10.0, "retirement is gradual: {v_fixed}");
    }

    #[test]
    fn declining_vendor_keeps_faster_decline() {
        let declining = Curve::from_points(&[(2010, 7, 200.0, 150.0), (2016, 4, 100.0, 0.0)]);
        let fix = UniversalFix::kernel_patch_2012();
        let fixed = fix.apply(&declining);
        let end = MonthDate::new(2016, 4);
        // Original hits zero; min() keeps it there.
        assert!(fixed.at(end).1 < 1.0);
    }

    #[test]
    fn vulnerable_never_exceeds_total() {
        let fix = UniversalFix {
            from: MonthDate::new(2011, 1),
            monthly_retirement: 0.0,
        };
        let fixed = fix.apply(&rising_curve());
        for a in fixed.anchors() {
            assert!(a.vulnerable <= a.total + 1e-9);
        }
    }
}
