//! Piecewise-linear population curves.
//!
//! Every vendor time series in the paper's figures is encoded as a list of
//! `(month, total, vulnerable)` anchors at *unit scale* (roughly 1:100 of
//! paper magnitudes; see EXPERIMENTS.md). The simulator interpolates
//! linearly between anchors and multiplies by the study's scale factor —
//! so every shape claim (rises, Heartbleed cliffs, EOL declines, crossovers)
//! lives in auditable data, not in simulation code.

use wk_cert::MonthDate;

/// One anchor point of a population curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Anchor {
    /// Month of the anchor.
    pub month: MonthDate,
    /// Target total fingerprinted hosts (unit scale).
    pub total: f64,
    /// Target hosts serving factorable keys (unit scale).
    pub vulnerable: f64,
}

/// A piecewise-linear `(total, vulnerable)` target curve.
#[derive(Clone, Debug)]
pub struct Curve {
    anchors: Vec<Anchor>,
}

impl Curve {
    /// Build from anchors; they must be in strictly increasing month order
    /// and have `vulnerable <= total`.
    ///
    /// # Panics
    /// Panics when the anchor list is empty, unsorted, or inconsistent.
    pub fn new(anchors: Vec<Anchor>) -> Curve {
        assert!(!anchors.is_empty(), "curve needs at least one anchor");
        for w in anchors.windows(2) {
            let [a, b] = w else { continue };
            assert!(a.month < b.month, "anchors must be increasing");
        }
        for a in &anchors {
            assert!(
                a.vulnerable <= a.total,
                "vulnerable exceeds total at {}",
                a.month
            );
            assert!(a.total >= 0.0 && a.vulnerable >= 0.0);
        }
        Curve { anchors }
    }

    /// Shorthand: build from `(year, month, total, vulnerable)` tuples.
    pub fn from_points(points: &[(u16, u8, f64, f64)]) -> Curve {
        Curve::new(
            points
                .iter()
                .map(|&(y, m, t, v)| Anchor {
                    month: MonthDate::new(y, m),
                    total: t,
                    vulnerable: v,
                })
                .collect(),
        )
    }

    /// Interpolated `(total, vulnerable)` at `month`, clamped to the first/
    /// last anchor outside the anchored range.
    ///
    /// This method never panics: [`Curve::new`] guarantees a non-empty,
    /// strictly increasing anchor list, and out-of-range months clamp to the
    /// nearest anchor (the documented behavior, not an error).
    pub fn at(&self, month: MonthDate) -> (f64, f64) {
        let (Some(first), Some(last)) = (self.anchors.first(), self.anchors.last()) else {
            // Unreachable given the constructor invariant; clamp to zero
            // rather than panicking in library code.
            return (0.0, 0.0);
        };
        if month <= first.month {
            return (first.total, first.vulnerable);
        }
        if month >= last.month {
            return (last.total, last.vulnerable);
        }
        for w in self.anchors.windows(2) {
            let [a, b] = w else { continue };
            if month < b.month {
                let span = b.month.months_since(a.month) as f64;
                let t = month.months_since(a.month) as f64 / span;
                return (
                    a.total + (b.total - a.total) * t,
                    a.vulnerable + (b.vulnerable - a.vulnerable) * t,
                );
            }
        }
        // `month < last.month` guarantees the loop returned; clamp anyway.
        (last.total, last.vulnerable)
    }

    /// Scaled integer targets at `month`.
    pub fn targets(&self, month: MonthDate, scale: f64) -> (u32, u32) {
        let (t, v) = self.at(month);
        let total = (t * scale).round() as u32;
        let vulnerable = ((v * scale).round() as u32).min(total);
        (total, vulnerable)
    }

    /// The anchors.
    pub fn anchors(&self) -> &[Anchor] {
        &self.anchors
    }

    /// Peak unit-scale total over the anchors.
    pub fn peak_total(&self) -> f64 {
        self.anchors.iter().map(|a| a.total).fold(0.0, f64::max)
    }

    /// Peak unit-scale vulnerable count over the anchors.
    pub fn peak_vulnerable(&self) -> f64 {
        self.anchors
            .iter()
            .map(|a| a.vulnerable)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> Curve {
        Curve::from_points(&[
            (2010, 7, 100.0, 10.0),
            (2012, 7, 200.0, 40.0),
            (2014, 7, 100.0, 20.0),
        ])
    }

    #[test]
    fn clamps_outside_range() {
        let c = curve();
        assert_eq!(c.at(MonthDate::new(2009, 1)), (100.0, 10.0));
        assert_eq!(c.at(MonthDate::new(2020, 1)), (100.0, 20.0));
    }

    #[test]
    fn interpolates_midpoints() {
        let c = curve();
        let (t, v) = c.at(MonthDate::new(2011, 7)); // halfway through 24 months
        assert!((t - 150.0).abs() < 1e-9);
        assert!((v - 25.0).abs() < 1e-9);
    }

    #[test]
    fn exact_at_anchors() {
        let c = curve();
        assert_eq!(c.at(MonthDate::new(2012, 7)), (200.0, 40.0));
    }

    #[test]
    fn scaled_targets_round_and_clamp() {
        let c = curve();
        let (t, v) = c.targets(MonthDate::new(2012, 7), 0.1);
        assert_eq!((t, v), (20, 4));
        let (t0, v0) = c.targets(MonthDate::new(2012, 7), 0.001);
        assert!(v0 <= t0);
    }

    #[test]
    fn peaks() {
        let c = curve();
        assert_eq!(c.peak_total(), 200.0);
        assert_eq!(c.peak_vulnerable(), 40.0);
    }

    #[test]
    #[should_panic(expected = "vulnerable exceeds total")]
    fn inconsistent_anchor_panics() {
        let _ = Curve::from_points(&[(2010, 1, 5.0, 6.0)]);
    }

    #[test]
    #[should_panic(expected = "increasing")]
    fn unsorted_anchors_panic() {
        let _ = Curve::from_points(&[(2012, 1, 5.0, 1.0), (2011, 1, 5.0, 1.0)]);
    }
}
