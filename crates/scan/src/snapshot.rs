//! Dataset snapshots: a line-oriented text format for saving and reloading
//! a [`StudyDataset`].
//!
//! The original study's scan corpus is publicly archived (scans.io,
//! Censys); this module is the reproduction's analog of that data release —
//! a simulated corpus can be written once and reloaded by benches, notebooks
//! or other tools without re-running the simulator. The format is
//! deliberately plain text (one record per line, `|`-separated,
//! percent-escaped strings) so it diffs and compresses well.

use crate::dataset::{
    CertId, CertStore, GroundTruth, HostRecord, ModulusId, ModulusStore, ModulusTruth, Protocol,
    Scan, StudyDataset,
};
use crate::source::ScanSource;
use crate::vendor::VendorId;
use std::fmt::Write as _;
use wk_bigint::Natural;
use wk_cert::{Certificate, DistinguishedName, MonthDate};

/// Errors from snapshot parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SnapshotError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, SnapshotError> {
    Err(SnapshotError {
        line,
        message: message.into(),
    })
}

/// Percent-escape `|`, `%`, and newlines.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            '|' => out.push_str("%7C"),
            '\n' => out.push_str("%0A"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str, line: usize) -> Result<String, SnapshotError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '%' {
            out.push(c);
            continue;
        }
        let hi = chars.next();
        let lo = chars.next();
        match (hi, lo) {
            (Some(h), Some(l)) => {
                let byte =
                    u8::from_str_radix(&format!("{h}{l}"), 16).map_err(|_| SnapshotError {
                        line,
                        message: format!("bad escape %{h}{l}"),
                    })?;
                out.push(byte as char);
            }
            _ => return err(line, "truncated escape"),
        }
    }
    Ok(out)
}

fn opt_str(s: &Option<String>) -> String {
    match s {
        None => "-".to_string(),
        Some(v) => {
            // A literal "-" must round-trip; escape it.
            if v == "-" {
                "%2D".to_string()
            } else {
                escape(v)
            }
        }
    }
}

fn parse_opt(s: &str, line: usize) -> Result<Option<String>, SnapshotError> {
    if s == "-" {
        Ok(None)
    } else {
        Ok(Some(unescape(s, line)?))
    }
}

fn date_str(d: MonthDate) -> String {
    format!("{}", d)
}

fn parse_date(s: &str, line: usize) -> Result<MonthDate, SnapshotError> {
    let (y, m) = s.split_once('-').ok_or_else(|| SnapshotError {
        line,
        message: format!("bad date {s:?}"),
    })?;
    let year: u16 = y.parse().map_err(|_| SnapshotError {
        line,
        message: format!("bad year {y:?}"),
    })?;
    let month: u8 = m.parse().map_err(|_| SnapshotError {
        line,
        message: format!("bad month {m:?}"),
    })?;
    if !(1..=12).contains(&month) {
        return err(line, format!("month out of range: {month}"));
    }
    Ok(MonthDate::new(year, month))
}

fn source_tag(s: ScanSource) -> &'static str {
    match s {
        ScanSource::Eff => "eff",
        ScanSource::PandQ => "pandq",
        ScanSource::Ecosystem => "ecosystem",
        ScanSource::Rapid7 => "rapid7",
        ScanSource::Censys => "censys",
    }
}

fn parse_source(s: &str, line: usize) -> Result<ScanSource, SnapshotError> {
    Ok(match s {
        "eff" => ScanSource::Eff,
        "pandq" => ScanSource::PandQ,
        "ecosystem" => ScanSource::Ecosystem,
        "rapid7" => ScanSource::Rapid7,
        "censys" => ScanSource::Censys,
        other => return err(line, format!("unknown source {other:?}")),
    })
}

fn protocol_tag(p: Protocol) -> &'static str {
    match p {
        Protocol::Https => "https",
        Protocol::Ssh => "ssh",
        Protocol::Imaps => "imaps",
        Protocol::Pop3s => "pop3s",
        Protocol::Smtps => "smtps",
    }
}

fn parse_protocol(s: &str, line: usize) -> Result<Protocol, SnapshotError> {
    Ok(match s {
        "https" => Protocol::Https,
        "ssh" => Protocol::Ssh,
        "imaps" => Protocol::Imaps,
        "pop3s" => Protocol::Pop3s,
        "smtps" => Protocol::Smtps,
        other => return err(line, format!("unknown protocol {other:?}")),
    })
}

fn vendor_tag(v: VendorId) -> &'static str {
    match v {
        VendorId::Juniper => "juniper",
        VendorId::Innominate => "innominate",
        VendorId::Ibm => "ibm",
        VendorId::Siemens => "siemens",
        VendorId::Cisco => "cisco",
        VendorId::Hp => "hp",
        VendorId::Thomson => "thomson",
        VendorId::FritzBox => "fritzbox",
        VendorId::Linksys => "linksys",
        VendorId::Fortinet => "fortinet",
        VendorId::Zyxel => "zyxel",
        VendorId::Dell => "dell",
        VendorId::Kronos => "kronos",
        VendorId::Xerox => "xerox",
        VendorId::McAfee => "mcafee",
        VendorId::TpLink => "tplink",
        VendorId::Conel => "conel",
        VendorId::Adtran => "adtran",
        VendorId::DLink => "dlink",
        VendorId::Huawei => "huawei",
        VendorId::Sangfor => "sangfor",
        VendorId::SchmidTelecom => "schmid",
        VendorId::Background => "background",
    }
}

fn parse_vendor(s: &str, line: usize) -> Result<VendorId, SnapshotError> {
    Ok(match s {
        "juniper" => VendorId::Juniper,
        "innominate" => VendorId::Innominate,
        "ibm" => VendorId::Ibm,
        "siemens" => VendorId::Siemens,
        "cisco" => VendorId::Cisco,
        "hp" => VendorId::Hp,
        "thomson" => VendorId::Thomson,
        "fritzbox" => VendorId::FritzBox,
        "linksys" => VendorId::Linksys,
        "fortinet" => VendorId::Fortinet,
        "zyxel" => VendorId::Zyxel,
        "dell" => VendorId::Dell,
        "kronos" => VendorId::Kronos,
        "xerox" => VendorId::Xerox,
        "mcafee" => VendorId::McAfee,
        "tplink" => VendorId::TpLink,
        "conel" => VendorId::Conel,
        "adtran" => VendorId::Adtran,
        "dlink" => VendorId::DLink,
        "huawei" => VendorId::Huawei,
        "sangfor" => VendorId::Sangfor,
        "schmid" => VendorId::SchmidTelecom,
        "background" => VendorId::Background,
        other => return err(line, format!("unknown vendor {other:?}")),
    })
}

/// Serialize a dataset to the snapshot text format.
pub fn save(dataset: &StudyDataset) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "WKSNAP 1");

    let _ = writeln!(out, "MODULI {}", dataset.moduli.len());
    for n in dataset.moduli.all() {
        let _ = writeln!(out, "{}", n.to_hex());
    }

    let _ = writeln!(out, "CERTS {}", dataset.certs.len());
    for (_, c) in dataset.certs.iter() {
        let _ = writeln!(
            out,
            "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
            c.serial,
            opt_str(&c.subject.common_name),
            opt_str(&c.subject.organization),
            opt_str(&c.subject.organizational_unit),
            opt_str(&c.subject.country),
            opt_str(&c.issuer.common_name),
            opt_str(&c.issuer.organization),
            opt_str(&c.issuer.organizational_unit),
            opt_str(&c.issuer.country),
            c.subject_alt_names
                .iter()
                .map(|s| escape(s))
                .collect::<Vec<_>>()
                .join(","),
            c.modulus.to_hex(),
            date_str(c.not_before),
            c.validity_months,
            u8::from(c.is_ca),
            u8::from(c.browser_trusted),
        );
    }

    let _ = writeln!(out, "SCANS {}", dataset.scans.len());
    for scan in &dataset.scans {
        let _ = writeln!(
            out,
            "SCAN {} {} {} {}",
            date_str(scan.date),
            source_tag(scan.source),
            protocol_tag(scan.protocol),
            scan.records.len()
        );
        for rec in &scan.records {
            let certs = if rec.certs.is_empty() {
                "-".to_string()
            } else {
                rec.certs
                    .iter()
                    .map(|c| c.0.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let _ = writeln!(
                out,
                "{} {} {} {}",
                rec.ip,
                certs,
                rec.modulus.0,
                u8::from(rec.rsa_kex_only)
            );
        }
    }

    let _ = writeln!(out, "TRUTH_MODULI {}", dataset.truth.moduli.len());
    let mut truth: Vec<_> = dataset.truth.moduli.iter().collect();
    truth.sort_by_key(|(id, _)| **id);
    for (id, t) in truth {
        let _ = writeln!(
            out,
            "{}|{}|{}|{}|{}",
            id.0,
            t.vendor.map(vendor_tag).unwrap_or("-"),
            u8::from(t.weak),
            u8::from(t.corrupted),
            u8::from(t.mitm),
        );
    }

    let _ = writeln!(out, "TRUTH_CERTS {}", dataset.truth.cert_vendor.len());
    let mut cv: Vec<_> = dataset.truth.cert_vendor.iter().collect();
    cv.sort_by_key(|(id, _)| **id);
    for (id, v) in cv {
        let _ = writeln!(out, "{}|{}", id.0, vendor_tag(*v));
    }
    out
}

/// Parse a snapshot produced by [`save`].
pub fn load(text: &str) -> Result<StudyDataset, SnapshotError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let mut next = |expect: &str| -> Result<(usize, String), SnapshotError> {
        match lines.next() {
            Some((n, l)) => Ok((n, l.to_string())),
            None => err(0, format!("unexpected end of snapshot, expected {expect}")),
        }
    };

    let (n, header) = next("header")?;
    if header != "WKSNAP 1" {
        return err(n, format!("bad header {header:?}"));
    }

    // Moduli.
    let (n, l) = next("MODULI")?;
    let count: usize = l
        .strip_prefix("MODULI ")
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| SnapshotError {
            line: n,
            message: "expected MODULI <n>".into(),
        })?;
    let mut moduli = ModulusStore::default();
    for _ in 0..count {
        let (n, l) = next("modulus")?;
        let value = Natural::from_hex(&l).map_err(|e| SnapshotError {
            line: n,
            message: format!("bad modulus: {e}"),
        })?;
        moduli.intern(&value);
    }
    if moduli.len() != count {
        return err(n, "duplicate moduli in snapshot");
    }

    // Certificates.
    let (n, l) = next("CERTS")?;
    let count: usize = l
        .strip_prefix("CERTS ")
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| SnapshotError {
            line: n,
            message: "expected CERTS <n>".into(),
        })?;
    let mut certs = CertStore::default();
    for _ in 0..count {
        let (n, l) = next("certificate")?;
        let fields: Vec<&str> = l.split('|').collect();
        let [f_serial, s_cn, s_o, s_ou, s_c, i_cn, i_o, i_ou, i_c, f_sans, f_modulus, f_not_before, f_validity, f_ca, f_trusted] =
            fields.as_slice()
        else {
            return err(n, format!("expected 15 cert fields, got {}", fields.len()));
        };
        let serial: u64 = f_serial.parse().map_err(|_| SnapshotError {
            line: n,
            message: "bad serial".into(),
        })?;
        let subject = DistinguishedName {
            common_name: parse_opt(s_cn, n)?,
            organization: parse_opt(s_o, n)?,
            organizational_unit: parse_opt(s_ou, n)?,
            country: parse_opt(s_c, n)?,
        };
        let issuer = DistinguishedName {
            common_name: parse_opt(i_cn, n)?,
            organization: parse_opt(i_o, n)?,
            organizational_unit: parse_opt(i_ou, n)?,
            country: parse_opt(i_c, n)?,
        };
        let sans: Vec<String> = if f_sans.is_empty() {
            Vec::new()
        } else {
            f_sans
                .split(',')
                .map(|s| unescape(s, n))
                .collect::<Result<_, _>>()?
        };
        let modulus = Natural::from_hex(f_modulus).map_err(|e| SnapshotError {
            line: n,
            message: format!("bad cert modulus: {e}"),
        })?;
        let not_before = parse_date(f_not_before, n)?;
        let validity_months: u32 = f_validity.parse().map_err(|_| SnapshotError {
            line: n,
            message: "bad validity".into(),
        })?;
        let is_ca = *f_ca == "1";
        let browser_trusted = *f_trusted == "1";
        let mut cert = Certificate::self_signed(serial, subject, sans, modulus, not_before);
        cert.issuer = issuer;
        cert.validity_months = validity_months;
        cert.is_ca = is_ca;
        cert.browser_trusted = browser_trusted;
        certs.intern(cert);
    }
    if certs.len() != count {
        return err(n, "duplicate certificates in snapshot");
    }

    // Scans.
    let (n, l) = next("SCANS")?;
    let scan_count: usize = l
        .strip_prefix("SCANS ")
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| SnapshotError {
            line: n,
            message: "expected SCANS <n>".into(),
        })?;
    let mut scans = Vec::with_capacity(scan_count);
    for _ in 0..scan_count {
        let (n, l) = next("SCAN header")?;
        let parts: Vec<&str> = l.split(' ').collect();
        let ["SCAN", p_date, p_source, p_protocol, p_nrec] = parts.as_slice() else {
            return err(n, format!("expected SCAN header, got {l:?}"));
        };
        let date = parse_date(p_date, n)?;
        let source = parse_source(p_source, n)?;
        let protocol = parse_protocol(p_protocol, n)?;
        let nrec: usize = p_nrec.parse().map_err(|_| SnapshotError {
            line: n,
            message: "bad record count".into(),
        })?;
        let mut records = Vec::with_capacity(nrec);
        for _ in 0..nrec {
            let (n, l) = next("record")?;
            let parts: Vec<&str> = l.split(' ').collect();
            let [p_ip, p_certs, p_modulus, p_kex] = parts.as_slice() else {
                return err(n, format!("expected record, got {l:?}"));
            };
            let ip: u32 = p_ip.parse().map_err(|_| SnapshotError {
                line: n,
                message: "bad ip".into(),
            })?;
            let certs_field: Vec<CertId> = if *p_certs == "-" {
                Vec::new()
            } else {
                p_certs
                    .split(',')
                    .map(|c| {
                        c.parse::<u32>().map(CertId).map_err(|_| SnapshotError {
                            line: n,
                            message: format!("bad cert id {c:?}"),
                        })
                    })
                    .collect::<Result<_, _>>()?
            };
            for c in &certs_field {
                if c.0 as usize >= certs.len() {
                    return err(n, format!("cert id {} out of range", c.0));
                }
            }
            let modulus: u32 = p_modulus.parse().map_err(|_| SnapshotError {
                line: n,
                message: "bad modulus id".into(),
            })?;
            if modulus as usize >= moduli.len() {
                return err(n, format!("modulus id {modulus} out of range"));
            }
            records.push(HostRecord {
                ip,
                certs: certs_field,
                modulus: ModulusId(modulus),
                rsa_kex_only: *p_kex == "1",
            });
        }
        scans.push(Scan {
            date,
            source,
            protocol,
            records,
        });
    }

    // Ground truth.
    let mut truth = GroundTruth::default();
    let (n, l) = next("TRUTH_MODULI")?;
    let count: usize = l
        .strip_prefix("TRUTH_MODULI ")
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| SnapshotError {
            line: n,
            message: "expected TRUTH_MODULI <n>".into(),
        })?;
    for _ in 0..count {
        let (n, l) = next("truth")?;
        let fields: Vec<&str> = l.split('|').collect();
        let [f_id, f_vendor, f_weak, f_corrupted, f_mitm] = fields.as_slice() else {
            return err(n, "expected 5 truth fields");
        };
        let id: u32 = f_id.parse().map_err(|_| SnapshotError {
            line: n,
            message: "bad truth id".into(),
        })?;
        let vendor = if *f_vendor == "-" {
            None
        } else {
            Some(parse_vendor(f_vendor, n)?)
        };
        truth.moduli.insert(
            ModulusId(id),
            ModulusTruth {
                vendor,
                weak: *f_weak == "1",
                corrupted: *f_corrupted == "1",
                mitm: *f_mitm == "1",
            },
        );
    }
    let (n, l) = next("TRUTH_CERTS")?;
    let count: usize = l
        .strip_prefix("TRUTH_CERTS ")
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| SnapshotError {
            line: n,
            message: "expected TRUTH_CERTS <n>".into(),
        })?;
    for _ in 0..count {
        let (n, l) = next("cert truth")?;
        let (id, vendor) = l.split_once('|').ok_or_else(|| SnapshotError {
            line: n,
            message: "expected id|vendor".into(),
        })?;
        let id: u32 = id.parse().map_err(|_| SnapshotError {
            line: n,
            message: "bad cert truth id".into(),
        })?;
        truth
            .cert_vendor
            .insert(CertId(id), parse_vendor(vendor, n)?);
    }

    Ok(StudyDataset {
        scans,
        certs,
        moduli,
        truth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StudyConfig;
    use crate::simulate::run_study;

    fn tiny_dataset() -> StudyDataset {
        let mut cfg = StudyConfig::test_small();
        cfg.scale = 0.04;
        cfg.background_hosts = 20;
        cfg.ssh_hosts = 10;
        cfg.ssh_vulnerable = 2;
        cfg.mail_hosts = 5;
        run_study(&cfg)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = tiny_dataset();
        let text = save(&original);
        let loaded = load(&text).expect("snapshot parses");
        assert_eq!(loaded.moduli.len(), original.moduli.len());
        assert_eq!(loaded.certs.len(), original.certs.len());
        assert_eq!(loaded.scans.len(), original.scans.len());
        for (a, b) in original.scans.iter().zip(loaded.scans.iter()) {
            assert_eq!(a.date, b.date);
            assert_eq!(a.source, b.source);
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.records, b.records);
        }
        for i in 0..original.moduli.len() {
            let id = ModulusId(i as u32);
            assert_eq!(original.moduli.get(id), loaded.moduli.get(id));
        }
        for (id, cert) in original.certs.iter() {
            assert_eq!(cert, loaded.certs.get(id));
        }
        assert_eq!(original.truth.moduli.len(), loaded.truth.moduli.len());
        for (id, t) in &original.truth.moduli {
            let lt = &loaded.truth.moduli[id];
            assert_eq!(
                (t.vendor, t.weak, t.corrupted, t.mitm),
                (lt.vendor, lt.weak, lt.corrupted, lt.mitm)
            );
        }
        assert_eq!(original.truth.cert_vendor, loaded.truth.cert_vendor);
    }

    #[test]
    fn double_round_trip_is_identity() {
        let original = tiny_dataset();
        let once = save(&original);
        let twice = save(&load(&once).unwrap());
        assert_eq!(once, twice);
    }

    #[test]
    fn escaping_round_trips() {
        for s in ["plain", "with|pipe", "percent%sign", "-", "", "a,b"] {
            let escaped = opt_str(&Some(s.to_string()));
            assert_eq!(parse_opt(&escaped, 1).unwrap().as_deref(), Some(s), "{s:?}");
        }
        assert_eq!(parse_opt("-", 1).unwrap(), None);
    }

    fn expect_err(text: &str) -> SnapshotError {
        match load(text) {
            Err(e) => e,
            Ok(_) => panic!("snapshot unexpectedly parsed"),
        }
    }

    #[test]
    fn corrupt_snapshots_rejected_with_line_numbers() {
        assert!(load("").is_err());
        assert!(load("NOT A SNAPSHOT").is_err());
        assert_eq!(expect_err("WKSNAP 1\nMODULI 1\nZZZ").line, 3);
        assert_eq!(expect_err("WKSNAP 1\nMODULI nope").line, 2);
    }

    #[test]
    fn out_of_range_ids_rejected() {
        let text = "WKSNAP 1\nMODULI 1\nff\nCERTS 0\nSCANS 1\nSCAN 2012-06 censys https 1\n1 - 7 0\nTRUTH_MODULI 0\nTRUTH_CERTS 0\n";
        let e = expect_err(text);
        assert!(e.message.contains("out of range"), "{e}");
    }

    #[test]
    fn all_vendor_tags_round_trip() {
        use VendorId::*;
        for v in [
            Juniper,
            Innominate,
            Ibm,
            Siemens,
            Cisco,
            Hp,
            Thomson,
            FritzBox,
            Linksys,
            Fortinet,
            Zyxel,
            Dell,
            Kronos,
            Xerox,
            McAfee,
            TpLink,
            Conel,
            Adtran,
            DLink,
            Huawei,
            Sangfor,
            SchmidTelecom,
            Background,
        ] {
            assert_eq!(parse_vendor(vendor_tag(v), 1).unwrap(), v);
        }
    }
}
