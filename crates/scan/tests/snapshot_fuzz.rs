//! Failure-injection tests for the snapshot parser: every corruption must
//! produce a structured [`SnapshotError`] — never a panic — and a valid
//! snapshot must survive the mutations that preserve validity.

use proptest::prelude::*;
use wk_scan::{run_study, snapshot, StudyConfig};

fn small_snapshot() -> String {
    let mut cfg = StudyConfig::test_small();
    cfg.scale = 0.03;
    cfg.background_hosts = 15;
    cfg.ssh_hosts = 8;
    cfg.ssh_vulnerable = 2;
    cfg.mail_hosts = 4;
    snapshot::save(&run_study(&cfg))
}

#[test]
fn truncation_at_every_section_boundary_errors_cleanly() {
    let text = small_snapshot();
    let lines: Vec<&str> = text.lines().collect();
    // Cut the snapshot at a spread of points; each must error, not panic.
    for cut in [0, 1, 2, lines.len() / 4, lines.len() / 2, lines.len() - 1] {
        let truncated = lines[..cut].join("\n");
        assert!(
            snapshot::load(&truncated).is_err(),
            "truncation at line {cut} must fail"
        );
    }
    // The full text still parses.
    assert!(snapshot::load(&text).is_ok());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Replacing any single line with garbage errors cleanly (or, for
    /// record-count-preserving garbage, is caught by range checks).
    #[test]
    fn single_line_corruption_never_panics(line_idx in 0usize..500, garbage in "[a-z0-9|,. ]{0,30}") {
        // Reuse one snapshot across cases via a lazy static.
        use std::sync::OnceLock;
        static SNAP: OnceLock<String> = OnceLock::new();
        let text = SNAP.get_or_init(small_snapshot);
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        let idx = line_idx % lines.len();
        lines[idx] = garbage;
        let mutated = lines.join("\n");
        // Must not panic; may legitimately succeed only if the garbage
        // happened to parse as an equivalent record.
        let _ = snapshot::load(&mutated);
    }

    /// Byte-level bit flips in the text never panic the parser.
    #[test]
    fn byte_flip_never_panics(pos in 0usize..100_000, bit in 0u8..7) {
        use std::sync::OnceLock;
        static SNAP: OnceLock<String> = OnceLock::new();
        let text = SNAP.get_or_init(small_snapshot);
        let mut bytes = text.as_bytes().to_vec();
        let idx = pos % bytes.len();
        bytes[idx] ^= 1 << bit;
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = snapshot::load(&s);
        }
    }
}
