//! End-to-end tests of the study simulator.

use std::collections::HashSet;
use wk_scan::{
    run_study, Protocol, ScanSource, StudyConfig, StudyDataset, VendorId, HEARTBLEED, STUDY_END,
    STUDY_START,
};

fn dataset() -> StudyDataset {
    run_study(&StudyConfig::test_small())
}

#[test]
fn study_produces_consistent_dataset() {
    let ds = dataset();
    assert!(ds.moduli.len() > 100, "moduli: {}", ds.moduli.len());
    assert!(ds.certs.len() > 100, "certs: {}", ds.certs.len());
    assert!(ds.total_host_records() > ds.https_host_records());
    // Every record's certs and modulus resolve in the stores.
    for scan in &ds.scans {
        assert!(scan.date >= STUDY_START && scan.date <= STUDY_END);
        for rec in &scan.records {
            assert!((rec.modulus.0 as usize) < ds.moduli.len());
            for c in &rec.certs {
                assert!((c.0 as usize) < ds.certs.len());
            }
            if scan.protocol == Protocol::Https {
                assert!(!rec.certs.is_empty(), "HTTPS records carry certs");
            }
        }
    }
}

#[test]
fn deterministic_given_seed() {
    let a = run_study(&StudyConfig::test_small());
    let b = run_study(&StudyConfig::test_small());
    assert_eq!(a.moduli.len(), b.moduli.len());
    assert_eq!(a.certs.len(), b.certs.len());
    assert_eq!(a.total_host_records(), b.total_host_records());
    // Spot-check deep equality of one scan.
    assert_eq!(a.scans[0].records, b.scans[0].records);
}

#[test]
fn different_seed_different_data() {
    let a = run_study(&StudyConfig::test_small());
    let mut cfg = StudyConfig::test_small();
    cfg.seed += 1;
    let b = run_study(&cfg);
    assert_ne!(a.scans[0].records, b.scans[0].records);
}

#[test]
fn https_scan_timeline_matches_sources() {
    let ds = dataset();
    let months: Vec<_> = ds.https_scans().map(|s| (s.date, s.source)).collect();
    assert_eq!(months.first().unwrap().0, STUDY_START);
    assert_eq!(months.last().unwrap().0, STUDY_END);
    assert!(months.iter().any(|&(_, s)| s == ScanSource::Eff));
    assert!(months.iter().any(|&(_, s)| s == ScanSource::Censys));
    assert!(months.windows(2).all(|w| w[0].0 < w[1].0));
}

#[test]
fn weak_moduli_exist_and_are_labeled() {
    let ds = dataset();
    let weak: Vec<_> = ds.truth.moduli.values().filter(|t| t.weak).collect();
    assert!(weak.len() > 10, "weak moduli: {}", weak.len());
    // Weak moduli come from real vendors (except SSH pool keys).
    assert!(weak.iter().any(|t| t.vendor == Some(VendorId::Juniper)));
    assert!(weak.iter().any(|t| t.vendor == Some(VendorId::Ibm)));
}

#[test]
fn heartbleed_drop_visible_in_juniper_records() {
    // Half scale keeps the Juniper population large enough for a clean
    // signal without full-study runtime.
    let mut cfg = StudyConfig::test_small();
    cfg.scale = 0.5;
    cfg.background_hosts = 100;
    let ds = run_study(&cfg);
    // Count Juniper-truth host records per scan around Heartbleed.
    let count_at = |date| {
        ds.https_scans()
            .find(|s| s.date == date)
            .map(|s| {
                s.records
                    .iter()
                    .filter(|r| {
                        r.certs.first().is_some_and(|c| {
                            ds.truth.cert_vendor.get(c) == Some(&VendorId::Juniper)
                        })
                    })
                    .count()
            })
            .unwrap_or(0)
    };
    let before = count_at(wk_cert::MonthDate::new(2014, 3));
    let after = count_at(wk_cert::MonthDate::new(2014, 5));
    assert!(
        (after as f64) < before as f64 * 0.75,
        "Juniper population must drop at Heartbleed: {before} -> {after}"
    );
    let _ = HEARTBLEED;
}

#[test]
fn mitm_key_appears_at_multiple_ips_with_distinct_subjects() {
    let ds = dataset();
    let mitm_id = ds
        .truth
        .moduli
        .iter()
        .find(|(_, t)| t.mitm)
        .map(|(id, _)| *id)
        .expect("MITM modulus exists");
    let mut ips = HashSet::new();
    let mut subjects = HashSet::new();
    for scan in ds.https_scans() {
        for rec in &scan.records {
            if rec.modulus == mitm_id {
                ips.insert(rec.ip);
                subjects.insert(ds.certs.get(rec.certs[0]).subject.render());
            }
        }
    }
    assert!(ips.len() >= 2, "MITM key at multiple IPs: {}", ips.len());
    assert!(subjects.len() >= 2, "subjects differ under one key");
}

#[test]
fn rapid7_scans_include_intermediates_others_do_not() {
    let ds = dataset();
    for scan in ds.https_scans() {
        let with_chain = scan.records.iter().filter(|r| r.certs.len() > 1).count();
        if scan.source == ScanSource::Rapid7 {
            assert!(with_chain > 0, "Rapid7 scan must include intermediates");
        } else {
            assert_eq!(with_chain, 0, "{:?} must not", scan.source);
        }
    }
}

#[test]
fn ssh_scan_has_configured_vulnerable_hosts() {
    let cfg = StudyConfig::test_small();
    let ds = run_study(&cfg);
    let ssh: Vec<_> = ds.protocol_scans(Protocol::Ssh).collect();
    assert_eq!(ssh.len(), 1);
    let weak = ssh[0]
        .records
        .iter()
        .filter(|r| ds.truth.moduli.get(&r.modulus).is_some_and(|t| t.weak))
        .count();
    assert_eq!(weak, cfg.ssh_vulnerable);
    assert_eq!(ssh[0].records.len(), cfg.ssh_hosts);
}

#[test]
fn mail_protocols_have_zero_vulnerable() {
    let ds = dataset();
    for p in [Protocol::Imaps, Protocol::Pop3s, Protocol::Smtps] {
        for scan in ds.protocol_scans(p) {
            let weak = scan
                .records
                .iter()
                .filter(|r| ds.truth.moduli.get(&r.modulus).is_some_and(|t| t.weak))
                .count();
            assert_eq!(weak, 0, "{p:?} must have no vulnerable hosts");
        }
    }
}

#[test]
fn ibm_moduli_form_small_clique() {
    let ds = dataset();
    let ibm_moduli: HashSet<_> = ds
        .truth
        .moduli
        .iter()
        .filter(|(_, t)| t.vendor == Some(VendorId::Ibm) && t.weak)
        .map(|(id, _)| *id)
        .collect();
    assert!(
        !ibm_moduli.is_empty() && ibm_moduli.len() <= 36,
        "IBM distinct moduli: {}",
        ibm_moduli.len()
    );
}
