//! Event studies: Heartbleed (§4.1) and Cisco end-of-life (§4.2, Figure 7).

use crate::timeseries::Series;
use wk_cert::MonthDate;
use wk_scan::HEARTBLEED;

/// Result of testing a series for a Heartbleed-timed drop.
#[derive(Clone, Debug, PartialEq)]
pub struct HeartbleedImpact {
    /// The largest vulnerable-count drop in the whole series.
    pub largest_vulnerable_drop: i64,
    /// The largest total-count drop in the whole series.
    pub largest_total_drop: i64,
    /// Whether the largest vulnerable drop lands on the Heartbleed boundary
    /// (the scan-over-scan step that straddles April 2014).
    pub vulnerable_drop_at_heartbleed: bool,
    /// Whether the largest total drop lands there too.
    pub total_drop_at_heartbleed: bool,
}

/// Does the step from `from` to `to` straddle the Heartbleed month?
fn straddles_heartbleed(from: MonthDate, to: MonthDate) -> bool {
    from <= HEARTBLEED && to >= HEARTBLEED
}

/// Analyze a series for Heartbleed-correlated drops.
pub fn heartbleed_impact(series: &Series) -> HeartbleedImpact {
    let vuln = series.largest_vulnerable_drop();
    let total = series.largest_total_drop();
    HeartbleedImpact {
        largest_vulnerable_drop: vuln.map(|(_, _, d)| d).unwrap_or(0),
        largest_total_drop: total.map(|(_, _, d)| d).unwrap_or(0),
        vulnerable_drop_at_heartbleed: vuln
            .map(|(f, t, d)| d > 0 && straddles_heartbleed(f, t))
            .unwrap_or(false),
        total_drop_at_heartbleed: total
            .map(|(f, t, d)| d > 0 && straddles_heartbleed(f, t))
            .unwrap_or(false),
    }
}

/// Result of the end-of-life event study for one model.
#[derive(Clone, Debug, PartialEq)]
pub struct EolImpact {
    /// Announcement month.
    pub announced: MonthDate,
    /// Average month-over-month change in total hosts before announcement.
    pub slope_before: f64,
    /// Average month-over-month change after announcement.
    pub slope_after: f64,
}

impl EolImpact {
    /// The paper's claim: announcements "mark the beginning of a slow
    /// decrease" — growth (or flat) before, decline after.
    pub fn marks_decline(&self) -> bool {
        self.slope_after < 0.0 && self.slope_before > self.slope_after
    }
}

/// Compare a model's population slope before and after its EOL
/// announcement.
pub fn eol_impact(series: &Series, announced: MonthDate) -> EolImpact {
    let mut before = Vec::new();
    let mut after = Vec::new();
    for (a, b) in series.pairs() {
        let span = b.date.months_since(a.date).max(1) as f64;
        let slope = (b.total as f64 - a.total as f64) / span;
        if b.date <= announced {
            before.push(slope);
        } else if a.date >= announced {
            after.push(slope);
        }
    }
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    EolImpact {
        announced,
        slope_before: avg(&before),
        slope_after: avg(&after),
    }
}

/// A visible discontinuity at a scan-source boundary — the Figure 1
/// caption's "artifacts from the different scan methodologies used by each
/// team are clearly visible".
#[derive(Clone, Debug, PartialEq)]
pub struct SourceArtifact {
    /// Last month of the earlier source.
    pub from: MonthDate,
    /// First month of the later source.
    pub to: MonthDate,
    /// Total-host ratio across the boundary (later / earlier).
    pub total_ratio: f64,
}

/// Find total-count discontinuities at source handover boundaries. A
/// boundary is reported when the step across it deviates from 1.0 by more
/// than `threshold` (e.g. 0.03 = 3%) **beyond** the series' typical
/// within-source step, so ordinary growth isn't misreported.
pub fn source_artifacts(series: &Series, threshold: f64) -> Vec<SourceArtifact> {
    // Typical within-source month-over-month ratio deviation.
    let mut within: Vec<f64> = Vec::new();
    for (a, b) in series.pairs() {
        if a.source == b.source && a.total > 0 {
            within.push((b.total as f64 / a.total as f64 - 1.0).abs());
        }
    }
    let typical = if within.is_empty() {
        0.0
    } else {
        within.iter().sum::<f64>() / within.len() as f64
    };

    series
        .pairs()
        .filter(|(a, b)| a.source != b.source && a.total > 0)
        .filter_map(|(a, b)| {
            let ratio = b.total as f64 / a.total as f64;
            ((ratio - 1.0).abs() > typical + threshold).then_some(SourceArtifact {
                from: a.date,
                to: b.date,
                total_ratio: ratio,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::SeriesPoint;
    use wk_scan::ScanSource;

    fn series(points: &[(u16, u8, usize, usize)]) -> Series {
        Series {
            name: "test".into(),
            points: points
                .iter()
                .map(|&(y, m, total, vulnerable)| SeriesPoint {
                    date: MonthDate::new(y, m),
                    source: ScanSource::Rapid7,
                    total,
                    vulnerable,
                })
                .collect(),
        }
    }

    #[test]
    fn heartbleed_drop_detected() {
        let s = series(&[
            (2014, 2, 1000, 300),
            (2014, 3, 1010, 305),
            (2014, 5, 700, 200), // the cliff straddles 2014-04
            (2014, 6, 690, 198),
        ]);
        let impact = heartbleed_impact(&s);
        assert!(impact.vulnerable_drop_at_heartbleed);
        assert!(impact.total_drop_at_heartbleed);
        assert_eq!(impact.largest_vulnerable_drop, 105);
        assert_eq!(impact.largest_total_drop, 310);
    }

    #[test]
    fn unrelated_drop_not_attributed() {
        let s = series(&[
            (2012, 1, 1000, 300),
            (2012, 2, 500, 100), // big early drop
            (2014, 3, 490, 95),
            (2014, 5, 480, 90), // tiny drop at Heartbleed
        ]);
        let impact = heartbleed_impact(&s);
        assert!(!impact.vulnerable_drop_at_heartbleed);
    }

    #[test]
    fn rising_series_no_drop_attribution() {
        let s = series(&[(2014, 3, 10, 1), (2014, 5, 20, 5)]);
        let impact = heartbleed_impact(&s);
        assert!(!impact.vulnerable_drop_at_heartbleed);
        assert!(impact.largest_vulnerable_drop <= 0);
    }

    fn series_with_sources(points: &[(u16, u8, usize, ScanSource)]) -> Series {
        Series {
            name: "test".into(),
            points: points
                .iter()
                .map(|&(y, m, total, source)| SeriesPoint {
                    date: MonthDate::new(y, m),
                    source,
                    total,
                    vulnerable: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn source_boundary_jump_detected() {
        use ScanSource::*;
        let s = series_with_sources(&[
            (2013, 7, 1000, Ecosystem),
            (2013, 8, 1010, Ecosystem),
            (2013, 9, 1020, Ecosystem),
            (2013, 10, 940, Rapid7), // 8% drop at handover: methodology artifact
            (2013, 11, 948, Rapid7),
        ]);
        let artifacts = source_artifacts(&s, 0.03);
        assert_eq!(artifacts.len(), 1);
        assert_eq!(artifacts[0].from, MonthDate::new(2013, 9));
        assert_eq!(artifacts[0].to, MonthDate::new(2013, 10));
        assert!(artifacts[0].total_ratio < 0.95);
    }

    #[test]
    fn smooth_handover_not_reported() {
        use ScanSource::*;
        let s = series_with_sources(&[
            (2013, 8, 1000, Ecosystem),
            (2013, 9, 1010, Ecosystem),
            (2013, 10, 1020, Rapid7), // same growth rate across boundary
            (2013, 11, 1030, Rapid7),
        ]);
        assert!(source_artifacts(&s, 0.03).is_empty());
    }

    #[test]
    fn eol_slope_change() {
        let s = series(&[
            (2014, 1, 100, 0),
            (2014, 2, 110, 0),
            (2014, 3, 120, 0), // announcement here
            (2014, 4, 115, 0),
            (2014, 5, 110, 0),
        ]);
        let impact = eol_impact(&s, MonthDate::new(2014, 3));
        assert!(impact.slope_before > 0.0);
        assert!(impact.slope_after < 0.0);
        assert!(impact.marks_decline());
    }

    #[test]
    fn eol_growth_after_not_decline() {
        let s = series(&[(2014, 1, 100, 0), (2014, 3, 90, 0), (2014, 5, 120, 0)]);
        let impact = eol_impact(&s, MonthDate::new(2014, 3));
        assert!(!impact.marks_decline());
    }
}
