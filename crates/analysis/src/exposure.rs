//! Passive-decryption exposure (§2.1).
//!
//! "74% of the 61,240 vulnerable devices present in our most recent scan
//! data from April 2016 only support RSA key exchange, making them
//! vulnerable to passive decryption by an attacker who is able to observe
//! network traffic." A host negotiating (EC)DHE is only exposed to an
//! *active* man-in-the-middle even when its certificate key is factored;
//! RSA-key-exchange-only hosts leak every recorded session.

use std::collections::HashSet;
use wk_cert::MonthDate;
use wk_scan::{ModulusId, StudyDataset};

/// Exposure breakdown of the vulnerable hosts in one scan.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExposureReport {
    /// Scan date.
    pub date: Option<MonthDate>,
    /// Hosts serving a factored key.
    pub vulnerable_hosts: usize,
    /// Of those, hosts supporting only RSA key exchange — passively
    /// decryptable.
    pub passively_decryptable: usize,
}

impl ExposureReport {
    /// Fraction of vulnerable hosts exposed to passive decryption.
    pub fn passive_fraction(&self) -> f64 {
        self.passively_decryptable as f64 / self.vulnerable_hosts.max(1) as f64
    }
}

/// Compute the exposure report for the most recent HTTPS scan (the paper's
/// April 2016 snapshot), or for a specific month when given.
pub fn passive_exposure(
    dataset: &StudyDataset,
    vulnerable: &HashSet<ModulusId>,
    at: Option<MonthDate>,
) -> ExposureReport {
    let scan = match at {
        Some(date) => dataset.https_scans().find(|s| s.date == date),
        None => dataset.https_scans().last(),
    };
    let Some(scan) = scan else {
        return ExposureReport::default();
    };
    let mut report = ExposureReport {
        date: Some(scan.date),
        ..Default::default()
    };
    for rec in &scan.records {
        if vulnerable.contains(&rec.modulus) {
            report.vulnerable_hosts += 1;
            if rec.rsa_kex_only {
                report.passively_decryptable += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use wk_bigint::Natural;
    use wk_cert::SubjectStyle;
    use wk_scan::{CertStore, GroundTruth, HostRecord, ModulusStore, Protocol, Scan, ScanSource};

    fn dataset() -> (StudyDataset, HashSet<ModulusId>) {
        let mut moduli = ModulusStore::default();
        let mut certs = CertStore::default();
        let weak_n = Natural::from(33u64);
        let clean_n = Natural::from(323u64);
        let weak = moduli.intern(&weak_n);
        let clean = moduli.intern(&clean_n);
        let wc = certs.intern(SubjectStyle::JuniperSystemGenerated.certificate(
            1,
            1,
            weak_n,
            MonthDate::new(2016, 4),
        ));
        let cc = certs.intern(SubjectStyle::JuniperSystemGenerated.certificate(
            2,
            2,
            clean_n,
            MonthDate::new(2016, 4),
        ));
        let rec = |ip, cert, modulus, rsa_only| HostRecord {
            ip,
            certs: vec![cert],
            modulus,
            rsa_kex_only: rsa_only,
        };
        let scans = vec![Scan {
            date: MonthDate::new(2016, 4),
            source: ScanSource::Censys,
            protocol: Protocol::Https,
            records: vec![
                rec(1, wc, weak, true),
                rec(2, wc, weak, true),
                rec(3, wc, weak, false),
                rec(4, cc, clean, true), // clean host: not counted
            ],
        }];
        (
            StudyDataset {
                scans,
                certs,
                moduli,
                truth: GroundTruth::default(),
            },
            [weak].into_iter().collect(),
        )
    }

    #[test]
    fn exposure_counts_only_vulnerable_hosts() {
        let (ds, vuln) = dataset();
        let r = passive_exposure(&ds, &vuln, None);
        assert_eq!(r.vulnerable_hosts, 3);
        assert_eq!(r.passively_decryptable, 2);
        assert!((r.passive_fraction() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(r.date, Some(MonthDate::new(2016, 4)));
    }

    #[test]
    fn missing_month_empty_report() {
        let (ds, vuln) = dataset();
        let r = passive_exposure(&ds, &vuln, Some(MonthDate::new(2012, 1)));
        assert_eq!(r.vulnerable_hosts, 0);
        assert_eq!(r.passive_fraction(), 0.0);
    }
}
