//! Per-IP certificate transition analysis (§4.1).
//!
//! For Juniper the paper tracks, across all scans, IPs that moved from
//! serving a vulnerable key to a non-vulnerable one (possible patching or
//! IP churn), the reverse, and IPs that flip-flopped. The same analysis
//! supports the Innominate and IBM patching discussions.

use crate::labeling::Labeling;
use crate::timeseries::record_leaf;
use std::collections::{HashMap, HashSet};
use wk_scan::{ModulusId, StudyDataset, VendorId};

/// Transition counts for one vendor's IP population.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TransitionReport {
    /// IPs that ever served a certificate with this vendor's fingerprint.
    pub ips_ever_seen: usize,
    /// IPs that ever served a vulnerable key.
    pub ips_ever_vulnerable: usize,
    /// IPs that went vulnerable -> non-vulnerable exactly once.
    pub vuln_to_clean: usize,
    /// IPs that went non-vulnerable -> vulnerable exactly once.
    pub clean_to_vuln: usize,
    /// IPs that transitioned more than once in either direction.
    pub multiple_transitions: usize,
    /// IPs whose status never changed.
    pub stable: usize,
}

/// Compute the transition report for `vendor`.
pub fn vendor_transitions(
    dataset: &StudyDataset,
    labeling: &Labeling,
    vulnerable: &HashSet<ModulusId>,
    vendor: VendorId,
) -> TransitionReport {
    // Chronological status observations per IP.
    let mut history: HashMap<u32, Vec<bool>> = HashMap::new();
    for scan in dataset.https_scans() {
        for rec in &scan.records {
            let Some(leaf) = record_leaf(dataset, &rec.certs) else {
                continue;
            };
            if labeling.cert_vendor.get(&leaf) != Some(&vendor) {
                continue;
            }
            history
                .entry(rec.ip)
                .or_default()
                .push(vulnerable.contains(&rec.modulus));
        }
    }

    let mut report = TransitionReport {
        ips_ever_seen: history.len(),
        ..Default::default()
    };
    for statuses in history.values() {
        if statuses.iter().any(|&v| v) {
            report.ips_ever_vulnerable += 1;
        }
        // Collapse consecutive repeats into the transition sequence.
        let mut changes = Vec::new();
        for pair in statuses.windows(2) {
            if let &[was, is] = pair {
                if was != is {
                    changes.push((was, is));
                }
            }
        }
        match changes.as_slice() {
            [] => report.stable += 1,
            [(true, false)] => report.vuln_to_clean += 1,
            [(false, true)] => report.clean_to_vuln += 1,
            _ => report.multiple_transitions += 1,
        }
    }
    report
}

/// Why an IP stopped serving a vulnerable key (§4.1's IBM analysis):
/// if the replacement certificate has the *same subject*, the device was
/// re-keyed (a real patch); a *different subject* indicates the IP was
/// reassigned to another device ("due to IP churn").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RekeyReport {
    /// vuln->clean transitions where the subject stayed the same: rekeying.
    pub rekeyed_same_subject: usize,
    /// vuln->clean transitions with a different subject: IP churn.
    pub churned_different_subject: usize,
}

/// Classify each vulnerable->clean transition as rekey vs IP churn.
///
/// Unlike [`vendor_transitions`], the observation history follows the IP
/// across *all* subsequent certificates, whoever they fingerprint as — the
/// paper's IBM analysis tracks "the 1,728 IP addresses that ever served a
/// certificate containing one of the vulnerable IBM primes" and examines
/// whatever those IPs served later.
pub fn rekey_vs_churn(
    dataset: &StudyDataset,
    labeling: &Labeling,
    vulnerable: &HashSet<ModulusId>,
    vendor: VendorId,
) -> RekeyReport {
    // IPs that ever served this vendor's vulnerable keys.
    let mut tracked: HashSet<u32> = HashSet::new();
    for scan in dataset.https_scans() {
        for rec in &scan.records {
            if !vulnerable.contains(&rec.modulus) {
                continue;
            }
            let Some(leaf) = record_leaf(dataset, &rec.certs) else {
                continue;
            };
            if labeling.cert_vendor.get(&leaf) == Some(&vendor) {
                tracked.insert(rec.ip);
            }
        }
    }
    // Chronological (vulnerable, subject) observations per tracked IP —
    // across every certificate served there, any vendor.
    let mut history: HashMap<u32, Vec<(bool, String)>> = HashMap::new();
    for scan in dataset.https_scans() {
        for rec in &scan.records {
            if !tracked.contains(&rec.ip) {
                continue;
            }
            let Some(leaf) = record_leaf(dataset, &rec.certs) else {
                continue;
            };
            history.entry(rec.ip).or_default().push((
                vulnerable.contains(&rec.modulus),
                dataset.certs.get(leaf).subject.render(),
            ));
        }
    }
    let mut report = RekeyReport::default();
    for statuses in history.values() {
        for pair in statuses.windows(2) {
            let [(was_vuln, old_subject), (is_vuln, new_subject)] = pair else {
                continue;
            };
            if *was_vuln && !*is_vuln {
                if old_subject == new_subject {
                    report.rekeyed_same_subject += 1;
                } else {
                    report.churned_different_subject += 1;
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use wk_bigint::Natural;
    use wk_cert::{MonthDate, SubjectStyle};
    use wk_scan::{CertStore, GroundTruth, HostRecord, ModulusStore, Protocol, Scan, ScanSource};

    /// Build a dataset with scripted per-IP status sequences.
    fn scripted(sequences: &[&[bool]]) -> (StudyDataset, HashSet<ModulusId>) {
        let mut moduli = ModulusStore::default();
        let mut certs = CertStore::default();
        let weak_n = Natural::from(33u64);
        let clean_n = Natural::from(323u64);
        let weak = moduli.intern(&weak_n);
        let clean = moduli.intern(&clean_n);
        let weak_cert = certs.intern(SubjectStyle::JuniperSystemGenerated.certificate(
            1,
            1,
            weak_n,
            MonthDate::new(2011, 1),
        ));
        let clean_cert = certs.intern(SubjectStyle::JuniperSystemGenerated.certificate(
            2,
            2,
            clean_n,
            MonthDate::new(2011, 1),
        ));
        let max_len = sequences.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut scans = Vec::new();
        for t in 0..max_len {
            let mut records = Vec::new();
            for (ip, seq) in sequences.iter().enumerate() {
                if let Some(&vuln) = seq.get(t) {
                    records.push(HostRecord {
                        ip: ip as u32,
                        certs: vec![if vuln { weak_cert } else { clean_cert }],
                        modulus: if vuln { weak } else { clean },
                        rsa_kex_only: false,
                    });
                }
            }
            scans.push(Scan {
                date: MonthDate::new(2011, 1).plus(t as u32),
                source: ScanSource::Ecosystem,
                protocol: Protocol::Https,
                records,
            });
        }
        let dataset = StudyDataset {
            scans,
            certs,
            moduli,
            truth: GroundTruth::default(),
        };
        (dataset, [weak].into_iter().collect())
    }

    fn report(sequences: &[&[bool]]) -> TransitionReport {
        let (ds, vuln) = scripted(sequences);
        let labeling = crate::labeling::label_dataset(&ds, &[]);
        vendor_transitions(&ds, &labeling, &vuln, VendorId::Juniper)
    }

    #[test]
    fn stable_ips_counted() {
        let r = report(&[&[true, true, true], &[false, false]]);
        assert_eq!(r.ips_ever_seen, 2);
        assert_eq!(r.ips_ever_vulnerable, 1);
        assert_eq!(r.stable, 2);
        assert_eq!(r.vuln_to_clean, 0);
    }

    #[test]
    fn single_transitions_classified() {
        let r = report(&[
            &[true, true, false], // vuln -> clean
            &[false, true, true], // clean -> vuln
        ]);
        assert_eq!(r.vuln_to_clean, 1);
        assert_eq!(r.clean_to_vuln, 1);
        assert_eq!(r.multiple_transitions, 0);
    }

    #[test]
    fn flip_flop_is_multiple() {
        let r = report(&[&[true, false, true, false]]);
        assert_eq!(r.multiple_transitions, 1);
        assert_eq!(r.vuln_to_clean, 0);
    }

    #[test]
    fn rekey_vs_churn_discriminates_on_subject() {
        // IBM-style: subjects carry a per-device tag, so an IP reassigned
        // to a different device shows a different subject.
        let mut moduli = ModulusStore::default();
        let mut certs = CertStore::default();
        let weak_n = Natural::from(33u64);
        let clean_n = Natural::from(323u64);
        let weak = moduli.intern(&weak_n);
        let clean = moduli.intern(&clean_n);
        let style = SubjectStyle::JuniperSystemGenerated;
        let weak_cert = certs.intern(style.certificate(1, 1, weak_n, MonthDate::new(2011, 1)));
        // Same subject, new key: a rekey.
        let rekey_cert =
            certs.intern(style.certificate(2, 1, clean_n.clone(), MonthDate::new(2011, 2)));
        let scans = vec![
            Scan {
                date: MonthDate::new(2011, 1),
                source: ScanSource::Ecosystem,
                protocol: Protocol::Https,
                records: vec![HostRecord {
                    ip: 1,
                    certs: vec![weak_cert],
                    modulus: weak,
                    rsa_kex_only: false,
                }],
            },
            Scan {
                date: MonthDate::new(2011, 2),
                source: ScanSource::Ecosystem,
                protocol: Protocol::Https,
                records: vec![HostRecord {
                    ip: 1,
                    certs: vec![rekey_cert],
                    modulus: clean,
                    rsa_kex_only: false,
                }],
            },
        ];
        let ds = StudyDataset {
            scans,
            certs,
            moduli,
            truth: GroundTruth::default(),
        };
        let labeling = crate::labeling::label_dataset(&ds, &[]);
        let vuln: HashSet<ModulusId> = [weak].into_iter().collect();
        let r = rekey_vs_churn(&ds, &labeling, &vuln, VendorId::Juniper);
        // Juniper subjects are constant ("system generated"), so this reads
        // as a rekey.
        assert_eq!(r.rekeyed_same_subject, 1);
        assert_eq!(r.churned_different_subject, 0);
    }

    #[test]
    fn gaps_in_observation_tolerated() {
        // IP 0 only observed in scans 0 and 2.
        let (ds, vuln) = scripted(&[&[true], &[false, false, false]]);
        let labeling = crate::labeling::label_dataset(&ds, &[]);
        let r = vendor_transitions(&ds, &labeling, &vuln, VendorId::Juniper);
        assert_eq!(r.ips_ever_seen, 2);
        assert_eq!(r.stable, 2);
    }
}
