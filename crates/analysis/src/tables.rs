//! Builders for the paper's tables.
//!
//! * Table 1 — dataset totals;
//! * Table 3 — earliest vs. latest scan summary;
//! * Table 4 — per-protocol vulnerable hosts;
//! * Table 5 — per-vendor OpenSSL fingerprint classification.
//!
//! (Table 2, the disclosure-response matrix, is static data and lives in
//! the `weakkeys` core crate.)

use crate::labeling::Labeling;
use std::collections::{BTreeMap, HashSet};
use wk_bigint::Natural;
use wk_fingerprint::{classify_primes, FactoredModulus, OpensslVerdict};
use wk_scan::{ModulusId, Protocol, StudyDataset, VendorId};

/// Table 1: dataset totals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatasetTotals {
    /// HTTPS host records across all scans.
    pub https_host_records: usize,
    /// Distinct certificates seen on HTTPS.
    pub distinct_https_certificates: usize,
    /// Distinct moduli seen on HTTPS.
    pub distinct_https_moduli: usize,
    /// Distinct RSA moduli across every protocol.
    pub total_distinct_moduli: usize,
    /// Moduli factored by batch GCD.
    pub vulnerable_moduli: usize,
    /// HTTPS host records serving a factored key.
    pub vulnerable_https_host_records: usize,
    /// Distinct HTTPS certificates containing a factored key.
    pub vulnerable_https_certificates: usize,
}

impl DatasetTotals {
    /// Fraction of distinct moduli that were factored (paper: 0.37%).
    pub fn vulnerable_fraction(&self) -> f64 {
        self.vulnerable_moduli as f64 / self.total_distinct_moduli.max(1) as f64
    }
}

/// Build Table 1.
pub fn dataset_totals(dataset: &StudyDataset, vulnerable: &HashSet<ModulusId>) -> DatasetTotals {
    let mut https_certs = HashSet::new();
    let mut https_moduli = HashSet::new();
    let mut https_records = 0usize;
    let mut vulnerable_records = 0usize;
    let mut vulnerable_certs = HashSet::new();
    for scan in dataset.https_scans() {
        for rec in &scan.records {
            https_records += 1;
            https_moduli.insert(rec.modulus);
            for c in &rec.certs {
                https_certs.insert(*c);
            }
            if vulnerable.contains(&rec.modulus) {
                vulnerable_records += 1;
                for c in &rec.certs {
                    // Only the leaf carries the weak key, but intermediates
                    // never carry a vulnerable modulus, so attribute to the
                    // cert whose modulus matches.
                    let cert = dataset.certs.get(*c);
                    if dataset.moduli.lookup(&cert.modulus) == Some(rec.modulus) {
                        vulnerable_certs.insert(*c);
                    }
                }
            }
        }
    }
    DatasetTotals {
        https_host_records: https_records,
        distinct_https_certificates: https_certs.len(),
        distinct_https_moduli: https_moduli.len(),
        total_distinct_moduli: dataset.moduli.len(),
        vulnerable_moduli: vulnerable.len(),
        vulnerable_https_host_records: vulnerable_records,
        vulnerable_https_certificates: vulnerable_certs.len(),
    }
}

/// One column of Table 3 (a single scan's summary).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanSummary {
    /// Scan identification, e.g. "2010-07 (EFF)".
    pub label: String,
    /// TLS handshakes (host records).
    pub handshakes: usize,
    /// Distinct certificates in the scan.
    pub distinct_certificates: usize,
    /// Distinct RSA keys in the scan.
    pub distinct_keys: usize,
}

/// Build Table 3: summaries of the earliest and latest HTTPS scans, or
/// `None` when the dataset contains no HTTPS scan at all.
pub fn first_last_scan_summary(dataset: &StudyDataset) -> Option<(ScanSummary, ScanSummary)> {
    let summarize = |scan: &wk_scan::Scan| {
        let mut certs = HashSet::new();
        let mut keys = HashSet::new();
        for rec in &scan.records {
            keys.insert(rec.modulus);
            for c in &rec.certs {
                certs.insert(*c);
            }
        }
        ScanSummary {
            label: format!("{} ({})", scan.date, scan.source.name()),
            handshakes: scan.records.len(),
            distinct_certificates: certs.len(),
            distinct_keys: keys.len(),
        }
    };
    let first = dataset.https_scans().next()?;
    let last = dataset.https_scans().last()?;
    Some((summarize(first), summarize(last)))
}

/// One row of Table 4 (a protocol snapshot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolRow {
    /// Protocol.
    pub protocol: Protocol,
    /// Snapshot date label.
    pub date: String,
    /// Hosts with public keys.
    pub total_hosts: usize,
    /// Hosts with RSA keys (== total in the simulation; the paper's SSH
    /// population includes non-RSA host keys).
    pub rsa_hosts: usize,
    /// Hosts serving factored keys.
    pub vulnerable_hosts: usize,
}

/// Build Table 4: the latest snapshot per protocol.
pub fn protocol_table(dataset: &StudyDataset, vulnerable: &HashSet<ModulusId>) -> Vec<ProtocolRow> {
    Protocol::all()
        .iter()
        .filter_map(|&protocol| {
            let scan = dataset.protocol_scans(protocol).last()?;
            let vulnerable_hosts = scan
                .records
                .iter()
                .filter(|r| vulnerable.contains(&r.modulus))
                .count();
            Some(ProtocolRow {
                protocol,
                date: scan.date.to_string(),
                total_hosts: scan.records.len(),
                rsa_hosts: scan.records.len(),
                vulnerable_hosts,
            })
        })
        .collect()
}

/// Table 5: classify each vendor's recovered primes with the OpenSSL
/// fingerprint. Only vendors with factored keys appear (the fingerprint
/// needs private keys).
pub fn openssl_table(
    labeling: &Labeling,
    factored: &[FactoredModulus],
) -> BTreeMap<VendorId, OpensslVerdict> {
    let mut primes_by_vendor: BTreeMap<VendorId, Vec<Natural>> = BTreeMap::new();
    for f in factored {
        let Some(&vendor) = labeling.modulus_vendor.get(&f.id) else {
            continue;
        };
        let entry = primes_by_vendor.entry(vendor).or_default();
        entry.push(f.p.clone());
        entry.push(f.q.clone());
    }
    primes_by_vendor
        .into_iter()
        .map(|(vendor, primes)| (vendor, classify_primes(&primes)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wk_cert::{MonthDate, SubjectStyle};
    use wk_scan::{CertStore, GroundTruth, HostRecord, ModulusStore, Scan, ScanSource};

    fn mini_dataset() -> (StudyDataset, HashSet<ModulusId>) {
        let mut moduli = ModulusStore::default();
        let mut certs = CertStore::default();
        let weak_n = Natural::from(33u64);
        let clean_n = Natural::from(323u64);
        let ssh_n = Natural::from(39u64);
        let weak = moduli.intern(&weak_n);
        let clean = moduli.intern(&clean_n);
        let ssh = moduli.intern(&ssh_n);
        let wc = certs.intern(SubjectStyle::JuniperSystemGenerated.certificate(
            1,
            1,
            weak_n,
            MonthDate::new(2010, 7),
        ));
        let cc = certs.intern(SubjectStyle::JuniperSystemGenerated.certificate(
            2,
            2,
            clean_n,
            MonthDate::new(2010, 7),
        ));
        let scans = vec![
            Scan {
                date: MonthDate::new(2010, 7),
                source: ScanSource::Eff,
                protocol: Protocol::Https,
                records: vec![
                    HostRecord {
                        ip: 1,
                        certs: vec![wc],
                        modulus: weak,
                        rsa_kex_only: false,
                    },
                    HostRecord {
                        ip: 2,
                        certs: vec![cc],
                        modulus: clean,
                        rsa_kex_only: false,
                    },
                ],
            },
            Scan {
                date: MonthDate::new(2016, 4),
                source: ScanSource::Censys,
                protocol: Protocol::Https,
                records: vec![HostRecord {
                    ip: 2,
                    certs: vec![cc],
                    modulus: clean,
                    rsa_kex_only: false,
                }],
            },
            Scan {
                date: MonthDate::new(2015, 10),
                source: ScanSource::Censys,
                protocol: Protocol::Ssh,
                records: vec![HostRecord {
                    ip: 9,
                    certs: vec![],
                    modulus: ssh,
                    rsa_kex_only: false,
                }],
            },
        ];
        (
            StudyDataset {
                scans,
                certs,
                moduli,
                truth: GroundTruth::default(),
            },
            [weak].into_iter().collect(),
        )
    }

    #[test]
    fn table1_counts() {
        let (ds, vuln) = mini_dataset();
        let t = dataset_totals(&ds, &vuln);
        assert_eq!(t.https_host_records, 3);
        assert_eq!(t.distinct_https_certificates, 2);
        assert_eq!(t.distinct_https_moduli, 2);
        assert_eq!(t.total_distinct_moduli, 3); // + SSH key
        assert_eq!(t.vulnerable_moduli, 1);
        assert_eq!(t.vulnerable_https_host_records, 1);
        assert_eq!(t.vulnerable_https_certificates, 1);
        assert!(t.vulnerable_fraction() > 0.3 && t.vulnerable_fraction() < 0.34);
    }

    #[test]
    fn table3_first_and_last() {
        let (ds, _) = mini_dataset();
        let (first, last) = first_last_scan_summary(&ds).expect("dataset has HTTPS scans");
        assert!(first.label.contains("2010-07"));
        assert!(first.label.contains("EFF"));
        assert_eq!(first.handshakes, 2);
        assert!(last.label.contains("2016-04"));
        assert_eq!(last.handshakes, 1);
        assert_eq!(last.distinct_keys, 1);
    }

    #[test]
    fn table4_protocol_rows() {
        let (ds, vuln) = mini_dataset();
        let rows = protocol_table(&ds, &vuln);
        assert_eq!(rows.len(), 2); // HTTPS + SSH only in this mini dataset
        let https = rows.iter().find(|r| r.protocol == Protocol::Https).unwrap();
        assert_eq!(https.total_hosts, 1); // latest HTTPS scan
        assert_eq!(https.vulnerable_hosts, 0);
        let ssh = rows.iter().find(|r| r.protocol == Protocol::Ssh).unwrap();
        assert_eq!(ssh.total_hosts, 1);
    }

    #[test]
    fn table5_classifies_by_vendor() {
        let (ds, _) = mini_dataset();
        let factored = vec![FactoredModulus {
            id: ModulusId(0),
            p: Natural::from(3u64),
            q: Natural::from(11u64),
        }];
        let labeling = crate::labeling::label_dataset(&ds, &factored);
        let table = openssl_table(&labeling, &factored);
        assert!(table.contains_key(&VendorId::Juniper));
        // Two tiny primes: inconclusive, but present.
        assert_eq!(table[&VendorId::Juniper].primes_examined, 2);
    }
}
