//! Per-scan time series: the substance of Figures 1, 3-6, and 8-10.
//!
//! Every figure in the paper plots, per monthly scan, the number of hosts
//! (total above, vulnerable below) — aggregated (Figure 1) or restricted to
//! one fingerprinted vendor (Figures 3-10). A "vulnerable host" is an IP
//! serving a certificate whose modulus batch GCD factored.

use crate::labeling::Labeling;
use std::collections::HashSet;
use wk_cert::{select_leaf, MonthDate};
use wk_scan::{CertId, ModulusId, ScanSource, StudyDataset, VendorId, HEARTBLEED};

/// One point of a hosts-over-time series.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SeriesPoint {
    /// Scan month.
    pub date: MonthDate,
    /// Scan source (figures color by this).
    pub source: ScanSource,
    /// Hosts observed.
    pub total: usize,
    /// Hosts serving a factored key.
    pub vulnerable: usize,
}

/// A named time series.
#[derive(Clone, Debug)]
pub struct Series {
    /// Label ("all hosts" or a vendor name).
    pub name: String,
    /// Points in chronological order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// The maximum vulnerable count over the series.
    pub fn peak_vulnerable(&self) -> usize {
        self.points.iter().map(|p| p.vulnerable).max().unwrap_or(0)
    }

    /// Consecutive scan-over-scan point pairs `(earlier, later)`. The slice
    /// pattern destructures each window, so callers never index into it.
    pub fn pairs(&self) -> impl Iterator<Item = (&SeriesPoint, &SeriesPoint)> {
        self.points.windows(2).filter_map(|w| match w {
            [a, b] => Some((a, b)),
            _ => None,
        })
    }

    /// Point at a given month, if scanned.
    pub fn at(&self, date: MonthDate) -> Option<&SeriesPoint> {
        self.points.iter().find(|p| p.date == date)
    }

    /// Largest month-over-month drop in the vulnerable count, returned as
    /// `(from_date, to_date, drop)`.
    ///
    /// Tie-breaking is deterministic (`max_by_key` would return whichever
    /// maximal window came last): among equal maximal drops, a window
    /// straddling the Heartbleed month wins — the event study asks "did the
    /// largest drop land on Heartbleed", and when an equally large drop
    /// exists elsewhere the answer is still yes — otherwise the earliest
    /// window is returned.
    pub fn largest_vulnerable_drop(&self) -> Option<(MonthDate, MonthDate, i64)> {
        Self::largest_drop(
            self.pairs()
                .map(|(a, b)| (a.date, b.date, a.vulnerable as i64 - b.vulnerable as i64)),
        )
    }

    /// Largest month-over-month drop in the total count. Ties resolve as in
    /// [`Series::largest_vulnerable_drop`]: Heartbleed-straddling window
    /// first, then earliest.
    pub fn largest_total_drop(&self) -> Option<(MonthDate, MonthDate, i64)> {
        Self::largest_drop(
            self.pairs()
                .map(|(a, b)| (a.date, b.date, a.total as i64 - b.total as i64)),
        )
    }

    fn largest_drop(
        windows: impl Iterator<Item = (MonthDate, MonthDate, i64)>,
    ) -> Option<(MonthDate, MonthDate, i64)> {
        let windows: Vec<_> = windows.collect();
        let max = windows.iter().map(|&(_, _, drop)| drop).max()?;
        windows
            .iter()
            .copied()
            .filter(|&(_, _, drop)| drop == max)
            .find(|&(from, to, _)| from <= HEARTBLEED && to >= HEARTBLEED)
            .or_else(|| windows.into_iter().find(|&(_, _, drop)| drop == max))
    }
}

/// The leaf certificate of a host record (handles Rapid7's unchained
/// intermediates via [`select_leaf`]).
pub fn record_leaf(dataset: &StudyDataset, certs: &[CertId]) -> Option<CertId> {
    match certs {
        [] => None,
        &[only] => Some(only),
        _ => {
            let materialized: Vec<_> = certs
                .iter()
                .map(|&id| dataset.certs.get(id).clone())
                .collect();
            select_leaf(&materialized).and_then(|i| certs.get(i).copied())
        }
    }
}

/// Figure 1: all HTTPS hosts and all vulnerable hosts per scan.
pub fn aggregate_series(dataset: &StudyDataset, vulnerable: &HashSet<ModulusId>) -> Series {
    let points = dataset
        .https_scans()
        .map(|scan| {
            let total = scan.records.len();
            let vuln = scan
                .records
                .iter()
                .filter(|r| vulnerable.contains(&r.modulus))
                .count();
            SeriesPoint {
                date: scan.date,
                source: scan.source,
                total,
                vulnerable: vuln,
            }
        })
        .collect();
    Series {
        name: "all HTTPS hosts".into(),
        points,
    }
}

/// Figures 3-10: hosts per scan restricted to one vendor's fingerprint.
pub fn vendor_series(
    dataset: &StudyDataset,
    labeling: &Labeling,
    vulnerable: &HashSet<ModulusId>,
    vendor: VendorId,
) -> Series {
    let points = dataset
        .https_scans()
        .map(|scan| {
            let mut total = 0;
            let mut vuln = 0;
            for rec in &scan.records {
                let Some(leaf) = record_leaf(dataset, &rec.certs) else {
                    continue;
                };
                if labeling.cert_vendor.get(&leaf) != Some(&vendor) {
                    continue;
                }
                total += 1;
                if vulnerable.contains(&rec.modulus) {
                    vuln += 1;
                }
            }
            SeriesPoint {
                date: scan.date,
                source: scan.source,
                total,
                vulnerable: vuln,
            }
        })
        .collect();
    Series {
        name: vendor.name().into(),
        points,
    }
}

/// Restrict to one vendor *model* (Cisco's per-model Figure 7 series).
/// Matches on the OU/model captured at fingerprint time by re-running the
/// subject rule on the leaf certificate.
pub fn model_series(
    dataset: &StudyDataset,
    vulnerable: &HashSet<ModulusId>,
    vendor: VendorId,
    model: &str,
) -> Series {
    let points = dataset
        .https_scans()
        .map(|scan| {
            let mut total = 0;
            let mut vuln = 0;
            for rec in &scan.records {
                let Some(leaf) = record_leaf(dataset, &rec.certs) else {
                    continue;
                };
                let cert = dataset.certs.get(leaf);
                let Some(label) = wk_fingerprint::identify_vendor(cert) else {
                    continue;
                };
                if label.vendor != vendor || label.model.as_deref() != Some(model) {
                    continue;
                }
                total += 1;
                if vulnerable.contains(&rec.modulus) {
                    vuln += 1;
                }
            }
            SeriesPoint {
                date: scan.date,
                source: scan.source,
                total,
                vulnerable: vuln,
            }
        })
        .collect();
    Series {
        name: format!("{} {}", vendor.name(), model),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wk_bigint::Natural;
    use wk_cert::SubjectStyle;
    use wk_scan::{CertStore, GroundTruth, HostRecord, ModulusStore, Protocol, Scan};

    /// Two-scan synthetic dataset: one Juniper host goes from a vulnerable
    /// modulus to a clean one.
    fn synthetic() -> (StudyDataset, HashSet<ModulusId>) {
        let mut moduli = ModulusStore::default();
        let mut certs = CertStore::default();
        let weak_n = Natural::from(33u64);
        let clean_n = Natural::from(323u64);
        let weak = moduli.intern(&weak_n);
        let clean = moduli.intern(&clean_n);
        let weak_cert = certs.intern(SubjectStyle::JuniperSystemGenerated.certificate(
            1,
            1,
            weak_n,
            MonthDate::new(2012, 6),
        ));
        let clean_cert = certs.intern(SubjectStyle::JuniperSystemGenerated.certificate(
            2,
            1,
            clean_n,
            MonthDate::new(2013, 6),
        ));
        let scans = vec![
            Scan {
                date: MonthDate::new(2012, 6),
                source: ScanSource::Ecosystem,
                protocol: Protocol::Https,
                records: vec![
                    HostRecord {
                        ip: 1,
                        certs: vec![weak_cert],
                        modulus: weak,
                        rsa_kex_only: false,
                    },
                    HostRecord {
                        ip: 2,
                        certs: vec![clean_cert],
                        modulus: clean,
                        rsa_kex_only: false,
                    },
                ],
            },
            Scan {
                date: MonthDate::new(2013, 6),
                source: ScanSource::Ecosystem,
                protocol: Protocol::Https,
                records: vec![HostRecord {
                    ip: 1,
                    certs: vec![clean_cert],
                    modulus: clean,
                    rsa_kex_only: false,
                }],
            },
        ];
        let dataset = StudyDataset {
            scans,
            certs,
            moduli,
            truth: GroundTruth::default(),
        };
        let vulnerable: HashSet<ModulusId> = [weak].into_iter().collect();
        (dataset, vulnerable)
    }

    #[test]
    fn aggregate_counts_per_scan() {
        let (ds, vuln) = synthetic();
        let series = aggregate_series(&ds, &vuln);
        assert_eq!(series.points.len(), 2);
        assert_eq!(series.points[0].total, 2);
        assert_eq!(series.points[0].vulnerable, 1);
        assert_eq!(series.points[1].total, 1);
        assert_eq!(series.points[1].vulnerable, 0);
        assert_eq!(series.peak_vulnerable(), 1);
    }

    #[test]
    fn vendor_series_filters_by_label() {
        let (ds, vuln) = synthetic();
        let labeling = crate::labeling::label_dataset(&ds, &[]);
        let juniper = vendor_series(&ds, &labeling, &vuln, VendorId::Juniper);
        assert_eq!(juniper.points[0].total, 2);
        assert_eq!(juniper.points[0].vulnerable, 1);
        let cisco = vendor_series(&ds, &labeling, &vuln, VendorId::Cisco);
        assert_eq!(cisco.points[0].total, 0);
    }

    #[test]
    fn largest_drop_found() {
        let (ds, vuln) = synthetic();
        let series = aggregate_series(&ds, &vuln);
        let (from, to, drop) = series.largest_vulnerable_drop().unwrap();
        assert_eq!(from, MonthDate::new(2012, 6));
        assert_eq!(to, MonthDate::new(2013, 6));
        assert_eq!(drop, 1);
    }

    fn flat_series(points: &[(u16, u8, usize, usize)]) -> Series {
        Series {
            name: "tie".into(),
            points: points
                .iter()
                .map(|&(y, m, total, vulnerable)| SeriesPoint {
                    date: MonthDate::new(y, m),
                    source: ScanSource::Rapid7,
                    total,
                    vulnerable,
                })
                .collect(),
        }
    }

    #[test]
    fn tied_drops_prefer_heartbleed_window() {
        // Two equal drops of 50; the later one straddles 2014-04. The old
        // `max_by_key` happened to pick the last maximal window — the rule
        // is now explicit and holds regardless of ordering.
        let s = flat_series(&[
            (2012, 1, 500, 100),
            (2012, 2, 450, 50),
            (2014, 3, 450, 100),
            (2014, 5, 400, 50),
        ]);
        let (from, to, drop) = s.largest_vulnerable_drop().unwrap();
        assert_eq!(drop, 50);
        assert_eq!(
            (from, to),
            (MonthDate::new(2014, 3), MonthDate::new(2014, 5))
        );

        // Mirror image: the straddling window comes first, an equal drop
        // later. max_by_key would have picked the later one.
        let s = flat_series(&[
            (2014, 3, 450, 100),
            (2014, 5, 400, 50),
            (2015, 1, 400, 100),
            (2015, 2, 350, 50),
        ]);
        let (from, to, _) = s.largest_vulnerable_drop().unwrap();
        assert_eq!(
            (from, to),
            (MonthDate::new(2014, 3), MonthDate::new(2014, 5))
        );
        let (from, to, _) = s.largest_total_drop().unwrap();
        assert_eq!(
            (from, to),
            (MonthDate::new(2014, 3), MonthDate::new(2014, 5))
        );
    }

    #[test]
    fn tied_drops_away_from_heartbleed_prefer_earliest() {
        let s = flat_series(&[
            (2012, 1, 500, 100),
            (2012, 2, 450, 50),
            (2015, 1, 450, 100),
            (2015, 2, 400, 50),
        ]);
        let (from, to, drop) = s.largest_vulnerable_drop().unwrap();
        assert_eq!(drop, 50);
        assert_eq!(
            (from, to),
            (MonthDate::new(2012, 1), MonthDate::new(2012, 2))
        );
    }

    #[test]
    fn at_accessor() {
        let (ds, vuln) = synthetic();
        let series = aggregate_series(&ds, &vuln);
        assert!(series.at(MonthDate::new(2012, 6)).is_some());
        assert!(series.at(MonthDate::new(2014, 1)).is_none());
    }
}
