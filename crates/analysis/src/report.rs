//! Text rendering of tables and figure series, matching the rows the paper
//! reports. Used by the `repro` binary and EXPERIMENTS.md generation.

use crate::tables::{DatasetTotals, ProtocolRow, ScanSummary};
use crate::timeseries::Series;
use crate::transitions::TransitionReport;
use std::collections::BTreeMap;
use std::fmt::Write;
use wk_fingerprint::{OpensslClass, OpensslVerdict};
use wk_scan::VendorId;

/// Render Table 1.
pub fn render_table1(t: &DatasetTotals) -> String {
    let mut s = String::new();
    let mut row = |k: &str, v: String| {
        let _ = writeln!(s, "{k:<38} {v:>14}");
    };
    row("HTTPS host records", t.https_host_records.to_string());
    row(
        "Distinct HTTPS certificates",
        t.distinct_https_certificates.to_string(),
    );
    row("Distinct HTTPS moduli", t.distinct_https_moduli.to_string());
    row(
        "Total distinct RSA moduli",
        t.total_distinct_moduli.to_string(),
    );
    row(
        "Vulnerable RSA moduli",
        format!(
            "{} ({:.2}%)",
            t.vulnerable_moduli,
            100.0 * t.vulnerable_fraction()
        ),
    );
    row(
        "Vulnerable HTTPS host records",
        t.vulnerable_https_host_records.to_string(),
    );
    row(
        "Vulnerable HTTPS certificates",
        t.vulnerable_https_certificates.to_string(),
    );
    s
}

/// Render Table 3 (two scan summaries side by side).
pub fn render_table3(first: &ScanSummary, last: &ScanSummary) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{:<24} {:>16} {:>16}", "", first.label, last.label);
    let mut row = |k: &str, a: usize, b: usize| {
        let _ = writeln!(s, "{k:<24} {a:>16} {b:>16}");
    };
    row("TLS Handshakes", first.handshakes, last.handshakes);
    row(
        "Distinct Certificates",
        first.distinct_certificates,
        last.distinct_certificates,
    );
    row("Distinct RSA Keys", first.distinct_keys, last.distinct_keys);
    s
}

/// Render Table 4.
pub fn render_table4(rows: &[ProtocolRow]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<8} {:>10} {:>14} {:>12} {:>16}",
        "Proto", "Date", "Total hosts", "RSA hosts", "Vulnerable"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<8} {:>10} {:>14} {:>12} {:>16}",
            r.protocol.name(),
            r.date,
            r.total_hosts,
            r.rsa_hosts,
            r.vulnerable_hosts
        );
    }
    s
}

/// Render Table 5.
pub fn render_table5(table: &BTreeMap<VendorId, OpensslVerdict>) -> String {
    let mut satisfy = Vec::new();
    let mut not = Vec::new();
    let mut inconclusive = Vec::new();
    for (vendor, verdict) in table {
        let line = format!(
            "{} ({}/{} primes satisfy)",
            vendor.name(),
            verdict.satisfying,
            verdict.primes_examined
        );
        match verdict.class {
            OpensslClass::LikelyOpenssl => satisfy.push(line),
            OpensslClass::NotOpenssl => not.push(line),
            OpensslClass::Inconclusive => inconclusive.push(line),
        }
    }
    let mut s = String::new();
    let _ = writeln!(s, "Satisfy OpenSSL fingerprint:");
    for l in satisfy {
        let _ = writeln!(s, "  {l}");
    }
    let _ = writeln!(s, "Do not satisfy:");
    for l in not {
        let _ = writeln!(s, "  {l}");
    }
    if !inconclusive.is_empty() {
        let _ = writeln!(s, "Inconclusive (too few primes):");
        for l in inconclusive {
            let _ = writeln!(s, "  {l}");
        }
    }
    s
}

/// Render a figure series as a date/source/total/vulnerable table.
pub fn render_series(series: &Series) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# {}", series.name);
    let _ = writeln!(
        s,
        "{:<10} {:<10} {:>10} {:>12}",
        "date", "source", "total", "vulnerable"
    );
    for p in &series.points {
        let _ = writeln!(
            s,
            "{:<10} {:<10} {:>10} {:>12}",
            p.date.to_string(),
            p.source.name(),
            p.total,
            p.vulnerable
        );
    }
    s
}

/// Render a series as two aligned ASCII sparklines (total above,
/// vulnerable below) — the visual shape of the paper's figures in a
/// terminal. Each column is one scan; heights are normalized per row.
pub fn render_sparkline(series: &Series) -> String {
    const LEVELS: &[char] = &[' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let spark = |values: &[usize]| -> String {
        let max = values.iter().copied().max().unwrap_or(0).max(1);
        values
            .iter()
            .map(|&v| {
                let idx = (v * (LEVELS.len() - 1) + max / 2) / max;
                LEVELS[idx.min(LEVELS.len() - 1)]
            })
            .collect()
    };
    let totals: Vec<usize> = series.points.iter().map(|p| p.total).collect();
    let vulns: Vec<usize> = series.points.iter().map(|p| p.vulnerable).collect();
    let first = series.points.first();
    let last = series.points.last();
    let range = match (first, last) {
        (Some(f), Some(l)) => format!("{} .. {}", f.date, l.date),
        _ => String::new(),
    };
    format!(
        "{name} [{range}]\n  total      |{t}| peak {tp}\n  vulnerable |{v}| peak {vp}\n",
        name = series.name,
        t = spark(&totals),
        tp = totals.iter().max().unwrap_or(&0),
        v = spark(&vulns),
        vp = vulns.iter().max().unwrap_or(&0),
    )
}

/// Render a transition report (the §4.1 Juniper analysis).
pub fn render_transitions(vendor: &str, r: &TransitionReport) -> String {
    format!(
        "{vendor}: {} IPs ever seen, {} ever vulnerable; transitions: \
         {} vulnerable->clean, {} clean->vulnerable, {} multiple, {} stable\n",
        r.ips_ever_seen,
        r.ips_ever_vulnerable,
        r.vuln_to_clean,
        r.clean_to_vuln,
        r.multiple_transitions,
        r.stable
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeseries::SeriesPoint;
    use wk_cert::MonthDate;
    use wk_scan::{Protocol, ScanSource};

    #[test]
    fn table1_rendering_contains_all_rows() {
        let t = DatasetTotals {
            https_host_records: 100,
            distinct_https_certificates: 50,
            distinct_https_moduli: 40,
            total_distinct_moduli: 60,
            vulnerable_moduli: 3,
            vulnerable_https_host_records: 7,
            vulnerable_https_certificates: 4,
        };
        let out = render_table1(&t);
        for needle in [
            "HTTPS host records",
            "100",
            "Vulnerable RSA moduli",
            "5.00%",
        ] {
            assert!(out.contains(needle), "missing {needle}: {out}");
        }
    }

    #[test]
    fn table4_rendering() {
        let rows = vec![ProtocolRow {
            protocol: Protocol::Ssh,
            date: "2015-10".into(),
            total_hosts: 120,
            rsa_hosts: 120,
            vulnerable_hosts: 4,
        }];
        let out = render_table4(&rows);
        assert!(out.contains("SSH"));
        assert!(out.contains("120"));
        assert!(out.contains('4'));
    }

    #[test]
    fn series_rendering() {
        let s = Series {
            name: "Juniper".into(),
            points: vec![SeriesPoint {
                date: MonthDate::new(2014, 4),
                source: ScanSource::Rapid7,
                total: 55,
                vulnerable: 20,
            }],
        };
        let out = render_series(&s);
        assert!(out.contains("# Juniper"));
        assert!(out.contains("2014-04"));
        assert!(out.contains("Rapid7"));
        assert!(out.contains("55"));
    }

    #[test]
    fn sparkline_shapes() {
        let s = Series {
            name: "Juniper".into(),
            points: (0..10)
                .map(|i| SeriesPoint {
                    date: MonthDate::new(2012, 1).plus(i),
                    source: ScanSource::Ecosystem,
                    total: (i as usize + 1) * 10,
                    vulnerable: if i < 5 { i as usize } else { 10 - i as usize },
                })
                .collect(),
        };
        let out = render_sparkline(&s);
        assert!(out.contains("Juniper"));
        assert!(out.contains("2012-01 .. 2012-10"));
        assert!(out.contains("peak 100"));
        // Rising totals: last column is the full block, first the lightest.
        let total_line = out.lines().nth(1).unwrap();
        assert!(total_line.contains('█'));
        assert_eq!(out.lines().count(), 3);
    }

    #[test]
    fn sparkline_empty_series() {
        let s = Series {
            name: "empty".into(),
            points: vec![],
        };
        let out = render_sparkline(&s);
        assert!(out.contains("empty"));
    }

    #[test]
    fn transitions_rendering() {
        let r = TransitionReport {
            ips_ever_seen: 169,
            ips_ever_vulnerable: 34,
            vuln_to_clean: 11,
            clean_to_vuln: 12,
            multiple_transitions: 2,
            stable: 144,
        };
        let out = render_transitions("Juniper", &r);
        assert!(out.contains("169 IPs"));
        assert!(out.contains("11 vulnerable->clean"));
    }
}
