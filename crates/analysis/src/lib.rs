//! # wk-analysis — longitudinal analysis over simulated scan data
//!
//! §4 of the paper, as code: consume a [`wk_scan::StudyDataset`] plus the
//! batch-GCD vulnerable set and produce every table and figure series.
//!
//! * [`labeling`] — combine subject rules with shared-prime extrapolation
//!   into a dataset-wide vendor labeling;
//! * [`timeseries`] — per-scan total/vulnerable host series (Figures 1,
//!   3-6, 8-10), with leaf selection for Rapid7 chains;
//! * [`transitions`] — per-IP vulnerable/clean transition analysis (§4.1);
//! * [`events`] — Heartbleed drop attribution and Cisco EOL slope studies;
//! * [`tables`] — Tables 1, 3, 4, and 5 builders;
//! * [`report`] — plain-text rendering matching the paper's rows.
//!
//! This crate never reads the simulator's ground truth; tests score its
//! outputs against ground truth from outside.

#![forbid(unsafe_code)]

pub mod events;
pub mod exposure;
pub mod labeling;
pub mod report;
pub mod tables;
pub mod timeseries;
pub mod transitions;

pub use events::{
    eol_impact, heartbleed_impact, source_artifacts, EolImpact, HeartbleedImpact, SourceArtifact,
};
pub use exposure::{passive_exposure, ExposureReport};
pub use labeling::{attribute_moduli, label_dataset, Labeling};
pub use tables::{
    dataset_totals, first_last_scan_summary, openssl_table, protocol_table, DatasetTotals,
    ProtocolRow, ScanSummary,
};
pub use timeseries::{
    aggregate_series, model_series, record_leaf, vendor_series, Series, SeriesPoint,
};
pub use transitions::{rekey_vs_churn, vendor_transitions, RekeyReport, TransitionReport};
