//! Dataset-wide vendor labeling.
//!
//! Combines the two labeling mechanisms of §3.3: certificate-subject rules
//! for certificates that carry a marker, and shared-prime extrapolation for
//! those that don't (IP-octet Fritz!Boxes, IBM's customer-named certs).

use std::collections::HashMap;
use wk_fingerprint::{extrapolate, identify_vendor, FactoredModulus, PrimeClique, VendorOverlap};
use wk_scan::{CertId, ModulusId, StudyDataset, VendorId};

/// The complete labeling of a dataset.
#[derive(Clone, Debug, Default)]
pub struct Labeling {
    /// Vendor per certificate, where identified (by subject or via the
    /// certificate's modulus being prime-linked to a vendor).
    pub cert_vendor: HashMap<CertId, VendorId>,
    /// Vendor per modulus (union of subject-derived and extrapolated).
    pub modulus_vendor: HashMap<ModulusId, VendorId>,
    /// Certificates labeled only thanks to shared primes.
    pub extrapolated_certs: usize,
    /// Cross-vendor overlaps: shared primes claimed by two vendors
    /// (Xerox/Dell) and clique moduli served under another vendor's subject
    /// (IBM/Siemens — there `prime` holds the full shared modulus).
    pub overlaps: Vec<VendorOverlap>,
}

/// Label every certificate and modulus in the dataset.
///
/// `factored` is the batch-GCD output (only factored moduli can participate
/// in prime extrapolation).
pub fn label_dataset(dataset: &StudyDataset, factored: &[FactoredModulus]) -> Labeling {
    label_dataset_with_cliques(dataset, factored, &[])
}

/// Like [`label_dataset`], additionally applying known-prime-clique labels
/// *before* extrapolation — the paper's §3.3.1 IBM identification, where
/// moduli built from the nine known primes are labeled IBM even though
/// their certificates never name IBM. Subject-derived labels still win for
/// moduli that have one (this is what surfaces the IBM/Siemens overlap).
pub fn label_dataset_with_cliques(
    dataset: &StudyDataset,
    factored: &[FactoredModulus],
    clique_labels: &[(PrimeClique, VendorId)],
) -> Labeling {
    let mut cert_vendor: HashMap<CertId, VendorId> = HashMap::new();
    let mut modulus_vendor: HashMap<ModulusId, VendorId> = HashMap::new();
    let mut clique_overlaps: Vec<VendorOverlap> = Vec::new();

    // Pass 1: known-clique labels. At the *modulus* level the clique
    // fingerprint is authoritative — a nine-prime modulus is an IBM key
    // regardless of whose certificate serves it (§3.3.1).
    for (clique, vendor) in clique_labels {
        for &mid in &clique.moduli {
            modulus_vendor.insert(mid, *vendor);
        }
    }

    // Pass 2: subject rules. A modulus inherits the vendor of any
    // subject-identified certificate carrying it — unless a clique already
    // claims it, in which case the disagreement is the IBM/Siemens-style
    // overlap the paper investigates by hand.
    for (cert_id, cert) in dataset.certs.iter() {
        if let Some(label) = identify_vendor(cert) {
            cert_vendor.insert(cert_id, label.vendor);
            if let Some(mid) = dataset.moduli.lookup(&cert.modulus) {
                match modulus_vendor.get(&mid) {
                    Some(&existing) if existing != label.vendor => {
                        if !clique_overlaps.iter().any(|o| {
                            o.vendors.contains(&existing) && o.vendors.contains(&label.vendor)
                        }) {
                            clique_overlaps.push(VendorOverlap {
                                prime: cert.modulus.clone(),
                                vendors: vec![existing, label.vendor],
                            });
                        }
                    }
                    Some(_) => {}
                    None => {
                        modulus_vendor.insert(mid, label.vendor);
                    }
                }
            }
        }
    }

    // Pass 3: prime-pool extrapolation over the factored moduli.
    let result = extrapolate(factored, &modulus_vendor);
    for (mid, vendor) in &result.extrapolated {
        modulus_vendor.insert(*mid, *vendor);
    }

    // Pass 4: push extrapolated modulus labels back onto unlabeled certs.
    let mut extrapolated_certs = 0;
    for (cert_id, cert) in dataset.certs.iter() {
        if cert_vendor.contains_key(&cert_id) {
            continue;
        }
        if let Some(mid) = dataset.moduli.lookup(&cert.modulus) {
            if let Some(&vendor) = modulus_vendor.get(&mid) {
                cert_vendor.insert(cert_id, vendor);
                extrapolated_certs += 1;
            }
        }
    }

    let mut overlaps = result.overlaps;
    overlaps.extend(clique_overlaps);
    Labeling {
        cert_vendor,
        modulus_vendor,
        extrapolated_certs,
        overlaps,
    }
}

/// Dataset-free vendor attribution over a live corpus.
///
/// The long-running audit daemon (`wk-service`) has no [`StudyDataset`] —
/// only per-modulus subject-derived labels accumulated from the feed and the
/// factorizations from each incremental batch-GCD pass. This helper applies
/// the same §3.3 extrapolation step as [`label_dataset`]: moduli sharing a
/// pool prime with a subject-labeled modulus inherit its vendor. Returns the
/// merged per-modulus labeling (subject labels win where both exist) and any
/// cross-vendor overlaps the extrapolation surfaced.
pub fn attribute_moduli(
    factored: &[FactoredModulus],
    subject_labels: &HashMap<ModulusId, VendorId>,
) -> (HashMap<ModulusId, VendorId>, Vec<VendorOverlap>) {
    let result = extrapolate(factored, subject_labels);
    let mut merged = subject_labels.clone();
    for (mid, vendor) in &result.extrapolated {
        merged.entry(*mid).or_insert(*vendor);
    }
    (merged, result.overlaps)
}

#[cfg(test)]
mod tests {
    // Labeling is exercised end-to-end (simulated study -> batch GCD ->
    // labels -> scored against ground truth) in tests/pipeline.rs; the unit
    // tests here cover the pure plumbing with a synthetic dataset.
    use super::*;
    use wk_bigint::Natural;
    use wk_cert::{MonthDate, SubjectStyle};
    use wk_scan::{CertStore, GroundTruth, ModulusStore, Protocol, Scan, ScanSource};

    fn tiny_dataset() -> (StudyDataset, Vec<FactoredModulus>) {
        let mut moduli = ModulusStore::default();
        let mut certs = CertStore::default();
        // Juniper cert with modulus 3*11; an IP-octet cert with 3*13
        // (same pool prime 3 -> extrapolation should label it Juniper).
        let n1 = Natural::from(33u64);
        let n2 = Natural::from(39u64);
        let m1 = moduli.intern(&n1);
        let m2 = moduli.intern(&n2);
        let c1 = certs.intern(SubjectStyle::JuniperSystemGenerated.certificate(
            1,
            1,
            n1,
            MonthDate::new(2012, 1),
        ));
        let _c2 = certs.intern(
            SubjectStyle::IpOctetsOnly { ip: [10, 0, 0, 1] }.certificate(
                2,
                2,
                n2,
                MonthDate::new(2012, 1),
            ),
        );
        let dataset = StudyDataset {
            scans: vec![Scan {
                date: MonthDate::new(2012, 1),
                source: ScanSource::Ecosystem,
                protocol: Protocol::Https,
                records: vec![],
            }],
            certs,
            moduli,
            truth: GroundTruth::default(),
        };
        let factored = vec![
            FactoredModulus {
                id: m1,
                p: Natural::from(3u64),
                q: Natural::from(11u64),
            },
            FactoredModulus {
                id: m2,
                p: Natural::from(3u64),
                q: Natural::from(13u64),
            },
        ];
        let _ = c1;
        (dataset, factored)
    }

    #[test]
    fn subject_then_extrapolation_then_cert_backfill() {
        let (dataset, factored) = tiny_dataset();
        let labeling = label_dataset(&dataset, &factored);
        // Both moduli labeled Juniper; the IP-octet cert gained a label.
        assert_eq!(labeling.modulus_vendor.len(), 2);
        assert!(labeling
            .modulus_vendor
            .values()
            .all(|&v| v == VendorId::Juniper));
        assert_eq!(labeling.cert_vendor.len(), 2);
        assert_eq!(labeling.extrapolated_certs, 1);
        assert!(labeling.overlaps.is_empty());
    }

    #[test]
    fn no_factored_no_extrapolation() {
        let (dataset, _) = tiny_dataset();
        let labeling = label_dataset(&dataset, &[]);
        assert_eq!(labeling.cert_vendor.len(), 1); // only the Juniper subject
        assert_eq!(labeling.extrapolated_certs, 0);
    }
}
