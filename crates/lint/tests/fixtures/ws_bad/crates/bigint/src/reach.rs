//! Call-graph fixture: the panic site lives two hops away in an
//! out-of-scope crate, so only `panic-reachability` (not the token rule)
//! fires — at this public entry point, with the witness chain.

use wk_other::unchecked_head;

pub fn head_via_other(v: &[u32]) -> u32 {
    unchecked_head(v)
}
