//! Constructor-file fixture: this path ends in `bigint/src/natural.rs`,
//! the one place raw limb construction is legal.

pub struct Natural {
    pub limbs: Vec<u64>,
}

pub fn from_limbs(limbs: Vec<u64>) -> Natural {
    Natural { limbs }
}
