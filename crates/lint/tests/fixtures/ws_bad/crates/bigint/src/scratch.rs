//! Seeded-violation fixture for `arena-discipline`: a checkout that never
//! returns, an early exit between checkout and release, and buffers
//! stored in structs that outlive the pass.

pub struct Cache {
    pub buf: Vec<u64>,
}

pub fn leaky(n: usize) -> usize {
    let buf = crate::arena::take(n);
    buf.len()
}

pub fn early_exit(n: usize) -> usize {
    let buf = crate::arena::take(n);
    if n == 0 {
        return 0;
    }
    let len = buf.len();
    crate::arena::put(buf);
    len
}

pub fn stored(n: usize) -> Cache {
    Cache {
        buf: crate::arena::take(n),
    }
}

pub fn stored_by_assignment(c: &mut Cache, n: usize) {
    c.buf = crate::arena::take(n);
}

pub fn paired(n: usize) -> usize {
    let buf = crate::arena::take(n);
    let len = buf.len();
    crate::arena::put(buf);
    len
}

pub fn transferred(n: usize) -> crate::Natural {
    let buf = crate::arena::take(n);
    crate::Natural::from_limbs(buf)
}

pub fn allowed(n: usize) -> Vec<u64> {
    // lint:allow(arena-discipline) returned to the caller, which recycles it
    let buf = crate::arena::take(n);
    buf
}
