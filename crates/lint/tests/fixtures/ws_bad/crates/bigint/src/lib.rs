//! Seeded-violation fixture: `bigint` is a no-panic crate, so every
//! panic-capable construct below must be flagged or annotated.

pub fn head(v: &[u64]) -> u64 {
    v[0]
}

pub fn must(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn named(v: Option<u64>) -> u64 {
    v.expect("fixture")
}

pub fn boom() {
    panic!("fixture");
}

pub fn allowed_without_reason(v: Option<u64>) -> u64 {
    v.unwrap() // lint:allow(no-panic-in-lib)
}

pub fn properly_allowed(v: Option<u64>) -> u64 {
    // lint:allow(no-panic-in-lib) invariant: fixture callers always pass Some
    v.unwrap()
}

// lint:allow(no-panic-in-lib) stale: nothing below can panic
pub fn calm() {}

// lint:frobnicate(yes) not a directive wk-lint knows
pub fn precondition(x: bool) {
    assert!(x, "documented precondition, deliberately exempt");
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1u64).unwrap(), 1);
    }
}
