//! Atomics-audit fixture: this path ends in `batchgcd/src/pool.rs`, so it
//! is the audited atomics file and the one unsafe-allowlist entry.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn untagged(c: &AtomicU64) -> u64 {
    c.load(Ordering::Relaxed)
}

pub fn mislabeled(c: &AtomicU64) {
    c.store(1, Ordering::Relaxed); // lint:atomics(control) gates shutdown
}

pub fn counted(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); // lint:atomics(metrics) reporting counter only
}

pub fn mistagged(c: &AtomicU64) {
    c.fetch_add(1, Ordering::Relaxed); // lint:atomics(sometimes) bogus tag
}

pub fn allowlisted_unsafe(p: *const u64) -> u64 {
    unsafe { *p }
}
