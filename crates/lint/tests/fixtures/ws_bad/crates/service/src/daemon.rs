//! Semantic-rule fixture: `service` is both a durability crate and the
//! watermark-provenance crate, and lock discipline applies everywhere.

use std::fs;

/// durability-publish: the rename publishes a shard but nothing fsyncs the
/// destination's parent directory afterwards.
pub fn publish_shard(tmp: &Path, dst: &Path) -> io::Result<()> {
    fs::rename(tmp, dst)?;
    Ok(())
}

/// lock-discipline: the queue guard stays live across the channel send.
pub fn drain(m: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    let queue = m.lock().unwrap_or_else(PoisonError::into_inner);
    for v in queue.iter() {
        tx.send(*v).ok();
    }
}

/// watermark-provenance: wall-clock stamp and a process-local counter both
/// feed the persisted watermark.
pub fn checkpoint(&mut self) -> Watermark {
    self.flush_counter += 1;
    Watermark {
        stamp: SystemTime::now(),
        tag: self.flush_counter,
        moduli: self.store.total_moduli(),
    }
}
