//! Out-of-scope crate: panics are legal here, but limb hygiene and the
//! unsafe allowlist apply workspace-wide.

pub struct Natural {
    pub limbs: Vec<u64>,
}

pub fn not_flagged(v: Option<u64>) -> u64 {
    v.unwrap()
}

pub fn raw(limbs: Vec<u64>) -> Natural {
    Natural { limbs }
}

pub fn denormalize(n: &mut Natural) {
    n.limbs = Vec::new();
}

pub fn creep(p: *const u64) -> u64 {
    unsafe { *p }
}

pub fn unchecked_head(v: &[u32]) -> u32 {
    v[0]
}
