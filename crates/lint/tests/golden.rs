//! Fixture-driven end-to-end tests for `wk-lint`.
//!
//! `tests/fixtures/ws_bad` is a mini-workspace with a violation seeded for
//! every rule (token and semantic) and every annotation error path;
//! `ws_bad.expected` is the golden rendered report and
//! `ws_bad.expected.json` the golden `--format=json` output. `ws_clean`
//! must produce no findings, and so must the real workspace this crate
//! lives in.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Lint a fixture workspace and render the report with paths relative to
/// the fixture root, matching how the golden file was generated.
fn report_for(workspace: &str) -> String {
    let root = fixtures().join(workspace);
    let mut diags = wk_lint::run(&[root.join("crates")]).expect("fixture workspace lints");
    let prefix = format!("{}/", root.display()).replace('\\', "/");
    for d in &mut diags {
        let stripped = d.path.strip_prefix(&prefix).unwrap_or(&d.path).to_string();
        d.path = stripped;
        // panic-reachability embeds the terminal site's path in its message.
        d.message = d.message.replace(&prefix, "");
    }
    diags.sort_by_key(|d| d.sort_key());
    wk_lint::render_report(&diags)
}

#[test]
fn seeded_workspace_matches_golden_report() {
    let expected = fs::read_to_string(fixtures().join("ws_bad.expected")).expect("golden file");
    assert_eq!(report_for("ws_bad"), expected);
}

#[test]
fn clean_workspace_reports_nothing() {
    let diags = wk_lint::run(&[fixtures().join("ws_clean/crates")]).expect("clean fixture lints");
    assert!(diags.is_empty(), "unexpected findings: {diags:#?}");
    assert!(report_for("ws_clean").contains("no invariant violations"));
}

#[test]
fn real_workspace_is_clean() {
    // The repo's own `crates/` tree must stay lint-clean: every violation is
    // either fixed or carries a justified annotation.
    let crates_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../crates");
    let diags = wk_lint::run(&[crates_dir]).expect("workspace lints");
    let report = wk_lint::render_report(&diags);
    assert!(diags.is_empty(), "workspace has violations:\n{report}");
}

#[test]
fn cli_reports_violations_and_exits_nonzero() {
    let out = Command::new(env!("CARGO_BIN_EXE_wk-lint"))
        .current_dir(fixtures().join("ws_bad"))
        .arg("crates")
        .output()
        .expect("run wk-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    let expected = fs::read_to_string(fixtures().join("ws_bad.expected")).expect("golden file");
    assert_eq!(stdout, expected);
}

#[test]
fn cli_quiet_prints_only_the_summary() {
    let out = Command::new(env!("CARGO_BIN_EXE_wk-lint"))
        .current_dir(fixtures().join("ws_bad"))
        .args(["--quiet", "crates"])
        .output()
        .expect("run wk-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert_eq!(stdout.trim_end(), "wk-lint: 23 violations in 6 files");
}

#[test]
fn cli_json_matches_golden() {
    let out = Command::new(env!("CARGO_BIN_EXE_wk-lint"))
        .current_dir(fixtures().join("ws_bad"))
        .args(["--format=json", "crates"])
        .output()
        .expect("run wk-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 json");
    let expected =
        fs::read_to_string(fixtures().join("ws_bad.expected.json")).expect("json golden file");
    assert_eq!(stdout, expected);
}

#[test]
fn cli_clean_workspace_exits_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_wk-lint"))
        .current_dir(fixtures().join("ws_clean"))
        .arg("crates")
        .output()
        .expect("run wk-lint");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).expect("utf-8 report");
    assert!(stdout.contains("no invariant violations"), "{stdout}");
}

#[test]
fn cli_missing_directory_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_wk-lint"))
        .arg(fixtures().join("no_such_workspace"))
        .output()
        .expect("run wk-lint");
    assert_eq!(out.status.code(), Some(2));
}
