//! Order-independence properties: the workspace pipeline must produce the
//! same call graph and the same findings whatever order the walker hands
//! files in (directory iteration order is OS-dependent).

use proptest::prelude::*;
use std::path::PathBuf;
use wk_lint::{callgraph, check_workspace, collect_files, items, lexer, testmap, SourceFile};

fn fixture_files() -> Vec<SourceFile> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws_bad/crates");
    collect_files(&[root]).expect("fixture workspace reads")
}

/// Reorder `files` by the random sort keys (stable: equal keys keep the
/// incoming order, which random u64 keys essentially never produce).
fn permute(files: Vec<SourceFile>, keys: &[u64]) -> Vec<SourceFile> {
    let mut keyed: Vec<(u64, SourceFile)> = files
        .into_iter()
        .enumerate()
        .map(|(i, f)| {
            (
                keys.get(i % keys.len().max(1)).copied().unwrap_or(0) ^ i as u64,
                f,
            )
        })
        .collect();
    keyed.sort_by_key(|&(k, _)| k);
    keyed.into_iter().map(|(_, f)| f).collect()
}

/// The canonical call-graph edge list for a file set, built exactly as
/// `check_workspace` builds it.
fn edges(files: &[SourceFile]) -> Vec<(String, String)> {
    let lexed: Vec<_> = files.iter().map(|f| lexer::lex(&f.src)).collect();
    let mut table = items::ItemTable::default();
    for (i, f) in files.iter().enumerate() {
        let tm = testmap::build(&lexed[i].tokens, &f.src, f.src.lines().count());
        items::parse_file(i, &f.crate_name, &f.src, &lexed[i], &tm, &mut table);
    }
    let toks: Vec<callgraph::FileTokens> = files
        .iter()
        .enumerate()
        .map(|(i, f)| callgraph::FileTokens {
            crate_name: &f.crate_name,
            lib_name: &f.lib_name,
            src: &f.src,
            lexed: &lexed[i],
        })
        .collect();
    callgraph::build(&table, &toks).canonical_edges(&table)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same findings (down to rendered text) for every file ordering.
    #[test]
    fn findings_are_order_independent(keys in proptest::collection::vec(any::<u64>(), 16)) {
        let baseline = check_workspace(&fixture_files());
        let shuffled = permute(fixture_files(), &keys);
        prop_assert_eq!(check_workspace(&shuffled), baseline);
    }

    /// Same canonical call-graph edges for every file ordering.
    #[test]
    fn call_graph_is_order_independent(keys in proptest::collection::vec(any::<u64>(), 16)) {
        let baseline = edges(&fixture_files());
        let shuffled = permute(fixture_files(), &keys);
        prop_assert_eq!(edges(&shuffled), baseline);
    }
}
