//! Seeded-bug validation: reintroduce the PR-7 bug classes into copies of
//! the *real* workspace sources and check the semantic rules catch them.
//!
//! Each test loads an actual source file from this repository, verifies it
//! lints clean as-is, applies a regression patch in memory (delete a real
//! `fsync_dir`, add a process-counter watermark, hold a guard across a
//! send), and asserts the expected rule fires. This guards against the
//! rules silently rotting into always-clean: they must still distinguish
//! today's fixed code from yesterday's bug.

use std::fs;
use std::path::PathBuf;
use wk_lint::{check_workspace, SourceFile};

fn real_source(rel: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

fn lint_one(
    crate_name: &str,
    lib_name: &str,
    rel_path: &str,
    src: String,
) -> Vec<wk_lint::Diagnostic> {
    check_workspace(&[SourceFile {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        lib_name: lib_name.to_string(),
        src,
    }])
}

fn rules_of(diags: &[wk_lint::Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.rule.as_str()).collect()
}

#[test]
fn removing_the_provenance_dir_fsync_is_flagged() {
    let rel = "crates/service/src/provenance.rs";
    let src = real_source(rel);
    assert!(
        lint_one("service", "wk_service", rel, src.clone()).is_empty(),
        "pristine provenance.rs must lint clean"
    );
    // Reintroduce the §8.2 bug: `write_atomic` renames into place but never
    // fsyncs the destination's parent directory.
    let needle = "        fsync_dir(parent)?;\n";
    assert!(
        src.contains(needle),
        "write_atomic's fsync_dir moved; update this test"
    );
    let patched = src.replacen(needle, "", 1);
    let diags = lint_one("service", "wk_service", rel, patched);
    assert!(
        rules_of(&diags).contains(&"durability-publish"),
        "deleting write_atomic's fsync_dir must trip durability-publish: {diags:#?}"
    );
}

#[test]
fn removing_the_shard_export_dir_fsync_is_flagged() {
    let rel = "crates/batchgcd/src/corpus.rs";
    let src = real_source(rel);
    assert!(
        lint_one("batchgcd", "wk_batchgcd", rel, src.clone()).is_empty(),
        "pristine corpus.rs must lint clean"
    );
    let needle = "        fsync_dir(dir)?;\n";
    assert!(
        src.contains(needle),
        "shard flush's fsync_dir moved; update this test"
    );
    let patched = src.replacen(needle, "", 1);
    let diags = lint_one("batchgcd", "wk_batchgcd", rel, patched);
    assert!(
        rules_of(&diags).contains(&"durability-publish"),
        "deleting the shard flush fsync_dir must trip durability-publish: {diags:#?}"
    );
}

#[test]
fn process_counter_watermark_in_the_daemon_is_flagged() {
    let rel = "crates/service/src/daemon.rs";
    let src = real_source(rel);
    assert!(
        lint_one("service", "wk_service", rel, src.clone()).is_empty(),
        "pristine daemon.rs must lint clean"
    );
    // Reintroduce the restart-unsafe watermark: a process-local counter and
    // a wall-clock stamp, instead of on-disk store state.
    let patched = format!(
        "{src}\npub fn bogus_checkpoint(&mut self) -> Watermark {{\n    \
         self.restart_counter += 1;\n    Watermark {{\n        \
         tag: self.restart_counter,\n        stamp: SystemTime::now(),\n    }}\n}}\n"
    );
    let diags = lint_one("service", "wk_service", rel, patched);
    let watermark = diags
        .iter()
        .filter(|d| d.rule == "watermark-provenance")
        .count();
    assert_eq!(
        watermark, 2,
        "counter + wall-clock watermark must both be flagged: {diags:#?}"
    );
}

#[test]
fn guard_across_send_in_the_daemon_is_flagged() {
    let rel = "crates/service/src/daemon.rs";
    let src = real_source(rel);
    let patched = format!(
        "{src}\npub fn bogus_drain(m: &Mutex<Vec<u8>>, tx: &Sender<u8>) {{\n    \
         let queue = m.lock().unwrap_or_else(PoisonError::into_inner);\n    \
         for v in queue.iter() {{\n        tx.send(*v).ok();\n    }}\n}}\n"
    );
    let diags = lint_one("service", "wk_service", rel, patched);
    assert!(
        rules_of(&diags).contains(&"lock-discipline"),
        "guard held across send must trip lock-discipline: {diags:#?}"
    );
}
