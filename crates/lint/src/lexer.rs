//! A minimal hand-written Rust tokenizer.
//!
//! The workspace builds offline, so `wk-lint` cannot depend on `syn` or
//! `proc-macro2`. The rules only need a *token-accurate* view of each source
//! file — enough to never mistake the inside of a string literal or comment
//! for code — not a parse tree. This lexer provides exactly that: it splits
//! a file into identifiers, literals, lifetimes, and single-character
//! punctuation, with precise line/column spans, and collects comments (the
//! carrier of `lint:` annotations) on the side.
//!
//! Handled literal forms: line and (nested) block comments, string literals
//! with escapes, raw strings with any `#` depth, byte and byte-raw strings,
//! character literals vs. lifetimes, and numeric literals including hex and
//! exponent forms. Anything the lexer does not recognize is emitted as a
//! one-character [`TokenKind::Punct`], which is always safe for the rules:
//! they match on identifier/punct sequences only.

/// What a token is; rules match on kind plus the source text of the span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `Ordering`, ...).
    Ident,
    /// Numeric literal (`0`, `0xff_u64`, `1.5e3`).
    Number,
    /// String literal of any form (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// A single punctuation character (`.`, `(`, `[`, `!`, `:`, ...).
    Punct(char),
}

/// One token with its byte span and 1-based line/column position.
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokenKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// Source text of the token.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// One comment (line or block), kept out of the token stream. `own_line` is
/// true when nothing but whitespace precedes it on its starting line — the
/// distinction `lint:` annotation targeting relies on.
#[derive(Clone, Debug)]
pub struct Comment {
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub own_line: bool,
}

impl Comment {
    /// Source text of the comment, including the `//` / `/*` sigils.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

/// Token stream plus side tables for one source file.
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Cursor<'s> {
    src: &'s str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: u32,
    col: u32,
    /// True until a non-whitespace char is seen on the current line.
    line_blank_so_far: bool,
}

impl<'s> Cursor<'s> {
    fn new(src: &'s str) -> Cursor<'s> {
        Cursor {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
            line_blank_so_far: true,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|&(b, _)| b)
            .unwrap_or(self.src.len())
    }

    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
            self.line_blank_so_far = true;
        } else {
            self.col += 1;
            if !c.is_whitespace() {
                self.line_blank_so_far = false;
            }
        }
        Some(c)
    }

    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }
}

/// Tokenize `src`. Never fails: malformed input degrades to `Punct` tokens,
/// and an unterminated string or comment simply runs to end of file.
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while let Some(c) = cur.peek() {
        let start = cur.byte_offset();
        let line = cur.line;
        let col = cur.col;
        let own_line = cur.line_blank_so_far;

        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek_at(1) == Some('/') {
            cur.bump_while(|c| c != '\n');
            comments.push(Comment {
                start,
                end: cur.byte_offset(),
                line,
                own_line,
            });
            continue;
        }
        if c == '/' && cur.peek_at(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1u32;
            while depth > 0 {
                match (cur.peek(), cur.peek_at(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            comments.push(Comment {
                start,
                end: cur.byte_offset(),
                line,
                own_line,
            });
            continue;
        }

        // Raw / byte string prefixes: r"", r#""#, b"", br#""#, rb is not
        // valid Rust but lexing it as a raw string is harmless.
        if (c == 'r' || c == 'b') && raw_or_byte_string(&mut cur) {
            tokens.push(Token {
                kind: TokenKind::Str,
                start,
                end: cur.byte_offset(),
                line,
                col,
            });
            continue;
        }

        // Raw identifiers: `r#match` is one identifier, not `r` + `#` +
        // `match` (the `r#"` raw-string case was ruled out above).
        if c == 'r' && cur.peek_at(1) == Some('#') && cur.peek_at(2).is_some_and(is_ident_start) {
            cur.bump();
            cur.bump();
            cur.bump_while(is_ident_continue);
            tokens.push(Token {
                kind: TokenKind::Ident,
                start,
                end: cur.byte_offset(),
                line,
                col,
            });
            continue;
        }

        // Byte char literals: `b'x'`, `b'\n'`.
        if c == 'b' && cur.peek_at(1) == Some('\'') {
            cur.bump();
            let kind = lex_quote(&mut cur);
            tokens.push(Token {
                kind,
                start,
                end: cur.byte_offset(),
                line,
                col,
            });
            continue;
        }

        if is_ident_start(c) {
            cur.bump_while(is_ident_continue);
            tokens.push(Token {
                kind: TokenKind::Ident,
                start,
                end: cur.byte_offset(),
                line,
                col,
            });
            continue;
        }

        if c.is_ascii_digit() {
            lex_number(&mut cur);
            tokens.push(Token {
                kind: TokenKind::Number,
                start,
                end: cur.byte_offset(),
                line,
                col,
            });
            continue;
        }

        if c == '"' {
            lex_string(&mut cur);
            tokens.push(Token {
                kind: TokenKind::Str,
                start,
                end: cur.byte_offset(),
                line,
                col,
            });
            continue;
        }

        if c == '\'' {
            let kind = lex_quote(&mut cur);
            tokens.push(Token {
                kind,
                start,
                end: cur.byte_offset(),
                line,
                col,
            });
            continue;
        }

        cur.bump();
        tokens.push(Token {
            kind: TokenKind::Punct(c),
            start,
            end: cur.byte_offset(),
            line,
            col,
        });
    }

    Lexed { tokens, comments }
}

/// If the cursor sits on a raw/byte string opener, consume it and return
/// true; otherwise consume nothing and return false.
fn raw_or_byte_string(cur: &mut Cursor) -> bool {
    // Look ahead past an optional second prefix letter and `#` signs for
    // the opening quote; bail (it's an identifier) otherwise.
    let mut ahead = 1; // past the first prefix letter
    if matches!(cur.peek_at(ahead), Some('r') | Some('b')) && cur.peek() != cur.peek_at(ahead) {
        ahead += 1;
    }
    let mut hashes = 0usize;
    while cur.peek_at(ahead + hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek_at(ahead + hashes) != Some('"') {
        return false;
    }
    // Raw strings (any `#`s present, or an `r` prefix) have no escapes;
    // plain byte strings `b"…"` do.
    let raw = hashes > 0 || cur.peek() == Some('r') || cur.peek_at(1) == Some('r');
    for _ in 0..ahead + hashes + 1 {
        cur.bump();
    }
    if raw {
        loop {
            match cur.bump() {
                None => return true,
                Some('"') => {
                    let mut closing = 0usize;
                    while closing < hashes && cur.peek() == Some('#') {
                        cur.bump();
                        closing += 1;
                    }
                    if closing == hashes {
                        return true;
                    }
                }
                Some(_) => {}
            }
        }
    } else {
        lex_string_body(cur);
        true
    }
}

/// Consume a `"`-opened string starting at the quote.
fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    lex_string_body(cur);
}

/// Consume string body and closing quote, honoring backslash escapes.
fn lex_string_body(cur: &mut Cursor) {
    loop {
        match cur.bump() {
            None | Some('"') => return,
            Some('\\') => {
                cur.bump();
            }
            Some(_) => {}
        }
    }
}

/// Consume a `'`-opened token: a char literal or a lifetime.
fn lex_quote(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // the quote
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume the backslash and the escaped
            // character itself — crucially `'\''` ends at the *third* quote,
            // so the escaped `'` must be consumed unconditionally before
            // scanning for the closing quote — then any multi-char escape
            // tail (covers \n, \', \\, \x41, \u{1F600}).
            cur.bump();
            cur.bump();
            cur.bump_while(|c| c != '\'');
            cur.bump();
            TokenKind::Char
        }
        Some(c) if is_ident_start(c) => {
            cur.bump_while(is_ident_continue);
            if cur.peek() == Some('\'') {
                cur.bump();
                TokenKind::Char // 'a'
            } else {
                TokenKind::Lifetime // 'a as in &'a T
            }
        }
        Some(_) => {
            // Non-identifier char literal like '*' or '('.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Punct('\''),
    }
}

/// Consume a numeric literal (integer, hex/octal/binary, float, suffixed).
fn lex_number(cur: &mut Cursor) {
    if cur.peek() == Some('0')
        && matches!(
            cur.peek_at(1),
            Some('x') | Some('X') | Some('o') | Some('b')
        )
    {
        cur.bump();
        cur.bump();
        cur.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
        return;
    }
    cur.bump_while(|c| c.is_ascii_digit() || c == '_');
    // Fractional part — but `0..n` is a range, not a float.
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        cur.bump_while(|c| c.is_ascii_digit() || c == '_');
    }
    // Exponent.
    if matches!(cur.peek(), Some('e') | Some('E'))
        && (cur.peek_at(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(cur.peek_at(1), Some('+') | Some('-'))
                && cur.peek_at(2).is_some_and(|c| c.is_ascii_digit())))
    {
        cur.bump();
        if matches!(cur.peek(), Some('+') | Some('-')) {
            cur.bump();
        }
        cur.bump_while(|c| c.is_ascii_digit() || c == '_');
    }
    // Type suffix (u64, usize, f32, ...).
    cur.bump_while(is_ident_continue);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let ks = kinds("a.unwrap()");
        assert_eq!(
            ks,
            vec![
                (TokenKind::Ident, "a".into()),
                (TokenKind::Punct('.'), ".".into()),
                (TokenKind::Ident, "unwrap".into()),
                (TokenKind::Punct('('), "(".into()),
                (TokenKind::Punct(')'), ")".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let ks = kinds(r#"let s = "unwrap() unsafe";"#);
        assert!(ks.iter().all(|(_, t)| t != "unwrap" && t != "unsafe"));
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r##"r#"quote " inside"# x"##;
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokenKind::Str);
        assert_eq!(ks[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn byte_and_byte_raw_strings() {
        let ks = kinds(r#"b"ab" br"cd" end"#);
        assert_eq!(ks[0].0, TokenKind::Str);
        assert_eq!(ks[1].0, TokenKind::Str);
        assert_eq!(ks[2], (TokenKind::Ident, "end".into()));
    }

    #[test]
    fn escaped_quote_in_string() {
        let ks = kinds(r#""a\"b" tail"#);
        assert_eq!(ks[0].0, TokenKind::Str);
        assert_eq!(ks[1], (TokenKind::Ident, "tail".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("&'a T; 'x'; '\\n'; '*'");
        assert!(ks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(ks.contains(&(TokenKind::Char, "'x'".into())));
        assert!(ks.contains(&(TokenKind::Char, "'\\n'".into())));
        assert!(ks.contains(&(TokenKind::Char, "'*'".into())));
    }

    #[test]
    fn comments_collected_not_tokenized() {
        let src = "code(); // trailing unwrap()\n/* block\nunsafe */ more();";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].own_line);
        assert!(lexed.comments[1].own_line);
        let toks: Vec<_> = lexed.tokens.iter().map(|t| t.text(src)).collect();
        assert!(!toks.contains(&"unwrap"));
        assert!(!toks.contains(&"unsafe"));
    }

    #[test]
    fn nested_block_comment() {
        let src = "/* outer /* inner */ still */ x";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.tokens.len(), 1);
        assert_eq!(lexed.tokens[0].text(src), "x");
    }

    #[test]
    fn numbers_with_ranges_and_suffixes() {
        let ks = kinds("0..n 0xff_u64 1.5e-3 7usize");
        let nums: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "0xff_u64", "1.5e-3", "7usize"]);
    }

    #[test]
    fn escaped_quote_char_literal_does_not_cascade() {
        // `'\''` ends at the third quote; the old lexer stopped one short
        // and the stray closing quote re-opened as a bogus char literal,
        // swallowing following code. The `unwrap` after it must survive.
        let ks = kinds(r"let c = '\''; x.unwrap()");
        assert!(ks.contains(&(TokenKind::Char, r"'\''".into())));
        assert!(ks.contains(&(TokenKind::Ident, "unwrap".into())));
    }

    #[test]
    fn escaped_backslash_and_numeric_escapes() {
        let ks = kinds(r"'\\' '\n' '\x41' '\u{1F600}' tail");
        let chars: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, vec![r"'\\'", r"'\n'", r"'\x41'", r"'\u{1F600}'"]);
        assert!(ks.contains(&(TokenKind::Ident, "tail".into())));
    }

    #[test]
    fn raw_identifiers_are_single_idents() {
        // `r#match` is one identifier; the old lexer split it into `r`,
        // `#`, `match`, which corrupted attribute and item parsing.
        let ks = kinds("let r#match = r#try; r#\"still a raw string\"#");
        assert!(ks.contains(&(TokenKind::Ident, "r#match".into())));
        assert!(ks.contains(&(TokenKind::Ident, "r#try".into())));
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn byte_char_literals_are_chars_not_idents() {
        let ks = kinds(r#"b'x' b'\n' b"str" ident"#);
        assert_eq!(ks[0], (TokenKind::Char, "b'x'".into()));
        assert_eq!(ks[1], (TokenKind::Char, r"b'\n'".into()));
        assert_eq!(ks[2].0, TokenKind::Str);
        assert_eq!(ks[3], (TokenKind::Ident, "ident".into()));
    }

    #[test]
    fn raw_string_hash_depths_and_inner_terminators() {
        // A `"#` inside an `r##"..."##` string must not close it.
        let src = r####"r##"has "# inside"## after"####;
        let ks = kinds(src);
        assert_eq!(
            ks[0],
            (TokenKind::Str, r####"r##"has "# inside"##"####.into())
        );
        assert_eq!(ks[1], (TokenKind::Ident, "after".into()));
    }

    #[test]
    fn block_comment_star_slash_edges() {
        // `/*/` does not self-close; `/**/` is empty; depth counts pairs.
        let lexed = lex("/*/ still comment */ a /**/ b /* x /*/ y */ z */ c");
        let toks: Vec<_> = lexed
            .tokens
            .iter()
            .map(|t| t.text("/*/ still comment */ a /**/ b /* x /*/ y */ z */ c"))
            .collect();
        assert_eq!(toks, vec!["a", "b", "c"]);
        assert_eq!(lexed.comments.len(), 3);
    }

    #[test]
    fn lifetime_label_and_char_disambiguation() {
        let ks = kinds("'outer: loop { break 'outer; } let c = 'c'; &'_ T");
        assert!(
            ks.iter()
                .filter(|(k, t)| *k == TokenKind::Lifetime && t == "'outer")
                .count()
                == 2
        );
        assert!(ks.contains(&(TokenKind::Char, "'c'".into())));
        assert!(ks.contains(&(TokenKind::Lifetime, "'_".into())));
    }

    #[test]
    fn line_and_column_positions() {
        let src = "ab\n  cd";
        let lexed = lex(src);
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }
}
