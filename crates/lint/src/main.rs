//! CLI driver: `wk-lint [--quiet] <crates-dir>...`
//!
//! Lints every `<crates-dir>/*/src/**/*.rs` file and prints rustc-style
//! diagnostics. Exit status: 0 clean, 1 findings, 2 usage or I/O error —
//! CI gates on it (see `.github/workflows/ci.yml`, job `lint-invariants`).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut quiet = false;
    let mut roots = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                println!("usage: wk-lint [--quiet] <crates-dir>...");
                println!("lints every <crates-dir>/*/src/**/*.rs for workspace invariants");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("wk-lint: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        eprintln!("usage: wk-lint [--quiet] <crates-dir>...");
        return ExitCode::from(2);
    }
    match wk_lint::run(&roots) {
        Ok(diags) => {
            if quiet {
                let report = wk_lint::render_report(&diags);
                if let Some(summary) = report.lines().last() {
                    println!("{summary}");
                }
            } else {
                print!("{}", wk_lint::render_report(&diags));
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("wk-lint: {err}");
            ExitCode::from(2)
        }
    }
}
