//! CLI driver: `wk-lint [--quiet] [--format=text|json] <crates-dir>...`
//!
//! Lints every `<crates-dir>/*/src/**/*.rs` file and prints rustc-style
//! diagnostics (or a stable JSON report with `--format=json`, for CI
//! annotation). Exit status: 0 clean, 1 findings, 2 usage or I/O error —
//! CI gates on it (see `.github/workflows/ci.yml`, job `lint-invariants`).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut quiet = false;
    let mut format = Format::Text;
    let mut roots = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--format=text" => format = Format::Text,
            "--format=json" => format = Format::Json,
            "--help" | "-h" => {
                println!("usage: wk-lint [--quiet] [--format=text|json] <crates-dir>...");
                println!("lints every <crates-dir>/*/src/**/*.rs for workspace invariants");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("wk-lint: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        eprintln!("usage: wk-lint [--quiet] [--format=text|json] <crates-dir>...");
        return ExitCode::from(2);
    }
    match wk_lint::run(&roots) {
        Ok(diags) => {
            match format {
                Format::Json => print!("{}", wk_lint::render_json(&diags)),
                Format::Text if quiet => {
                    let report = wk_lint::render_report(&diags);
                    if let Some(summary) = report.lines().last() {
                        println!("{summary}");
                    }
                }
                Format::Text => print!("{}", wk_lint::render_report(&diags)),
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("wk-lint: {err}");
            ExitCode::from(2)
        }
    }
}
