//! Cross-crate call graph over the [`crate::items`] table.
//!
//! Nodes are the workspace's non-test functions; an edge `A → B` means a
//! call site inside `A`'s body *may* invoke `B`. Resolution is name-based
//! (no type inference), with the approximations the rules tolerate:
//!
//! * **Bare calls** `foo(...)` resolve to every fn named `foo` in the
//!   caller's crate, falling back to `pub` fns named `foo` in the crates it
//!   depends on (covering `use wk_x::foo;` imports).
//! * **Qualified calls** `Qual::foo(...)` resolve through the qualifier:
//!   a dependency's lib name (`wk_bigint::foo`) restricts to that crate; a
//!   known impl self type (`Natural::foo`) restricts to that owner's
//!   associated fns. Unknown qualifiers (`String::from`) resolve to nothing
//!   — an under-approximation for std and external types.
//! * **Method calls** `.foo(...)` resolve to *every* method named `foo` in
//!   the caller's crate and its dependencies. With no receiver types this
//!   over-approximates trait and inherent dispatch alike; the
//!   panic-reachability rule inherits that conservatism (a flagged path may
//!   name a method the receiver could not actually be). The reverse
//!   under-approximation also holds: dispatch through a trait object whose
//!   impl lives in a crate the caller does not (textually) depend on is
//!   missed. Both limits are stated in DESIGN.md §11 and pinned by tests.
//! * **Macros** (`ident!`) are opaque: no edges in or out.
//!
//! Crate dependencies are recovered textually: crate A depends on crate B
//! when any token of A's sources equals B's lib identifier (`wk_bigint`,
//! `weakkeys`) — covering `use` declarations and fully qualified paths.
//!
//! Construction is deterministic for a fixed file set regardless of input
//! file order: nodes are keyed by `(crate, file path, span)` and edges are
//! sorted — `canonical_edges` is the order-independent witness used by the
//! determinism proptest.

use crate::items::ItemTable;
use crate::lexer::{Lexed, TokenKind};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Keywords that look like calls when followed by `(`.
const NON_CALL_IDENTS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "in", "as", "move", "fn", "let", "else",
];

/// One resolved call site, for diagnostics.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Caller fn index.
    pub caller: usize,
    /// Callee fn index.
    pub callee: usize,
    /// 1-based position of the call token.
    pub line: u32,
    pub col: u32,
}

/// The workspace call graph. Indices are into [`ItemTable::fns`].
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Adjacency: `edges[f]` is the sorted, deduplicated callee set of `f`.
    pub edges: Vec<Vec<usize>>,
    /// One representative call site per edge, in the same order as `edges`.
    pub sites: Vec<Vec<CallSite>>,
}

/// Per-file inputs the builder needs beyond the item table.
pub struct FileTokens<'a> {
    pub crate_name: &'a str,
    /// The crate's lib identifier (`wk_bigint`; fixture fallback is the
    /// directory name).
    pub lib_name: &'a str,
    pub src: &'a str,
    pub lexed: &'a Lexed,
}

impl CallGraph {
    /// Order-independent rendering: sorted `caller → callee` display-name
    /// pairs. Two graphs over the same file *set* compare equal through
    /// this regardless of the order files were presented in.
    pub fn canonical_edges(&self, table: &ItemTable) -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = Vec::new();
        for (caller, callees) in self.edges.iter().enumerate() {
            for &callee in callees {
                out.push((table.display_name(caller), table.display_name(callee)));
            }
        }
        out.sort();
        out
    }

    /// Callees of `f`.
    pub fn callees(&self, f: usize) -> &[usize] {
        &self.edges[f]
    }
}

/// Textual crate-dependency map: `crate_name → set of crate_names it
/// mentions by lib identifier`.
fn crate_deps(files: &[FileTokens]) -> HashMap<String, BTreeSet<String>> {
    // lib ident -> crate dir name
    let lib_to_crate: HashMap<&str, &str> =
        files.iter().map(|f| (f.lib_name, f.crate_name)).collect();
    let mut deps: HashMap<String, BTreeSet<String>> = HashMap::new();
    for file in files {
        let entry = deps.entry(file.crate_name.to_string()).or_default();
        for tok in &file.lexed.tokens {
            if tok.kind != TokenKind::Ident {
                continue;
            }
            let text = tok.text(file.src);
            if let Some(&target) = lib_to_crate.get(text) {
                if target != file.crate_name {
                    entry.insert(target.to_string());
                }
            }
        }
    }
    deps
}

/// Build the call graph. `files[i]` must correspond to `FnItem::file == i`.
pub fn build(table: &ItemTable, files: &[FileTokens]) -> CallGraph {
    let deps = crate_deps(files);

    // Name indices. BTreeMap values stay sorted by fn index, which is
    // file-order stable; canonicalization handles permutation.
    let mut bare: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new(); // (crate, name)
    let mut methods: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new(); // (crate, name), owner set
    let mut owned: BTreeMap<(&str, &str, &str), Vec<usize>> = BTreeMap::new(); // (crate, owner, name)
    for (idx, f) in table.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        bare.entry((f.crate_name.as_str(), f.name.as_str()))
            .or_default()
            .push(idx);
        if let Some(owner) = &f.owner {
            methods
                .entry((f.crate_name.as_str(), f.name.as_str()))
                .or_default()
                .push(idx);
            owned
                .entry((f.crate_name.as_str(), owner.as_str(), f.name.as_str()))
                .or_default()
                .push(idx);
        }
    }

    // crate -> [itself, deps...] lookup order.
    let empty = BTreeSet::new();
    fn scope_of<'a>(
        crate_name: &'a str,
        deps: &'a HashMap<String, BTreeSet<String>>,
        empty: &'a BTreeSet<String>,
    ) -> Vec<&'a str> {
        let mut scope = vec![crate_name];
        for d in deps.get(crate_name).unwrap_or(empty) {
            scope.push(d.as_str());
        }
        scope
    }

    let lib_to_crate: HashMap<&str, &str> =
        files.iter().map(|f| (f.lib_name, f.crate_name)).collect();

    let mut edges = vec![Vec::new(); table.fns.len()];
    let mut sites = vec![Vec::new(); table.fns.len()];

    for (caller, f) in table.fns.iter().enumerate() {
        let (Some(body), false) = (&f.body, f.in_test) else {
            continue;
        };
        let file = &files[f.file];
        let toks = &file.lexed.tokens;
        let scope = scope_of(&f.crate_name, &deps, &empty);
        let mut seen: HashSet<usize> = HashSet::new();

        for i in body.clone() {
            let tok = &toks[i];
            if tok.kind != TokenKind::Ident
                || toks.get(i + 1).map(|t| t.kind) != Some(TokenKind::Punct('('))
            {
                continue;
            }
            let name = tok.text(file.src);
            if NON_CALL_IDENTS.contains(&name) {
                continue;
            }
            // `name!` macro bang is lexed *after* the ident only for
            // `name!(`-style macros; `name !(` can't occur. A macro call is
            // `ident !` — but here `ident (` matched, so only `try!`-style
            // legacy macros could slip in; none exist in the workspace.
            let prev = i
                .checked_sub(1)
                .filter(|&p| p >= body.start)
                .map(|p| &toks[p]);

            let mut resolved: Vec<usize> = Vec::new();
            match prev.map(|t| (t.kind, t.text(file.src))) {
                // `recv.foo(` — method call.
                Some((TokenKind::Punct('.'), _)) => {
                    for c in &scope {
                        if let Some(v) = methods.get(&(*c, name)) {
                            resolved.extend_from_slice(v);
                        }
                    }
                }
                // `Qual::foo(` — path-qualified call.
                Some((TokenKind::Punct(':'), _)) => {
                    if let Some(qual) = path_qualifier(file.src, toks, i, body.start) {
                        if let Some(&target) = lib_to_crate.get(qual) {
                            // Crate-qualified: any fn of that crate.
                            if let Some(v) = bare.get(&(target, name)) {
                                resolved.extend_from_slice(v);
                            }
                        } else if qual == "self" || qual == "crate" || qual == "super" {
                            if let Some(v) = bare.get(&(f.crate_name.as_str(), name)) {
                                resolved.extend_from_slice(v);
                            }
                        } else {
                            // Type- or module-qualified: fns owned by the
                            // qualifier in scope. Unknown qualifiers (std
                            // types) resolve to nothing.
                            for c in &scope {
                                if let Some(v) = owned.get(&(*c, qual, name)) {
                                    resolved.extend_from_slice(v);
                                }
                            }
                        }
                    }
                }
                // Bare call: own crate first, then dependency pub fns.
                _ => {
                    if let Some(v) = bare.get(&(f.crate_name.as_str(), name)) {
                        resolved.extend_from_slice(v);
                    }
                    if resolved.is_empty() {
                        for c in scope.iter().skip(1) {
                            if let Some(v) = bare.get(&(*c, name)) {
                                resolved.extend(v.iter().filter(|&&i| table.fns[i].is_pub));
                            }
                        }
                    }
                }
            }

            for callee in resolved {
                if callee != caller && seen.insert(callee) {
                    edges[caller].push(callee);
                    sites[caller].push(CallSite {
                        caller,
                        callee,
                        line: tok.line,
                        col: tok.col,
                    });
                }
            }
        }
        // Sort callee lists (with their sites) for deterministic iteration.
        let mut order: Vec<usize> = (0..edges[caller].len()).collect();
        order.sort_by_key(|&k| edges[caller][k]);
        edges[caller] = order.iter().map(|&k| edges[caller][k]).collect();
        sites[caller] = order.iter().map(|&k| sites[caller][k].clone()).collect();
    }

    CallGraph { edges, sites }
}

/// For a call token at `i` preceded by `::`, the qualifying ident
/// (`Qual::foo` → `Qual`), bounded by the body start.
fn path_qualifier<'s>(
    src: &'s str,
    toks: &[crate::lexer::Token],
    i: usize,
    lo: usize,
) -> Option<&'s str> {
    // toks[i-1] and toks[i-2] must be the two `:` of `::`.
    if i < 3 || i - 3 < lo {
        return None;
    }
    if toks[i - 1].kind != TokenKind::Punct(':') || toks[i - 2].kind != TokenKind::Punct(':') {
        return None;
    }
    let q = &toks[i - 3];
    (q.kind == TokenKind::Ident).then(|| q.text(src))
}

/// Reverse-reachability from a set of target fns: for every fn that can
/// reach a target through the graph, the first hop of one shortest path.
/// Used by panic-reachability to produce witness chains.
pub struct Reachability {
    /// `next_hop[f]` is `Some(g)` when `f` reaches a target via callee `g`;
    /// targets themselves have `next_hop = None` but `reaches = true`.
    pub next_hop: Vec<Option<usize>>,
    pub reaches: Vec<bool>,
}

impl Reachability {
    /// BFS over reversed edges from `targets`.
    pub fn compute(graph: &CallGraph, targets: &[usize]) -> Reachability {
        let n = graph.edges.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (caller, callees) in graph.edges.iter().enumerate() {
            for &callee in callees {
                rev[callee].push(caller);
            }
        }
        let mut reaches = vec![false; n];
        let mut next_hop = vec![None; n];
        let mut queue: std::collections::VecDeque<usize> = targets
            .iter()
            .copied()
            .filter(|&t| {
                let fresh = !reaches[t];
                reaches[t] = true;
                fresh
            })
            .collect();
        while let Some(g) = queue.pop_front() {
            // rev[g] iterated in insertion order; edges were sorted, so the
            // traversal order — and thus the witness hop — is deterministic.
            for &caller in &rev[g] {
                if !reaches[caller] {
                    reaches[caller] = true;
                    next_hop[caller] = Some(g);
                    queue.push_back(caller);
                }
            }
        }
        Reachability { next_hop, reaches }
    }

    /// The witness chain from `f` to a target, inclusive of both ends.
    pub fn path_from(&self, f: usize) -> Vec<usize> {
        let mut path = vec![f];
        let mut cur = f;
        while let Some(next) = self.next_hop[cur] {
            path.push(next);
            cur = next;
            if path.len() > self.next_hop.len() {
                break; // cycle guard; unreachable with BFS-built hops
            }
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::lexer::lex;
    use crate::testmap;

    /// Build a table + graph from `(crate, lib, path, src)` tuples.
    fn workspace(files: &[(&str, &str, &str, &str)]) -> (ItemTable, CallGraph, Vec<String>) {
        let lexed: Vec<_> = files.iter().map(|(_, _, _, src)| lex(src)).collect();
        let mut table = ItemTable::default();
        for (i, ((crate_name, _, _, src), lx)) in files.iter().zip(&lexed).enumerate() {
            let tm = testmap::build(&lx.tokens, src, src.lines().count());
            items::parse_file(i, crate_name, src, lx, &tm, &mut table);
        }
        let fts: Vec<FileTokens> = files
            .iter()
            .zip(&lexed)
            .map(|((crate_name, lib, _, src), lx)| FileTokens {
                crate_name,
                lib_name: lib,
                src,
                lexed: lx,
            })
            .collect();
        let graph = build(&table, &fts);
        let names = (0..table.fns.len())
            .map(|i| table.display_name(i))
            .collect();
        (table, graph, names)
    }

    fn edge(names: &[String], graph: &CallGraph, from: &str, to: &str) -> bool {
        let f = names.iter().position(|n| n == from).expect("caller");
        let t = names.iter().position(|n| n == to).expect("callee");
        graph.edges[f].contains(&t)
    }

    #[test]
    fn bare_same_crate_call() {
        let (_, g, n) = workspace(&[(
            "a",
            "wk_a",
            "crates/a/src/lib.rs",
            "pub fn f() { helper() }\nfn helper() {}\n",
        )]);
        assert!(edge(&n, &g, "a::f", "a::helper"));
    }

    #[test]
    fn cross_crate_call_requires_textual_dependency() {
        let dep = ("b", "wk_b", "crates/b/src/lib.rs", "pub fn shared() {}\n");
        // With a `use`, the bare call resolves into the dependency…
        let (_, g, n) = workspace(&[
            (
                "a",
                "wk_a",
                "crates/a/src/lib.rs",
                "use wk_b::shared;\npub fn f() { shared() }\n",
            ),
            dep,
        ]);
        assert!(edge(&n, &g, "a::f", "b::shared"));
        // …without one, the crate is not in scope and the call is opaque.
        let (_, g, n) = workspace(&[
            (
                "a",
                "wk_a",
                "crates/a/src/lib.rs",
                "pub fn f() { shared() }\n",
            ),
            dep,
        ]);
        assert!(!edge(&n, &g, "a::f", "b::shared"));
    }

    #[test]
    fn qualified_call_through_lib_name() {
        let (_, g, n) = workspace(&[
            (
                "a",
                "wk_a",
                "crates/a/src/lib.rs",
                "pub fn f() { wk_b::shared() }\n",
            ),
            ("b", "wk_b", "crates/b/src/lib.rs", "pub fn shared() {}\n"),
        ]);
        assert!(edge(&n, &g, "a::f", "b::shared"));
    }

    #[test]
    fn type_qualified_associated_fn() {
        let (_, g, n) = workspace(&[
            (
                "a",
                "wk_a",
                "crates/a/src/lib.rs",
                "use wk_b::Store;\npub fn f() { Store::open() }\n",
            ),
            (
                "b",
                "wk_b",
                "crates/b/src/lib.rs",
                "pub struct Store;\nimpl Store {\n    pub fn open() {}\n}\n",
            ),
        ]);
        assert!(edge(&n, &g, "a::f", "b::Store::open"));
    }

    #[test]
    fn method_calls_over_approximate_across_scope() {
        let (_, g, n) = workspace(&[
            ("a", "wk_a", "crates/a/src/lib.rs", "use wk_b::Store;\npub fn f(s: Store) { s.close() }\n"),
            (
                "b",
                "wk_b",
                "crates/b/src/lib.rs",
                "pub struct Store;\nimpl Store {\n    pub fn close(&self) {}\n}\npub struct Other;\nimpl Other {\n    pub fn close(&self) {}\n}\n",
            ),
        ]);
        // No receiver types: `.close()` links to *both* impls — the
        // documented over-approximation.
        assert!(edge(&n, &g, "a::f", "b::Store::close"));
        assert!(edge(&n, &g, "a::f", "b::Other::close"));
    }

    #[test]
    fn unknown_qualifiers_and_keywords_resolve_to_nothing() {
        let (_, g, n) = workspace(&[(
            "a",
            "wk_a",
            "crates/a/src/lib.rs",
            "pub fn f(v: Vec<u8>) { String::from(\"x\"); if (v.len() > 0) { return; } }\n",
        )]);
        let f = n.iter().position(|x| x == "a::f").expect("f");
        assert!(g.edges[f].is_empty());
    }

    #[test]
    fn test_fns_are_outside_the_graph() {
        let (_, g, n) = workspace(&[(
            "a",
            "wk_a",
            "crates/a/src/lib.rs",
            "pub fn f() {}\n#[cfg(test)]\nmod tests {\n    fn t() { super::f() }\n}\n",
        )]);
        assert_eq!(n.len(), 2);
        assert!(g.edges.iter().all(|e| e.is_empty()));
    }

    #[test]
    fn reachability_produces_shortest_witness() {
        let (_, g, n) = workspace(&[(
            "a",
            "wk_a",
            "crates/a/src/lib.rs",
            "pub fn entry() { mid() }\nfn mid() { deep() }\nfn deep() {}\n",
        )]);
        let deep = n.iter().position(|x| x == "a::deep").expect("deep");
        let entry = n.iter().position(|x| x == "a::entry").expect("entry");
        let r = Reachability::compute(&g, &[deep]);
        assert!(r.reaches[entry]);
        let path: Vec<_> = r.path_from(entry).iter().map(|&i| n[i].clone()).collect();
        assert_eq!(path, vec!["a::entry", "a::mid", "a::deep"]);
    }
}
