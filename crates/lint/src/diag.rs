//! Diagnostics: one finding per violated invariant, rendered rustc-style.

use std::fmt;

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path as given to the walker (workspace-relative in normal runs).
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Length in characters of the underlined span.
    pub len: usize,
    /// Stable rule id (`no-panic-in-lib`, ...).
    pub rule: String,
    /// What is wrong.
    pub message: String,
    /// How to fix it (second caret line).
    pub help: String,
    /// The full source line, for the rendered span.
    pub source_line: String,
}

impl Diagnostic {
    /// Sort key: path, then position.
    pub fn sort_key(&self) -> (String, u32, u32) {
        (self.path.clone(), self.line, self.col)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let line_no = self.line.to_string();
        let gutter = " ".repeat(line_no.len());
        writeln!(f, "error[{}]: {}", self.rule, self.message)?;
        writeln!(f, "{gutter}--> {}:{}:{}", self.path, self.line, self.col)?;
        writeln!(f, "{gutter} |")?;
        writeln!(f, "{line_no} | {}", self.source_line)?;
        let pad = " ".repeat(self.col.saturating_sub(1) as usize);
        let carets = "^".repeat(self.len.max(1));
        writeln!(f, "{gutter} | {pad}{carets} {}", self.help)
    }
}

/// Render a batch of diagnostics plus a one-line summary, as the CLI
/// prints them.
pub fn render_report(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    if diags.is_empty() {
        out.push_str("wk-lint: no invariant violations\n");
    } else {
        let files: std::collections::BTreeSet<&str> =
            diags.iter().map(|d| d.path.as_str()).collect();
        out.push_str(&format!(
            "wk-lint: {} violation{} in {} file{}\n",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            files.len(),
            if files.len() == 1 { "" } else { "s" },
        ));
    }
    out
}

/// Render diagnostics as machine-readable JSON for CI annotation. The
/// schema is stable: `{"version": 1, "count": N, "violations": [...]}`
/// with each violation carrying `rule`, `path`, `line`, `col`, `len`,
/// `message`, `help` — exactly the fields a finding is keyed by, one
/// violation per line so goldens diff cleanly.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"count\": {},\n", diags.len()));
    out.push_str("  \"violations\": [");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"len\": {}, \
             \"message\": {}, \"help\": {}}}",
            json_str(&d.rule),
            json_str(&d.path),
            d.line,
            d.col,
            d.len,
            json_str(&d.message),
            json_str(&d.help),
        ));
    }
    if diags.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

/// JSON string literal with the escapes RFC 8259 requires.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            path: "crates/bigint/src/x.rs".into(),
            line: 7,
            col: 15,
            len: 6,
            rule: "no-panic-in-lib".into(),
            message: "`.unwrap()` in library code".into(),
            help: "propagate a Result instead".into(),
            source_line: "    let v = x.unwrap();".into(),
        }
    }

    #[test]
    fn render_includes_location_rule_and_caret() {
        let text = sample().to_string();
        assert!(text.contains("error[no-panic-in-lib]"));
        assert!(text.contains("crates/bigint/src/x.rs:7:15"));
        assert!(text.contains("^^^^^^ propagate a Result instead"));
        let caret_line = text.lines().last().expect("caret line");
        let src_line = text.lines().nth(3).expect("source line");
        // Carets align under column 15 of the source line.
        assert_eq!(
            caret_line.find('^').expect("caret") - caret_line.find('|').expect("bar"),
            src_line.find("unwrap").expect("token") - src_line.find('|').expect("bar")
        );
    }

    #[test]
    fn report_summarizes() {
        assert!(render_report(&[]).contains("no invariant violations"));
        let two = vec![sample(), sample()];
        assert!(render_report(&two).contains("2 violations in 1 file"));
    }

    #[test]
    fn json_renders_stable_schema() {
        let mut d = sample();
        d.message = "a \"quoted\"\tmessage".into();
        let text = render_json(&[d]);
        assert!(text.contains("\"version\": 1"));
        assert!(text.contains("\"count\": 1"));
        assert!(text.contains("\"rule\": \"no-panic-in-lib\""));
        assert!(text.contains("\"path\": \"crates/bigint/src/x.rs\""));
        assert!(text.contains("\"line\": 7"));
        assert!(text.contains("\\\"quoted\\\"\\t"));
    }

    #[test]
    fn json_empty_set_is_well_formed() {
        let text = render_json(&[]);
        assert!(text.contains("\"count\": 0"));
        assert!(text.contains("\"violations\": []"));
    }
}
