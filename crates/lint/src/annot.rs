//! `lint:` annotation parsing and targeting.
//!
//! Two comment-borne annotation forms steer the rules:
//!
//! * `// lint:allow(<rule-id>) <justification>` — suppress one finding of
//!   `<rule-id>` on the annotated line. The justification is mandatory: an
//!   allow without one is itself a diagnostic, and so is an allow that
//!   suppresses nothing (`unused-allow`), so stale annotations cannot
//!   accumulate.
//! * `// lint:atomics(metrics|control) <justification>` — classify an
//!   atomic-ordering site for the `atomics-ordering-audit` rule. `metrics`
//!   asserts the value never feeds control flow (so `Relaxed` is fine);
//!   `control` asserts it does (so `Relaxed` is an error).
//!
//! Targeting is line-based: a trailing comment annotates its own line; a
//! comment alone on its line annotates the next line that carries any
//! token. This keeps the grammar trivially greppable and independent of
//! statement structure.

use crate::lexer::{Comment, Token};
use std::collections::BTreeSet;

/// Classification carried by a `lint:atomics(...)` annotation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicsTag {
    Metrics,
    Control,
}

/// One parsed annotation, bound to the source line it targets.
#[derive(Clone, Debug)]
pub struct Annotation {
    pub kind: AnnotationKind,
    /// Line the annotation comment appears on (for diagnostics).
    pub comment_line: u32,
    /// Line the annotation applies to.
    pub target_line: u32,
    pub justification: String,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnnotationKind {
    Allow {
        rule: String,
    },
    Atomics {
        tag: AtomicsTag,
    },
    /// A `lint:` comment that did not parse; always reported.
    Malformed {
        reason: String,
    },
}

/// Extract every `lint:` annotation from the file's comments.
pub fn parse(comments: &[Comment], tokens: &[Token], src: &str) -> Vec<Annotation> {
    let token_lines: BTreeSet<u32> = tokens.iter().map(|t| t.line).collect();
    let mut out = Vec::new();
    for comment in comments {
        let body = comment
            .text(src)
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim();
        let Some(directive) = body.strip_prefix("lint:") else {
            continue;
        };
        let target_line = if comment.own_line {
            // First line after the comment that carries a token.
            token_lines
                .range(comment.line + 1..)
                .next()
                .copied()
                .unwrap_or(comment.line)
        } else {
            comment.line
        };
        let kind = parse_directive(directive);
        let justification = justification_of(directive);
        out.push(Annotation {
            kind,
            comment_line: comment.line,
            target_line,
            justification,
        });
    }
    out
}

fn justification_of(directive: &str) -> String {
    directive
        .split_once(')')
        .map(|(_, rest)| rest.trim().trim_end_matches("*/").trim())
        .unwrap_or("")
        .to_string()
}

fn parse_directive(directive: &str) -> AnnotationKind {
    let malformed = |reason: &str| AnnotationKind::Malformed {
        reason: reason.to_string(),
    };
    if let Some(rest) = directive.strip_prefix("allow(") {
        let Some((rule, _)) = rest.split_once(')') else {
            return malformed("missing `)` in `lint:allow(...)`");
        };
        let rule = rule.trim();
        if rule.is_empty() {
            return malformed("empty rule id in `lint:allow(...)`");
        }
        AnnotationKind::Allow {
            rule: rule.to_string(),
        }
    } else if let Some(rest) = directive.strip_prefix("atomics(") {
        let Some((tag, _)) = rest.split_once(')') else {
            return malformed("missing `)` in `lint:atomics(...)`");
        };
        match tag.trim() {
            "metrics" => AnnotationKind::Atomics {
                tag: AtomicsTag::Metrics,
            },
            "control" => AnnotationKind::Atomics {
                tag: AtomicsTag::Control,
            },
            other => malformed(&format!(
                "unknown atomics tag `{other}` (expected `metrics` or `control`)"
            )),
        }
    } else {
        malformed("unknown directive (expected `lint:allow(...)` or `lint:atomics(...)`)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn annots(src: &str) -> Vec<Annotation> {
        let lexed = lex(src);
        parse(&lexed.comments, &lexed.tokens, src)
    }

    #[test]
    fn trailing_allow_targets_own_line() {
        let src = "let x = v.unwrap(); // lint:allow(no-panic-in-lib) checked above\n";
        let a = annots(src);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].target_line, 1);
        assert_eq!(
            a[0].kind,
            AnnotationKind::Allow {
                rule: "no-panic-in-lib".into()
            }
        );
        assert_eq!(a[0].justification, "checked above");
    }

    #[test]
    fn own_line_allow_targets_next_token_line() {
        let src = "// lint:allow(forbid-unsafe-creep) vetted below\n\nunsafe { x() }\n";
        let a = annots(src);
        assert_eq!(a[0].target_line, 3);
    }

    #[test]
    fn atomics_tags_parse() {
        let src = "x.load(O); // lint:atomics(metrics) display only\ny.store(O); // lint:atomics(control) gate\n";
        let a = annots(src);
        assert_eq!(
            a[0].kind,
            AnnotationKind::Atomics {
                tag: AtomicsTag::Metrics
            }
        );
        assert_eq!(
            a[1].kind,
            AnnotationKind::Atomics {
                tag: AtomicsTag::Control
            }
        );
    }

    #[test]
    fn malformed_directives_reported() {
        for src in [
            "// lint:allow(no-close justification\n",
            "// lint:atomics(maybe) hmm\n",
            "// lint:frobnicate(x)\n",
            "// lint:allow() empty\n",
        ] {
            let a = annots(src);
            assert!(
                matches!(a[0].kind, AnnotationKind::Malformed { .. }),
                "{src}"
            );
        }
    }

    #[test]
    fn non_lint_comments_ignored() {
        assert!(annots("// plain comment about lint rules\n").is_empty());
    }

    #[test]
    fn block_comment_annotation() {
        let src = "do_it(); /* lint:allow(limb-normalization) builder */\n";
        let a = annots(src);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].justification, "builder");
    }
}
