//! Marking `#[cfg(test)]` / `#[test]` regions so rules can skip test code.
//!
//! The panic rules deliberately apply only to library paths: a test that
//! `unwrap()`s is asserting, not shipping. Without a parse tree, test
//! regions are recovered from the token stream by brace matching: an
//! attribute whose tokens mention `test` (`#[cfg(test)]`, `#[test]`,
//! `#[cfg(any(test, fuzzing))]`, ...) marks the item that follows it, and
//! the item's body is the brace-balanced block after its first `{`. The
//! approach over-approximates (any `test`-mentioning cfg counts) which is
//! the safe direction for a suppression: it can only relax rules inside
//! code that does not ship in the library build.

use crate::lexer::{Token, TokenKind};

/// Per-line flags: `true` when the line is inside test-only code.
pub struct TestMap {
    test_lines: Vec<bool>,
}

impl TestMap {
    /// True when 1-based `line` is inside a test region.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_lines.get(line as usize).copied().unwrap_or(false)
    }
}

/// True if the token at `i` starts an attribute (`#[...]` or `#![...]`)
/// whose tokens include the identifier `test`. Returns the token index just
/// past the closing `]` when so.
fn test_attribute(tokens: &[Token], src: &str, i: usize) -> Option<usize> {
    if tokens[i].kind != TokenKind::Punct('#') {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j).map(|t| t.kind) == Some(TokenKind::Punct('!')) {
        j += 1;
    }
    if tokens.get(j).map(|t| t.kind) != Some(TokenKind::Punct('[')) {
        return None;
    }
    let mut depth = 0usize;
    let mut mentions_test = false;
    for (k, tok) in tokens.iter().enumerate().skip(j) {
        match tok.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return mentions_test.then_some(k + 1);
                }
            }
            TokenKind::Ident if tok.text(src) == "test" => mentions_test = true,
            _ => {}
        }
    }
    None
}

/// Build the per-line test map for one lexed file.
pub fn build(tokens: &[Token], src: &str, line_count: usize) -> TestMap {
    let mut test_lines = vec![false; line_count + 2];
    let mut i = 0;
    while i < tokens.len() {
        let Some(mut after) = test_attribute(tokens, src, i) else {
            i += 1;
            continue;
        };
        // Skip any further attributes between the test attribute and the
        // item (`#[cfg(test)] #[allow(dead_code)] mod tests`).
        while let Some(t) = tokens.get(after) {
            if t.kind == TokenKind::Punct('#') {
                let mut j = after + 1;
                if tokens.get(j).map(|t| t.kind) == Some(TokenKind::Punct('!')) {
                    j += 1;
                }
                if tokens.get(j).map(|t| t.kind) == Some(TokenKind::Punct('[')) {
                    let mut depth = 0usize;
                    let mut k = j;
                    while let Some(tok) = tokens.get(k) {
                        match tok.kind {
                            TokenKind::Punct('[') => depth += 1,
                            TokenKind::Punct(']') => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    after = k + 1;
                    continue;
                }
            }
            break;
        }
        // The attributed item's body: brace-match from its first `{`. An
        // item that ends at `;` before any `{` (a `use` or extern decl) has
        // no body to mark.
        let mut k = after;
        let mut body_start = None;
        while let Some(tok) = tokens.get(k) {
            match tok.kind {
                TokenKind::Punct('{') => {
                    body_start = Some(k);
                    break;
                }
                TokenKind::Punct(';') => break,
                _ => k += 1,
            }
        }
        let Some(open) = body_start else {
            i = after;
            continue;
        };
        let mut depth = 0usize;
        let mut close = open;
        while let Some(tok) = tokens.get(close) {
            match tok.kind {
                TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            close += 1;
        }
        let first = tokens[i].line as usize;
        let last = tokens
            .get(close)
            .map(|t| t.line as usize)
            .unwrap_or(line_count);
        let last = last.min(line_count + 1);
        test_lines[first..=last].fill(true);
        i = close.max(after) + 1;
    }
    TestMap { test_lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn map(src: &str) -> TestMap {
        let lexed = lex(src);
        build(&lexed.tokens, src, src.lines().count())
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn tail() {}\n";
        let m = map(src);
        assert!(!m.is_test_line(1));
        assert!(m.is_test_line(2));
        assert!(m.is_test_line(3));
        assert!(m.is_test_line(4));
        assert!(m.is_test_line(5));
        assert!(!m.is_test_line(6));
    }

    #[test]
    fn bare_test_fn_is_marked() {
        let src = "#[test]\nfn check() {\n    body();\n}\nfn lib() {}\n";
        let m = map(src);
        assert!(m.is_test_line(2));
        assert!(m.is_test_line(3));
        assert!(!m.is_test_line(5));
    }

    #[test]
    fn stacked_attributes_before_item() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n    x();\n}\n";
        assert!(map(src).is_test_line(4));
    }

    #[test]
    fn non_test_attribute_not_marked() {
        let src = "#[cfg(feature = \"x\")]\nmod real {\n    y();\n}\n";
        assert!(!map(src).is_test_line(3));
    }

    #[test]
    fn cfg_test_use_declaration_marks_nothing_after() {
        let src = "#[cfg(test)]\nuse std::fmt;\nfn lib() {}\n";
        assert!(!map(src).is_test_line(3));
    }

    #[test]
    fn nested_braces_in_body() {
        let src = "#[cfg(test)]\nmod tests {\n    fn a() { if x { y() } }\n}\nfn lib() {}\n";
        let m = map(src);
        assert!(m.is_test_line(3));
        assert!(!m.is_test_line(5));
    }
}
