//! Intra-function dataflow helpers over token streams.
//!
//! The semantic rules ([`crate::semantic`]) reason about *statement
//! sequences inside one function body*: where a `let` binding's value came
//! from, how long a lock guard stays live, which locals a function
//! increments. None of that needs an AST — a token walk with group-depth
//! bookkeeping recovers it, and this module centralizes those walks so
//! each rule stays a readable scan.
//!
//! Approximations, shared by every consumer:
//!
//! * Binding recovery handles `let [mut] name [: Ty] = init;` with a plain
//!   identifier pattern. Tuple/struct patterns are skipped — their
//!   components are treated as opaque (no expansion), which under-reports
//!   but never misattributes.
//! * Shadowing keeps the *last* initializer per name. Rules that expand
//!   bindings bound the recursion depth, so a self-referential
//!   `let x = x + 1;` cannot loop.
//! * Guard liveness is lexical: from the binding statement to the end of
//!   the enclosing block, shortened by an explicit `drop(name)`. NLL's
//!   earlier drops are invisible at token level — lexical scope is exactly
//!   the conservative approximation the lock-discipline rule wants.

use crate::lexer::{Token, TokenKind};
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Token index of the `}` closing the innermost block that encloses `i`,
/// or `body.end` when `i` sits at body depth (the fn's own braces are
/// outside the range).
pub fn enclosing_block_end(toks: &[Token], body: &Range<usize>, i: usize) -> usize {
    let mut depth = 0i64;
    for (k, tok) in toks.iter().enumerate().take(body.end).skip(i) {
        match tok.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    body.end
}

/// `let` bindings of one fn body: name → token range of the initializer
/// expression (exclusive of the `=` and the closing `;`).
#[derive(Debug, Default)]
pub struct LetBindings {
    map: HashMap<String, Range<usize>>,
}

impl LetBindings {
    /// The initializer range of `name`, if a simple binding exists.
    pub fn init_of(&self, name: &str) -> Option<&Range<usize>> {
        self.map.get(name)
    }
}

/// One recovered `let` statement, for rules that need positions too.
#[derive(Debug)]
pub struct LetStmt {
    pub name: String,
    /// Index of the `let` token.
    pub let_idx: usize,
    /// Initializer tokens (after `=`, before the terminating `;`).
    pub init: Range<usize>,
    /// Index of the terminating `;` (liveness of the binding starts after
    /// it), or of the last initializer token on a malformed tail.
    pub end: usize,
}

/// Scan a body for simple `let` statements. See module docs for the
/// pattern subset.
pub fn let_statements(src: &str, toks: &[Token], body: &Range<usize>) -> Vec<LetStmt> {
    let mut out = Vec::new();
    let mut i = body.start;
    while i < body.end {
        let tok = &toks[i];
        if !(tok.kind == TokenKind::Ident && tok.text(src) == "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < body.end && toks[j].kind == TokenKind::Ident && toks[j].text(src) == "mut" {
            j += 1;
        }
        let Some(name_tok) = toks.get(j).filter(|t| t.kind == TokenKind::Ident) else {
            i += 1; // tuple/struct pattern — opaque
            continue;
        };
        let name = name_tok.text(src).to_string();
        // Find the `=` introducing the initializer, at group depth 0 so a
        // default generic (`Option<Foo<T = U>>`) or array length in the
        // type annotation cannot fool us. `==`/`>=`-style composites never
        // appear before the initializer of a well-formed `let`.
        let mut depth = 0i64;
        let mut eq = None;
        let mut k = j + 1;
        while k < body.end {
            match toks[k].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('>') => depth -= 1,
                TokenKind::Punct('=') if depth == 0 => {
                    // `let x;` has no `=`; `else` blocks of let-else start
                    // with `{` — both end the search harmlessly via `;`.
                    eq = Some(k);
                    break;
                }
                TokenKind::Punct(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(eq) = eq else {
            i = k.max(i + 1);
            continue;
        };
        // Initializer runs to the `;` at group depth 0 (counting braces
        // too: `match`/`if` initializers contain `;` inside their blocks).
        let mut depth = 0i64;
        let mut end = body.end.saturating_sub(1);
        let mut m = eq + 1;
        while m < body.end {
            match toks[m].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
                TokenKind::Punct(';') if depth == 0 => {
                    end = m;
                    break;
                }
                _ => {}
            }
            m += 1;
        }
        out.push(LetStmt {
            name,
            let_idx: i,
            init: eq + 1..end,
            end,
        });
        i = end.max(i + 1);
    }
    out
}

/// The binding map (last initializer wins under shadowing).
pub fn let_bindings(src: &str, toks: &[Token], body: &Range<usize>) -> LetBindings {
    let mut map = HashMap::new();
    for stmt in let_statements(src, toks, body) {
        map.insert(stmt.name, stmt.init);
    }
    LetBindings { map }
}

/// Plain locals the body increments in place (`name += ...`). Field
/// increments (`self.count += 1`) are excluded: fields may legitimately
/// mirror on-disk state, and the watermark rule catches suspicious fields
/// by name instead.
pub fn incremented_locals(src: &str, toks: &[Token], body: &Range<usize>) -> HashSet<String> {
    let mut out = HashSet::new();
    for i in body.clone() {
        if toks[i].kind != TokenKind::Ident {
            continue;
        }
        let after_dot = i > body.start && toks[i - 1].kind == TokenKind::Punct('.');
        if after_dot {
            continue;
        }
        let plus = toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('+'));
        let eq = toks.get(i + 2).map(|t| t.kind) == Some(TokenKind::Punct('='));
        if plus && eq {
            out.insert(toks[i].text(src).to_string());
        }
    }
    out
}

/// First `drop(name)` call inside `range`, as the index of the `drop`
/// token.
pub fn drop_of(src: &str, toks: &[Token], range: &Range<usize>, name: &str) -> Option<usize> {
    range.clone().find(|&i| {
        toks[i].kind == TokenKind::Ident
            && toks[i].text(src) == "drop"
            && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('('))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokenKind::Ident && t.text(src) == name)
            && toks.get(i + 3).map(|t| t.kind) == Some(TokenKind::Punct(')'))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn body_of(src: &str) -> (crate::lexer::Lexed, Range<usize>) {
        let lexed = lex(src);
        let open = lexed
            .tokens
            .iter()
            .position(|t| t.kind == TokenKind::Punct('{'))
            .expect("open brace");
        let body = open + 1..lexed.tokens.len() - 1;
        (lexed, body)
    }

    #[test]
    fn simple_let_bindings_recovered() {
        let src = "fn f() { let a = g(1); let mut b: usize = a + 2; }";
        let (lexed, body) = body_of(src);
        let b = let_bindings(src, &lexed.tokens, &body);
        assert!(b.init_of("a").is_some());
        assert!(b.init_of("b").is_some());
        let init = b.init_of("b").expect("b");
        let text: Vec<_> = lexed.tokens[init.clone()]
            .iter()
            .map(|t| t.text(src))
            .collect();
        assert_eq!(text, vec!["a", "+", "2"]);
    }

    #[test]
    fn generic_defaults_in_type_annotations_do_not_split_the_binding() {
        let src = "fn f() { let x: Foo<T = U> = mk(); use_it(x); }";
        let (lexed, body) = body_of(src);
        let b = let_bindings(src, &lexed.tokens, &body);
        let init = b.init_of("x").expect("x binding");
        assert_eq!(lexed.tokens[init.start].text(src), "mk");
    }

    #[test]
    fn match_initializers_swallow_inner_semicolons() {
        let src = "fn f(c: bool) { let x = match c { true => { g(); 1 } false => 2 }; after(x); }";
        let (lexed, body) = body_of(src);
        let stmts = let_statements(src, &lexed.tokens, &body);
        assert_eq!(stmts.len(), 1);
        // The statement's `;` is the one after the match, so `after(x)` is
        // outside the initializer.
        assert!(lexed.tokens[stmts[0].init.clone()]
            .iter()
            .all(|t| t.text(src) != "after"));
    }

    #[test]
    fn tuple_patterns_are_opaque() {
        let src = "fn f() { let (a, b) = pair(); let c = a; }";
        let (lexed, body) = body_of(src);
        let b = let_bindings(src, &lexed.tokens, &body);
        assert!(b.init_of("a").is_none());
        assert!(b.init_of("c").is_some());
    }

    #[test]
    fn incremented_locals_exclude_fields() {
        let src = "fn f(&mut self) { let mut n = 0; n += 1; self.count += 1; }";
        let (lexed, body) = body_of(src);
        let inc = incremented_locals(src, &lexed.tokens, &body);
        assert!(inc.contains("n"));
        assert!(!inc.contains("count"));
    }

    #[test]
    fn block_end_and_drop_bound_guard_liveness() {
        let src = "fn f() { let g = m.lock(); use_it(&g); drop(g); tail(); }";
        let (lexed, body) = body_of(src);
        let toks = &lexed.tokens;
        let let_idx = toks.iter().position(|t| t.text(src) == "let").expect("let");
        assert_eq!(enclosing_block_end(toks, &body, let_idx), body.end);
        let live = let_idx..body.end;
        let d = drop_of(src, toks, &live, "g").expect("drop site");
        assert_eq!(toks[d].text(src), "drop");
    }

    #[test]
    fn inner_block_scopes_end_early() {
        let src = "fn f() { { let g = m.lock(); use_it(&g); } tail(); }";
        let (lexed, body) = body_of(src);
        let toks = &lexed.tokens;
        let let_idx = toks.iter().position(|t| t.text(src) == "let").expect("let");
        let end = enclosing_block_end(toks, &body, let_idx);
        assert_eq!(toks[end].kind, TokenKind::Punct('}'));
        // `tail` lies past the block end.
        let tail = toks
            .iter()
            .position(|t| t.text(src) == "tail")
            .expect("tail");
        assert!(tail > end);
    }
}
