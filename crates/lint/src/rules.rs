//! The token-pattern rules (per-file invariants) and the annotation
//! resolver shared with the semantic pass.
//!
//! | rule id                  | scope                         | invariant |
//! |--------------------------|-------------------------------|-----------|
//! | `no-panic-in-lib`        | every lib crate               | no `unwrap`/`expect`/panic-macros/fixed-index subscripts |
//! | `atomics-ordering-audit` | `batchgcd/src/pool.rs`        | every `Ordering::Relaxed` is tagged `metrics` or `control`; `control` + `Relaxed` is an error |
//! | `limb-normalization`     | whole workspace               | no raw `Natural { limbs: ... }` construction outside `natural.rs` |
//! | `forbid-unsafe-creep`    | whole workspace               | no `unsafe` outside the audited allowlist |
//! | `arena-discipline`       | `bigint`, `batchgcd`          | every `arena::take` checkout flows back (`arena::put` / `Natural::from_limbs`) in its block with no `return` in between, and never lands in a struct field |
//!
//! The workspace-level rules (`durability-publish`, `panic-reachability`,
//! `lock-discipline`, `watermark-provenance`) live in [`crate::semantic`];
//! their ids are declared here so the annotation grammar can validate
//! every `lint:allow(...)` against one [`KNOWN_RULES`] list.
//!
//! Rules emit findings; [`resolve`] then applies `lint:allow`
//! suppressions, demands justifications, and reports unused, malformed, or
//! unknown-rule annotations so the annotation layer itself stays sound.

use crate::annot::{Annotation, AnnotationKind, AtomicsTag};
use crate::diag::Diagnostic;
use crate::lexer::{Lexed, Token, TokenKind};
use crate::testmap::TestMap;

pub const ARENA_DISCIPLINE: &str = "arena-discipline";
pub const NO_PANIC: &str = "no-panic-in-lib";
pub const ATOMICS: &str = "atomics-ordering-audit";
pub const LIMB_NORM: &str = "limb-normalization";
pub const UNSAFE_CREEP: &str = "forbid-unsafe-creep";
pub const UNUSED_ALLOW: &str = "unused-allow";
pub const BAD_ANNOTATION: &str = "bad-annotation";
pub const DURABILITY: &str = "durability-publish";
pub const PANIC_REACH: &str = "panic-reachability";
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
pub const WATERMARK: &str = "watermark-provenance";

/// Every rule id a `lint:allow(...)` may name. The meta rules
/// (`unused-allow`, `bad-annotation`) are deliberately absent: the
/// annotation layer cannot suppress its own audit.
pub const KNOWN_RULES: &[&str] = &[
    ARENA_DISCIPLINE,
    ATOMICS,
    DURABILITY,
    UNSAFE_CREEP,
    LIMB_NORM,
    LOCK_DISCIPLINE,
    NO_PANIC,
    PANIC_REACH,
    WATERMARK,
];

/// Crates whose library code must not contain panic-capable calls. The
/// arithmetic core (`bigint`, `batchgcd`) earned the rule first; `scan` and
/// `service` joined when the key-audit daemon made them long-running; the
/// semantic upgrade extended it to every lib crate — a malformed input
/// must surface as an `Err` on one call, not abort a process holding
/// months of warmed-up corpus state. (`lint` and `bench` are tooling, not
/// library surface.)
pub(crate) const NO_PANIC_CRATES: &[&str] = &[
    "analysis",
    "batchgcd",
    "bigint",
    "cert",
    "cluster",
    "core",
    "fingerprint",
    "keygen",
    "rng",
    "scan",
    "service",
    "tls",
];
/// Files allowed to contain `unsafe` (each reviewed in DESIGN.md).
const UNSAFE_ALLOWLIST: &[&str] = &["batchgcd/src/pool.rs"];
/// The one file allowed to build `Natural` from raw limbs: it defines the
/// normalizing constructors.
const LIMB_CONSTRUCTOR_FILE: &str = "bigint/src/natural.rs";
/// The file under the atomics-ordering audit.
const ATOMICS_FILE: &str = "batchgcd/src/pool.rs";
/// Crates whose code checks limb buffers out of the thread arena
/// (`wk_bigint::arena`) and is therefore under the checkout/return audit.
const ARENA_CRATES: &[&str] = &["bigint", "batchgcd"];

/// Everything the rules need to know about one source file.
pub struct FileContext<'s> {
    /// Workspace-relative path with `/` separators (as diagnosed).
    pub rel_path: &'s str,
    /// Crate directory name under `crates/` (`bigint`, not `wk-bigint`).
    pub crate_name: &'s str,
    pub src: &'s str,
    pub lexed: &'s Lexed,
    pub testmap: &'s TestMap,
    pub annotations: &'s [Annotation],
}

impl<'s> FileContext<'s> {
    fn line_text(&self, line: u32) -> String {
        self.src
            .lines()
            .nth(line as usize - 1)
            .unwrap_or("")
            .to_string()
    }

    fn diag(&self, tok: &Token, rule: &str, message: String, help: String) -> Diagnostic {
        Diagnostic {
            path: self.rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            len: tok.text(self.src).chars().count(),
            rule: rule.to_string(),
            message,
            help,
            source_line: self.line_text(tok.line),
        }
    }

    fn path_is(&self, suffix: &str) -> bool {
        self.rel_path.ends_with(suffix)
    }
}

/// Run every token-pattern rule over one file, returning raw findings.
/// The caller appends any workspace-level findings for this file and then
/// feeds the combined set through [`resolve`].
pub fn file_findings(ctx: &FileContext) -> Vec<Diagnostic> {
    let mut findings = Vec::new();
    no_panic_in_lib(ctx, &mut findings);
    limb_normalization(ctx, &mut findings);
    forbid_unsafe_creep(ctx, &mut findings);
    atomics_ordering_audit(ctx, &mut findings);
    arena_discipline(ctx, &mut findings);
    findings
}

/// `no-panic-in-lib`: panic-capable constructs in arithmetic-core library
/// code. A wrong answer should surface as an `Err` the caller can account
/// for, not a worker-thread abort mid batch.
fn no_panic_in_lib(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !NO_PANIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let allow_hint =
        format!("return a Result, restructure, or annotate `// lint:allow({NO_PANIC}) <why>`");
    for (i, tok) in toks.iter().enumerate() {
        if ctx.testmap.is_test_line(tok.line) {
            continue;
        }
        match tok.kind {
            TokenKind::Ident => {
                let text = tok.text(ctx.src);
                // `.unwrap(` / `.expect(` method calls.
                if (text == "unwrap" || text == "expect")
                    && i > 0
                    && toks[i - 1].kind == TokenKind::Punct('.')
                    && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('('))
                {
                    out.push(ctx.diag(
                        tok,
                        NO_PANIC,
                        format!("`.{text}()` in library code"),
                        allow_hint.clone(),
                    ));
                }
                // Panic-family macros. `assert!`-style precondition checks
                // are deliberately exempt: they are documented API contracts
                // (`# Panics` sections), not silent failure paths.
                if matches!(text, "panic" | "unreachable" | "todo" | "unimplemented")
                    && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('!'))
                {
                    out.push(ctx.diag(
                        tok,
                        NO_PANIC,
                        format!("`{text}!` in library code"),
                        allow_hint.clone(),
                    ));
                }
            }
            // Fixed-index subscript `expr[<literal>]`: panics unless the
            // length is locally guaranteed. Array literals (`[0u8; 8]`) and
            // macro brackets (`vec![...]`) don't match because `[` must
            // follow an expression tail.
            TokenKind::Punct('[') => {
                let after_expr = i > 0
                    && matches!(
                        toks[i - 1].kind,
                        TokenKind::Ident | TokenKind::Punct(')') | TokenKind::Punct(']')
                    );
                if after_expr
                    && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Number)
                    && toks.get(i + 2).map(|t| t.kind) == Some(TokenKind::Punct(']'))
                {
                    let idx = &toks[i + 1];
                    out.push(Diagnostic {
                        len: idx.text(ctx.src).chars().count() + 2,
                        ..ctx.diag(
                            tok,
                            NO_PANIC,
                            format!(
                                "fixed-index subscript `[{}]` in library code",
                                idx.text(ctx.src)
                            ),
                            format!(
                                "use a slice pattern or `.get({})`, or annotate \
                                 `// lint:allow({NO_PANIC}) <why>`",
                                idx.text(ctx.src)
                            ),
                        )
                    });
                }
            }
            _ => {}
        }
    }
}

/// `limb-normalization`: `Natural`'s limb vector must keep its top limb
/// nonzero; every construction goes through the normalizing constructors in
/// `natural.rs`. A raw struct literal or direct field write elsewhere can
/// produce a denormalized value that breaks `Ord`/`Eq`/`bit_len`.
fn limb_normalization(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.path_is(LIMB_CONSTRUCTOR_FILE) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = tok.text(ctx.src);
        // `Natural { limbs ... }` struct literal.
        if text == "Natural"
            && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('{'))
            && toks
                .get(i + 2)
                .is_some_and(|t| t.kind == TokenKind::Ident && t.text(ctx.src) == "limbs")
            && matches!(
                toks.get(i + 3).map(|t| t.kind),
                Some(TokenKind::Punct(':'))
                    | Some(TokenKind::Punct('}'))
                    | Some(TokenKind::Punct(','))
            )
        {
            out.push(
                ctx.diag(
                    tok,
                    LIMB_NORM,
                    "raw `Natural { limbs: ... }` construction".to_string(),
                    "use `Natural::from_limbs` / `from_limb_slice` so the top limb is normalized"
                        .to_string(),
                ),
            );
        }
        // `.limbs = ...` direct field write (not `==`).
        if text == "limbs"
            && i > 0
            && toks[i - 1].kind == TokenKind::Punct('.')
            && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('='))
            && toks.get(i + 2).map(|t| t.kind) != Some(TokenKind::Punct('='))
        {
            out.push(ctx.diag(
                tok,
                LIMB_NORM,
                "direct write to the `limbs` field".to_string(),
                "construct a fresh value via `Natural::from_limbs` instead".to_string(),
            ));
        }
    }
}

/// `forbid-unsafe-creep`: `unsafe` is confined to an explicit, reviewed
/// allowlist; everywhere else it is an error even before the compiler sees
/// a `#![forbid(unsafe_code)]`.
fn forbid_unsafe_creep(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if UNSAFE_ALLOWLIST.iter().any(|f| ctx.path_is(f)) {
        return;
    }
    for tok in &ctx.lexed.tokens {
        if tok.kind == TokenKind::Ident && tok.text(ctx.src) == "unsafe" {
            out.push(
                ctx.diag(
                    tok,
                    UNSAFE_CREEP,
                    "`unsafe` outside the audited allowlist".to_string(),
                    "keep unsafe in the allowlisted files (see wk-lint's UNSAFE_ALLOWLIST) or \
                 extend the allowlist in review"
                        .to_string(),
                ),
            );
        }
    }
}

/// `atomics-ordering-audit`: in the work-stealing pool, every
/// `Ordering::Relaxed` must be classified. `metrics` sites feed reporting
/// only and tolerate reordering; a `control` site whose value gates
/// execution (shutdown, batch-completion) must use an acquire/release
/// ordering, so `control` + `Relaxed` is always an error.
fn atomics_ordering_audit(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !ctx.path_is(ATOMICS_FILE) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let relaxed = tok.kind == TokenKind::Ident
            && tok.text(ctx.src) == "Relaxed"
            && i >= 3
            && toks[i - 1].kind == TokenKind::Punct(':')
            && toks[i - 2].kind == TokenKind::Punct(':')
            && toks[i - 3].kind == TokenKind::Ident
            && toks[i - 3].text(ctx.src) == "Ordering";
        if !relaxed {
            continue;
        }
        let tag = ctx.annotations.iter().find_map(|a| match &a.kind {
            AnnotationKind::Atomics { tag } if a.target_line == tok.line => Some(*tag),
            _ => None,
        });
        match tag {
            None => out.push(
                ctx.diag(
                    tok,
                    ATOMICS,
                    "unannotated `Ordering::Relaxed`".to_string(),
                    "classify the site: `// lint:atomics(metrics) <why>` if the value never \
                 feeds control flow, otherwise use Acquire/Release and tag it `control`"
                        .to_string(),
                ),
            ),
            Some(AtomicsTag::Control) => out.push(
                ctx.diag(
                    tok,
                    ATOMICS,
                    "control-tagged atomic uses `Ordering::Relaxed`".to_string(),
                    "a control-bearing site needs Acquire/Release/AcqRel (see pool.rs shutdown \
                 and batch-completion protocol)"
                        .to_string(),
                ),
            ),
            Some(AtomicsTag::Metrics) => {}
        }
    }
}

/// `arena-discipline`: limb-arena checkouts in the arithmetic crates must
/// come back. A `let buf = arena::take(..)` binding has to flow into
/// `arena::put(buf)` or `Natural::from_limbs(.. buf ..)` before its
/// lexical block ends, with no `return` between checkout and release
/// (every path must return the buffer); and no `arena::take` result may
/// be stored into a struct field — scratch lives for one pass, structs
/// outlive it.
///
/// Approximations, deliberate and documented: consumption is looked up
/// lexically (a release inside a conditional branch counts), `?` exits
/// are not tracked, and tuple-pattern bindings are opaque — all
/// under-reporting, never misattributing. An inline
/// `Natural::from_limbs(arena::take(..))` transfers ownership at birth
/// and needs no pairing; the `Natural` recycles through the arena on its
/// own.
fn arena_discipline(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !ARENA_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &ctx.lexed.tokens;
    let full = 0..toks.len();

    // Struct-escape scan: a checkout whose destination is a struct field,
    // either by assignment (`slot.buf = arena::take(..)`) or in a struct
    // literal (`Scratch { buf: arena::take(..) }`).
    for i in 0..toks.len() {
        let Some(start) = arena_take_at(ctx, i) else {
            continue;
        };
        if ctx.testmap.is_test_line(toks[i].line) {
            continue;
        }
        let field_assign = start >= 3
            && toks[start - 1].kind == TokenKind::Punct('=')
            && toks[start - 2].kind == TokenKind::Ident
            && toks[start - 3].kind == TokenKind::Punct('.');
        let struct_literal = start >= 3
            && toks[start - 1].kind == TokenKind::Punct(':')
            && toks[start - 2].kind == TokenKind::Ident
            && matches!(
                toks[start - 3].kind,
                TokenKind::Punct('{') | TokenKind::Punct(',')
            );
        if field_assign || struct_literal {
            out.push(
                ctx.diag(
                    &toks[i],
                    ARENA_DISCIPLINE,
                    "arena buffer stored in a struct field".to_string(),
                    "a checkout must not outlive the pass: keep scratch in locals (or a \
                 `DescentScratch` that recycles on reset) and let structs own plain \
                 allocations, or annotate `// lint:allow(arena-discipline) <why>`"
                        .to_string(),
                ),
            );
        }
    }

    // Checkout/return pairing for simple `let` bindings of a bare take.
    for stmt in crate::dataflow::let_statements(ctx.src, toks, &full) {
        let take_idx = stmt.init.start + arena_path_len(ctx, stmt.init.start);
        let is_bare_take = take_idx < stmt.init.end
            && arena_take_at(ctx, take_idx).map(|s| s == stmt.init.start) == Some(true);
        if !is_bare_take || ctx.testmap.is_test_line(toks[take_idx].line) {
            continue;
        }
        let block_end = crate::dataflow::enclosing_block_end(toks, &full, stmt.let_idx);
        let live = stmt.end + 1..block_end;
        let released = live.clone().find(|&j| {
            is_arena_put_of(ctx, j, &stmt.name) || is_from_limbs_with(ctx, j, &stmt.name)
        });
        match released {
            None => out.push(
                ctx.diag(
                    &toks[take_idx],
                    ARENA_DISCIPLINE,
                    format!("arena checkout `{}` never returns to the pool", stmt.name),
                    "flow the buffer back through `arena::put` or transfer ownership via \
                 `Natural::from_limbs` before the block ends, or annotate \
                 `// lint:allow(arena-discipline) <why>`"
                        .to_string(),
                ),
            ),
            Some(release_idx) => {
                if let Some(ret) = (stmt.end + 1..release_idx).find(|&j| {
                    toks[j].kind == TokenKind::Ident && toks[j].text(ctx.src) == "return"
                }) {
                    out.push(
                        ctx.diag(
                            &toks[ret],
                            ARENA_DISCIPLINE,
                            format!(
                                "`return` between the checkout of `{}` and its release",
                                stmt.name
                            ),
                            "every path must return the buffer: release before the early \
                         exit, or annotate `// lint:allow(arena-discipline) <why>`"
                                .to_string(),
                        ),
                    );
                }
            }
        }
    }
}

/// If `toks[i]` is the `take` of an `arena::take(` path call, the index of
/// the first path token (`arena`, or its `crate`/`wk_bigint` qualifier).
fn arena_take_at(ctx: &FileContext, i: usize) -> Option<usize> {
    let toks = &ctx.lexed.tokens;
    let tok = toks.get(i)?;
    if !(tok.kind == TokenKind::Ident
        && tok.text(ctx.src) == "take"
        && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('('))
        && i >= 3
        && toks[i - 1].kind == TokenKind::Punct(':')
        && toks[i - 2].kind == TokenKind::Punct(':')
        && toks[i - 3].kind == TokenKind::Ident
        && toks[i - 3].text(ctx.src) == "arena")
    {
        return None;
    }
    let mut start = i - 3;
    while start >= 3
        && toks[start - 1].kind == TokenKind::Punct(':')
        && toks[start - 2].kind == TokenKind::Punct(':')
        && toks[start - 3].kind == TokenKind::Ident
    {
        start -= 3;
    }
    Some(start)
}

/// Token length of the path prefix leading to a `take` call that begins at
/// `start` (`arena::` is 3 tokens, `crate::arena::` is 6, ...), found by
/// walking forward to the next `take`/`(` pair.
fn arena_path_len(ctx: &FileContext, start: usize) -> usize {
    let toks = &ctx.lexed.tokens;
    let mut j = start;
    while j + 1 < toks.len()
        && toks[j].kind == TokenKind::Ident
        && toks[j + 1].kind == TokenKind::Punct(':')
    {
        j += 3;
    }
    j.saturating_sub(start)
}

/// `arena::put(name)` (any path qualification on `arena`).
fn is_arena_put_of(ctx: &FileContext, j: usize, name: &str) -> bool {
    let toks = &ctx.lexed.tokens;
    toks[j].kind == TokenKind::Ident
        && toks[j].text(ctx.src) == "put"
        && j >= 3
        && toks[j - 1].kind == TokenKind::Punct(':')
        && toks[j - 2].kind == TokenKind::Punct(':')
        && toks[j - 3].kind == TokenKind::Ident
        && toks[j - 3].text(ctx.src) == "arena"
        && toks.get(j + 1).map(|t| t.kind) == Some(TokenKind::Punct('('))
        && toks
            .get(j + 2)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text(ctx.src) == name)
}

/// `from_limbs( .. name .. )` — ownership transfer into a `Natural`.
fn is_from_limbs_with(ctx: &FileContext, j: usize, name: &str) -> bool {
    let toks = &ctx.lexed.tokens;
    if !(toks[j].kind == TokenKind::Ident
        && toks[j].text(ctx.src) == "from_limbs"
        && toks.get(j + 1).map(|t| t.kind) == Some(TokenKind::Punct('(')))
    {
        return false;
    }
    let mut depth = 0i64;
    for tok in toks.iter().skip(j + 1) {
        match tok.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return false;
                }
            }
            TokenKind::Ident if tok.text(ctx.src) == name => return true,
            _ => {}
        }
    }
    false
}

/// Apply `lint:allow` suppressions and audit the annotation layer itself:
/// justifications are mandatory, rule ids must come from [`KNOWN_RULES`],
/// and annotations that suppress or classify nothing are reported so they
/// cannot go stale silently.
pub fn resolve(ctx: &FileContext, findings: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut used = vec![false; ctx.annotations.len()];
    let mut out = Vec::new();

    for finding in findings {
        let matching = ctx.annotations.iter().enumerate().find(|(_, a)| {
            matches!(&a.kind, AnnotationKind::Allow { rule } if *rule == finding.rule)
                && a.target_line == finding.line
        });
        match matching {
            Some((idx, annot)) => {
                used[idx] = true;
                if annot.justification.is_empty() {
                    out.push(annotation_diag(
                        ctx,
                        annot,
                        BAD_ANNOTATION,
                        format!("`lint:allow({})` without a justification", finding.rule),
                        "append the reason the invariant holds here".to_string(),
                    ));
                }
            }
            None => out.push(finding),
        }
    }

    for (idx, annot) in ctx.annotations.iter().enumerate() {
        match &annot.kind {
            AnnotationKind::Malformed { reason } => out.push(annotation_diag(
                ctx,
                annot,
                BAD_ANNOTATION,
                format!("malformed `lint:` annotation: {reason}"),
                "see DESIGN.md for the annotation grammar".to_string(),
            )),
            AnnotationKind::Allow { rule } if !KNOWN_RULES.contains(&rule.as_str()) => {
                out.push(annotation_diag(
                    ctx,
                    annot,
                    BAD_ANNOTATION,
                    format!("unknown rule id `{rule}` in `lint:allow(...)`"),
                    format!("known rules: {}", KNOWN_RULES.join(", ")),
                ))
            }
            AnnotationKind::Allow { rule } if !used[idx] => out.push(annotation_diag(
                ctx,
                annot,
                UNUSED_ALLOW,
                format!("`lint:allow({rule})` suppresses nothing"),
                "the annotated line has no such finding; remove the stale allow".to_string(),
            )),
            AnnotationKind::Atomics { .. } => {
                let classifies = ctx.lexed.tokens.iter().any(|t| {
                    t.line == annot.target_line
                        && t.kind == TokenKind::Ident
                        && t.text(ctx.src) == "Ordering"
                });
                if !classifies {
                    out.push(annotation_diag(
                        ctx,
                        annot,
                        UNUSED_ALLOW,
                        "`lint:atomics(...)` targets a line with no `Ordering` use".to_string(),
                        "move the tag onto the line containing the atomic op".to_string(),
                    ));
                } else if annot.justification.is_empty() {
                    out.push(annotation_diag(
                        ctx,
                        annot,
                        BAD_ANNOTATION,
                        "`lint:atomics(...)` without a justification".to_string(),
                        "say why the classification is correct".to_string(),
                    ));
                }
            }
            _ => {}
        }
    }

    out
}

fn annotation_diag(
    ctx: &FileContext,
    annot: &Annotation,
    rule: &str,
    message: String,
    help: String,
) -> Diagnostic {
    let source_line = ctx.line_text(annot.comment_line);
    let col = (source_line.find("lint:").map(|i| i + 1).unwrap_or(1)) as u32;
    Diagnostic {
        path: ctx.rel_path.to_string(),
        line: annot.comment_line,
        col,
        len: 5,
        rule: rule.to_string(),
        message,
        help,
        source_line,
    }
}
