//! A lightweight item parser: `fn` / `impl` / `mod` / `trait` extraction
//! over the token stream.
//!
//! The semantic rules ([`crate::callgraph`], [`crate::semantic`]) need to
//! know *which function a token belongs to* and *what that function is
//! called* — not a full AST. This pass recovers exactly that by walking the
//! token stream with a scope stack: `mod name {` / `impl Type {` /
//! `trait Name {` push named scopes, every other `{` pushes an anonymous
//! block, and a `fn name` header registers a [`FnItem`] whose body is the
//! brace-balanced block after its signature.
//!
//! Deliberate approximations (documented here and in DESIGN.md §11):
//!
//! * Module paths come from *in-file* `mod` nesting only. Rust makes each
//!   file a module, so cross-file name resolution works by `(crate, name)`
//!   rather than full paths; the qualified name is for display and
//!   disambiguation.
//! * The impl self type is the first type identifier of the impl header
//!   (after `for` in `impl Trait for Type`), with generics skipped. Blanket
//!   impls over type parameters resolve to the parameter's name, which
//!   never matches a call qualifier — an under-approximation.
//! * Functions inside `#[cfg(test)]` regions are parsed but flagged
//!   [`FnItem::in_test`]; the call graph excludes them entirely.

use crate::lexer::{Lexed, Token, TokenKind};
use crate::testmap::TestMap;
use std::ops::Range;

/// One `fn` item recovered from a source file.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Index of the file (into the workspace's file list) defining it.
    pub file: usize,
    /// Crate directory name (`bigint`, not `wk-bigint`).
    pub crate_name: String,
    /// Bare function name (`from_limbs`).
    pub name: String,
    /// Display path: `mod::Type::name`, without the crate prefix.
    pub qualified: String,
    /// Enclosing `impl` self type or `trait` name, when the fn is a method
    /// or associated function.
    pub owner: Option<String>,
    /// `pub` without a `pub(...)` restriction.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
    /// Token-index range of the body, *excluding* the outer braces. Trait
    /// method signatures (`fn f(&self);`) have none.
    pub body: Option<Range<usize>>,
    /// Inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
}

/// Every function of every file in the workspace, in file order.
#[derive(Debug, Default)]
pub struct ItemTable {
    pub fns: Vec<FnItem>,
}

impl ItemTable {
    /// Functions defined in file `file`, in source order.
    pub fn fns_in_file(&self, file: usize) -> impl Iterator<Item = (usize, &FnItem)> {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.file == file)
    }

    /// `crate::qualified` display name for diagnostics.
    pub fn display_name(&self, idx: usize) -> String {
        let f = &self.fns[idx];
        format!("{}::{}", f.crate_name, f.qualified)
    }
}

/// What opened the current brace scope.
#[derive(Clone, Debug)]
enum Scope {
    /// `mod name {`
    Mod(String),
    /// `impl [Trait for] Type {` — carries the self type when recovered.
    Impl(Option<String>),
    /// `trait Name {`
    Trait(String),
    /// A fn body or any non-item block (`if`, match arm, struct literal…).
    Block,
}

/// A parsed-but-not-yet-attached item header, waiting for its `{` or `;`.
enum Pending {
    Mod(String),
    Impl(Option<String>),
    Trait(String),
    /// Index into `ItemTable::fns` of the fn whose body comes next.
    Fn(usize),
}

/// Keywords that can appear between `pub`/attributes and `fn`.
const FN_QUALIFIERS: &[&str] = &["const", "async", "unsafe", "extern"];

/// Parse one lexed file into `out.fns`. `file` is the workspace file index
/// recorded on each item.
pub fn parse_file(
    file: usize,
    crate_name: &str,
    src: &str,
    lexed: &Lexed,
    testmap: &TestMap,
    out: &mut ItemTable,
) {
    let toks = &lexed.tokens;
    let mut stack: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    // Paren/bracket nesting, so the `;` inside `fn f(x: [u8; 4])` is not
    // mistaken for the end of the item header.
    let mut group_depth = 0i64;
    let mut i = 0usize;

    while i < toks.len() {
        let tok = &toks[i];
        match tok.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => {
                group_depth += 1;
                i += 1;
            }
            TokenKind::Punct(')') | TokenKind::Punct(']') => {
                group_depth -= 1;
                i += 1;
            }
            TokenKind::Punct('{') => {
                let scope = match pending.take() {
                    Some(Pending::Mod(name)) => Scope::Mod(name),
                    Some(Pending::Impl(ty)) => Scope::Impl(ty),
                    Some(Pending::Trait(name)) => Scope::Trait(name),
                    Some(Pending::Fn(idx)) => {
                        out.fns[idx].body = Some(i + 1..close_of(toks, i));
                        Scope::Block
                    }
                    None => Scope::Block,
                };
                stack.push(scope);
                i += 1;
            }
            TokenKind::Punct('}') => {
                stack.pop();
                i += 1;
            }
            TokenKind::Punct(';') => {
                // `mod name;`, `fn f(...);` (trait signature), `use ...;`:
                // the pending header has no body here. A `;` nested in
                // `[u8; 4]`-style groups is part of the signature.
                if group_depth == 0 {
                    pending = None;
                }
                i += 1;
            }
            TokenKind::Ident if pending.is_none() => {
                let text = tok.text(src);
                match text {
                    "fn" => {
                        if let Some(name_tok) = toks.get(i + 1) {
                            if name_tok.kind == TokenKind::Ident {
                                let idx = register_fn(
                                    file, crate_name, src, toks, testmap, &stack, i, out,
                                );
                                pending = Some(Pending::Fn(idx));
                                i += 2;
                                continue;
                            }
                        }
                        // `fn(` — a fn-pointer type, not an item.
                        i += 1;
                    }
                    "mod" => {
                        if let Some(name_tok) = toks.get(i + 1) {
                            if name_tok.kind == TokenKind::Ident {
                                pending = Some(Pending::Mod(name_tok.text(src).to_string()));
                                i += 2;
                                continue;
                            }
                        }
                        i += 1;
                    }
                    "trait" => {
                        if let Some(name_tok) = toks.get(i + 1) {
                            if name_tok.kind == TokenKind::Ident {
                                pending = Some(Pending::Trait(name_tok.text(src).to_string()));
                                i += 2;
                                continue;
                            }
                        }
                        i += 1;
                    }
                    "impl" => {
                        pending = Some(Pending::Impl(impl_self_type(src, toks, i)));
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            _ => i += 1,
        }
    }
}

/// Token index of the `}` matching the `{` at `open` (or the last token on
/// an unbalanced file — the lexer guarantees nothing about brace balance).
fn close_of(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, tok) in toks.iter().enumerate().skip(open) {
        match tok.kind {
            TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return k;
                }
            }
            _ => {}
        }
    }
    toks.len().saturating_sub(1)
}

/// Recover the self type of an `impl` header starting at token `i`
/// (`impl`). Handles `impl Type`, `impl<T> Type<T>`, `impl Trait for Type`
/// with `&`/`mut`/`dyn` prefixes skipped; gives up (None) at `{`.
fn impl_self_type(src: &str, toks: &[Token], i: usize) -> Option<String> {
    let mut j = i + 1;
    // Skip the generic parameter list `<...>` if present.
    if toks.get(j).map(|t| t.kind) == Some(TokenKind::Punct('<')) {
        let mut depth = 0i32;
        while let Some(t) = toks.get(j) {
            match t.kind {
                TokenKind::Punct('<') => depth += 1,
                TokenKind::Punct('>') => {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                TokenKind::Punct('{') => return None,
                _ => {}
            }
            j += 1;
        }
    }
    // `impl Trait for Type`: prefer the ident after `for`. Otherwise the
    // first type ident after the generics.
    let mut first: Option<String> = None;
    let mut after_for = false;
    while let Some(t) = toks.get(j) {
        match t.kind {
            TokenKind::Punct('{') | TokenKind::Punct(';') => break,
            TokenKind::Ident => {
                let text = t.text(src);
                match text {
                    "for" => after_for = true,
                    "where" => break,
                    "dyn" | "mut" => {}
                    _ => {
                        if after_for {
                            return Some(text.to_string());
                        }
                        if first.is_none() {
                            first = Some(text.to_string());
                        }
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
    first
}

/// `pub` visibility of the item whose keyword sits at token `kw`: scan back
/// over qualifiers (`const unsafe extern "C"`) for a `pub` not restricted
/// by `pub(...)`. Stops at any token that ends a previous item.
fn is_pub_at(src: &str, toks: &[Token], kw: usize) -> bool {
    let mut j = kw;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match t.kind {
            TokenKind::Ident => {
                let text = t.text(src);
                if text == "pub" {
                    return toks.get(j + 1).map(|t| t.kind) != Some(TokenKind::Punct('('));
                }
                if !FN_QUALIFIERS.contains(&text) {
                    return false;
                }
            }
            // `pub(crate)` restriction tokens and the `extern "C"` ABI
            // string sit between `pub` and the keyword.
            TokenKind::Str | TokenKind::Punct(')') | TokenKind::Punct('(') => {}
            _ => return false,
        }
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn register_fn(
    file: usize,
    crate_name: &str,
    src: &str,
    toks: &[Token],
    testmap: &TestMap,
    stack: &[Scope],
    fn_kw: usize,
    out: &mut ItemTable,
) -> usize {
    let name_tok = &toks[fn_kw + 1];
    let name = name_tok.text(src).to_string();
    let mut path_parts: Vec<&str> = Vec::new();
    let mut owner = None;
    for scope in stack {
        match scope {
            Scope::Mod(m) => path_parts.push(m),
            Scope::Impl(Some(ty)) => {
                path_parts.push(ty);
                owner = Some(ty.clone());
            }
            Scope::Impl(None) => owner = None,
            Scope::Trait(name) => {
                path_parts.push(name);
                owner = Some(name.clone());
            }
            Scope::Block => {}
        }
    }
    path_parts.push(&name);
    let qualified = path_parts.join("::");
    let item = FnItem {
        file,
        crate_name: crate_name.to_string(),
        name,
        qualified,
        owner,
        is_pub: is_pub_at(src, toks, fn_kw),
        line: toks[fn_kw].line,
        col: name_tok.col,
        body: None,
        in_test: testmap.is_test_line(toks[fn_kw].line),
    };
    out.fns.push(item);
    out.fns.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::testmap;

    fn table(src: &str) -> ItemTable {
        let lexed = lex(src);
        let tm = testmap::build(&lexed.tokens, src, src.lines().count());
        let mut t = ItemTable::default();
        parse_file(0, "demo", src, &lexed, &tm, &mut t);
        t
    }

    #[test]
    fn free_fns_and_visibility() {
        let t =
            table("pub fn a() {}\nfn b() {}\npub(crate) fn c() {}\npub const unsafe fn d() {}\n");
        let names: Vec<_> = t.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(
            names,
            vec![("a", true), ("b", false), ("c", false), ("d", true)]
        );
    }

    #[test]
    fn impl_methods_get_owner_and_qualified_name() {
        let t =
            table("impl Natural {\n    pub fn from_limbs(v: Vec<u64>) -> Natural { body() }\n}\n");
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].owner.as_deref(), Some("Natural"));
        assert_eq!(t.fns[0].qualified, "Natural::from_limbs");
        assert!(t.fns[0].body.is_some());
    }

    #[test]
    fn trait_impls_resolve_the_self_type_after_for() {
        let t =
            table("impl<T: Clone> Display for Shard<T> where T: Copy {\n    fn fmt(&self) {}\n}\n");
        assert_eq!(t.fns[0].owner.as_deref(), Some("Shard"));
    }

    #[test]
    fn mod_nesting_builds_paths() {
        let t = table("mod outer {\n    mod inner {\n        fn deep() {}\n    }\n}\n");
        assert_eq!(t.fns[0].qualified, "outer::inner::deep");
    }

    #[test]
    fn mod_decl_and_fn_pointer_types_are_not_items() {
        let t = table("mod elsewhere;\npub fn f(cb: fn(u32) -> u32) -> u32 { cb(1) }\n");
        assert_eq!(t.fns.len(), 1);
        assert_eq!(t.fns[0].name, "f");
    }

    #[test]
    fn trait_signatures_have_no_body() {
        let t =
            table("trait T {\n    fn required(&self);\n    fn provided(&self) { default() }\n}\n");
        assert_eq!(t.fns.len(), 2);
        assert!(t.fns[0].body.is_none());
        assert!(t.fns[1].body.is_some());
        assert_eq!(t.fns[1].qualified, "T::provided");
    }

    #[test]
    fn return_position_impl_is_not_an_impl_block() {
        let t = table(
            "pub fn iter() -> impl Iterator<Item = u32> {\n    helper()\n}\nfn helper() {}\n",
        );
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[0].owner, None);
        // The body of `iter` covers `helper()`.
        assert!(t.fns[0].body.is_some());
    }

    #[test]
    fn array_type_semicolons_do_not_end_the_signature() {
        let t = table("pub fn header(h: [u8; 36]) -> [u8; 4] {\n    encode(h)\n}\n");
        assert_eq!(t.fns.len(), 1);
        assert!(t.fns[0].body.is_some(), "body must attach past `[u8; 36]`");
    }

    #[test]
    fn test_region_fns_are_flagged() {
        let t = table("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n");
        assert!(!t.fns[0].in_test);
        assert!(t.fns[1].in_test);
    }

    #[test]
    fn struct_literals_do_not_corrupt_scoping() {
        let src = "impl Store {\n    fn make(&self) -> Meta {\n        Meta { count: 0 }\n    }\n    fn next(&self) {}\n}\n";
        let t = table(src);
        assert_eq!(t.fns.len(), 2);
        assert_eq!(t.fns[1].qualified, "Store::next");
    }
}
