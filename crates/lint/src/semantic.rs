//! The workspace-level semantic rules, built on [`crate::items`],
//! [`crate::callgraph`] and [`crate::dataflow`].
//!
//! | rule id                | scope                    | invariant |
//! |------------------------|--------------------------|-----------|
//! | `durability-publish`   | `batchgcd`, `cluster`, `service` | every `fs::rename` publish is followed by a parent-directory `fsync_dir` with no early return between |
//! | `panic-reachability`   | public fns of the no-panic crates | no *transitive* path through the call graph to an unjustified panic site |
//! | `lock-discipline`      | whole workspace          | no `Mutex`/`RwLock` guard held across a channel send/recv or a blocking file write |
//! | `watermark-provenance` | `cluster`, `service`     | persisted watermarks/state tags/fencing tokens derive only from on-disk state, never wall-clock or process-local counters |
//!
//! Unlike the token rules in [`crate::rules`], these see the whole
//! workspace at once: findings in one file can be caused by code in
//! another (a panic three crates away), and each rule documents the
//! approximation that keeps it tractable without type information.

use crate::callgraph::{CallGraph, Reachability};
use crate::dataflow;
use crate::diag::Diagnostic;
use crate::items::ItemTable;
use crate::lexer::{Token, TokenKind};
use crate::rules;
use crate::FileUnit;
use std::collections::HashSet;
use std::ops::Range;

/// Crates whose publish paths (rename-into-place) must be crash-durable.
const DURABILITY_CRATES: &[&str] = &["batchgcd", "cluster", "service"];
/// Crates whose persistence metadata is provenance-audited: the daemon's
/// watermarks, and the cluster's lease/exchange records (fencing tokens
/// come from tombstones on disk, state tags from the store — never from
/// process-local counters).
const WATERMARK_CRATES: &[&str] = &["cluster", "service"];
/// Receivers whose `.len()` reflects on-disk state and may feed a
/// watermark (the store and cache expose persisted counts; `committed` and
/// `shards` are their internals; `watermark` is already-persisted state;
/// `leases`/`exchange` are the cluster's on-disk coordination dirs).
const DISK_BACKED_RECEIVERS: &[&str] = &[
    "store",
    "cache",
    "watermark",
    "committed",
    "shards",
    "leases",
    "exchange",
];
/// Calls that block (channel rendezvous or synchronous I/O) and must not
/// run under a lock guard.
const BLOCKING_METHODS: &[&str] = &[
    "send",
    "recv",
    "try_recv",
    "recv_timeout",
    "write_all",
    "sync_all",
    "sync_data",
    "fsync_dir",
    "write_atomic",
];
/// Path-qualified blocking calls (`fs::rename`, `File::create`).
const BLOCKING_QUALIFIED: &[&str] = &["rename", "create"];
/// Guard-producing method names, and the adapters that merely unwrap the
/// poison result without releasing the guard.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Run every semantic rule. Returns `(file index, finding)` pairs so the
/// caller can resolve each file's annotations against them.
pub fn check(units: &[FileUnit], table: &ItemTable, graph: &CallGraph) -> Vec<(usize, Diagnostic)> {
    let mut out = Vec::new();
    durability_publish(units, table, &mut out);
    lock_discipline(units, table, &mut out);
    watermark_provenance(units, table, &mut out);
    panic_reachability(units, table, graph, &mut out);
    out
}

fn line_text(src: &str, line: u32) -> String {
    src.lines().nth(line as usize - 1).unwrap_or("").to_string()
}

fn diag_at(unit: &FileUnit, tok: &Token, rule: &str, message: String, help: String) -> Diagnostic {
    Diagnostic {
        path: unit.rel_path.to_string(),
        line: tok.line,
        col: tok.col,
        len: tok.text(unit.src).chars().count(),
        rule: rule.to_string(),
        message,
        help,
        source_line: line_text(unit.src, tok.line),
    }
}

/// Token index of the close matching the opener at `open` (same kind
/// nesting), clamped to the end of `body`.
fn matching_close(toks: &[Token], body: &Range<usize>, open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0i64;
    for (k, tok) in toks.iter().enumerate().take(body.end).skip(open) {
        if tok.kind == TokenKind::Punct(oc) {
            depth += 1;
        } else if tok.kind == TokenKind::Punct(cc) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    body.end
}

fn is_call(src: &str, toks: &[Token], i: usize, name: &str) -> bool {
    toks[i].kind == TokenKind::Ident
        && toks[i].text(src) == name
        && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('('))
}

fn qualified_by_path(toks: &[Token], i: usize, lo: usize) -> bool {
    i >= lo + 2
        && toks[i - 1].kind == TokenKind::Punct(':')
        && toks[i - 2].kind == TokenKind::Punct(':')
}

/// `durability-publish`: inside the publish-path crates, a
/// `fs::rename(tmp, dst)` makes an artifact *visible*; until the
/// destination's parent directory is fsynced the new directory entry can
/// vanish in a crash (the PR-7 §8.2 bug class). The rule demands a
/// `fsync_dir(..)` call later in the same function, with no `return`
/// between the two — a linear-sequence approximation of "on all paths"
/// that matches how every real publish site is written (rename directly
/// followed by the directory fsync).
fn durability_publish(units: &[FileUnit], table: &ItemTable, out: &mut Vec<(usize, Diagnostic)>) {
    for f in &table.fns {
        if f.in_test || !DURABILITY_CRATES.contains(&f.crate_name.as_str()) {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let unit = &units[f.file];
        let toks = &unit.lexed.tokens;
        for i in body.clone() {
            if !(is_call(unit.src, toks, i, "rename") && qualified_by_path(toks, i, body.start)) {
                continue;
            }
            let mut early_return = None;
            let mut fsynced = false;
            for k in i + 1..body.end {
                if toks[k].kind == TokenKind::Ident {
                    let text = toks[k].text(unit.src);
                    if text == "return" && early_return.is_none() {
                        early_return = Some(k);
                    }
                    if is_call(unit.src, toks, k, "fsync_dir") {
                        fsynced = true;
                        break;
                    }
                }
            }
            let (message, help) = if !fsynced {
                (
                    "publish via `rename` without a following `fsync_dir`".to_string(),
                    "fsync the destination's parent directory after the rename so the new \
                     entry survives a crash, or annotate `// lint:allow(durability-publish) <why>`"
                        .to_string(),
                )
            } else if let Some(r) = early_return {
                (
                    format!(
                        "`return` on line {} between `rename` and its `fsync_dir`",
                        toks[r].line
                    ),
                    "every path from the rename must reach the parent-directory fsync; \
                     restructure so the fsync happens first, or annotate \
                     `// lint:allow(durability-publish) <why>`"
                        .to_string(),
                )
            } else {
                continue;
            };
            out.push((
                f.file,
                diag_at(unit, &toks[i], rules::DURABILITY, message, help),
            ));
        }
    }
}

/// `lock-discipline`: a `Mutex`/`RwLock` guard bound to a local must not
/// stay live across a channel `send`/`recv` or a blocking file write —
/// channel rendezvous under a lock is a deadlock waiting for a second
/// lock site, and fsync-class I/O under a lock serializes every other
/// thread behind a disk flush. Liveness is lexical (binding to enclosing
/// block end, shortened by `drop(guard)`); guards consumed within one
/// statement (`m.lock().unwrap().push(x)`) never bind and are exempt.
fn lock_discipline(units: &[FileUnit], table: &ItemTable, out: &mut Vec<(usize, Diagnostic)>) {
    for f in &table.fns {
        if f.in_test {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let unit = &units[f.file];
        let toks = &unit.lexed.tokens;
        for stmt in dataflow::let_statements(unit.src, toks, body) {
            if !binds_guard(unit.src, toks, &stmt.init) {
                continue;
            }
            let live_end = dataflow::enclosing_block_end(toks, body, stmt.let_idx);
            let live = stmt.end + 1..live_end;
            let live = match dataflow::drop_of(unit.src, toks, &live, &stmt.name) {
                Some(d) => live.start..d,
                None => live,
            };
            for k in live {
                let blocking = (toks[k].kind == TokenKind::Ident)
                    && ((BLOCKING_METHODS.contains(&toks[k].text(unit.src))
                        && is_call(unit.src, toks, k, toks[k].text(unit.src)))
                        || (BLOCKING_QUALIFIED.contains(&toks[k].text(unit.src))
                            && is_call(unit.src, toks, k, toks[k].text(unit.src))
                            && qualified_by_path(toks, k, body.start)));
                if blocking {
                    let op = toks[k].text(unit.src);
                    out.push((
                        f.file,
                        diag_at(
                            unit,
                            &toks[k],
                            rules::LOCK_DISCIPLINE,
                            format!("`{}` called while lock guard `{}` is live", op, stmt.name),
                            format!(
                                "release the guard first (`drop({})`) or move the blocking \
                                 call out of the locked region, or annotate \
                                 `// lint:allow(lock-discipline) <why>`",
                                stmt.name
                            ),
                        ),
                    ));
                }
            }
        }
    }
}

/// Does this initializer *bind a lock guard*? True when the call chain
/// ends at `.lock()` / zero-arg `.read()` / zero-arg `.write()` / a bare
/// `lock(...)` helper, followed only by poison adapters
/// (`unwrap`/`expect`/`unwrap_or_else`). A chain that continues into any
/// other method (`.clone()`, `.pop()`) extracts data and drops the guard
/// at statement end.
fn binds_guard(src: &str, toks: &[Token], init: &Range<usize>) -> bool {
    for i in init.clone() {
        let text = if toks[i].kind == TokenKind::Ident {
            toks[i].text(src)
        } else {
            continue;
        };
        let acquires = match text {
            "lock" => is_call(src, toks, i, "lock"),
            // Zero-arg `.read()` / `.write()` is the RwLock API; the io
            // traits' methods of the same name always take a buffer.
            "read" | "write" => {
                i > init.start
                    && toks[i - 1].kind == TokenKind::Punct('.')
                    && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('('))
                    && toks.get(i + 2).map(|t| t.kind) == Some(TokenKind::Punct(')'))
            }
            _ => false,
        };
        if !acquires {
            continue;
        }
        // Walk past the acquisition call's argument list, then require the
        // rest of the chain to be poison adapters only.
        let mut j = matching_close(toks, init, i + 1, '(', ')') + 1;
        loop {
            if j >= init.end {
                return true;
            }
            if toks[j].kind == TokenKind::Punct('?') {
                j += 1;
                continue;
            }
            if toks[j].kind == TokenKind::Punct('.')
                && toks.get(j + 1).is_some_and(|t| t.kind == TokenKind::Ident)
                && GUARD_ADAPTERS.contains(&toks[j + 1].text(src))
                && toks.get(j + 2).map(|t| t.kind) == Some(TokenKind::Punct('('))
            {
                j = matching_close(toks, init, j + 2, '(', ')') + 1;
                continue;
            }
            break; // chain continues into a data-extracting call
        }
    }
    false
}

/// `watermark-provenance`: values persisted as `Watermark`/`Provenance`
/// fields or passed to `moduli_since(..)` in `wk-service` must derive
/// from on-disk state. Wall-clock reads (`now()`/`elapsed()`),
/// counter-named values, locally-incremented locals, and `.len()` of
/// in-memory collections all reset or drift across a restart — the PR-7
/// daemon bug class. `let`-bound locals are expanded one level so
/// `let persisted = store.total_moduli(); moduli_since(persisted)` stays
/// clean while `let n = self.seen_counter; moduli_since(n)` is flagged.
fn watermark_provenance(units: &[FileUnit], table: &ItemTable, out: &mut Vec<(usize, Diagnostic)>) {
    let mut seen: HashSet<(usize, u32, u32)> = HashSet::new();
    for f in &table.fns {
        if f.in_test || !WATERMARK_CRATES.contains(&f.crate_name.as_str()) {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let unit = &units[f.file];
        let toks = &unit.lexed.tokens;
        let bindings = dataflow::let_bindings(unit.src, toks, body);
        let incremented = dataflow::incremented_locals(unit.src, toks, body);
        let mut sinks: Vec<Range<usize>> = Vec::new();
        for i in body.clone() {
            if toks[i].kind != TokenKind::Ident {
                continue;
            }
            let text = toks[i].text(unit.src);
            if (text == "Watermark" || text == "Provenance")
                && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('{'))
            {
                sinks.push(i + 2..matching_close(toks, body, i + 1, '{', '}'));
            }
            if is_call(unit.src, toks, i, "moduli_since") {
                sinks.push(i + 2..matching_close(toks, body, i + 1, '(', ')'));
            }
        }
        for sink in sinks {
            audit_expr(
                unit,
                f.file,
                toks,
                &sink,
                &bindings,
                &incremented,
                0,
                &mut seen,
                out,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn audit_expr(
    unit: &FileUnit,
    file: usize,
    toks: &[Token],
    range: &Range<usize>,
    bindings: &dataflow::LetBindings,
    incremented: &HashSet<String>,
    depth: usize,
    seen: &mut HashSet<(usize, u32, u32)>,
    out: &mut Vec<(usize, Diagnostic)>,
) {
    fn flag(
        unit: &FileUnit,
        file: usize,
        tok: &Token,
        message: String,
        seen: &mut HashSet<(usize, u32, u32)>,
        out: &mut Vec<(usize, Diagnostic)>,
    ) {
        let help = "derive persisted watermarks from on-disk state (store/cache tags and \
                    counts), or annotate `// lint:allow(watermark-provenance) <why>`";
        if seen.insert((file, tok.line, tok.col)) {
            out.push((
                file,
                diag_at(unit, tok, rules::WATERMARK, message, help.to_string()),
            ));
        }
    }
    for k in range.clone() {
        let tok = &toks[k];
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = tok.text(unit.src);
        let after_dot = k > range.start && toks[k - 1].kind == TokenKind::Punct('.');
        if (text == "now" || text == "elapsed") && is_call(unit.src, toks, k, text) {
            flag(
                unit,
                file,
                tok,
                format!("wall-clock `{text}()` feeding persisted state"),
                seen,
                out,
            );
        } else if text.contains("counter") {
            flag(
                unit,
                file,
                tok,
                format!("counter-named value `{text}` feeding persisted state"),
                seen,
                out,
            );
        } else if !after_dot && incremented.contains(text) {
            flag(
                unit,
                file,
                tok,
                format!("locally-incremented `{text}` feeding persisted state"),
                seen,
                out,
            );
        } else if text == "len" && after_dot && is_call(unit.src, toks, k, "len") {
            let receiver = (k >= 2)
                .then(|| &toks[k - 2])
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text(unit.src));
            if let Some(recv) = receiver {
                if !DISK_BACKED_RECEIVERS.contains(&recv) {
                    flag(
                        unit,
                        file,
                        tok,
                        format!("in-memory `{recv}.len()` feeding persisted state"),
                        seen,
                        out,
                    );
                }
            }
        } else if !after_dot && depth < 2 {
            if let Some(init) = bindings.init_of(text) {
                // One level of `let` expansion (depth-bounded so a
                // shadowing self-reference cannot recurse forever).
                audit_expr(
                    unit,
                    file,
                    toks,
                    &init.clone(),
                    bindings,
                    incremented,
                    depth + 1,
                    seen,
                    out,
                );
            }
        }
    }
}

/// `panic-reachability`: lifts `no-panic-in-lib` from syntactic occurrence
/// to transitive reachability. An *entry* is a public fn of a no-panic
/// crate; a *target* is any non-test fn, in any crate, whose body contains
/// an unjustified panic site (same detectors as the token rule; sites
/// carrying a `lint:allow(no-panic-in-lib)` justification are trusted).
/// An entry that reaches a target *through at least one call edge* is
/// flagged with the witness chain — same-function sites are already the
/// token rule's report, so the two rules never double-fire.
fn panic_reachability(
    units: &[FileUnit],
    table: &ItemTable,
    graph: &CallGraph,
    out: &mut Vec<(usize, Diagnostic)>,
) {
    // Per-fn first unjustified panic site.
    let mut sites: Vec<Option<(u32, String)>> = vec![None; table.fns.len()];
    let mut targets = Vec::new();
    for (idx, f) in table.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let Some(body) = &f.body else { continue };
        let unit = &units[f.file];
        if let Some(site) = first_panic_site(unit, body) {
            sites[idx] = Some(site);
            targets.push(idx);
        }
    }
    let reach = Reachability::compute(graph, &targets);

    for (idx, f) in table.fns.iter().enumerate() {
        let is_entry = f.is_pub
            && !f.in_test
            && rules::NO_PANIC_CRATES.contains(&f.crate_name.as_str())
            && reach.reaches[idx]
            && reach.next_hop[idx].is_some();
        if !is_entry {
            continue;
        }
        let path = reach.path_from(idx);
        let terminal = *path.last().unwrap_or(&idx);
        let Some((site_line, site_what)) = &sites[terminal] else {
            continue;
        };
        let chain: Vec<String> = path.iter().map(|&i| table.display_name(i)).collect();
        let unit = &units[f.file];
        let terminal_path = units[table.fns[terminal].file].rel_path;
        out.push((
            f.file,
            Diagnostic {
                path: unit.rel_path.to_string(),
                line: f.line,
                col: f.col,
                len: f.name.chars().count(),
                rule: rules::PANIC_REACH.to_string(),
                message: format!(
                    "public API can reach a panic site: {} ({site_what} at {terminal_path}:{site_line})",
                    chain.join(" -> "),
                ),
                help: "make the callee fallible along this chain, justify the site with \
                       `lint:allow(no-panic-in-lib)`, or annotate this entry \
                       `// lint:allow(panic-reachability) <why>`"
                    .to_string(),
                source_line: line_text(unit.src, f.line),
            },
        ));
    }
}

/// The first panic-capable construct in `body` with no justifying
/// annotation, as `(line, description)`.
fn first_panic_site(unit: &FileUnit, body: &Range<usize>) -> Option<(u32, String)> {
    let toks = &unit.lexed.tokens;
    let justified = |line: u32| {
        unit.annotations.iter().any(|a| {
            a.target_line == line
                && matches!(
                    &a.kind,
                    crate::annot::AnnotationKind::Allow { rule }
                        if rule == rules::NO_PANIC || rule == rules::PANIC_REACH
                )
        })
    };
    for i in body.clone() {
        let tok = &toks[i];
        let what = match tok.kind {
            TokenKind::Ident => {
                let text = tok.text(unit.src);
                if (text == "unwrap" || text == "expect")
                    && i > body.start
                    && toks[i - 1].kind == TokenKind::Punct('.')
                    && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('('))
                {
                    Some(format!("`.{text}()`"))
                } else if matches!(text, "panic" | "unreachable" | "todo" | "unimplemented")
                    && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Punct('!'))
                {
                    Some(format!("`{text}!`"))
                } else {
                    None
                }
            }
            TokenKind::Punct('[') => {
                let after_expr = i > body.start
                    && matches!(
                        toks[i - 1].kind,
                        TokenKind::Ident | TokenKind::Punct(')') | TokenKind::Punct(']')
                    );
                (after_expr
                    && toks.get(i + 1).map(|t| t.kind) == Some(TokenKind::Number)
                    && toks.get(i + 2).map(|t| t.kind) == Some(TokenKind::Punct(']')))
                .then(|| format!("fixed-index `[{}]`", toks[i + 1].text(unit.src)))
            }
            _ => None,
        };
        if let Some(what) = what {
            if !justified(tok.line) {
                return Some((tok.line, what));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::{check_workspace, SourceFile};

    /// Run the full workspace pipeline over in-memory files.
    fn lint(files: &[(&str, &str, &str, &str)]) -> Vec<crate::Diagnostic> {
        let sources: Vec<SourceFile> = files
            .iter()
            .map(|(crate_name, lib, path, src)| SourceFile {
                rel_path: path.to_string(),
                crate_name: crate_name.to_string(),
                lib_name: lib.to_string(),
                src: src.to_string(),
            })
            .collect();
        check_workspace(&sources)
    }

    fn rules_of(diags: &[crate::Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.rule.as_str()).collect()
    }

    #[test]
    fn rename_without_dir_fsync_is_flagged() {
        let src = "use std::fs;\npub fn publish(tmp: &Path, dst: &Path) -> io::Result<()> {\n    fs::rename(tmp, dst)?;\n    Ok(())\n}\n";
        let d = lint(&[("service", "wk_service", "crates/service/src/x.rs", src)]);
        assert!(rules_of(&d).contains(&"durability-publish"), "{d:#?}");
    }

    #[test]
    fn rename_followed_by_fsync_dir_is_clean() {
        let src = "use std::fs;\npub fn publish(tmp: &Path, dst: &Path, dir: &Path) -> io::Result<()> {\n    fs::rename(tmp, dst)?;\n    fsync_dir(dir)?;\n    Ok(())\n}\n";
        let d = lint(&[("service", "wk_service", "crates/service/src/x.rs", src)]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn early_return_between_rename_and_fsync_is_flagged() {
        let src = "use std::fs;\npub fn publish(tmp: &Path, dst: &Path, dir: &Path, quick: bool) -> io::Result<()> {\n    fs::rename(tmp, dst)?;\n    if quick {\n        return Ok(());\n    }\n    fsync_dir(dir)?;\n    Ok(())\n}\n";
        let d = lint(&[("service", "wk_service", "crates/service/src/x.rs", src)]);
        assert_eq!(rules_of(&d), vec!["durability-publish"], "{d:#?}");
        assert!(d[0].message.contains("`return` on line 5"));
    }

    #[test]
    fn rename_outside_durability_crates_is_not_audited() {
        let src = "use std::fs;\npub fn shuffle(a: &Path, b: &Path) {\n    let _ = fs::rename(a, b);\n}\n";
        let d = lint(&[("scan", "wk_scan", "crates/scan/src/x.rs", src)]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn guard_held_across_send_is_flagged() {
        let src = "pub fn feed(m: &Mutex<Vec<u8>>, tx: &Sender<u8>) {\n    let queue = m.lock().unwrap_or_else(PoisonError::into_inner);\n    tx.send(queue[0]).ok();\n}\n";
        let d = lint(&[("batchgcd", "wk_batchgcd", "crates/batchgcd/src/x.rs", src)]);
        assert!(d.iter().any(|d| d.rule == "lock-discipline"), "{d:#?}");
    }

    #[test]
    fn dropping_the_guard_before_send_is_clean() {
        let src = "pub fn feed(m: &Mutex<Vec<u8>>, tx: &Sender<u8>) -> Option<u8> {\n    let queue = m.lock().unwrap_or_else(PoisonError::into_inner);\n    let head = queue.first().copied();\n    drop(queue);\n    if let Some(h) = head {\n        tx.send(h).ok();\n    }\n    head\n}\n";
        let d = lint(&[("batchgcd", "wk_batchgcd", "crates/batchgcd/src/x.rs", src)]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn inner_scope_releases_the_guard() {
        let src = "pub fn feed(m: &Mutex<Vec<u8>>, tx: &Sender<u8>) {\n    let head = {\n        let queue = m.lock().unwrap_or_else(PoisonError::into_inner);\n        queue.first().copied()\n    };\n    if let Some(h) = head {\n        tx.send(h).ok();\n    }\n}\n";
        let d = lint(&[("batchgcd", "wk_batchgcd", "crates/batchgcd/src/x.rs", src)]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn single_statement_lock_use_is_exempt() {
        let src = "pub fn push(m: &Mutex<Vec<u8>>, tx: &Sender<u8>, v: u8) {\n    let n = m.lock().unwrap_or_else(PoisonError::into_inner).len();\n    tx.send(v).ok();\n    let _ = n;\n}\n";
        let d = lint(&[("batchgcd", "wk_batchgcd", "crates/batchgcd/src/x.rs", src)]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn rwlock_write_guard_across_file_write_is_flagged() {
        let src = "pub fn persist(l: &RwLock<State>, f: &mut File, b: &[u8]) {\n    let state = l.write().unwrap_or_else(PoisonError::into_inner);\n    f.write_all(b).ok();\n    state.touch();\n}\n";
        let d = lint(&[("service", "wk_service", "crates/service/src/x.rs", src)]);
        assert!(d.iter().any(|d| d.rule == "lock-discipline"), "{d:#?}");
    }

    #[test]
    fn io_read_with_buffer_is_not_a_guard() {
        let src = "pub fn load(f: &mut File, buf: &mut [u8], tx: &Sender<u8>) {\n    let n = f.read(buf).unwrap_or(0);\n    tx.send(n as u8).ok();\n}\n";
        let d = lint(&[("scan", "wk_scan", "crates/scan/src/x.rs", src)]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn watermark_from_wall_clock_and_counter_is_flagged() {
        let src = "pub fn commit(&mut self) -> Watermark {\n    self.publish_counter += 1;\n    Watermark {\n        stamp: SystemTime::now(),\n        tag: self.publish_counter,\n        moduli: self.store.total_moduli(),\n    }\n}\n";
        let d = lint(&[("service", "wk_service", "crates/service/src/x.rs", src)]);
        let watermark: Vec<_> = d
            .iter()
            .filter(|d| d.rule == "watermark-provenance")
            .collect();
        assert_eq!(watermark.len(), 2, "{d:#?}");
        assert!(watermark[0].message.contains("wall-clock"));
        assert!(watermark[1].message.contains("counter-named"));
    }

    #[test]
    fn watermark_from_store_state_is_clean() {
        let src = "pub fn commit(&self) -> Watermark {\n    Watermark {\n        moduli: self.store.total_moduli(),\n        tag: self.store.state_tag(),\n        cached: self.cache.len(),\n    }\n}\n";
        let d = lint(&[("service", "wk_service", "crates/service/src/x.rs", src)]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn let_expansion_traces_watermark_provenance() {
        let bad = "pub fn resume(&mut self) {\n    let mut fed = 0usize;\n    fed += 1;\n    let start = fed;\n    self.moduli.moduli_since(start);\n}\n";
        let d = lint(&[("service", "wk_service", "crates/service/src/x.rs", bad)]);
        assert!(d.iter().any(|d| d.rule == "watermark-provenance"), "{d:#?}");
        let good = "pub fn resume(&self) {\n    let start = self.store.total_moduli();\n    self.moduli.moduli_since(start);\n}\n";
        let d = lint(&[("service", "wk_service", "crates/service/src/x.rs", good)]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn in_memory_len_in_watermark_is_flagged() {
        let src =
            "pub fn commit(&self) -> Watermark {\n    Watermark { moduli: self.moduli.len() }\n}\n";
        let d = lint(&[("service", "wk_service", "crates/service/src/x.rs", src)]);
        assert_eq!(rules_of(&d), vec!["watermark-provenance"], "{d:#?}");
        assert!(d[0].message.contains("`moduli.len()`"));
    }

    #[test]
    fn transitive_panic_path_is_flagged_with_witness_chain() {
        let entry = "use wk_mid::step;\npub fn entry(v: &[u32]) -> u32 {\n    step(v)\n}\n";
        let mid = "use wk_util::first;\npub fn step(v: &[u32]) -> u32 {\n    first(v)\n}\n";
        let util = "pub fn first(v: &[u32]) -> u32 {\n    v[0]\n}\n";
        let d = lint(&[
            ("bigint", "wk_bigint", "crates/bigint/src/lib.rs", entry),
            ("mid", "wk_mid", "crates/mid/src/lib.rs", mid),
            ("util", "wk_util", "crates/util/src/lib.rs", util),
        ]);
        let reach: Vec<_> = d
            .iter()
            .filter(|d| d.rule == "panic-reachability")
            .collect();
        assert_eq!(reach.len(), 1, "{d:#?}");
        assert!(reach[0]
            .message
            .contains("bigint::entry -> mid::step -> util::first"));
        assert!(reach[0].message.contains("crates/util/src/lib.rs:2"));
    }

    #[test]
    fn justified_site_does_not_taint_callers() {
        // The site lives in a no-panic crate, so the allow both suppresses
        // the token finding and marks the site trusted for reachability.
        let entry = "use wk_rng::first;\npub fn entry(v: &[u32]) -> u32 {\n    first(v)\n}\n";
        let util = "pub fn first(v: &[u32]) -> u32 {\n    v[0] // lint:allow(no-panic-in-lib) callers guarantee non-empty input\n}\n";
        let d = lint(&[
            ("bigint", "wk_bigint", "crates/bigint/src/lib.rs", entry),
            ("rng", "wk_rng", "crates/rng/src/lib.rs", util),
        ]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn same_function_site_is_the_token_rules_report_not_ours() {
        let src = "pub fn f(v: &[u32]) -> u32 {\n    v[0]\n}\n";
        let d = lint(&[("bigint", "wk_bigint", "crates/bigint/src/lib.rs", src)]);
        assert_eq!(rules_of(&d), vec!["no-panic-in-lib"], "{d:#?}");
    }

    #[test]
    fn panic_reachability_allow_suppresses_the_entry() {
        let entry = "use wk_util::first;\n// lint:allow(panic-reachability) input validated at construction\npub fn entry(v: &[u32]) -> u32 {\n    first(v)\n}\n";
        let util = "pub fn first(v: &[u32]) -> u32 {\n    v[0]\n}\n";
        let d = lint(&[
            ("bigint", "wk_bigint", "crates/bigint/src/lib.rs", entry),
            ("util", "wk_util", "crates/util/src/lib.rs", util),
        ]);
        assert!(d.is_empty(), "{d:#?}");
    }

    #[test]
    fn unknown_rule_id_in_allow_is_reported() {
        let src = "pub fn f() {} // lint:allow(no-such-rule) bogus\n";
        let d = lint(&[("bigint", "wk_bigint", "crates/bigint/src/lib.rs", src)]);
        assert_eq!(rules_of(&d), vec!["bad-annotation"], "{d:#?}");
        assert!(d[0].message.contains("unknown rule id"));
    }
}
