//! # wk-lint — workspace invariant checker
//!
//! A standalone static-analysis pass over the workspace's `crates/*/src`
//! files, enforcing invariants the compiler cannot express and this
//! reproduction's correctness depends on:
//!
//! * **`no-panic-in-lib`** — the arithmetic core (`wk-bigint`,
//!   `wk-batchgcd`) must not contain silent panic paths (`unwrap`,
//!   `expect`, panic-family macros, fixed-index subscripts) outside test
//!   code. A limb-level mistake must surface as an error value, not abort a
//!   worker mid batch-GCD.
//! * **`atomics-ordering-audit`** — every `Ordering::Relaxed` in the
//!   work-stealing pool carries a `metrics` or `control` classification,
//!   and `control` sites may never be `Relaxed`.
//! * **`limb-normalization`** — `Natural` values are only built through the
//!   normalizing constructors; raw `Natural { limbs: ... }` literals outside
//!   `natural.rs` are errors.
//! * **`forbid-unsafe-creep`** — `unsafe` stays confined to the reviewed
//!   allowlist (currently `batchgcd/src/pool.rs`).
//!
//! The workspace builds offline, so there is no `syn`: files are read
//! through a [hand-written minimal tokenizer](lexer) that is exact about
//! comments, strings, char literals, and lifetimes — everything needed to
//! never misread a literal as code. Violations are suppressed, one line at
//! a time, with justified annotations (see [`annot`]); unused or
//! unjustified annotations are themselves diagnostics, so the suppression
//! layer cannot rot.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p wk-lint -- crates
//! ```
//!
//! Exit status: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

pub mod annot;
pub mod callgraph;
pub mod dataflow;
pub mod diag;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod semantic;
pub mod testmap;

pub use diag::{render_json, render_report, Diagnostic};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source file of the workspace under analysis, as the pipeline's
/// owned input.
#[derive(Clone, Debug)]
pub struct SourceFile {
    /// Path diagnostics report (forward slashes).
    pub rel_path: String,
    /// Crate directory name under `crates/` (`bigint`, not `wk-bigint`).
    pub crate_name: String,
    /// The crate's lib identifier as other crates reference it
    /// (`wk_bigint`; the core crate is `weakkeys`). Drives the call
    /// graph's textual dependency inference.
    pub lib_name: String,
    pub src: String,
}

/// One fully lexed and annotated file, shared by the token rules and the
/// semantic pass.
pub struct FileUnit<'s> {
    pub rel_path: &'s str,
    pub crate_name: &'s str,
    pub lib_name: &'s str,
    pub src: &'s str,
    pub lexed: lexer::Lexed,
    pub testmap: testmap::TestMap,
    pub annotations: Vec<annot::Annotation>,
}

/// Lint a whole workspace of in-memory files: per-file token rules, then
/// the workspace-level semantic rules over the item table and call graph,
/// then per-file annotation resolution over the combined findings.
/// Diagnostics come back sorted by path and position.
pub fn check_workspace(files: &[SourceFile]) -> Vec<Diagnostic> {
    let units: Vec<FileUnit> = files
        .iter()
        .map(|f| {
            let lexed = lexer::lex(&f.src);
            let testmap = testmap::build(&lexed.tokens, &f.src, f.src.lines().count());
            let annotations = annot::parse(&lexed.comments, &lexed.tokens, &f.src);
            FileUnit {
                rel_path: &f.rel_path,
                crate_name: &f.crate_name,
                lib_name: &f.lib_name,
                src: &f.src,
                lexed,
                testmap,
                annotations,
            }
        })
        .collect();

    let mut table = items::ItemTable::default();
    for (i, u) in units.iter().enumerate() {
        items::parse_file(i, u.crate_name, u.src, &u.lexed, &u.testmap, &mut table);
    }
    let file_tokens: Vec<callgraph::FileTokens> = units
        .iter()
        .map(|u| callgraph::FileTokens {
            crate_name: u.crate_name,
            lib_name: u.lib_name,
            src: u.src,
            lexed: &u.lexed,
        })
        .collect();
    let graph = callgraph::build(&table, &file_tokens);

    let mut per_file: Vec<Vec<Diagnostic>> = units
        .iter()
        .map(|u| {
            rules::file_findings(&rules::FileContext {
                rel_path: u.rel_path,
                crate_name: u.crate_name,
                src: u.src,
                lexed: &u.lexed,
                testmap: &u.testmap,
                annotations: &u.annotations,
            })
        })
        .collect();
    for (file, diag) in semantic::check(&units, &table, &graph) {
        per_file[file].push(diag);
    }

    let mut diags = Vec::new();
    for (u, findings) in units.iter().zip(per_file) {
        let ctx = rules::FileContext {
            rel_path: u.rel_path,
            crate_name: u.crate_name,
            src: u.src,
            lexed: &u.lexed,
            testmap: &u.testmap,
            annotations: &u.annotations,
        };
        diags.extend(rules::resolve(&ctx, findings));
    }
    diags.sort_by_key(|d| d.sort_key());
    diags
}

/// Lint one in-memory file (a one-file workspace). Cross-file rules see
/// only this file; the token rules behave exactly as before the semantic
/// upgrade.
pub fn check_source(rel_path: &str, crate_name: &str, src: &str) -> Vec<Diagnostic> {
    check_workspace(&[SourceFile {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        lib_name: default_lib_name(crate_name),
        src: src.to_string(),
    }])
}

/// The lib identifier a crate directory maps to when no manifest says
/// otherwise: `wk_<dir>`, except the core crate which is `weakkeys`.
fn default_lib_name(crate_name: &str) -> String {
    if crate_name == "core" {
        "weakkeys".to_string()
    } else {
        format!("wk_{}", crate_name.replace('-', "_"))
    }
}

/// The lib identifier of a crate directory, from its `Cargo.toml`
/// (`[lib] name` override, else the `[package]` name with dashes
/// underscored). Fixture crates without a manifest get the default.
fn lib_name_of(crate_dir: &Path, crate_name: &str) -> String {
    let Ok(manifest) = fs::read_to_string(crate_dir.join("Cargo.toml")) else {
        return default_lib_name(crate_name);
    };
    let (mut in_package, mut in_lib) = (false, false);
    let (mut package_name, mut lib_name) = (None, None);
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            in_lib = line == "[lib]";
            continue;
        }
        if let Some(value) = line
            .strip_prefix("name")
            .map(str::trim_start)
            .and_then(|rest| rest.strip_prefix('='))
        {
            let value = value.trim().trim_matches('"').to_string();
            if in_lib {
                lib_name = Some(value);
            } else if in_package {
                package_name = Some(value);
            }
        }
    }
    lib_name
        .or(package_name)
        .map(|n| n.replace('-', "_"))
        .unwrap_or_else(|| default_lib_name(crate_name))
}

/// Collect every `<root>/<crate>/src/**/*.rs` file, sorted for
/// deterministic diagnostic order. Roots are crate-collection directories
/// (normally just `crates`).
pub fn collect_files(roots: &[PathBuf]) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for root in roots {
        if !root.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("`{}` is not a directory", root.display()),
            ));
        }
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(root)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.join("src").is_dir())
            .collect();
        crate_dirs.sort();
        for crate_dir in crate_dirs {
            let crate_name = crate_dir
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let lib_name = lib_name_of(&crate_dir, &crate_name);
            let mut sources = Vec::new();
            walk_rs(&crate_dir.join("src"), &mut sources)?;
            sources.sort();
            for path in sources {
                let src = fs::read_to_string(&path)?;
                files.push(SourceFile {
                    rel_path: path.to_string_lossy().replace('\\', "/"),
                    crate_name: crate_name.clone(),
                    lib_name: lib_name.clone(),
                    src,
                });
            }
        }
    }
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every source file under the given roots; diagnostics come back
/// sorted by path and position.
pub fn run(roots: &[PathBuf]) -> io::Result<Vec<Diagnostic>> {
    Ok(check_workspace(&collect_files(roots)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwrap_in_bigint_lib_is_flagged() {
        let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n";
        let d = check_source("crates/bigint/src/x.rs", "bigint", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::NO_PANIC);
        assert_eq!((d[0].line, d[0].col), (2, 7));
    }

    #[test]
    fn unwrap_in_tests_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x().unwrap(); }\n}\n";
        assert!(check_source("crates/bigint/src/x.rs", "bigint", src).is_empty());
    }

    #[test]
    fn unwrap_outside_scoped_crates_is_fine() {
        // `lint` and `bench` are tooling crates, outside the no-panic scope.
        let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
        assert!(check_source("crates/lint/src/x.rs", "lint", src).is_empty());
    }

    #[test]
    fn unwrap_in_scan_and_service_libs_is_flagged() {
        let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
        for crate_name in ["scan", "service"] {
            let path = format!("crates/{crate_name}/src/x.rs");
            let d = check_source(&path, crate_name, src);
            assert_eq!(d.len(), 1, "{crate_name} is in the no-panic scope");
            assert_eq!(d[0].rule, rules::NO_PANIC);
        }
    }

    #[test]
    fn unwrap_or_variants_not_flagged() {
        let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap_or(0) + v.unwrap_or_default() + v.unwrap_or_else(|| 1)\n}\n";
        assert!(check_source("crates/bigint/src/x.rs", "bigint", src).is_empty());
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint:allow(no-panic-in-lib) caller checked is_some\n}\n";
        assert!(check_source("crates/bigint/src/x.rs", "bigint", src).is_empty());
    }

    #[test]
    fn allow_without_justification_is_an_error() {
        let src =
            "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap() // lint:allow(no-panic-in-lib)\n}\n";
        let d = check_source("crates/bigint/src/x.rs", "bigint", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::BAD_ANNOTATION);
    }

    #[test]
    fn unused_allow_is_an_error() {
        let src = "// lint:allow(no-panic-in-lib) nothing here\npub fn f() {}\n";
        let d = check_source("crates/bigint/src/x.rs", "bigint", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::UNUSED_ALLOW);
    }

    #[test]
    fn panic_macros_flagged_but_asserts_exempt() {
        let src = "pub fn f(x: bool) {\n    assert!(x, \"precondition\");\n    if !x { panic!(\"boom\") }\n    unreachable!()\n}\n";
        let d = check_source("crates/batchgcd/src/x.rs", "batchgcd", src);
        let rules_hit: Vec<_> = d.iter().map(|d| (d.line, d.message.clone())).collect();
        assert_eq!(d.len(), 2, "{rules_hit:?}");
        assert!(d[0].message.contains("panic!"));
        assert!(d[1].message.contains("unreachable!"));
    }

    #[test]
    fn fixed_index_subscript_flagged_variable_index_not() {
        let src = "pub fn f(v: &[u32], i: usize) -> u32 {\n    v[0] + v[i]\n}\n";
        let d = check_source("crates/bigint/src/x.rs", "bigint", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`[0]`"));
    }

    #[test]
    fn array_literals_and_macros_not_flagged() {
        let src = "pub fn f() -> [u8; 8] {\n    let _v = vec![1, 2];\n    let _s = &b\"xy\"[..];\n    [0u8; 8]\n}\n";
        assert!(check_source("crates/bigint/src/x.rs", "bigint", src).is_empty());
    }

    #[test]
    fn strings_and_comments_never_flagged() {
        let src = "pub fn f() -> &'static str {\n    // calls unwrap() and panic! in prose\n    \"unsafe unwrap() panic!\"\n}\n";
        assert!(check_source("crates/bigint/src/x.rs", "bigint", src).is_empty());
    }

    #[test]
    fn raw_natural_literal_flagged_everywhere_but_natural_rs() {
        let src = "fn f() -> Natural { Natural { limbs: vec![0] } }\n";
        let d = check_source("crates/bigint/src/mul.rs", "bigint", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::LIMB_NORM);
        assert!(check_source("crates/bigint/src/natural.rs", "bigint", src).is_empty());
    }

    #[test]
    fn impl_blocks_do_not_trip_limb_rule() {
        let src = "impl Natural {\n    fn limbs(&self) -> &[u64] { &self.limbs }\n}\n";
        assert!(check_source("crates/bigint/src/other.rs", "bigint", src).is_empty());
    }

    #[test]
    fn limbs_field_write_flagged_comparison_not() {
        let src =
            "fn f(n: &mut Natural) {\n    n.limbs = vec![];\n    let _e = n.limbs == vec![];\n}\n";
        let d = check_source("crates/bigint/src/other.rs", "bigint", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("direct write"));
    }

    #[test]
    fn unsafe_outside_allowlist_flagged() {
        let src = "pub fn f() { unsafe { std::hint::unreachable_unchecked() } }\n";
        let d = check_source("crates/scan/src/x.rs", "scan", src);
        assert!(d.iter().any(|d| d.rule == rules::UNSAFE_CREEP));
        let pool = check_source("crates/batchgcd/src/pool.rs", "batchgcd", src);
        assert!(pool.iter().all(|d| d.rule != rules::UNSAFE_CREEP));
    }

    #[test]
    fn relaxed_in_pool_requires_annotation() {
        let src = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed);\n}\n";
        let d = check_source("crates/batchgcd/src/pool.rs", "batchgcd", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::ATOMICS);
        assert!(d[0].message.contains("unannotated"));
    }

    #[test]
    fn relaxed_metrics_annotation_accepted() {
        let src = "fn f(c: &AtomicU64) {\n    c.fetch_add(1, Ordering::Relaxed); // lint:atomics(metrics) reporting counter\n}\n";
        assert!(check_source("crates/batchgcd/src/pool.rs", "batchgcd", src).is_empty());
    }

    #[test]
    fn relaxed_control_annotation_is_an_error() {
        let src = "fn f(c: &AtomicBool) {\n    c.store(true, Ordering::Relaxed); // lint:atomics(control) shutdown flag\n}\n";
        let d = check_source("crates/batchgcd/src/pool.rs", "batchgcd", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("control-tagged"));
    }

    #[test]
    fn relaxed_outside_pool_not_audited() {
        let src = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert!(
            check_source("crates/batchgcd/src/spill.rs", "batchgcd", src)
                .iter()
                .all(|d| d.rule != rules::ATOMICS)
        );
    }

    #[test]
    fn acquire_release_need_no_annotation() {
        let src = "fn f(c: &AtomicBool) {\n    c.store(true, Ordering::Release);\n    c.load(Ordering::Acquire);\n}\n";
        assert!(check_source("crates/batchgcd/src/pool.rs", "batchgcd", src).is_empty());
    }

    #[test]
    fn own_line_annotation_covers_next_line() {
        let src = "pub fn f(v: Option<u32>) -> u32 {\n    // lint:allow(no-panic-in-lib) invariant: caller guarantees Some\n    v.unwrap()\n}\n";
        assert!(check_source("crates/bigint/src/x.rs", "bigint", src).is_empty());
    }

    #[test]
    fn arena_checkout_without_release_is_flagged() {
        let src =
            "fn f(n: usize) -> usize {\n    let buf = crate::arena::take(n);\n    buf.len()\n}\n";
        let d = check_source("crates/bigint/src/x.rs", "bigint", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::ARENA_DISCIPLINE);
        assert!(d[0].message.contains("never returns"));
    }

    #[test]
    fn arena_checkout_paired_or_transferred_is_fine() {
        let put = "fn f(n: usize) {\n    let buf = arena::take(n);\n    arena::put(buf);\n}\n";
        assert!(check_source("crates/bigint/src/x.rs", "bigint", put).is_empty());
        let xfer = "fn f(n: usize) -> Natural {\n    let buf = wk_bigint::arena::take(n);\n    Natural::from_limbs(buf)\n}\n";
        assert!(check_source("crates/batchgcd/src/x.rs", "batchgcd", xfer).is_empty());
        let inline = "fn f(n: usize) -> Natural {\n    Natural::from_limbs(arena::take(n))\n}\n";
        assert!(check_source("crates/bigint/src/x.rs", "bigint", inline).is_empty());
    }

    #[test]
    fn return_between_checkout_and_release_is_flagged() {
        let src = "fn f(n: usize) -> usize {\n    let buf = arena::take(n);\n    if n == 0 {\n        return 0;\n    }\n    arena::put(buf);\n    n\n}\n";
        let d = check_source("crates/bigint/src/x.rs", "bigint", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, rules::ARENA_DISCIPLINE);
        assert!(d[0].message.contains("`return` between"));
        assert_eq!(d[0].line, 4);
    }

    #[test]
    fn arena_buffer_stored_in_struct_is_flagged() {
        let literal = "fn f(n: usize) -> Cache {\n    Cache { buf: arena::take(n) }\n}\n";
        let d = check_source("crates/batchgcd/src/x.rs", "batchgcd", literal);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("struct field"));
        let assign = "fn f(c: &mut Cache, n: usize) {\n    c.buf = crate::arena::take(n);\n}\n";
        let d = check_source("crates/bigint/src/x.rs", "bigint", assign);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("struct field"));
    }

    #[test]
    fn arena_rule_scoped_to_arithmetic_crates() {
        let src = "fn f(n: usize) -> usize {\n    let buf = arena::take(n);\n    buf.len()\n}\n";
        assert!(check_source("crates/service/src/x.rs", "service", src)
            .iter()
            .all(|d| d.rule != rules::ARENA_DISCIPLINE));
    }

    #[test]
    fn arena_allow_with_justification_suppresses() {
        let src = "fn f(n: usize) -> Vec<u64> {\n    // lint:allow(arena-discipline) returned to the caller, which recycles it\n    let buf = arena::take(n);\n    buf\n}\n";
        assert!(check_source("crates/bigint/src/x.rs", "bigint", src).is_empty());
    }

    #[test]
    fn diagnostics_sorted_and_rendered() {
        let src = "pub fn f(v: Option<u32>, w: &[u32]) -> u32 {\n    v.unwrap() + w[0]\n}\n";
        let d = check_source("crates/bigint/src/x.rs", "bigint", src);
        assert_eq!(d.len(), 2);
        let report = render_report(&d);
        assert!(report.contains("crates/bigint/src/x.rs:2:7"));
        assert!(report.contains("2 violations in 1 file"));
    }
}
