//! Spawning a real multi-process cluster run and assembling its result
//! (DESIGN.md §12.6).
//!
//! [`run_cluster`] launches N `wk-cluster-node` worker *processes* over
//! one store and one cluster directory, waits for them, sweeps any
//! leftovers itself (so a run completes even if every child crashed),
//! collects the published roots, and hands them to
//! [`assemble_from_shard_roots`] — phases 2–3 of the single-process
//! sharded run, shared code, so the divisors and statuses are
//! byte-identical to [`sharded_batch_gcd`] by construction.
//!
//! [`sharded_batch_gcd`]: wk_batchgcd::sharded_batch_gcd

use crate::error::ClusterError;
use crate::exchange::ExchangeDir;
use crate::failure::FailurePlan;
use crate::lease::LeaseDir;
use crate::worker::{run_node, NodeConfig, NodeSummary};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;
use wk_batchgcd::{assemble_from_shard_roots, ShardAssembly, ShardStore};

/// How to run one cluster sweep: where, with which binary, how many
/// worker processes, and the lease timing parameters every participant
/// shares.
#[derive(Clone, Debug)]
pub struct ClusterSpec {
    /// Shared cluster directory; `leases/` and `exchange/` are created
    /// inside it.
    pub cluster_dir: PathBuf,
    /// Path to the `wk-cluster-node` binary
    /// ([`sibling_node_bin`] locates it next to the current executable).
    pub node_bin: PathBuf,
    /// Worker processes to spawn.
    pub nodes: u32,
    /// Lease staleness window handed to every node.
    pub stale_after: Duration,
    /// Heartbeat interval handed to every node.
    pub heartbeat_every: Duration,
    /// Idle-sweep poll interval handed to every node.
    pub poll_every: Duration,
    /// Per-node failure specs (the `WK_CLUSTER_FAILPOINT` grammar),
    /// index-aligned with spawned nodes; missing/`None` entries run
    /// clean. The coordinator's own sweep always runs clean.
    pub failpoints: Vec<Option<String>>,
}

impl ClusterSpec {
    /// A spec with production-shaped lease timing (30 s staleness, 5 s
    /// heartbeats, 250 ms polls) and no fault injection.
    pub fn new(cluster_dir: PathBuf, node_bin: PathBuf, nodes: u32) -> ClusterSpec {
        ClusterSpec {
            cluster_dir,
            node_bin,
            nodes,
            stale_after: Duration::from_secs(30),
            heartbeat_every: Duration::from_secs(5),
            poll_every: Duration::from_millis(250),
            failpoints: Vec::new(),
        }
    }
}

/// How one spawned worker process exited.
#[derive(Clone, Debug)]
pub struct NodeExit {
    /// The owner id the node ran under.
    pub owner: String,
    /// Raw exit code, when the process exited (rather than was signaled).
    pub code: Option<i32>,
    /// Whether the exit was clean (code 0).
    pub clean: bool,
}

/// A finished cluster run.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// The batch result plus tree material — `assembly.result` is
    /// byte-identical to the single-process sharded run over the same
    /// store, and `assembly.shard_products`/`top_product` are what
    /// [`TreeCache::from_parts`](wk_batchgcd::TreeCache::from_parts)
    /// needs to persist a cache without recomputing.
    pub assembly: ShardAssembly,
    /// Exit status of every spawned worker.
    pub node_exits: Vec<NodeExit>,
    /// What the coordinator's own leftover sweep did (all zeros when the
    /// workers finished everything).
    pub coordinator: NodeSummary,
}

/// Locate `wk-cluster-node` next to the current executable — works from
/// test binaries (`target/<profile>/deps/…`), examples
/// (`target/<profile>/examples/…`), and sibling binaries, since cargo
/// puts them all under the same profile directory.
pub fn sibling_node_bin() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let mut dir = exe.parent()?;
    if dir.ends_with("deps") || dir.ends_with("examples") {
        dir = dir.parent()?;
    }
    let candidate = dir.join(format!("wk-cluster-node{}", std::env::consts::EXE_SUFFIX));
    if candidate.is_file() {
        Some(candidate)
    } else {
        None
    }
}

/// Spawn `spec.nodes` worker processes over `store_dir`, wait for them
/// all, sweep any unpublished shards inline (clean [`FailurePlan`], same
/// protocol), then collect the roots and run the shared assembly.
///
/// Worker crashes are *not* errors here — containment is the point; a
/// crash surfaces as a non-`clean` [`NodeExit`] while the run still
/// completes and the result is still byte-identical. Only conditions that
/// make the result unobtainable or untrustworthy error out: an unreadable
/// store, an exchange file bound to a different store state, spawn
/// failures.
pub fn run_cluster(
    store_dir: &Path,
    spec: &ClusterSpec,
    threads: usize,
) -> Result<ClusterOutcome, ClusterError> {
    let store = ShardStore::open(store_dir)?;
    LeaseDir::init(&spec.cluster_dir)?;
    // A reused cluster directory may hold roots from a run over an older
    // store state (workers only probe existence); sweep them before any
    // worker can skip a shard because of one.
    ExchangeDir::init(&spec.cluster_dir)?.sweep_mismatched(&store)?;

    let mut children = Vec::new();
    for i in 0..spec.nodes {
        let owner = format!("node-{i}");
        let mut cmd = Command::new(&spec.node_bin);
        cmd.arg("--store")
            .arg(store_dir)
            .arg("--cluster")
            .arg(&spec.cluster_dir)
            .arg("--owner")
            .arg(&owner)
            .arg("--stale-after-ms")
            .arg(spec.stale_after.as_millis().to_string())
            .arg("--heartbeat-ms")
            .arg(spec.heartbeat_every.as_millis().to_string())
            .arg("--poll-ms")
            .arg(spec.poll_every.as_millis().to_string())
            .stdout(Stdio::null())
            .stderr(Stdio::inherit());
        // Never let a fault spec leak from this process's environment
        // into children that were not explicitly armed.
        cmd.env_remove(FailurePlan::ENV_VAR);
        if let Some(Some(fault)) = spec.failpoints.get(i as usize) {
            cmd.env(FailurePlan::ENV_VAR, fault);
        }
        let child = cmd.spawn().map_err(|source| ClusterError::NodeSpawn {
            owner: owner.clone(),
            source,
        })?;
        children.push((owner, child));
    }

    let mut node_exits = Vec::with_capacity(children.len());
    for (owner, mut child) in children {
        let status = child.wait().map_err(|source| ClusterError::NodeSpawn {
            owner: owner.clone(),
            source,
        })?;
        node_exits.push(NodeExit {
            owner,
            code: status.code(),
            clean: status.success(),
        });
    }

    // Leaderless leftover sweep: if every armed/killed child left shards
    // unpublished, the coordinator is just another node and finishes the
    // job through the same protocol.
    let mut coord_cfg = NodeConfig::new(
        store_dir.to_path_buf(),
        spec.cluster_dir.clone(),
        format!("coord-{}", std::process::id()),
    );
    coord_cfg.stale_after = spec.stale_after;
    coord_cfg.heartbeat_every = spec.heartbeat_every;
    coord_cfg.poll_every = spec.poll_every;
    let coordinator = run_node(&coord_cfg)?;

    let exchange = ExchangeDir::init(&spec.cluster_dir)?;
    let published = exchange.collect(&store)?;
    let mut roots = Vec::with_capacity(published.len());
    let mut missing = Vec::new();
    for (index, entry) in published.into_iter().enumerate() {
        match entry {
            Some(root) => roots.push(root.root),
            None => missing.push(index as u32),
        }
    }
    if !missing.is_empty() {
        // Unreachable after a completed coordinator sweep; kept as a
        // typed error rather than trusting that argument forever.
        return Err(ClusterError::Incomplete { missing });
    }

    // Every worker has exited and every root is published: lease-side
    // state (leases, tombstones, temps) is now history, and exchange
    // temps are orphans. The published roots stay — they are the run's
    // audit trail, bound to the store by its state tag.
    LeaseDir::init(&spec.cluster_dir)?.clear()?;
    exchange.remove_all_tmps()?;

    let assembly = assemble_from_shard_roots(&store, roots, threads)?;
    Ok(ClusterOutcome {
        assembly,
        node_exits,
        coordinator,
    })
}
