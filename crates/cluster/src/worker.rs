//! The worker loop a `wk-cluster-node` process runs (DESIGN.md §12.4).
//!
//! A node sweeps the store's shards round-robin: skip published shards,
//! try to claim (or reclaim a stale lease on) unpublished ones, compute
//! the claimed shard's subtree root with
//! [`shard_subtree_root`] — heartbeating the lease from a side thread the
//! whole time — then fence-check, publish, release. The loop exits when
//! every shard's root is visible in the exchange directory, so any number
//! of nodes can run the same loop with no designated roles; whichever
//! process is alive makes progress.

use crate::error::ClusterError;
use crate::exchange::ExchangeDir;
use crate::failure::{FailPoint, FailurePlan, INJECTED_EXIT};
use crate::lease::{apply_skew, unix_millis, Lease, LeaseDir, LeaseView};
use std::fs::File;
use std::io::Write;
use std::path::PathBuf;
use std::process;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;
use wk_batchgcd::{shard_subtree_root, ShardStore};

/// Configuration of one worker node.
#[derive(Clone, Debug)]
pub struct NodeConfig {
    /// The shard store to sweep (opened read-only).
    pub store_dir: PathBuf,
    /// The shared cluster directory (`leases/` and `exchange/` live here).
    pub cluster_dir: PathBuf,
    /// This node's identity; appears in lease records, exchange payloads,
    /// and temp-file names. Must match `[A-Za-z0-9._-]+`.
    pub owner: String,
    /// How long without a heartbeat before other nodes may reclaim a
    /// lease this node holds.
    pub stale_after: Duration,
    /// How often the heartbeat thread refreshes a held lease.
    pub heartbeat_every: Duration,
    /// How long to sleep between sweeps when no progress was possible
    /// (all unpublished shards are freshly leased by someone else).
    pub poll_every: Duration,
    /// How far in the observer's future a heartbeat may claim to be
    /// before the lease is judged bogus ([`Freshness::Bogus`]).
    ///
    /// [`Freshness::Bogus`]: crate::lease::Freshness::Bogus
    pub skew_tolerance: Duration,
    /// Fault injection (parsed from `WK_CLUSTER_FAILPOINT` by the binary;
    /// [`FailurePlan::none`] for library callers).
    pub failure: FailurePlan,
}

impl NodeConfig {
    /// A config with production-shaped defaults: 30 s staleness window,
    /// heartbeat every 5 s, 250 ms poll, skew tolerance equal to the
    /// staleness window.
    pub fn new(store_dir: PathBuf, cluster_dir: PathBuf, owner: String) -> NodeConfig {
        NodeConfig {
            store_dir,
            cluster_dir,
            owner,
            stale_after: Duration::from_secs(30),
            heartbeat_every: Duration::from_secs(5),
            poll_every: Duration::from_millis(250),
            skew_tolerance: Duration::from_secs(30),
            failure: FailurePlan::none(),
        }
    }
}

/// What one node did during its sweep.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeSummary {
    /// Roots this node published.
    pub published: u32,
    /// Stale/bogus/corrupt leases this node retired.
    pub reclaimed: u32,
    /// Shards this node claimed or computed but ceded to another owner
    /// (lost lease at the fence check, or lost the publish race).
    pub yielded: u32,
}

/// Check an owner id is safe to embed in file names.
pub fn validate_owner(owner: &str) -> Result<(), ClusterError> {
    let ok = !owner.is_empty()
        && owner
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(ClusterError::BadOwner {
            owner: owner.to_string(),
            detail: "must be nonempty and match [A-Za-z0-9._-]+".to_string(),
        })
    }
}

/// The heartbeat side-thread for one held lease: refreshes the lease
/// every `every` until stopped, the lease is lost, or an I/O error —
/// in the latter two cases it just stops beating, which at worst makes
/// the lease reclaimable (the safe direction).
struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Heartbeat {
    fn spawn(lease: Lease, every: Duration, skew_ms: i64) -> Heartbeat {
        let stop = Arc::new(AtomicBool::new(false));
        let seen = Arc::clone(&stop);
        let handle = thread::spawn(move || {
            let tick = Duration::from_millis(10).min(every);
            let mut since_beat = Duration::ZERO;
            while !seen.load(Ordering::Acquire) {
                thread::sleep(tick);
                since_beat += tick;
                if since_beat < every {
                    continue;
                }
                since_beat = Duration::ZERO;
                if !lease.heartbeat(skew_ms).unwrap_or(false) {
                    break;
                }
            }
        });
        Heartbeat {
            stop,
            handle: Some(handle),
        }
    }

    fn finish(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Try to acquire shard `index`: claim it if unclaimed, reclaim first if
/// its lease is stale, bogus, or corrupt. `Ok(None)` when the shard is
/// freshly leased by someone else or a concurrent reclaimer won.
fn acquire(
    leases: &LeaseDir,
    index: u32,
    cfg: &NodeConfig,
    reclaimed: &mut u32,
) -> Result<Option<Lease>, ClusterError> {
    use crate::lease::Freshness;
    match leases.view(index)? {
        LeaseView::Absent => {}
        view @ LeaseView::Corrupt(_) => {
            if !leases.retire(index, &view, &cfg.owner)? {
                return Ok(None);
            }
            *reclaimed += 1;
        }
        LeaseView::Held(record) => {
            match record.staleness(unix_millis(), cfg.stale_after, cfg.skew_tolerance) {
                Freshness::Fresh => return Ok(None),
                Freshness::Stale | Freshness::Bogus => {
                    if !leases.retire(index, &LeaseView::Held(record), &cfg.owner)? {
                        return Ok(None);
                    }
                    *reclaimed += 1;
                }
            }
        }
    }
    let token = leases.next_token(index)?;
    let heartbeat = apply_skew(unix_millis(), cfg.failure.skew_ms);
    leases.claim(index, &cfg.owner, token, heartbeat)
}

/// Run one node's sweep to completion: returns once every shard of the
/// store has a published root in the exchange directory (not necessarily
/// published by this node).
///
/// # Errors
/// Typed [`ClusterError`]s for a store that fails to open or read back, a
/// lease/exchange I/O failure, or an exchange file that does not bind to
/// this store (see the operator runbook in the README).
pub fn run_node(cfg: &NodeConfig) -> Result<NodeSummary, ClusterError> {
    validate_owner(&cfg.owner)?;
    let store = ShardStore::open(&cfg.store_dir)?;
    let state_tag = store.state_tag();
    let leases = LeaseDir::init(&cfg.cluster_dir)?;
    let exchange = ExchangeDir::init(&cfg.cluster_dir)?;
    // Crash recovery for *this identity*: temps from a previous life were
    // never visible (nothing links a temp until it is complete) and are
    // safe to drop.
    leases.remove_own_tmps(&cfg.owner)?;
    exchange.remove_own_tmps(&cfg.owner)?;

    let mut summary = NodeSummary::default();
    loop {
        let mut all_published = true;
        let mut progressed = false;
        for index in 0..store.shard_count() as u32 {
            if exchange.is_published(index) {
                continue;
            }
            all_published = false;
            let Some(lease) = acquire(&leases, index, cfg, &mut summary.reclaimed)? else {
                continue;
            };
            cfg.failure.exit_if_armed(FailPoint::KillAfterLease, index);
            let beat = Heartbeat::spawn(lease.clone(), cfg.heartbeat_every, cfg.failure.skew_ms);
            let root = shard_subtree_root(&store, index);
            beat.finish();
            let root = root?;
            cfg.failure
                .exit_if_armed(FailPoint::KillBeforePublish, index);
            if cfg.failure.armed(FailPoint::TornTmp, index) {
                // Crash mid-publish: leave exactly the artifact a real
                // power loss would — a partial temp, never linked.
                let mut torn = File::create(exchange.tmp_path(&cfg.owner, index))?;
                torn.write_all(&[0x57, 0x4b])?;
                process::exit(INJECTED_EXIT);
            }
            if lease.still_owned()? {
                exchange.publish(state_tag, index, lease.token(), &cfg.owner, &root)?;
                lease.release()?;
                summary.published += 1;
                progressed = true;
            } else {
                // Fenced out: a reclaimer owns the shard now; let it (or
                // whoever) publish. The computed root is simply dropped.
                summary.yielded += 1;
            }
        }
        if all_published {
            return Ok(summary);
        }
        if !progressed {
            thread::sleep(cfg.poll_every);
        }
    }
}
