//! The exchange directory: published per-shard subtree roots in the
//! `WKTREEC1` section format (DESIGN.md §12.3).
//!
//! Each published root is a section file `exchange/root-NNNNNN.wkr` with
//! section id [`SECTION_CLUSTER_ROOT`] — the same 36-byte header, CRC, and
//! limb codec as the tree cache's `roots.wkc`, so the tooling that
//! validates one validates the other. The payload binds the root to the
//! exact store it was computed from (the store's state tag) and records
//! which owner published it under which fencing token.
//!
//! Publication is **first-wins**: the writer fsyncs a complete temp file
//! and then `hard_link`s it to the final name. The filesystem lets exactly
//! one link succeed per shard, so a double-publish is structurally
//! impossible — a revived worker that lost its lease either aborts at the
//! fence check or loses the link race; either way exactly one `root-N.wkr`
//! ever exists. Because subtree roots are deterministic (same shard bytes
//! → same root, enforced by the state tag), *whichever* writer wins
//! published the correct value.

use crate::error::ClusterError;
use crate::lease::remove_prefixed_tmps;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use wk_batchgcd::{
    crc32, encode_natural, fsync_dir, read_section, take_natural, take_u64, ShardStore,
    CACHE_FORMAT_VERSION, CACHE_HEADER_LEN, CACHE_MAGIC,
};
use wk_bigint::Natural;

/// `WKTREEC1` section id of a cluster-published shard root (ids 1–4 are
/// the tree cache's sections).
pub const SECTION_CLUSTER_ROOT: u32 = 5;

/// Subdirectory of the cluster directory holding published roots.
pub const EXCHANGE_SUBDIR: &str = "exchange";

/// File name of shard `index`'s published root.
pub fn root_file_name(index: u32) -> String {
    format!("root-{index:06}.wkr")
}

/// A published root, decoded and validated.
#[derive(Clone, Debug)]
pub struct PublishedRoot {
    /// Shard index the root covers.
    pub shard: u32,
    /// Fencing token the publishing worker held.
    pub token: u64,
    /// Owner id of the publishing worker.
    pub owner: String,
    /// The shard's subtree root (product of its moduli).
    pub root: Natural,
}

/// Outcome of a publish attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Publish {
    /// This call created the root file.
    New,
    /// Another worker published first; the existing file was validated
    /// against the same state tag and kept.
    AlreadyPublished,
}

/// The exchange directory of one cluster run.
#[derive(Clone, Debug)]
pub struct ExchangeDir {
    dir: PathBuf,
}

impl ExchangeDir {
    /// Create (if needed) and open `<cluster_dir>/exchange`, fsyncing the
    /// cluster directory so the entry survives a crash.
    pub fn init(cluster_dir: &Path) -> io::Result<ExchangeDir> {
        let dir = cluster_dir.join(EXCHANGE_SUBDIR);
        fs::create_dir_all(&dir)?;
        fsync_dir(cluster_dir)?;
        Ok(ExchangeDir { dir })
    }

    /// The directory itself.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Path of shard `index`'s root file.
    pub fn root_path(&self, index: u32) -> PathBuf {
        self.dir.join(root_file_name(index))
    }

    /// Cheap existence probe — workers skip shards whose root is already
    /// visible. (Visibility implies completeness: final names only ever
    /// appear by linking a fully written, fsynced temp file.)
    pub fn is_published(&self, index: u32) -> bool {
        self.root_path(index).is_file()
    }

    /// Publish shard `index`'s root. Writes the full section to an
    /// owner-unique temp file, fsyncs it, hard-links it to the final name
    /// (first-wins), and fsyncs the directory. On losing the race, the
    /// existing file is validated against `state_tag` — a binding mismatch
    /// is an [`ClusterError::ExchangeMismatch`], not a silent overwrite.
    pub fn publish(
        &self,
        state_tag: u64,
        index: u32,
        token: u64,
        owner: &str,
        root: &Natural,
    ) -> Result<Publish, ClusterError> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&state_tag.to_le_bytes());
        payload.extend_from_slice(&u64::from(index).to_le_bytes());
        payload.extend_from_slice(&token.to_le_bytes());
        payload.extend_from_slice(&(owner.len() as u64).to_le_bytes());
        payload.extend_from_slice(owner.as_bytes());
        encode_natural(&mut payload, root)?;

        let mut header = [0u8; CACHE_HEADER_LEN];
        header[0..8].copy_from_slice(&CACHE_MAGIC);
        header[8..12].copy_from_slice(&CACHE_FORMAT_VERSION.to_le_bytes());
        header[12..16].copy_from_slice(&SECTION_CLUSTER_ROOT.to_le_bytes());
        header[16..24].copy_from_slice(&u64::from(index).to_le_bytes());
        header[24..32].copy_from_slice(&(payload.len() as u64).to_le_bytes());
        header[32..36].copy_from_slice(&crc32(&payload).to_le_bytes());

        let tmp = self.tmp_path(owner, index);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&header)?;
            file.write_all(&payload)?;
            file.sync_all()?;
        }
        let linked = fs::hard_link(&tmp, self.root_path(index));
        let _ = fs::remove_file(&tmp);
        match linked {
            Ok(()) => {
                fsync_dir(&self.dir)?;
                Ok(Publish::New)
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                // Lost the race; whoever won must have published a root
                // bound to the same store.
                self.read_root(index, state_tag)?;
                Ok(Publish::AlreadyPublished)
            }
            Err(e) => Err(ClusterError::Io(e)),
        }
    }

    /// Remove root files that no longer bind to `store` — leftovers of an
    /// earlier run over a previous store state (a month-close appended
    /// moduli since). Workers only probe existence, so stale-but-complete
    /// files would otherwise shadow the shards they name forever;
    /// [`run_cluster`](crate::run_cluster) calls this before spawning
    /// anything. Structurally damaged files (truncation, CRC) are *not*
    /// removed — those mean torn final names, which the protocol rules out,
    /// so they deserve a loud error downstream rather than quiet deletion.
    /// Returns how many stale roots were swept.
    pub fn sweep_mismatched(&self, store: &ShardStore) -> Result<usize, ClusterError> {
        let mut swept = 0;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(index) = name
                .strip_prefix("root-")
                .and_then(|t| t.strip_suffix(".wkr"))
                .and_then(|t| t.parse::<u32>().ok())
            else {
                continue;
            };
            if (index as usize) < store.shard_count() {
                match self.read_root(index, store.state_tag()) {
                    Ok(_) => continue,
                    Err(ClusterError::ExchangeMismatch { .. }) => {}
                    Err(e) => return Err(e),
                }
            }
            // Bound to a different store state, or beyond the store's
            // current shard range (a rolled-back store shrank).
            fs::remove_file(entry.path())?;
            swept += 1;
        }
        if swept > 0 {
            fsync_dir(&self.dir)?;
        }
        Ok(swept)
    }

    /// The temp path [`ExchangeDir::publish`] stages through — exposed so
    /// the torn-tmp fault injection can crash a worker with exactly the
    /// artifact a real mid-publish crash leaves behind.
    pub fn tmp_path(&self, owner: &str, index: u32) -> PathBuf {
        self.dir.join(format!("{owner}-root-{index:06}.tmp"))
    }

    /// Read and validate shard `index`'s published root. `Ok(None)` when
    /// not yet published; [`ClusterError::Cache`] for structural damage
    /// (the shared section reader rejects truncation and CRC mismatches);
    /// [`ClusterError::ExchangeMismatch`] when the file is intact but
    /// bound to a different store state or shard.
    pub fn read_root(
        &self,
        index: u32,
        state_tag: u64,
    ) -> Result<Option<PublishedRoot>, ClusterError> {
        let path = self.root_path(index);
        if !path.is_file() {
            return Ok(None);
        }
        let (count, payload) = read_section(&path, SECTION_CLUSTER_ROOT)?;
        let mismatch = |detail: String| ClusterError::ExchangeMismatch {
            path: path.clone(),
            detail,
        };
        if count != u64::from(index) {
            return Err(mismatch(format!(
                "header count {count}, expected shard index {index}"
            )));
        }
        let mut rest: &[u8] = &payload;
        let found_tag =
            take_u64(&mut rest).ok_or_else(|| mismatch("payload missing state tag".into()))?;
        if found_tag != state_tag {
            return Err(mismatch(format!(
                "state tag {found_tag:#018x} does not bind to the store's {state_tag:#018x} \
                 (stale exchange directory? see the operator runbook)"
            )));
        }
        let shard =
            take_u64(&mut rest).ok_or_else(|| mismatch("payload missing shard index".into()))?;
        if shard != u64::from(index) {
            return Err(mismatch(format!("payload names shard {shard}")));
        }
        let token =
            take_u64(&mut rest).ok_or_else(|| mismatch("payload missing fencing token".into()))?;
        let owner_len =
            take_u64(&mut rest).ok_or_else(|| mismatch("payload missing owner length".into()))?;
        if owner_len > rest.len() as u64 {
            return Err(mismatch(format!(
                "owner length {owner_len} overruns the payload"
            )));
        }
        let (owner_bytes, mut tail) = rest.split_at(owner_len as usize);
        let owner = String::from_utf8(owner_bytes.to_vec())
            .map_err(|e| mismatch(format!("owner is not UTF-8: {e}")))?;
        let mut scratch = Vec::new();
        let root = take_natural(&mut tail, &mut scratch)
            .map_err(|e| mismatch(format!("root record: {e}")))?;
        if !tail.is_empty() {
            return Err(mismatch(format!(
                "{} trailing bytes after the root record",
                tail.len()
            )));
        }
        if root.is_zero() {
            return Err(mismatch("published root is zero".into()));
        }
        Ok(Some(PublishedRoot {
            shard: index,
            token,
            owner,
            root,
        }))
    }

    /// Read every shard's root (in shard order) against `store`'s state
    /// tag; `None` entries are not yet published.
    pub fn collect(&self, store: &ShardStore) -> Result<Vec<Option<PublishedRoot>>, ClusterError> {
        let tag = store.state_tag();
        (0..store.shard_count() as u32)
            .map(|index| self.read_root(index, tag))
            .collect()
    }

    /// Remove temp files left by a previous crashed run of the *same*
    /// owner. Never touches other owners' temps.
    pub fn remove_own_tmps(&self, owner: &str) -> io::Result<()> {
        remove_prefixed_tmps(&self.dir, &format!("{owner}-"))
    }

    /// Remove every `*.tmp` straggler — the coordinator's post-run sweep,
    /// safe once all workers have exited.
    pub fn remove_all_tmps(&self) -> io::Result<()> {
        remove_prefixed_tmps(&self.dir, "")
    }
}
