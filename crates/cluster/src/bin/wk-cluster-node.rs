//! `wk-cluster-node` — one worker process of the batch-GCD cluster.
//!
//! ```text
//! wk-cluster-node --store DIR --cluster DIR [--owner ID]
//!                 [--stale-after-ms N] [--heartbeat-ms N] [--poll-ms N]
//! ```
//!
//! Sweeps the store's shards through the lease/exchange protocol
//! (DESIGN.md §12) until every shard has a published root, then exits 0.
//! Exit codes: 0 success, 1 protocol/I/O error, 2 usage error, 43 an
//! injected fault fired (`WK_CLUSTER_FAILPOINT`, test harnesses only).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use wk_cluster::{run_node, FailurePlan, NodeConfig};

const USAGE: &str = "usage: wk-cluster-node --store DIR --cluster DIR [--owner ID] \
                     [--stale-after-ms N] [--heartbeat-ms N] [--poll-ms N]";

struct Args {
    store: PathBuf,
    cluster: PathBuf,
    owner: String,
    stale_after_ms: u64,
    heartbeat_ms: u64,
    poll_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut store = None;
    let mut cluster = None;
    let mut owner = None;
    let mut stale_after_ms = 30_000u64;
    let mut heartbeat_ms = 5_000u64;
    let mut poll_ms = 250u64;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = || {
            argv.next()
                .ok_or_else(|| format!("{flag} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--store" => store = Some(PathBuf::from(value()?)),
            "--cluster" => cluster = Some(PathBuf::from(value()?)),
            "--owner" => owner = Some(value()?),
            "--stale-after-ms" => stale_after_ms = parse_ms(&flag, &value()?)?,
            "--heartbeat-ms" => heartbeat_ms = parse_ms(&flag, &value()?)?,
            "--poll-ms" => poll_ms = parse_ms(&flag, &value()?)?,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(Args {
        store: store.ok_or_else(|| format!("--store is required\n{USAGE}"))?,
        cluster: cluster.ok_or_else(|| format!("--cluster is required\n{USAGE}"))?,
        owner: owner.unwrap_or_else(|| format!("node-{}", std::process::id())),
        stale_after_ms,
        heartbeat_ms,
        poll_ms,
    })
}

fn parse_ms(flag: &str, value: &str) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("{flag} takes a millisecond count, got {value:?}\n{USAGE}"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let failure = match FailurePlan::from_env() {
        Ok(plan) => plan,
        Err(e) => {
            eprintln!("wk-cluster-node: {e}");
            return ExitCode::from(2);
        }
    };
    let mut cfg = NodeConfig::new(args.store, args.cluster, args.owner.clone());
    cfg.stale_after = Duration::from_millis(args.stale_after_ms);
    cfg.heartbeat_every = Duration::from_millis(args.heartbeat_ms);
    cfg.poll_every = Duration::from_millis(args.poll_ms);
    cfg.skew_tolerance = Duration::from_millis(args.stale_after_ms);
    cfg.failure = failure;

    match run_node(&cfg) {
        Ok(summary) => {
            println!(
                "wk-cluster-node {}: published={} reclaimed={} yielded={}",
                args.owner, summary.published, summary.reclaimed, summary.yielded
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("wk-cluster-node {}: {e}", args.owner);
            ExitCode::FAILURE
        }
    }
}
