//! The cluster's error type: every protocol failure is a typed, printable
//! condition — a worker process exits nonzero with a reason an operator
//! can act on, never a panic backtrace.

use std::fmt;
use std::io;
use std::path::PathBuf;
use wk_batchgcd::{CorpusError, IncrementalError};

/// Everything that can go wrong claiming leases, exchanging roots, or
/// assembling a cluster run.
#[derive(Debug)]
pub enum ClusterError {
    /// An underlying filesystem error outside any more specific protocol
    /// condition.
    Io(io::Error),
    /// The shard store itself failed to open or read back.
    Corpus(CorpusError),
    /// A `WKTREEC1` exchange section failed structural validation
    /// (truncation, bad magic, CRC mismatch — the reader is shared with
    /// the tree cache).
    Cache(IncrementalError),
    /// A lease file exists but does not parse as a lease record.
    LeaseCorrupt {
        /// Offending lease file.
        path: PathBuf,
        /// What was malformed.
        detail: String,
    },
    /// A published root does not bind to the store being processed:
    /// state-tag mismatch, wrong shard index, or an impossible payload.
    /// The runbook (README) covers when the exchange directory is safe to
    /// clear.
    ExchangeMismatch {
        /// Offending exchange file.
        path: PathBuf,
        /// What did not match.
        detail: String,
    },
    /// A failure-injection spec (the `WK_CLUSTER_FAILPOINT` environment
    /// variable) did not parse.
    BadFailureSpec {
        /// The spec as given.
        spec: String,
        /// Why it was rejected.
        detail: String,
    },
    /// An owner id that cannot safely appear in lease/exchange file names.
    BadOwner {
        /// The id as given.
        owner: String,
        /// Why it was rejected.
        detail: String,
    },
    /// A spawned worker process could not be started or waited on.
    NodeSpawn {
        /// The worker's owner id.
        owner: String,
        /// The spawn/wait failure.
        source: io::Error,
    },
    /// The sweep finished but some shards still have no published root —
    /// only possible when the coordinator was told not to participate.
    Incomplete {
        /// Shards with no root in the exchange directory.
        missing: Vec<u32>,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Io(e) => write!(f, "cluster I/O error: {e}"),
            ClusterError::Corpus(e) => write!(f, "shard store error: {e}"),
            ClusterError::Cache(e) => write!(f, "exchange section error: {e}"),
            ClusterError::LeaseCorrupt { path, detail } => {
                write!(f, "corrupt lease {}: {detail}", path.display())
            }
            ClusterError::ExchangeMismatch { path, detail } => {
                write!(
                    f,
                    "exchange file {} does not bind: {detail}",
                    path.display()
                )
            }
            ClusterError::BadFailureSpec { spec, detail } => {
                write!(f, "bad failure spec {spec:?}: {detail}")
            }
            ClusterError::BadOwner { owner, detail } => {
                write!(f, "bad owner id {owner:?}: {detail}")
            }
            ClusterError::NodeSpawn { owner, source } => {
                write!(f, "worker {owner} failed to spawn: {source}")
            }
            ClusterError::Incomplete { missing } => {
                write!(f, "sweep ended with unpublished shards {missing:?}")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Io(e) => Some(e),
            ClusterError::Corpus(e) => Some(e),
            ClusterError::Cache(e) => Some(e),
            ClusterError::NodeSpawn { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for ClusterError {
    fn from(e: io::Error) -> ClusterError {
        ClusterError::Io(e)
    }
}

impl From<CorpusError> for ClusterError {
    fn from(e: CorpusError) -> ClusterError {
        ClusterError::Corpus(e)
    }
}

impl From<IncrementalError> for ClusterError {
    fn from(e: IncrementalError) -> ClusterError {
        ClusterError::Cache(e)
    }
}
