//! Shard leases: atomically created claim files with fencing tokens and
//! in-file heartbeats (DESIGN.md §12.2 specifies the record field by
//! field).
//!
//! A lease is a file `leases/shard-NNNNNN.lease` whose *existence* is the
//! claim (created atomically by hard-linking a fully written temp file
//! into place, so a lease is either absent or complete — never torn) and
//! whose *contents* identify the owner, the fencing token, and the last
//! heartbeat. Heartbeats rewrite the record in place, which also bumps the
//! file's mtime — the staleness arbiter reads the in-file timestamp, the
//! mtime is what an operator's `ls -l` shows.
//!
//! Reclaiming a stale lease is arbitrated by `fs::rename`: every would-be
//! reclaimer renames the lease to a tombstone (`dead-shard-…-token-…`);
//! the filesystem lets exactly one rename succeed, and the winner claims a
//! fresh lease with the next fencing token. Tombstones are how tokens stay
//! strictly increasing across generations: a fresh claim's token is
//! 1 + the highest token among the shard's tombstones.

use crate::error::ClusterError;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, SystemTime, UNIX_EPOCH};
use wk_batchgcd::{crc32, fsync_dir};

/// Magic bytes opening every lease file (`"WKLEASE1"`).
pub const LEASE_MAGIC: [u8; 8] = *b"WKLEASE1";

/// Lease record format version this build reads and writes.
pub const LEASE_FORMAT_VERSION: u32 = 1;

/// Byte length of the fixed-width head of a lease record (everything
/// before the owner bytes): magic, version, shard index, fencing token,
/// heartbeat timestamp, owner length.
pub const LEASE_HEAD_LEN: usize = 40;

/// Subdirectory of the cluster directory holding lease files.
pub const LEASES_SUBDIR: &str = "leases";

/// Milliseconds since the Unix epoch on this process's clock (`0` if the
/// clock reads before the epoch — such a clock makes every lease this
/// process writes look maximally stale, the safe direction).
pub fn unix_millis() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Add a (possibly negative) skew to a millisecond timestamp, saturating
/// at both ends — the clock-skew fault injection writes heartbeats through
/// this.
pub fn apply_skew(millis: u64, skew_ms: i64) -> u64 {
    if skew_ms >= 0 {
        millis.saturating_add(skew_ms as u64)
    } else {
        millis.saturating_sub(skew_ms.unsigned_abs())
    }
}

/// File name of shard `index`'s lease inside the leases directory.
pub fn lease_file_name(index: u32) -> String {
    format!("shard-{index:06}.lease")
}

/// How fresh a lease record looks to an observer at `now_millis`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Freshness {
    /// Heartbeat recent enough; the owner is presumed alive.
    Fresh,
    /// No heartbeat for longer than the staleness window; reclaimable.
    Stale,
    /// Heartbeat timestamp is *ahead* of the observer by more than the
    /// skew tolerance — provably bogus (a clock-skewed writer), treated
    /// as reclaimable so a fast clock cannot hold a lease forever.
    Bogus,
}

/// A decoded lease record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LeaseRecord {
    /// Shard index this lease claims.
    pub shard: u32,
    /// Fencing token: strictly increasing across the shard's ownership
    /// generations; a revived worker holding an old token can detect that
    /// it lost the shard.
    pub token: u64,
    /// Milliseconds since the Unix epoch at the owner's last heartbeat,
    /// on the owner's clock.
    pub heartbeat_millis: u64,
    /// Owner identity (`[A-Za-z0-9._-]+`).
    pub owner: String,
}

fn take<'a>(rest: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if rest.len() < n {
        return None;
    }
    let (head, tail) = rest.split_at(n);
    *rest = tail;
    Some(head)
}

fn take_u32_le(rest: &mut &[u8]) -> Option<u32> {
    let bytes = take(rest, 4)?;
    let mut b = [0u8; 4];
    b.copy_from_slice(bytes);
    Some(u32::from_le_bytes(b))
}

fn take_u64_le(rest: &mut &[u8]) -> Option<u64> {
    let bytes = take(rest, 8)?;
    let mut b = [0u8; 8];
    b.copy_from_slice(bytes);
    Some(u64::from_le_bytes(b))
}

impl LeaseRecord {
    /// Serialize: fixed head, owner bytes, CRC-32 of everything before the
    /// CRC itself. Heartbeats rewrite this whole byte string in place (the
    /// length never changes while the owner doesn't).
    pub fn encode(&self) -> Vec<u8> {
        let owner = self.owner.as_bytes();
        let mut out = Vec::with_capacity(LEASE_HEAD_LEN + owner.len() + 4);
        out.extend_from_slice(&LEASE_MAGIC);
        out.extend_from_slice(&LEASE_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&self.token.to_le_bytes());
        out.extend_from_slice(&self.heartbeat_millis.to_le_bytes());
        out.extend_from_slice(&(owner.len() as u64).to_le_bytes());
        out.extend_from_slice(owner);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parse and validate a lease record; the error string says what was
    /// malformed (callers wrap it into
    /// [`ClusterError::LeaseCorrupt`]).
    pub fn decode(bytes: &[u8]) -> Result<LeaseRecord, String> {
        if bytes.len() < LEASE_HEAD_LEN + 4 {
            return Err(format!(
                "{} bytes, a lease record needs at least {}",
                bytes.len(),
                LEASE_HEAD_LEN + 4
            ));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 4);
        let mut crc_bytes = [0u8; 4];
        crc_bytes.copy_from_slice(tail);
        let expected = u32::from_le_bytes(crc_bytes);
        let actual = crc32(body);
        if actual != expected {
            return Err(format!("CRC {actual:08x} != recorded {expected:08x}"));
        }
        let mut rest = body;
        let magic = take(&mut rest, 8).unwrap_or(&[]);
        if magic != LEASE_MAGIC {
            return Err(format!("bad magic {magic:02x?}"));
        }
        let version = take_u32_le(&mut rest).unwrap_or(0);
        if version != LEASE_FORMAT_VERSION {
            return Err(format!(
                "format version {version} (this build supports {LEASE_FORMAT_VERSION})"
            ));
        }
        // The length check above guarantees the fixed head is present.
        let shard = take_u32_le(&mut rest).unwrap_or(0);
        let token = take_u64_le(&mut rest).unwrap_or(0);
        let heartbeat_millis = take_u64_le(&mut rest).unwrap_or(0);
        let owner_len = take_u64_le(&mut rest).unwrap_or(0);
        if owner_len != rest.len() as u64 {
            return Err(format!(
                "owner length {owner_len} but {} owner bytes present",
                rest.len()
            ));
        }
        let owner =
            String::from_utf8(rest.to_vec()).map_err(|e| format!("owner is not UTF-8: {e}"))?;
        Ok(LeaseRecord {
            shard,
            token,
            heartbeat_millis,
            owner,
        })
    }

    /// Judge this record's freshness from an observer's clock. Pure — the
    /// lease-contention proptests drive it with simulated time. `Bogus`
    /// (heartbeat further in the observer's future than `skew_tolerance`)
    /// and `Stale` are both reclaimable; the distinction is diagnostic.
    pub fn staleness(
        &self,
        now_millis: u64,
        stale_after: Duration,
        skew_tolerance: Duration,
    ) -> Freshness {
        let tol = skew_tolerance.as_millis() as u64;
        if self.heartbeat_millis > now_millis.saturating_add(tol) {
            return Freshness::Bogus;
        }
        let age = now_millis.saturating_sub(self.heartbeat_millis);
        if age > stale_after.as_millis() as u64 {
            Freshness::Stale
        } else {
            Freshness::Fresh
        }
    }
}

/// What the lease slot for a shard currently holds.
#[derive(Clone, Debug)]
pub enum LeaseView {
    /// No lease file: the shard is unclaimed.
    Absent,
    /// A parseable lease.
    Held(LeaseRecord),
    /// A lease file that does not parse — treated like a stale lease
    /// (reclaimable through the same rename arbitration) so damage cannot
    /// block a shard forever. The string says what was malformed.
    Corrupt(String),
}

/// The leases directory of one cluster run.
#[derive(Clone, Debug)]
pub struct LeaseDir {
    dir: PathBuf,
}

impl LeaseDir {
    /// Create (if needed) and open `<cluster_dir>/leases`, fsyncing the
    /// cluster directory so the entry survives a crash.
    pub fn init(cluster_dir: &Path) -> io::Result<LeaseDir> {
        let dir = cluster_dir.join(LEASES_SUBDIR);
        fs::create_dir_all(&dir)?;
        fsync_dir(cluster_dir)?;
        Ok(LeaseDir { dir })
    }

    /// The directory itself.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Path of shard `index`'s lease file.
    pub fn lease_path(&self, index: u32) -> PathBuf {
        self.dir.join(lease_file_name(index))
    }

    /// Read the current lease slot for `index`.
    pub fn view(&self, index: u32) -> Result<LeaseView, ClusterError> {
        let path = self.lease_path(index);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LeaseView::Absent),
            Err(e) => return Err(ClusterError::Io(e)),
        };
        match LeaseRecord::decode(&bytes) {
            Ok(r) => Ok(LeaseView::Held(r)),
            Err(detail) => Ok(LeaseView::Corrupt(detail)),
        }
    }

    /// Next fencing token for `index`: one more than the highest token
    /// among the shard's tombstones (`1` for a never-claimed shard).
    /// Tombstones are the durable token history — a lease is only ever
    /// *removed* (not tombstoned) after its shard's root is published, at
    /// which point no further claim can happen.
    pub fn next_token(&self, index: u32) -> Result<u64, ClusterError> {
        let prefix = format!("dead-shard-{index:06}-token-");
        let mut max_token = 0u64;
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(tail) = name.strip_prefix(&prefix) else {
                continue;
            };
            if let Ok(token) = tail.parse::<u64>() {
                max_token = max_token.max(token);
            }
        }
        Ok(max_token + 1)
    }

    /// Try to claim shard `index` with `token`: write a complete lease
    /// record to an owner-unique temp file, fsync it, and hard-link it to
    /// the lease name. The link is atomic and first-wins — on
    /// `AlreadyExists` someone else holds the shard and `None` is
    /// returned. A crash before the link leaves only an invisible temp
    /// file (cleaned by [`LeaseDir::remove_own_tmps`] on restart).
    pub fn claim(
        &self,
        index: u32,
        owner: &str,
        token: u64,
        heartbeat_millis: u64,
    ) -> Result<Option<Lease>, ClusterError> {
        let record = LeaseRecord {
            shard: index,
            token,
            heartbeat_millis,
            owner: owner.to_string(),
        };
        let tmp = self.dir.join(format!("{owner}-claim-{index:06}.tmp"));
        {
            let mut file = File::create(&tmp)?;
            file.write_all(&record.encode())?;
            file.sync_all()?;
        }
        let lease_path = self.lease_path(index);
        let linked = fs::hard_link(&tmp, &lease_path);
        let cleanup = fs::remove_file(&tmp);
        match linked {
            Ok(()) => {
                fsync_dir(&self.dir)?;
                cleanup?;
                Ok(Some(Lease {
                    dir: self.dir.clone(),
                    path: lease_path,
                    record,
                }))
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(None),
            Err(e) => Err(ClusterError::Io(e)),
        }
    }

    /// Rename a reclaimable lease to its tombstone. Exactly one concurrent
    /// reclaimer's rename succeeds (`Ok(true)`); the rest observe
    /// `NotFound` and report `Ok(false)`. The caller that wins proceeds to
    /// [`LeaseDir::claim`] with [`LeaseDir::next_token`], which now sees
    /// the tombstone.
    ///
    /// A reclaimer acting on a *stale* view — the slot was already
    /// reclaimed and re-claimed since the caller looked — must not
    /// displace the new owner's fresh lease, so the slot is re-read and
    /// compared to `view` first, and re-checked after the rename (the
    /// verify-to-rename window); a lease caught in that window is linked
    /// straight back, the bogus tombstone is deleted, and `Ok(false)` is
    /// returned. Either way the displaced-and-restored owner never misses
    /// a beat: the restored file is the same inode its heartbeats target.
    pub fn retire(
        &self,
        index: u32,
        view: &LeaseView,
        reclaimer: &str,
    ) -> Result<bool, ClusterError> {
        let lease_path = self.lease_path(index);
        let current = match fs::read(&lease_path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(ClusterError::Io(e)),
        };
        let dead_name = match view {
            LeaseView::Held(r) => {
                match LeaseRecord::decode(&current) {
                    Ok(now) if now.token == r.token && now.owner == r.owner => {}
                    // The slot changed hands since the caller's view.
                    _ => return Ok(false),
                }
                format!("dead-shard-{index:06}-token-{}", r.token)
            }
            LeaseView::Corrupt(_) => {
                if LeaseRecord::decode(&current).is_ok() {
                    // The damage the caller saw was replaced by a valid
                    // claim; nothing reclaimable here anymore.
                    return Ok(false);
                }
                format!("dead-shard-{index:06}-corrupt-by-{reclaimer}")
            }
            LeaseView::Absent => return Ok(false),
        };
        let tombstone = self.dir.join(dead_name);
        let outcome = fs::rename(&lease_path, &tombstone);
        fsync_dir(&self.dir)?;
        match outcome {
            Ok(()) => self.confirm_tombstone(&lease_path, &tombstone, view),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(ClusterError::Io(e)),
        }
    }

    /// Post-rename check for [`LeaseDir::retire`]: confirm the tombstone
    /// really holds the record (or damage) the reclaimer meant to bury. If
    /// a re-claim slipped into the verify-to-rename window, restore the
    /// displaced lease (hard-link first-wins, so a concurrent new claim is
    /// never clobbered either) and report the retire as lost.
    fn confirm_tombstone(
        &self,
        lease_path: &Path,
        tombstone: &Path,
        view: &LeaseView,
    ) -> Result<bool, ClusterError> {
        let buried = fs::read(tombstone)?;
        let intended = match (LeaseRecord::decode(&buried), view) {
            (Ok(now), LeaseView::Held(r)) => now.token == r.token && now.owner == r.owner,
            (Err(_), LeaseView::Corrupt(_)) => true,
            _ => false,
        };
        if intended {
            return Ok(true);
        }
        match fs::hard_link(tombstone, lease_path) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {}
            Err(e) => return Err(ClusterError::Io(e)),
        }
        fs::remove_file(tombstone)?;
        fsync_dir(&self.dir)?;
        Ok(false)
    }

    /// Remove temp files left by a previous crashed run of the *same*
    /// owner (the claim path names temps `<owner>-claim-*.tmp`). Never
    /// touches other owners' temps — theirs may be mid-claim right now.
    pub fn remove_own_tmps(&self, owner: &str) -> io::Result<()> {
        remove_prefixed_tmps(&self.dir, &format!("{owner}-"))
    }

    /// Remove *every* leftover in the directory — lease files, tombstones,
    /// temps. Only safe once every worker has exited and every root is
    /// published; the coordinator calls this right before assembly.
    pub fn clear(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.dir)? {
            fs::remove_file(entry?.path())?;
        }
        fsync_dir(&self.dir)
    }
}

/// Remove `<prefix>*.tmp` entries from `dir`.
pub(crate) fn remove_prefixed_tmps(dir: &Path, prefix: &str) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with(prefix) && name.ends_with(".tmp") {
            fs::remove_file(entry.path())?;
        }
    }
    fsync_dir(dir)
}

/// A lease this process holds (or held — the protocol is explicit about
/// the fact that holding the struct does not guarantee current ownership;
/// [`Lease::still_owned`] checks the file).
#[derive(Clone, Debug)]
pub struct Lease {
    dir: PathBuf,
    path: PathBuf,
    record: LeaseRecord,
}

impl Lease {
    /// The fencing token this lease was claimed with.
    pub fn token(&self) -> u64 {
        self.record.token
    }

    /// The shard this lease claims.
    pub fn shard(&self) -> u32 {
        self.record.shard
    }

    /// Rewrite the heartbeat timestamp in place (same record length, so a
    /// single overwrite; the write also bumps the file mtime). Returns
    /// `Ok(false)` — and writes nothing — when the lease was lost: file
    /// gone, or the record on disk is no longer this owner+token (a
    /// reclaimer moved in). Heartbeats are deliberately *not* fsynced: a
    /// lost heartbeat only makes the lease look staler than it is, which
    /// is the safe direction.
    pub fn heartbeat(&self, skew_ms: i64) -> Result<bool, ClusterError> {
        let mut file = match OpenOptions::new().read(true).write(true).open(&self.path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(ClusterError::Io(e)),
        };
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let on_disk = match LeaseRecord::decode(&bytes) {
            Ok(r) => r,
            Err(_) => return Ok(false),
        };
        if on_disk.owner != self.record.owner || on_disk.token != self.record.token {
            return Ok(false);
        }
        let fresh = LeaseRecord {
            heartbeat_millis: apply_skew(unix_millis(), skew_ms),
            ..self.record.clone()
        };
        file.seek(SeekFrom::Start(0))?;
        file.write_all(&fresh.encode())?;
        Ok(true)
    }

    /// Re-read the lease file and check it still names this owner and
    /// token. The check-then-publish window is not atomic — the exchange
    /// layer's first-wins link is what makes the race harmless — but a
    /// revived worker that lost its lease bails here instead of computing
    /// further.
    pub fn still_owned(&self) -> Result<bool, ClusterError> {
        let bytes = match fs::read(&self.path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(ClusterError::Io(e)),
        };
        match LeaseRecord::decode(&bytes) {
            Ok(r) => Ok(r.owner == self.record.owner && r.token == self.record.token),
            Err(_) => Ok(false),
        }
    }

    /// Remove the lease file (called only after the shard's root is
    /// published, so no tombstone is needed — no further claim will ever
    /// look for this shard's token history).
    pub fn release(self) -> Result<(), ClusterError> {
        match fs::remove_file(&self.path) {
            Ok(()) => {}
            // A reclaimer renamed it away first; nothing left to release.
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(ClusterError::Io(e)),
        }
        fsync_dir(&self.dir)?;
        Ok(())
    }
}
