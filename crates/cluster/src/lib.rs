//! # wk-cluster — multi-process batch GCD over the shard store
//!
//! The paper ran its batch GCD on a 22-machine cluster; this crate is
//! that shape in miniature: independent **processes** (not simulated
//! thread-nodes — [`wk_batchgcd::distributed`] already does that) share
//! one [`ShardStore`](wk_batchgcd::ShardStore) and coordinate exclusively
//! through the filesystem, the only medium whose crash semantics the rest
//! of this workspace already pins down (DESIGN.md §8.2).
//!
//! * [`lease`] — shard ownership: atomically linked lease files carrying
//!   an owner id, a fencing token, and an in-file heartbeat; stale-lease
//!   reclamation is arbitrated by `rename` so exactly one reclaimer wins;
//! * [`exchange`] — published per-shard subtree roots in the `WKTREEC1`
//!   section format, linked into place first-wins so a shard's root file
//!   either doesn't exist or is complete, exactly once;
//! * [`worker`] — the node loop (`wk-cluster-node` is a thin wrapper):
//!   claim → compute → fence-check → publish → release, leaderless;
//! * [`coordinate`] — [`coordinate::run_cluster`] spawns N real worker
//!   processes, sweeps leftovers itself, and assembles the final result
//!   with [`wk_batchgcd::assemble_from_shard_roots`] — the same phases
//!   2–3 the single-process run executes, so divisors and statuses are
//!   **byte-identical by construction**;
//! * [`failure`] — fault injection (`WK_CLUSTER_FAILPOINT`) for the
//!   multi-process e2e suite: kill-after-lease, kill-before-publish,
//!   torn-tmp, clock-skewed heartbeats.
//!
//! The protocol, field-by-field file formats, and the failure-mode table
//! live in DESIGN.md §12; the README has the quick-start and the
//! operator runbook.
//!
//! # Examples
//!
//! One process, same protocol (the multi-process path only adds `spawn`):
//!
//! ```
//! use wk_batchgcd::{assemble_from_shard_roots, scratch_dir, sharded_batch_gcd, ShardStore};
//! use wk_bigint::Natural;
//! use wk_cluster::{run_node, ExchangeDir, NodeConfig};
//!
//! // 33 = 3*11 and 39 = 3*13 share the prime 3; 323 = 17*19 is clean.
//! let moduli: Vec<Natural> = [33u64, 39, 323].map(Natural::from).to_vec();
//! let store_dir = scratch_dir("cluster-doc-store");
//! let cluster_dir = scratch_dir("cluster-doc-run");
//! let store = ShardStore::create(&store_dir, 2, &moduli).unwrap();
//!
//! // A lone node sweeps every shard and publishes each root.
//! let cfg = NodeConfig::new(store_dir.clone(), cluster_dir.clone(), "solo".into());
//! let summary = run_node(&cfg).unwrap();
//! assert_eq!(summary.published, 2);
//!
//! // Collect the published roots and run the shared assembly.
//! let exchange = ExchangeDir::init(&cluster_dir).unwrap();
//! let roots: Vec<Natural> = exchange
//!     .collect(&store)
//!     .unwrap()
//!     .into_iter()
//!     .map(|r| r.unwrap().root)
//!     .collect();
//! let assembly = assemble_from_shard_roots(&store, roots, 1).unwrap();
//! let single = sharded_batch_gcd(&store, 1).unwrap();
//! assert_eq!(assembly.result.raw_divisors, single.raw_divisors);
//! assert_eq!(assembly.result.statuses, single.statuses);
//!
//! std::fs::remove_dir_all(&cluster_dir).unwrap();
//! store.remove().unwrap();
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod coordinate;
pub mod error;
pub mod exchange;
pub mod failure;
pub mod lease;
pub mod worker;

pub use coordinate::{run_cluster, sibling_node_bin, ClusterOutcome, ClusterSpec, NodeExit};
pub use error::ClusterError;
pub use exchange::{ExchangeDir, Publish, PublishedRoot, SECTION_CLUSTER_ROOT};
pub use failure::{FailPoint, FailurePlan, INJECTED_EXIT};
pub use lease::{Freshness, Lease, LeaseDir, LeaseRecord, LeaseView};
pub use worker::{run_node, validate_owner, NodeConfig, NodeSummary};
