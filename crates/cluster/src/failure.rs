//! Fault injection for the multi-process e2e suite (DESIGN.md §12.5).
//!
//! A [`FailurePlan`] is parsed from the `WK_CLUSTER_FAILPOINT` environment
//! variable, so the test harness arms faults in *real spawned worker
//! processes* without any test-only code path in the worker loop — the
//! worker consults the plan at the same protocol points a real crash
//! would hit. Grammar:
//!
//! ```text
//! kill-after-lease[@SHARD]      exit right after claiming a lease
//! kill-before-publish[@SHARD]   exit after computing, before publishing
//! torn-tmp[@SHARD]              write half an exchange temp file, then exit
//! skew-heartbeat=MS             add MS (may be negative) to every
//!                               heartbeat timestamp this process writes
//! ```
//!
//! `@SHARD` restricts a kill to one shard (default: the first shard the
//! worker acquires). Injected exits use [`INJECTED_EXIT`] so the harness
//! can tell a planned crash from a real failure.

use crate::error::ClusterError;
use std::process;

/// Exit code of a planned (injected) worker crash.
pub const INJECTED_EXIT: i32 = 43;

/// Protocol points a fault can fire at.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailPoint {
    /// Right after a lease claim succeeds: the shard is claimed but no
    /// work will ever be published for it. Contained by stale-lease
    /// reclamation.
    KillAfterLease,
    /// After the subtree root is computed, before it is published: the
    /// worst-timed crash. Contained the same way — the lease goes stale
    /// and the next owner recomputes (roots are deterministic).
    KillBeforePublish,
    /// Mid-publish: a half-written exchange temp file is left behind.
    /// Contained by the link-into-place discipline — the torn file was
    /// never visible under a final name — plus temp sweeping.
    TornTmp,
}

/// A process's armed fault, if any, plus heartbeat clock skew.
#[derive(Clone, Debug, Default)]
pub struct FailurePlan {
    kill: Option<(FailPoint, Option<u32>)>,
    /// Milliseconds added to every heartbeat timestamp this process
    /// writes (the clock-skew fault; `0` normally).
    pub skew_ms: i64,
}

impl FailurePlan {
    /// Environment variable the worker binary reads its plan from.
    pub const ENV_VAR: &'static str = "WK_CLUSTER_FAILPOINT";

    /// No faults.
    pub fn none() -> FailurePlan {
        FailurePlan::default()
    }

    /// Parse a plan from [`FailurePlan::ENV_VAR`]; absent means no faults.
    pub fn from_env() -> Result<FailurePlan, ClusterError> {
        match std::env::var(Self::ENV_VAR) {
            Ok(spec) => Self::parse(&spec),
            Err(_) => Ok(FailurePlan::none()),
        }
    }

    /// Parse a plan from its spec string (the grammar in the module docs).
    pub fn parse(spec: &str) -> Result<FailurePlan, ClusterError> {
        let bad = |detail: &str| ClusterError::BadFailureSpec {
            spec: spec.to_string(),
            detail: detail.to_string(),
        };
        let (head, shard) = match spec.split_once('@') {
            Some((head, shard_str)) => {
                let shard = shard_str
                    .parse::<u32>()
                    .map_err(|_| bad("shard qualifier is not a u32"))?;
                (head, Some(shard))
            }
            None => (spec, None),
        };
        if let Some(ms) = head.strip_prefix("skew-heartbeat=") {
            if shard.is_some() {
                return Err(bad(
                    "skew-heartbeat applies to the whole process; no @SHARD",
                ));
            }
            let skew_ms = ms
                .parse::<i64>()
                .map_err(|_| bad("skew is not an i64 millisecond count"))?;
            return Ok(FailurePlan {
                kill: None,
                skew_ms,
            });
        }
        let point = match head {
            "kill-after-lease" => FailPoint::KillAfterLease,
            "kill-before-publish" => FailPoint::KillBeforePublish,
            "torn-tmp" => FailPoint::TornTmp,
            _ => return Err(bad("unknown failure point")),
        };
        Ok(FailurePlan {
            kill: Some((point, shard)),
            skew_ms: 0,
        })
    }

    /// Is `point` armed for `shard`?
    pub fn armed(&self, point: FailPoint, shard: u32) -> bool {
        match self.kill {
            Some((p, at)) => p == point && at.map(|s| s == shard).unwrap_or(true),
            None => false,
        }
    }

    /// Exit the process with [`INJECTED_EXIT`] if `point` is armed for
    /// `shard`; otherwise a no-op.
    pub fn exit_if_armed(&self, point: FailPoint, shard: u32) {
        if self.armed(point, shard) {
            process::exit(INJECTED_EXIT);
        }
    }
}
