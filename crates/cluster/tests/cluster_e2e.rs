//! Multi-process end-to-end suite: real `wk-cluster-node` processes over
//! one shard store, with every `FailurePlan` fault injected, asserting
//! the ISSUE-9 acceptance invariants — cluster output byte-identical to
//! `sharded_batch_gcd` on the same store, and no fault leaves a shard
//! unowned, double-published, or half-published.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;
use wk_batchgcd::{scratch_dir, sharded_batch_gcd, BatchGcdResult, ShardStore};
use wk_bigint::Natural;
use wk_cluster::{
    run_cluster, ClusterSpec, ExchangeDir, FailurePlan, LeaseDir, LeaseView, INJECTED_EXIT,
};

const NODE_BIN: &str = env!("CARGO_BIN_EXE_wk-cluster-node");

/// Deterministic odd pseudo-moduli (the corpus tests' generator): plenty
/// of shared small factors, so runs produce real hits.
fn pseudo_moduli(count: usize, seed: u64) -> Vec<Natural> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..count)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Natural::from(state | 1)
        })
        .collect()
}

fn make_store(tag: &str, count: usize, capacity: usize) -> (PathBuf, ShardStore) {
    let dir = scratch_dir(tag);
    let store = ShardStore::create(&dir, capacity, &pseudo_moduli(count, 0xC1)).unwrap();
    (dir, store)
}

fn quick_spec(cluster_dir: PathBuf, nodes: u32) -> ClusterSpec {
    let mut spec = ClusterSpec::new(cluster_dir, PathBuf::from(NODE_BIN), nodes);
    // Short lease timing so injected crashes reclaim within the test run.
    spec.stale_after = Duration::from_millis(1200);
    spec.heartbeat_every = Duration::from_millis(150);
    spec.poll_every = Duration::from_millis(40);
    spec
}

fn assert_byte_identical(store: &ShardStore, got: &BatchGcdResult) {
    let single = sharded_batch_gcd(store, 2).unwrap();
    assert_eq!(got.raw_divisors, single.raw_divisors);
    assert_eq!(got.statuses, single.statuses);
}

/// Post-run directory hygiene: exactly one complete root per shard, no
/// temps, no leases left.
fn assert_clean_dirs(cluster_dir: &Path, store: &ShardStore) {
    let exchange = ExchangeDir::init(cluster_dir).unwrap();
    for index in 0..store.shard_count() as u32 {
        let root = exchange.read_root(index, store.state_tag()).unwrap();
        assert!(root.is_some(), "shard {index} has no published root");
    }
    let mut names: Vec<String> = fs::read_dir(exchange.path())
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names.len(),
        store.shard_count(),
        "exchange dir should hold exactly one file per shard: {names:?}"
    );
    assert!(names.iter().all(|n| n.ends_with(".wkr")), "{names:?}");
    let leases = LeaseDir::init(cluster_dir).unwrap();
    let leftovers: Vec<_> = fs::read_dir(leases.path()).unwrap().collect();
    assert!(leftovers.is_empty(), "lease dir not cleared");
}

fn cleanup(dir: &Path) {
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn three_process_cluster_matches_single_process() {
    let (store_dir, store) = make_store("cluster-e2e-clean", 40, 5);
    let cluster_dir = scratch_dir("cluster-e2e-clean-run");
    let spec = quick_spec(cluster_dir.clone(), 3);

    let outcome = run_cluster(&store_dir, &spec, 2).unwrap();
    assert_eq!(outcome.node_exits.len(), 3);
    for exit in &outcome.node_exits {
        assert!(exit.clean, "node {} exited {:?}", exit.owner, exit.code);
    }
    assert_byte_identical(&store, &outcome.assembly.result);
    assert_clean_dirs(&cluster_dir, &store);
    // The workers did the publishing; the coordinator's sweep found
    // nothing left to do.
    assert_eq!(outcome.coordinator.published, 0);

    cleanup(&cluster_dir);
    store.remove().unwrap();
}

/// The three crash faults, each run deterministically: one armed node
/// sweeps alone until its failpoint fires (so the fault *always* fires —
/// in a racing fleet a shard-qualified failpoint can go untriggered when a
/// peer wins that shard), then a clean two-node cluster must recover from
/// exactly the wreckage it left: a held lease, unpublished roots, a torn
/// temp file.
#[test]
fn every_injected_crash_fault_is_contained() {
    let faults = ["kill-after-lease@0", "kill-before-publish@1", "torn-tmp@2"];
    for (i, fault) in faults.iter().enumerate() {
        let (store_dir, store) = make_store(&format!("cluster-e2e-fault-{i}"), 24, 4);
        let cluster_dir = scratch_dir(&format!("cluster-e2e-fault-{i}-run"));

        let status = Command::new(NODE_BIN)
            .arg("--store")
            .arg(&store_dir)
            .arg("--cluster")
            .arg(&cluster_dir)
            .args([
                "--owner",
                "victim",
                "--stale-after-ms",
                "1200",
                "--heartbeat-ms",
                "150",
                "--poll-ms",
                "40",
            ])
            .env("WK_CLUSTER_FAILPOINT", fault)
            .status()
            .unwrap();
        assert_eq!(
            status.code(),
            Some(INJECTED_EXIT),
            "fault {fault}: the armed solo node must die at its failpoint"
        );

        // The dead node left a claimed-but-unpublished shard behind (and,
        // for torn-tmp, a garbage temp file in the exchange directory).
        let leases = LeaseDir::init(&cluster_dir).unwrap();
        let victim_shard = fault.rsplit('@').next().unwrap().parse::<u32>().unwrap();
        assert!(
            matches!(leases.view(victim_shard).unwrap(), LeaseView::Held(_)),
            "fault {fault}: victim should have died holding shard {victim_shard}"
        );

        let spec = quick_spec(cluster_dir.clone(), 2);
        let outcome = run_cluster(&store_dir, &spec, 2)
            .unwrap_or_else(|e| panic!("fault {fault}: recovery cluster failed: {e}"));
        for exit in &outcome.node_exits {
            assert!(exit.clean, "node {} exited {:?}", exit.owner, exit.code);
        }
        assert_byte_identical(&store, &outcome.assembly.result);
        assert_clean_dirs(&cluster_dir, &store);

        cleanup(&cluster_dir);
        store.remove().unwrap();
    }
}

/// The clock-skew fault runs inside a racing fleet: the armed node writes
/// heartbeats an hour in the future, which peers judge `Bogus` (hence
/// reclaimable) rather than eternally fresh. Nobody dies; the sweep
/// completes and the result is unchanged.
#[test]
fn skewed_heartbeats_cannot_wedge_the_cluster() {
    let (store_dir, store) = make_store("cluster-e2e-skew", 24, 4);
    let cluster_dir = scratch_dir("cluster-e2e-skew-run");
    let mut spec = quick_spec(cluster_dir.clone(), 3);
    spec.failpoints = vec![Some("skew-heartbeat=3600000".to_string()), None, None];

    let outcome = run_cluster(&store_dir, &spec, 2).unwrap();
    for exit in &outcome.node_exits {
        assert!(exit.clean, "node {} exited {:?}", exit.owner, exit.code);
    }
    assert_byte_identical(&store, &outcome.assembly.result);
    assert_clean_dirs(&cluster_dir, &store);

    cleanup(&cluster_dir);
    store.remove().unwrap();
}

#[test]
fn node_killed_mid_run_is_absorbed() {
    let (store_dir, store) = make_store("cluster-e2e-kill", 60, 3);
    let cluster_dir = scratch_dir("cluster-e2e-kill-run");
    let exchange = ExchangeDir::init(&cluster_dir).unwrap();

    // One lone node starts sweeping all 20 shards...
    let mut victim = Command::new(NODE_BIN)
        .args(["--store"])
        .arg(&store_dir)
        .arg("--cluster")
        .arg(&cluster_dir)
        .args([
            "--owner",
            "victim",
            "--stale-after-ms",
            "1200",
            "--heartbeat-ms",
            "150",
            "--poll-ms",
            "40",
        ])
        .spawn()
        .unwrap();
    // ...and is SIGKILLed as soon as it has visibly made progress (no
    // graceful shutdown, exactly like a powered-off machine).
    let mut published_before_kill = 0;
    for _ in 0..2000 {
        published_before_kill = (0..store.shard_count() as u32)
            .filter(|&i| exchange.is_published(i))
            .count();
        if published_before_kill >= 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    victim.kill().unwrap();
    victim.wait().unwrap();

    // The remaining fleet absorbs the dead node's shards (including any
    // lease it died holding) and the result is still byte-identical.
    let spec = quick_spec(cluster_dir.clone(), 2);
    let outcome = run_cluster(&store_dir, &spec, 2).unwrap();
    assert_byte_identical(&store, &outcome.assembly.result);
    assert_clean_dirs(&cluster_dir, &store);
    assert!(
        published_before_kill < store.shard_count(),
        "victim finished everything before the kill; nothing was tested"
    );

    cleanup(&cluster_dir);
    store.remove().unwrap();
}

#[test]
fn stale_exchange_directory_is_a_typed_error() {
    let (store_dir, store) = make_store("cluster-e2e-stale", 12, 4);
    let cluster_dir = scratch_dir("cluster-e2e-stale-run");
    let spec = quick_spec(cluster_dir.clone(), 2);
    run_cluster(&store_dir, &spec, 1).unwrap();

    // The store moves on (a new month lands); the old exchange directory
    // no longer binds to it.
    let mut store = store;
    store.append(4, &pseudo_moduli(4, 0xBEEF)).unwrap();
    let exchange = ExchangeDir::init(&cluster_dir).unwrap();
    let err = exchange.read_root(0, store.state_tag()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("does not bind"), "unexpected error: {msg}");

    cleanup(&cluster_dir);
    store.remove().unwrap();
}

#[test]
fn revived_worker_is_fenced_out() {
    let cluster_dir = scratch_dir("cluster-e2e-fence");
    let leases = LeaseDir::init(&cluster_dir).unwrap();

    // Zombie claims shard 7 with token 1, then stalls (no heartbeats).
    let zombie = leases.claim(7, "zombie", 1, 0).unwrap().unwrap();
    // A reclaimer finds the lease stale and takes over with token 2.
    let view = leases.view(7).unwrap();
    assert!(matches!(view, LeaseView::Held(_)));
    assert!(leases.retire(7, &view, "reclaimer").unwrap());
    assert_eq!(leases.next_token(7).unwrap(), 2);
    let fresh = leases
        .claim(7, "reclaimer", 2, u64::MAX / 2)
        .unwrap()
        .unwrap();

    // The revived zombie cannot re-validate its ownership: the fence
    // check fails, so it never reaches the publish step, and its
    // heartbeats refuse to touch the reclaimer's lease.
    assert!(!zombie.still_owned().unwrap());
    assert!(!zombie.heartbeat(0).unwrap());
    assert!(fresh.still_owned().unwrap());

    // A second concurrent reclaimer of the same stale lease loses the
    // rename race cleanly.
    assert!(!leases.retire(7, &view, "late-reclaimer").unwrap());

    cleanup(&cluster_dir);
}

#[test]
fn failure_specs_parse_and_reject() {
    assert!(FailurePlan::parse("kill-after-lease").is_ok());
    assert!(FailurePlan::parse("kill-before-publish@3").is_ok());
    assert!(FailurePlan::parse("torn-tmp@0").is_ok());
    let skew = FailurePlan::parse("skew-heartbeat=-500").unwrap();
    assert_eq!(skew.skew_ms, -500);
    assert!(FailurePlan::parse("skew-heartbeat=oops").is_err());
    assert!(FailurePlan::parse("skew-heartbeat=5@1").is_err());
    assert!(FailurePlan::parse("explode").is_err());
    assert!(FailurePlan::parse("kill-after-lease@notashard").is_err());
}
