//! Property tests over interleaved claim/heartbeat/reclaim sequences on a
//! real lease directory, with a *simulated* observer clock driving the
//! pure [`LeaseRecord::staleness`] arbiter (DESIGN.md §12.2).
//!
//! Invariants checked on every generated interleaving:
//! * at most one live owner per shard — a lease whose holder still
//!   validates (`still_owned`) is never co-owned, and a **fresh** lease is
//!   never displaced by a reclaimer;
//! * fencing tokens strictly increase across a shard's ownership
//!   generations;
//! * no lost shards — after arbitrary worker deaths (handles dropped with
//!   no cleanup, files left behind), a late sweeper can still acquire
//!   every shard once the staleness window passes.

use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;
use wk_batchgcd::scratch_dir;
use wk_cluster::{Freshness, Lease, LeaseDir, LeaseView};

/// Simulated staleness window (sim-clock milliseconds).
const STALE_AFTER: Duration = Duration::from_secs(120);
/// Simulated forward-skew tolerance.
const SKEW_TOL: Duration = Duration::from_secs(20);

struct Model {
    leases: LeaseDir,
    /// Sim clock, ms since the model's epoch (0); only ever advances.
    now: u64,
    /// Per-worker held lease handles (`None` slot = worker holds nothing
    /// or is dead — death just drops the handle, files stay behind).
    held: Vec<Option<Lease>>,
    /// Highest fencing token ever granted per shard.
    max_token: HashMap<u32, u64>,
}

impl Model {
    fn new(tag: &str, workers: usize) -> Model {
        let dir = scratch_dir(tag);
        Model {
            leases: LeaseDir::init(&dir).unwrap(),
            now: STALE_AFTER.as_millis() as u64, // start past 0 so age math never saturates
            held: vec![None; workers],
            max_token: HashMap::new(),
        }
    }

    /// The `worker::acquire` policy replayed against the public API with
    /// the sim clock: reclaim only Stale/Bogus/Corrupt, never Fresh.
    fn acquire(&mut self, worker: usize, shard: u32) -> Result<(), TestCaseError> {
        let owner = format!("w{worker}");
        let view = self.leases.view(shard).unwrap();
        let reclaimable = match &view {
            LeaseView::Absent => false,
            LeaseView::Corrupt(_) => true,
            LeaseView::Held(record) => {
                match record.staleness(self.now, STALE_AFTER, SKEW_TOL) {
                    Freshness::Fresh => {
                        // INVARIANT: a fresh lease is never displaced.
                        return Ok(());
                    }
                    Freshness::Stale | Freshness::Bogus => true,
                }
            }
        };
        if reclaimable && !self.leases.retire(shard, &view, &owner).unwrap() {
            return Ok(()); // lost the rename race (can't happen single-threaded)
        }
        let token = self.leases.next_token(shard).unwrap();
        let prev = self.max_token.get(&shard).copied().unwrap_or(0);
        if let Some(lease) = self.leases.claim(shard, &owner, token, self.now).unwrap() {
            // INVARIANT: fencing tokens strictly increase per shard.
            prop_assert!(
                token > prev,
                "shard {shard}: granted token {token} after {prev}"
            );
            self.max_token.insert(shard, token);
            self.held[worker] = Some(lease);
        }
        Ok(())
    }

    /// INVARIANT: at most one held handle per shard still validates.
    fn check_single_owner(&self, shards: u32) -> Result<(), TestCaseError> {
        for shard in 0..shards {
            let live: Vec<usize> = self
                .held
                .iter()
                .enumerate()
                .filter(|(_, h)| {
                    h.as_ref()
                        .is_some_and(|l| l.shard() == shard && l.still_owned().unwrap())
                })
                .map(|(w, _)| w)
                .collect();
            prop_assert!(
                live.len() <= 1,
                "shard {shard} has {} live owners: workers {live:?}",
                live.len()
            );
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleaved_claims_keep_lease_invariants(
        seed in 0u64..u64::MAX / 2,
        shards in 1u32..5,
        workers in 2usize..5,
    ) {
        let mut model = Model::new(&format!("lease-prop-{seed}-{shards}-{workers}"), workers);
        let mut state = seed | 1;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };

        for _ in 0..48 {
            let worker = (rand() % workers as u64) as usize;
            let shard = (rand() % shards as u64) as u32;
            match rand() % 6 {
                // Acquire attempts dominate the schedule.
                0 | 1 => model.acquire(worker, shard)?,
                // Heartbeat at sim-now; a lost lease drops the handle.
                2 => {
                    if let Some(lease) = &model.held[worker] {
                        // The real heartbeat writes wall-clock time; stamp
                        // the sim clock instead by re-deriving freshness
                        // from a still_owned probe + model bookkeeping.
                        if !lease.heartbeat(0).unwrap() {
                            model.held[worker] = None;
                        } else {
                            // Keep the on-disk record on the sim clock:
                            // rewrite via a sim-time heartbeat by direct
                            // re-claim semantics is not possible, so model
                            // freshness through record age only. Wall-clock
                            // heartbeats are far in the sim future => the
                            // record reads Bogus to sim observers, which is
                            // still a *reclaimable* state — exercised below.
                        }
                    }
                }
                // Sudden death: drop the handle, leave the file.
                3 => model.held[worker] = None,
                // Time passes (0..=90 s of sim time).
                4 => model.now += rand() % 90_001,
                // Audit the single-owner invariant.
                _ => model.check_single_owner(shards)?,
            }
        }

        model.check_single_owner(shards)?;

        // No lost shards: everyone dies, a full staleness window passes,
        // and a fresh sweeper acquires every shard regardless of what the
        // dead left behind (live leases, tombstones, heartbeat litter).
        for slot in model.held.iter_mut() {
            *slot = None;
        }
        // Jump far enough that even wall-clock heartbeats written above
        // (unix epoch ms ≫ sim ms, i.e. Bogus to a sim observer) stay
        // reclaimable, and sim-time heartbeats all read Stale.
        model.now += 100 * STALE_AFTER.as_millis() as u64;
        let sweeper = model.held.len() - 1;
        for shard in 0..shards {
            for _ in 0..3 {
                model.acquire(sweeper, shard)?;
                if model.held[sweeper].as_ref().is_some_and(|l| l.shard() == shard) {
                    break;
                }
            }
            let got = model.held[sweeper].take();
            prop_assert!(
                got.as_ref().is_some_and(|l| l.still_owned().unwrap()),
                "shard {shard} was lost: sweeper could not acquire it"
            );
            if let Some(lease) = got {
                lease.release().unwrap();
            }
        }

        std::fs::remove_dir_all(model.leases.path().parent().unwrap()).unwrap();
    }
}
