//! # wk-rng — executable models of the RNG failures behind weak keys
//!
//! The IMC 2016 paper traces factorable RSA moduli to random-number
//! generation failures on headless network devices (\[21\] §2.4). This crate
//! models the failing stack layer by layer so the rest of the reproduction
//! can *generate* populations of keys with exactly the statistical defects
//! the paper measures:
//!
//! * [`EntropyPool`] — a deterministic-mixing kernel pool model;
//! * [`UrandomModel`] + [`DeviceBootProfile`] — `/dev/urandom` with the
//!   boot-time entropy hole (never blocks, deterministic-at-boot);
//! * [`OpensslRand`] — OpenSSL's `RAND_bytes` time-stirring, which converts
//!   "identical pools" into "identical first prime, divergent second prime";
//! * [`GetrandomModel`] — the July 2014 `getrandom(2)` fix: blocks until the
//!   pool is credited 128 bits;
//! * [`SimClock`] — the shared simulated clock whose second-boundary ticks
//!   decide where streams diverge.
//!
//! Everything implements or feeds [`rand::RngCore`], so `wk-keygen` can run
//! real prime generation on top of any of these models.
//!
//! ## The failure in four lines
//!
//! ```
//! use wk_rng::{DeviceBootProfile, SimClock, UrandomModel};
//! use rand::RngCore;
//!
//! let profile = DeviceBootProfile::entropy_hole("router-fw-3.1");
//! let mut dev_a = UrandomModel::boot(&profile, SimClock::at(1_330_000_000), 1, 0);
//! let mut dev_b = UrandomModel::boot(&profile, SimClock::at(1_330_000_000), 2, 0);
//! assert_eq!(dev_a.next_u64(), dev_b.next_u64()); // two devices, one key stream
//! ```

#![forbid(unsafe_code)]

mod clock;
mod openssl_rand;
mod pool;
mod urandom;

pub use clock::SimClock;
pub use openssl_rand::OpensslRand;
pub use pool::EntropyPool;
pub use urandom::{DeviceBootProfile, GetrandomModel, UrandomModel, WouldBlock};
