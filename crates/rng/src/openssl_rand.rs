//! Modeled OpenSSL `RAND_bytes` as used during RSA key generation.
//!
//! The divergence mechanism from \[21\] §2.4: OpenSSL seeds its internal pool
//! from `/dev/urandom` and additionally mixes the current time into the pool
//! on extraction. Two devices whose urandom streams are identical (boot-time
//! entropy hole) therefore generate an *identical first prime* — and if the
//! clock ticks past a second boundary between the first and second prime
//! search on one device but at a different point on the other, the second
//! primes *diverge*. The result is the hallmark of the vulnerability: moduli
//! `N1 = p*q1`, `N2 = p*q2` sharing exactly one prime.

use crate::clock::SimClock;
use crate::pool::EntropyPool;
use crate::urandom::UrandomModel;
use rand::RngCore;

/// Modeled OpenSSL application-level RNG.
///
/// Construction mirrors `RAND_poll`: 32 bytes from `/dev/urandom`, plus pid.
/// Every extraction mixes the current time (one-second resolution) first,
/// mirroring `RAND_bytes`'s stirring of the md state with `time(NULL)`.
#[derive(Clone, Debug)]
pub struct OpensslRand {
    pool: EntropyPool,
    clock: SimClock,
}

impl OpensslRand {
    /// Seed from the device's urandom, as `RAND_poll` does at first use.
    pub fn seed_from_urandom(urandom: &mut UrandomModel, pid: u32) -> Self {
        let clock = urandom.clock().clone();
        let mut pool = EntropyPool::empty();
        for _ in 0..4 {
            pool.mix_u64(urandom.next_u64(), 0);
        }
        pool.mix_u64(pid as u64, 0);
        OpensslRand { pool, clock }
    }

    /// Borrow the simulated clock (advance it to model elapsed search time).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

impl RngCore for OpensslRand {
    fn next_u32(&mut self) -> u32 {
        self.next_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        // RAND_bytes stirs in time(NULL) before producing output.
        self.pool.mix_u64(self.clock.now(), 0);
        self.pool.extract_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::urandom::DeviceBootProfile;

    fn booted(t: u64, serial: u64) -> OpensslRand {
        let profile = DeviceBootProfile::entropy_hole("fw-1.0");
        let mut u = UrandomModel::boot(&profile, SimClock::at(t), serial, 0);
        OpensslRand::seed_from_urandom(&mut u, 42)
    }

    #[test]
    fn identical_boots_agree_until_clock_divergence() {
        let mut a = booted(1_330_000_000, 1);
        let mut b = booted(1_330_000_000, 2);
        // Same boot second, same firmware, same pid: "first prime" stream
        // identical.
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Device a's first prime search takes longer: its clock ticks.
        a.clock().advance(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn synchronized_tick_keeps_streams_identical() {
        // If both clocks tick identically, the devices generate a fully
        // identical key (same p AND q) — the repeated-key (not merely
        // shared-prime) failure mode, also observed in the wild.
        let mut a = booted(500, 1);
        let mut b = booted(500, 2);
        let _ = (a.next_u64(), b.next_u64());
        a.clock().advance(3);
        b.clock().advance(3);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_pid_diverges() {
        let profile = DeviceBootProfile::entropy_hole("fw-1.0");
        let mut u1 = UrandomModel::boot(&profile, SimClock::at(9), 1, 0);
        let mut u2 = UrandomModel::boot(&profile, SimClock::at(9), 2, 0);
        let mut a = OpensslRand::seed_from_urandom(&mut u1, 100);
        let mut b = OpensslRand::seed_from_urandom(&mut u2, 101);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
