//! Modeled `/dev/urandom` with the boot-time entropy hole.
//!
//! \[21\] traced factorable keys to a Linux behaviour: on headless devices,
//! `/dev/urandom` could return deterministic output early at boot, before
//! any external entropy had been mixed in. A device whose first-boot
//! initialization script generates its TLS key right then gets a key that is
//! a pure function of firmware state and (at best) the boot-time clock.
//!
//! [`DeviceBootProfile`] captures what a given firmware mixes into the pool
//! before key generation; [`UrandomModel`] is the resulting never-blocking
//! generator.

use crate::clock::SimClock;
use crate::pool::EntropyPool;
use rand::RngCore;

/// What a device's firmware mixes into the entropy pool before the
/// key-generation script runs.
#[derive(Clone, Debug)]
pub struct DeviceBootProfile {
    /// Identifier of the firmware image; constant across every device of a
    /// model. Mixed with zero credited entropy.
    pub firmware_id: String,
    /// Whether boot time (seconds resolution) is mixed in. With the entropy
    /// hole, this is often the *only* distinguishing input — and it is
    /// guessable, hence zero credited bits.
    pub mixes_boot_time: bool,
    /// Whether a per-device unique value (serial number, MAC) is mixed.
    /// Devices that do this never collide with each other even when the
    /// pool is otherwise empty. Credited zero bits (it's public), but it
    /// prevents cross-device key collisions.
    pub mixes_device_serial: bool,
    /// Bits of genuine hardware entropy credited before key generation
    /// (interrupt timings that happened to occur, a hardware RNG, ...).
    /// Zero models the headless entropy hole.
    pub hardware_entropy_bits: u32,
}

impl DeviceBootProfile {
    /// The canonical vulnerable profile: identical firmware state, no
    /// serial, no hardware entropy; only the boot clock distinguishes
    /// devices — and only at one-second resolution.
    pub fn entropy_hole(firmware_id: &str) -> Self {
        DeviceBootProfile {
            firmware_id: firmware_id.to_string(),
            mixes_boot_time: true,
            mixes_device_serial: false,
            hardware_entropy_bits: 0,
        }
    }

    /// A healthy profile: hardware entropy credited and a unique serial.
    pub fn healthy(firmware_id: &str) -> Self {
        DeviceBootProfile {
            firmware_id: firmware_id.to_string(),
            mixes_boot_time: true,
            mixes_device_serial: true,
            hardware_entropy_bits: 256,
        }
    }
}

/// Modeled `/dev/urandom`: never blocks, returns a deterministic function of
/// whatever the boot profile mixed in.
#[derive(Clone, Debug)]
pub struct UrandomModel {
    pool: EntropyPool,
    clock: SimClock,
}

impl UrandomModel {
    /// Simulate a device boot: mix the profile's inputs into an empty pool.
    ///
    /// `device_serial` must be unique per device; it is only mixed when the
    /// profile says the firmware does so. `hardware_entropy_seed` stands in
    /// for genuinely random hardware events and is only mixed when the
    /// profile credits hardware entropy.
    pub fn boot(
        profile: &DeviceBootProfile,
        clock: SimClock,
        device_serial: u64,
        hardware_entropy_seed: u64,
    ) -> Self {
        let mut pool = EntropyPool::empty();
        pool.mix(profile.firmware_id.as_bytes(), 0);
        if profile.mixes_boot_time {
            pool.mix_u64(clock.now(), 0);
        }
        if profile.mixes_device_serial {
            pool.mix_u64(device_serial, 0);
        }
        if profile.hardware_entropy_bits > 0 {
            pool.mix_u64(hardware_entropy_seed, profile.hardware_entropy_bits);
        }
        UrandomModel { pool, clock }
    }

    /// Mix additional bytes (e.g. arriving network packets) into the pool.
    pub fn add_entropy(&mut self, bytes: &[u8], credited_bits: u32) {
        self.pool.mix(bytes, credited_bits);
    }

    /// The getrandom(2) seeding criterion for this pool.
    pub fn is_seeded(&self) -> bool {
        self.pool.is_seeded(128)
    }

    /// Borrow the simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
}

impl RngCore for UrandomModel {
    fn next_u32(&mut self) -> u32 {
        self.pool.extract_u64() as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.pool.extract_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.pool.extract_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Modeled `getrandom(2)`: refuses to produce output until the pool has been
/// credited 128 bits — the July 2014 kernel fix the paper describes (§2.5).
#[derive(Clone, Debug)]
pub struct GetrandomModel {
    inner: UrandomModel,
}

/// Error returned when `getrandom` would block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WouldBlock;

impl std::fmt::Display for WouldBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "getrandom: entropy pool not yet seeded")
    }
}

impl std::error::Error for WouldBlock {}

impl GetrandomModel {
    /// Wrap a booted urandom pool behind the getrandom seeding gate.
    pub fn new(inner: UrandomModel) -> Self {
        GetrandomModel { inner }
    }

    /// Read 8 bytes, or report that the call would block.
    pub fn try_next_u64(&mut self) -> Result<u64, WouldBlock> {
        if !self.inner.is_seeded() {
            return Err(WouldBlock);
        }
        Ok(self.inner.next_u64())
    }

    /// Mix additional entropy (the device accumulating interrupts over time).
    pub fn add_entropy(&mut self, bytes: &[u8], credited_bits: u32) {
        self.inner.add_entropy(bytes, credited_bits);
    }

    /// Whether reads would currently succeed.
    pub fn is_seeded(&self) -> bool {
        self.inner.is_seeded()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boot_pair(profile: &DeviceBootProfile, t: u64) -> (UrandomModel, UrandomModel) {
        (
            UrandomModel::boot(profile, SimClock::at(t), 1111, 0xaaaa),
            UrandomModel::boot(profile, SimClock::at(t), 2222, 0xbbbb),
        )
    }

    #[test]
    fn entropy_hole_same_boot_second_collides() {
        let profile = DeviceBootProfile::entropy_hole("acme-fw-1.0");
        let (mut a, mut b) = boot_pair(&profile, 1_330_000_000);
        // Identical firmware + identical boot second + no serial/HW entropy:
        // the streams are identical. This is the root cause of weak keys.
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn entropy_hole_different_boot_second_diverges() {
        let profile = DeviceBootProfile::entropy_hole("acme-fw-1.0");
        let a = UrandomModel::boot(&profile, SimClock::at(1_330_000_000), 1, 0);
        let b = UrandomModel::boot(&profile, SimClock::at(1_330_000_001), 2, 0);
        let mut a = a;
        let mut b = b;
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn healthy_profile_never_collides() {
        let profile = DeviceBootProfile::healthy("acme-fw-2.0");
        let (mut a, mut b) = boot_pair(&profile, 1_330_000_000);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn serial_mixing_alone_prevents_collision() {
        let profile = DeviceBootProfile {
            firmware_id: "fw".into(),
            mixes_boot_time: false,
            mixes_device_serial: true,
            hardware_entropy_bits: 0,
        };
        let (mut a, mut b) = boot_pair(&profile, 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn urandom_never_blocks_even_unseeded() {
        let profile = DeviceBootProfile::entropy_hole("fw");
        let mut u = UrandomModel::boot(&profile, SimClock::at(0), 0, 0);
        assert!(!u.is_seeded());
        let _ = u.next_u64(); // must not panic: this is the flaw
    }

    #[test]
    fn getrandom_blocks_until_seeded() {
        let profile = DeviceBootProfile::entropy_hole("fw");
        let u = UrandomModel::boot(&profile, SimClock::at(0), 0, 0);
        let mut g = GetrandomModel::new(u);
        assert_eq!(g.try_next_u64(), Err(WouldBlock));
        g.add_entropy(&[1, 2, 3], 64);
        assert_eq!(g.try_next_u64(), Err(WouldBlock));
        g.add_entropy(&[4, 5, 6], 64);
        assert!(g.try_next_u64().is_ok());
    }

    #[test]
    fn getrandom_seeded_devices_do_not_collide() {
        let profile = DeviceBootProfile::entropy_hole("fw");
        let (a, b) = boot_pair(&profile, 7);
        let mut ga = GetrandomModel::new(a);
        let mut gb = GetrandomModel::new(b);
        // The entropy each device gathers while blocked is genuinely random
        // (different interrupt timings) — model as different bytes.
        ga.add_entropy(&0xdead_beefu64.to_le_bytes(), 128);
        gb.add_entropy(&0xcafe_f00du64.to_le_bytes(), 128);
        assert_ne!(ga.try_next_u64().unwrap(), gb.try_next_u64().unwrap());
    }

    #[test]
    fn fill_bytes_partial_chunks() {
        let profile = DeviceBootProfile::entropy_hole("fw");
        let mut u = UrandomModel::boot(&profile, SimClock::at(0), 0, 0);
        let mut buf = [0u8; 13];
        u.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }
}
