//! Simulated wall-clock time.
//!
//! Several of the modeled key-generation stacks mix "the current time" into
//! their entropy inputs; whether the clock ticks *between* the generation of
//! the two RSA primes decides whether keys collide entirely, share one
//! prime, or are unrelated. A simulated clock makes that timing explicit and
//! reproducible.

use std::cell::Cell;
use std::rc::Rc;

/// A shared simulated clock with one-second resolution.
///
/// Cloning yields a handle to the same underlying time, mirroring how every
/// process on a device reads the same RTC.
#[derive(Clone, Debug)]
pub struct SimClock {
    seconds: Rc<Cell<u64>>,
}

impl SimClock {
    /// Create a clock at the given Unix-style timestamp.
    pub fn at(seconds: u64) -> Self {
        SimClock {
            seconds: Rc::new(Cell::new(seconds)),
        }
    }

    /// Current time in seconds.
    pub fn now(&self) -> u64 {
        self.seconds.get()
    }

    /// Advance by `secs` seconds.
    pub fn advance(&self, secs: u64) {
        self.seconds.set(self.seconds.get() + secs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_time() {
        let a = SimClock::at(1_330_000_000);
        let b = a.clone();
        a.advance(5);
        assert_eq!(b.now(), 1_330_000_005);
    }

    #[test]
    fn independent_clocks_do_not_interfere() {
        let a = SimClock::at(100);
        let b = SimClock::at(100);
        a.advance(1);
        assert_eq!(a.now(), 101);
        assert_eq!(b.now(), 100);
    }
}
