//! A modeled kernel entropy pool.
//!
//! The real Linux input pool mixes event timings into a large LFSR-based
//! state and extracts via SHA-1. For the reproduction, what matters is the
//! *information flow*, not cryptographic strength: two pools that have mixed
//! in identical byte sequences must produce identical output streams, and any
//! difference in mixed-in bytes must diverge the streams. A 4x64-bit
//! multiply-xor sponge gives exactly that with cheap, dependency-free code.

/// Modeled entropy pool with explicit, deterministic mixing.
///
/// Mixing and extraction are deterministic functions of the byte history, so
/// the boot-time entropy hole of \[21\] can be reproduced exactly: devices that
/// mix identical firmware state at boot share a pool state until some input
/// distinguishes them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntropyPool {
    state: [u64; 4],
    /// Counter folded into extraction so repeated reads differ even with no
    /// intervening mixing (matches /dev/urandom's "never blocks" contract).
    extract_counter: u64,
    /// Estimated entropy in bits, tracked the way the kernel does: credited
    /// by callers on mix, consumed conceptually on extraction. The urandom
    /// model ignores it; the getrandom model blocks on it.
    entropy_estimate_bits: u32,
}

impl EntropyPool {
    /// An all-zero pool: the state of a freshly booted device before any
    /// mixing. Two such pools are identical by construction.
    pub fn empty() -> Self {
        EntropyPool {
            state: [0; 4],
            extract_counter: 0,
            entropy_estimate_bits: 0,
        }
    }

    /// Mix bytes into the pool, crediting `credited_bits` of entropy.
    ///
    /// Deterministic inputs (firmware version strings, MAC-derived but
    /// vendor-constant values) are mixed with `credited_bits = 0`.
    pub fn mix(&mut self, bytes: &[u8], credited_bits: u32) {
        for (i, chunk) in bytes.chunks(8).enumerate() {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            let w = u64::from_le_bytes(word);
            let lane = i % 4;
            self.state[lane] = splitmix(self.state[lane] ^ w);
            // Cross-lane diffusion.
            let next = (lane + 1) % 4;
            self.state[next] ^= self.state[lane].rotate_left(23);
        }
        self.entropy_estimate_bits = self.entropy_estimate_bits.saturating_add(credited_bits);
    }

    /// Mix a single u64 (convenience for timestamps and counters).
    pub fn mix_u64(&mut self, value: u64, credited_bits: u32) {
        self.mix(&value.to_le_bytes(), credited_bits);
    }

    /// Extract 8 bytes. Never blocks; output is a deterministic function of
    /// everything mixed so far plus the extraction counter.
    pub fn extract_u64(&mut self) -> u64 {
        self.extract_counter = self.extract_counter.wrapping_add(1);
        let mut acc = splitmix(self.extract_counter ^ 0x6a09_e667_f3bc_c908);
        for (i, &s) in self.state.iter().enumerate() {
            acc = splitmix(acc ^ s.rotate_left(17 * i as u32 + 1));
        }
        // Feed back so consecutive extractions see different state, like the
        // kernel's backtrack-protection feedback.
        let [s0, ..] = &mut self.state;
        *s0 = splitmix(*s0 ^ acc);
        acc
    }

    /// Current entropy estimate in bits.
    pub fn entropy_estimate_bits(&self) -> u32 {
        self.entropy_estimate_bits
    }

    /// Whether the pool has been credited at least `threshold` bits —
    /// the getrandom(2) seeding criterion.
    pub fn is_seeded(&self, threshold: u32) -> bool {
        self.entropy_estimate_bits >= threshold
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit permutation.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_histories_identical_streams() {
        let mut a = EntropyPool::empty();
        let mut b = EntropyPool::empty();
        a.mix(b"firmware-v1.2", 0);
        b.mix(b"firmware-v1.2", 0);
        for _ in 0..100 {
            assert_eq!(a.extract_u64(), b.extract_u64());
        }
    }

    #[test]
    fn single_byte_difference_diverges() {
        let mut a = EntropyPool::empty();
        let mut b = EntropyPool::empty();
        a.mix(b"firmware-v1.2", 0);
        b.mix(b"firmware-v1.3", 0);
        let av: Vec<u64> = (0..8).map(|_| a.extract_u64()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.extract_u64()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn late_mixing_diverges_streams_midway() {
        // The mechanism behind shared-first-prime keys: identical until a
        // timestamp is mixed in between the two prime generations.
        let mut a = EntropyPool::empty();
        let mut b = EntropyPool::empty();
        a.mix(b"boot", 0);
        b.mix(b"boot", 0);
        assert_eq!(a.extract_u64(), b.extract_u64()); // "first prime" draws agree
        a.mix_u64(1_330_000_000, 0); // time ticks on device a only
        b.mix_u64(1_330_000_001, 0);
        assert_ne!(a.extract_u64(), b.extract_u64()); // "second prime" draws diverge
    }

    #[test]
    fn repeated_extraction_does_not_repeat() {
        let mut p = EntropyPool::empty();
        p.mix(b"x", 0);
        let outs: Vec<u64> = (0..64).map(|_| p.extract_u64()).collect();
        let mut dedup = outs.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), outs.len(), "extraction stream repeated");
    }

    #[test]
    fn entropy_accounting() {
        let mut p = EntropyPool::empty();
        assert!(!p.is_seeded(128));
        p.mix(b"device-id", 0);
        assert!(!p.is_seeded(128), "uncredited mixing must not seed");
        p.mix_u64(0xdead_beef, 64);
        p.mix_u64(0xcafe_f00d, 64);
        assert!(p.is_seeded(128));
        assert_eq!(p.entropy_estimate_bits(), 128);
    }

    #[test]
    fn extraction_order_sensitivity() {
        // Mixing after extraction differs from mixing before.
        let mut a = EntropyPool::empty();
        let mut b = EntropyPool::empty();
        a.mix(b"s", 0);
        let _ = a.extract_u64();
        a.mix(b"t", 0);
        b.mix(b"s", 0);
        b.mix(b"t", 0);
        let _ = b.extract_u64();
        assert_ne!(a.extract_u64(), b.extract_u64());
    }
}
