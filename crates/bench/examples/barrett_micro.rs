//! Ad-hoc microbenchmark: Barrett reduction vs `div_rem` at the operand
//! shapes the remainder descent actually sees, plus Newton reciprocal
//! build cost. Run with
//! `cargo run --release -p wk-bench --example barrett_micro`.

use std::time::Instant;
use wk_bigint::{Natural, Reciprocal};

fn pseudo(len: usize, seed: u64) -> Natural {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let limbs: Vec<u64> = (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        })
        .collect();
    Natural::from_limbs(limbs)
}

fn main() {
    // (x limbs, n limbs): top-descent and shard-descent shapes.
    let shapes = [
        (16usize, 8usize),
        (32, 16),
        (64, 32),
        (128, 64),
        (256, 128),
        (512, 256),
        (1008, 504),
        (2016, 1008),
        (2512, 992),
        (2512, 2016),
    ];
    println!(
        "{:>6} {:>6} | {:>12} {:>12} {:>8} | {:>12} {:>10}",
        "x", "n", "div_ns", "barrett_ns", "speedup", "recip_ns", "recip/div"
    );
    for &(xl, nl) in &shapes {
        let x = pseudo(xl, xl as u64);
        let n = pseudo(nl, nl as u64 + 7);
        let iters = (200_000 / (xl + 1)).max(3);

        let t = Instant::now();
        let mut sink = Natural::zero();
        for _ in 0..iters {
            sink = &x % &n;
        }
        let div_ns = t.elapsed().as_nanos() / iters as u128;

        let recip_iters = iters.clamp(3, 50);
        let t = Instant::now();
        let mut r = Reciprocal::with_capacity(&n, xl).unwrap();
        for _ in 1..recip_iters {
            r = Reciprocal::with_capacity(&n, xl).unwrap();
        }
        let recip_ns = t.elapsed().as_nanos() / recip_iters as u128;

        let t = Instant::now();
        let mut bsink = Natural::zero();
        for _ in 0..iters {
            bsink = x.barrett_rem(&n, &r).unwrap();
        }
        let bar_ns = t.elapsed().as_nanos() / iters as u128;
        assert_eq!(sink, bsink);

        println!(
            "{:>6} {:>6} | {:>12} {:>12} {:>8.2} | {:>12} {:>10.2}",
            xl,
            nl,
            div_ns,
            bar_ns,
            div_ns as f64 / bar_ns as f64,
            recip_ns,
            recip_ns as f64 / div_ns as f64
        );
    }
}
