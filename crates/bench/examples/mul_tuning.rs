//! Threshold-tuning probe for the multiplication dispatcher
//! (DESIGN.md §9): times each algorithm *at the top level* (recursion
//! below still dispatches through the tuned thresholds, which is the
//! question the dispatcher actually answers) on balanced operands at a
//! ladder of corpus-realistic sizes, and prints the per-size winner.
//!
//! Run with `cargo run --release -p wk-bench --example mul_tuning`.
//! Single-threaded by construction: the container's one CPU makes
//! multi-threaded timing attribution meaningless.

use std::time::{Duration, Instant};
use wk_bigint::{mul_ntt, Natural, KARATSUBA_THRESHOLD, NTT_THRESHOLD, TOOM3_THRESHOLD};

/// Deterministic limb filler (splitmix64): tuning must not depend on RNG
/// state or the run's wall clock.
fn random_natural(limbs: usize, seed: u64) -> Natural {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut v = Vec::with_capacity(limbs);
    for _ in 0..limbs {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        v.push(z ^ (z >> 31));
    }
    // Keep the top limb nonzero so the operand really has `limbs` limbs.
    if let Some(top) = v.last_mut() {
        *top |= 1 << 63;
    }
    Natural::from_limbs(v)
}

/// Best-of-`reps` timing of `f`, with enough inner iterations at small
/// sizes to rise above timer noise.
fn time_best<F: Fn() -> Natural>(f: F, reps: usize, iters: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        best = best.min(start.elapsed() / iters as u32);
    }
    best
}

fn main() {
    println!(
        "current thresholds: karatsuba {KARATSUBA_THRESHOLD}, toom3 {TOOM3_THRESHOLD}, ntt {NTT_THRESHOLD}"
    );
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}  winner",
        "limbs", "schoolbook", "karatsuba", "toom3", "ntt"
    );
    let sizes = [
        8usize, 16, 24, 32, 40, 48, 64, 96, 128, 144, 160, 192, 256, 384, 512, 768, 1024, 1536,
        2048, 3072, 4096, 6144, 8192, 12288, 16384,
    ];
    for &n in &sizes {
        let a = random_natural(n, 0xA11CE ^ n as u64);
        let b = random_natural(n, 0xB0B ^ (n as u64) << 8);
        let iters = (2048 / n).max(1);
        // Schoolbook is quadratic; probing it far past its useful range
        // just burns minutes.
        let school = (n <= 192).then(|| time_best(|| a.mul_schoolbook(&b), 3, iters));
        let kara = time_best(|| a.mul_karatsuba(&b), 3, iters);
        let toom = (n >= 16).then(|| time_best(|| a.mul_toom3(&b), 3, iters));
        let ntt = (n >= 128).then(|| time_best(|| mul_ntt(&a, &b), 3, iters));

        let mut results: Vec<(&str, Duration)> = vec![("karatsuba", kara)];
        if let Some(t) = school {
            results.push(("schoolbook", t));
        }
        if let Some(t) = toom {
            results.push(("toom3", t));
        }
        if let Some(t) = ntt {
            results.push(("ntt", t));
        }
        let winner = results
            .iter()
            .min_by_key(|(_, t)| *t)
            .map(|(name, _)| *name)
            .unwrap_or("-");
        let cell = |t: Option<Duration>| match t {
            Some(t) => format!("{:>10.1}us", t.as_secs_f64() * 1e6),
            None => format!("{:>12}", "-"),
        };
        println!(
            "{n:>6} {} {} {} {}  {winner}",
            cell(school),
            cell(Some(kara)),
            cell(toom),
            cell(ntt)
        );
    }
}
