//! Ad-hoc phase breakdown for the sharded full rebuild at the bench's
//! 600-moduli shape. Not part of the committed bench suite output; run with
//! `cargo run --release -p wk-bench --example phase_profile`.

use std::time::Instant;
use wk_batchgcd::{ProductTree, WorkerPool};
use wk_bench::key_population;
use wk_bigint::Natural;

fn main() {
    let n = 630usize;
    let bits = 256u64;
    let capacity = 64usize;
    let moduli = key_population(n, bits, 0.04, 1601);
    // One worker: per-phase attribution on a single-CPU container is only
    // meaningful without thread-preemption overlap inflating task spans.
    let pool = WorkerPool::new(1);

    // Phase 1: shard trees (roots only kept), built on the claiming worker.
    let t = Instant::now();
    let chunks: Vec<&[Natural]> = moduli.chunks(capacity).collect();
    let shard_products: Vec<Natural> = pool
        .exec()
        .map(chunks, |chunk| {
            ProductTree::build_local(chunk).unwrap().root().clone()
        })
        .into_iter()
        .collect();
    println!("phase1 shard products: {:?}", t.elapsed());

    // Phase 2: top tree + reciprocal caches.
    let t = Instant::now();
    let mut top = ProductTree::build(&shard_products, pool.exec()).unwrap();
    println!("phase2 top tree: {:?}", t.elapsed());
    let t = Instant::now();
    let recip_build = top.attach_cofactor_recips(pool.exec());
    println!(
        "phase2b attach_cofactor_recips: {:?} (reported {recip_build:?}, cache {} KiB)",
        t.elapsed(),
        top.cache_bytes() / 1024
    );

    // Phase 3a: top cofactor descent.
    let t = Instant::now();
    let (shard_residues, barrett) = top.remainder_tree_cofactor_timed(&Natural::one(), pool.exec());
    println!(
        "phase3a top descent: {:?} (barrett busy {barrett:?})",
        t.elapsed()
    );

    // Phase 3b: leaf phase, one task per shard, all-local inside.
    let t = Instant::now();
    let leaf_tasks: Vec<_> = moduli
        .chunks(capacity)
        .zip(shard_residues)
        .map(|(chunk, residue)| {
            move || {
                let t0 = Instant::now();
                let tree = ProductTree::build_local(chunk).unwrap();
                let t1 = Instant::now();
                let rems = tree.remainder_tree_cofactor_local(&residue);
                let t2 = Instant::now();
                for (m, zn) in chunk.iter().zip(rems) {
                    let _ = m.gcd(&zn);
                }
                (t1 - t0, t2 - t1, t2.elapsed())
            }
        })
        .collect();
    let parts = pool.exec().run_tasks(leaf_tasks);
    let (mut build, mut desc, mut gcd) = (
        std::time::Duration::ZERO,
        std::time::Duration::ZERO,
        std::time::Duration::ZERO,
    );
    for (b, d, g) in parts {
        build += b;
        desc += d;
        gcd += g;
    }
    println!(
        "phase3b leaf phase (rebuild+descend+gcd): {:?} [build {build:?} descend {desc:?} gcd {gcd:?}]",
        t.elapsed()
    );
}
