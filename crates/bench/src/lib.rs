//! Shared workload builders for the benchmark harness and the `repro`
//! binary. Every bench in `benches/` regenerates one table or figure of the
//! paper; see DESIGN.md §4 for the experiment index.

#![forbid(unsafe_code)]

use std::sync::OnceLock;
use weakkeys::{run_pipeline, BatchMode, StudyConfig, StudyResults};
use wk_bigint::Natural;
use wk_keygen::{KeygenBehavior, ModelKeygen, PrimeShaping};

/// Study configuration used by the table/figure benches: large enough for
/// clean shapes, small enough that the simulation phase stays in seconds.
pub fn bench_study_config() -> StudyConfig {
    let mut cfg = StudyConfig::default_scale();
    cfg.scale = 0.3;
    cfg.background_hosts = 500;
    cfg.ssh_hosts = 300;
    cfg.mail_hosts = 120;
    cfg
}

/// One shared pipeline run for all table/figure benches (the benches time
/// the *analysis* that regenerates each artifact, not the simulation).
pub fn shared_results() -> &'static StudyResults {
    static RESULTS: OnceLock<StudyResults> = OnceLock::new();
    RESULTS.get_or_init(|| {
        run_pipeline(&bench_study_config(), BatchMode::Classic { threads: 1 })
            .expect("bench pipeline run")
    })
}

/// A key population for the batch-GCD benches: `count` moduli of
/// `bits` bits with `weak_fraction` drawn over a shared pool.
pub fn key_population(count: usize, bits: u64, weak_fraction: f64, seed: u64) -> Vec<Natural> {
    let weak = ((count as f64 * weak_fraction) as usize).max(2).min(count);
    let mut flawed = ModelKeygen::new(
        KeygenBehavior::SharedPrimePool {
            shaping: PrimeShaping::OpensslStyle,
            pool_size: (weak / 4).max(2),
        },
        bits,
        seed,
    );
    let mut healthy = ModelKeygen::new(
        KeygenBehavior::Healthy {
            shaping: PrimeShaping::OpensslStyle,
        },
        bits,
        seed + 1,
    );
    let mut moduli: Vec<Natural> = (0..weak).map(|_| flawed.generate().public.n).collect();
    moduli.extend((0..count - weak).map(|_| healthy.generate().public.n));
    moduli
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_population_shapes() {
        let pop = key_population(50, 128, 0.1, 3);
        assert_eq!(pop.len(), 50);
        let result = wk_batchgcd::batch_gcd(&pop, 1);
        let v = result.vulnerable_count();
        assert!((2..=10).contains(&v), "vulnerable: {v}");
    }

    #[test]
    fn bench_config_is_moderate() {
        let cfg = bench_study_config();
        assert!(cfg.scale < 1.0);
        assert!(cfg.background_hosts <= 1000);
    }
}
