//! Shared workload builders for the benchmark harness and the `repro`
//! binary. Every bench in `benches/` regenerates one table or figure of the
//! paper; see DESIGN.md §4 for the experiment index.

#![forbid(unsafe_code)]

use std::sync::OnceLock;
use weakkeys::{run_pipeline, BatchMode, StudyConfig, StudyResults};
use wk_bigint::Natural;
use wk_keygen::{KeygenBehavior, ModelKeygen, PrimeShaping};

/// Study configuration used by the table/figure benches: large enough for
/// clean shapes, small enough that the simulation phase stays in seconds.
pub fn bench_study_config() -> StudyConfig {
    let mut cfg = StudyConfig::default_scale();
    cfg.scale = 0.3;
    cfg.background_hosts = 500;
    cfg.ssh_hosts = 300;
    cfg.mail_hosts = 120;
    cfg
}

/// One shared pipeline run for all table/figure benches (the benches time
/// the *analysis* that regenerates each artifact, not the simulation).
pub fn shared_results() -> &'static StudyResults {
    static RESULTS: OnceLock<StudyResults> = OnceLock::new();
    RESULTS.get_or_init(|| {
        run_pipeline(&bench_study_config(), BatchMode::Classic { threads: 1 })
            .expect("bench pipeline run")
    })
}

/// A key population for the batch-GCD benches: `count` moduli of
/// `bits` bits with `weak_fraction` drawn over a shared pool.
pub fn key_population(count: usize, bits: u64, weak_fraction: f64, seed: u64) -> Vec<Natural> {
    let weak = ((count as f64 * weak_fraction) as usize).max(2).min(count);
    let mut flawed = ModelKeygen::new(
        KeygenBehavior::SharedPrimePool {
            shaping: PrimeShaping::OpensslStyle,
            pool_size: (weak / 4).max(2),
        },
        bits,
        seed,
    );
    let mut healthy = ModelKeygen::new(
        KeygenBehavior::Healthy {
            shaping: PrimeShaping::OpensslStyle,
        },
        bits,
        seed + 1,
    );
    let mut moduli: Vec<Natural> = (0..weak).map(|_| flawed.generate().public.n).collect();
    moduli.extend((0..count - weak).map(|_| healthy.generate().public.n));
    moduli
}

/// Today's UTC date as `YYYY-MM-DD`, computed from the epoch second count
/// with Hinnant's `civil_from_days` algorithm — the bench history needs a
/// date stamp and the workspace deliberately has no calendar dependency.
pub fn utc_date_string() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Append one JSONL `entry` to the bench history at `path`, keeping only
/// the newest `cap` lines so the committed file stays reviewable. The
/// rewrite goes through a sibling temp file and rename, so a crash cannot
/// truncate history already recorded.
pub fn append_history_line(path: &std::path::Path, entry: &str, cap: usize) -> std::io::Result<()> {
    let existing = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(e),
    };
    let mut lines: Vec<&str> = existing.lines().filter(|l| !l.trim().is_empty()).collect();
    let entry = entry.trim();
    lines.push(entry);
    let start = lines.len().saturating_sub(cap);
    let mut out = lines[start..].join("\n");
    out.push('\n');
    let tmp = path.with_extension("jsonl.tmp");
    std::fs::write(&tmp, out)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_population_shapes() {
        let pop = key_population(50, 128, 0.1, 3);
        assert_eq!(pop.len(), 50);
        let result = wk_batchgcd::batch_gcd(&pop, 1);
        let v = result.vulnerable_count();
        assert!((2..=10).contains(&v), "vulnerable: {v}");
    }

    #[test]
    fn bench_config_is_moderate() {
        let cfg = bench_study_config();
        assert!(cfg.scale < 1.0);
        assert!(cfg.background_hosts <= 1000);
    }

    #[test]
    fn utc_date_is_well_formed() {
        let d = utc_date_string();
        let bytes = d.as_bytes();
        assert_eq!(bytes.len(), 10, "{d}");
        assert_eq!(bytes[4], b'-');
        assert_eq!(bytes[7], b'-');
        let year: u32 = d[..4].parse().unwrap();
        let month: u32 = d[5..7].parse().unwrap();
        let day: u32 = d[8..10].parse().unwrap();
        assert!((2020..2200).contains(&year), "{d}");
        assert!((1..=12).contains(&month), "{d}");
        assert!((1..=31).contains(&day), "{d}");
    }

    #[test]
    fn history_append_caps_at_newest() {
        let dir = wk_batchgcd::scratch_dir("bench-history-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("history.jsonl");
        for i in 0..7 {
            append_history_line(&path, &format!(r#"{{"run":{i}}}"#), 5).unwrap();
        }
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 5);
        assert_eq!(lines.first(), Some(&r#"{"run":2}"#));
        assert_eq!(lines.last(), Some(&r#"{"run":6}"#));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
