//! `wk-bench-gate` — CI perf gate over `BENCH_batchgcd.json`.
//!
//! Compares a freshly generated `ablation_incremental` result against the
//! committed baseline and fails (exit 1) when `remainder_tree_ns` or
//! `wall_ns` of any matched full-rebuild case regresses by more than the
//! allowed percentage (default 25%). Smoke-mode files are rejected: their
//! workloads are too small to carry timing meaning.
//!
//! ```text
//! wk-bench-gate <baseline.json> <current.json> [--max-regression-pct N]
//! ```
//!
//! The JSON is parsed by a purpose-built minimal reader (the workspace
//! vendors no serde); it understands exactly the value grammar the bench
//! emits.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Minimal JSON value tree — just enough for the bench's output grammar.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    fn num(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", c as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{lit}'")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.error("malformed number"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    // The bench never emits escapes; pass them through
                    // verbatim rather than decoding.
                    out.push('\\');
                    self.pos += 1;
                    if let Some(&c) = self.bytes.get(self.pos) {
                        out.push(c as char);
                        self.pos += 1;
                    }
                }
                Some(&c) => {
                    out.push(c as char);
                    self.pos += 1;
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            let key = self.parse_string()?;
            self.eat(b':')?;
            map.insert(key, self.parse_value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.parse_value()?;
    if p.peek().is_some() {
        return Err(p.error("trailing content"));
    }
    Ok(v)
}

/// The gated metrics of one full-rebuild case, keyed by (N, M).
struct Case {
    old_count: u64,
    delta_count: u64,
    remainder_tree_ns: f64,
    wall_ns: f64,
    /// Reciprocal-cache build time. Optional: baselines written before the
    /// arena/descent rework do not carry it.
    recip_build_ns: Option<f64>,
    /// Heap allocations observed by the limb arena (misses + frees).
    alloc_events: Option<f64>,
    /// Fraction of limb-buffer requests served from the thread arena.
    arena_hit_ratio: Option<f64>,
}

/// Timing metrics below these floors are noise on a contended CI box, not
/// signal: both sides under the floor passes without a ratio check.
const RECIP_NOISE_FLOOR_NS: f64 = 5.0e6;
/// Allocation counts are work-derived rather than timing-derived, but tiny
/// absolute counts still swing hard in percentage terms.
const ALLOC_EVENTS_FLOOR: f64 = 1000.0;
/// Largest tolerated absolute drop in the arena hit ratio.
const HIT_RATIO_MAX_DROP: f64 = 0.10;

fn load_cases(path: &str) -> Result<Vec<Case>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let root = parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    if root.get("smoke") != Some(&Json::Bool(false)) {
        return Err(format!(
            "{path}: smoke-mode (or malformed) bench output carries no timing meaning; \
             regenerate with `cargo bench -p wk-bench --bench incremental_benches`"
        ));
    }
    let cases = match root.get("cases") {
        Some(Json::Arr(cases)) if !cases.is_empty() => cases,
        _ => return Err(format!("{path}: no cases array")),
    };
    cases
        .iter()
        .map(|c| {
            let full = c
                .get("full_rebuild")
                .ok_or_else(|| format!("{path}: case without full_rebuild"))?;
            Ok(Case {
                old_count: c.num("old_count").unwrap_or(0.0) as u64,
                delta_count: c.num("delta_count").unwrap_or(0.0) as u64,
                remainder_tree_ns: full
                    .num("remainder_tree_ns")
                    .ok_or_else(|| format!("{path}: case without remainder_tree_ns"))?,
                wall_ns: full
                    .num("wall_ns")
                    .ok_or_else(|| format!("{path}: case without wall_ns"))?,
                recip_build_ns: full.num("recip_build_ns"),
                alloc_events: full.num("alloc_events"),
                arena_hit_ratio: full.num("arena_hit_ratio"),
            })
        })
        .collect()
}

fn run(baseline_path: &str, current_path: &str, max_regression_pct: f64) -> Result<(), String> {
    let baseline = load_cases(baseline_path)?;
    let current = load_cases(current_path)?;
    let allowed = 1.0 + max_regression_pct / 100.0;

    let mut failures = Vec::new();
    let mut compared = 0usize;
    for base in &baseline {
        let Some(cur) = current
            .iter()
            .find(|c| c.old_count == base.old_count && c.delta_count == base.delta_count)
        else {
            failures.push(format!(
                "case N={} M={} present in baseline but missing from {current_path}",
                base.old_count, base.delta_count
            ));
            continue;
        };
        compared += 1;
        for (metric, base_v, cur_v) in [
            (
                "remainder_tree_ns",
                base.remainder_tree_ns,
                cur.remainder_tree_ns,
            ),
            ("wall_ns", base.wall_ns, cur.wall_ns),
        ] {
            let ratio = cur_v / base_v.max(1.0);
            let verdict = if ratio > allowed { "REGRESSION" } else { "ok" };
            println!(
                "N={} M={} {metric}: baseline {:.3}ms -> current {:.3}ms ({:+.1}%) {verdict}",
                base.old_count,
                base.delta_count,
                base_v / 1e6,
                cur_v / 1e6,
                (ratio - 1.0) * 100.0,
            );
            if ratio > allowed {
                failures.push(format!(
                    "N={} M={} {metric} regressed {:.1}% (> {max_regression_pct}% allowed)",
                    base.old_count,
                    base.delta_count,
                    (ratio - 1.0) * 100.0
                ));
            }
        }
        // Floored ratio metrics: gated only when both files carry them
        // (pre-rework baselines do not) and either side clears the noise
        // floor.
        for (metric, base_v, cur_v, floor, unit) in [
            (
                "recip_build_ns",
                base.recip_build_ns,
                cur.recip_build_ns,
                RECIP_NOISE_FLOOR_NS,
                1e6,
            ),
            (
                "alloc_events",
                base.alloc_events,
                cur.alloc_events,
                ALLOC_EVENTS_FLOOR,
                1.0,
            ),
        ] {
            let (Some(base_v), Some(cur_v)) = (base_v, cur_v) else {
                continue;
            };
            if base_v < floor && cur_v < floor {
                println!(
                    "N={} M={} {metric}: baseline {:.3} -> current {:.3} ok (below noise floor)",
                    base.old_count,
                    base.delta_count,
                    base_v / unit,
                    cur_v / unit,
                );
                continue;
            }
            let ratio = cur_v / base_v.max(1.0);
            let verdict = if ratio > allowed { "REGRESSION" } else { "ok" };
            println!(
                "N={} M={} {metric}: baseline {:.3} -> current {:.3} ({:+.1}%) {verdict}",
                base.old_count,
                base.delta_count,
                base_v / unit,
                cur_v / unit,
                (ratio - 1.0) * 100.0,
            );
            if ratio > allowed {
                failures.push(format!(
                    "N={} M={} {metric} regressed {:.1}% (> {max_regression_pct}% allowed)",
                    base.old_count,
                    base.delta_count,
                    (ratio - 1.0) * 100.0
                ));
            }
        }
        // Arena hit ratio is a quality floor, not a timing: an absolute
        // drop means buffers stopped round-tripping through the arena.
        if let (Some(base_v), Some(cur_v)) = (base.arena_hit_ratio, cur.arena_hit_ratio) {
            let drop = base_v - cur_v;
            let verdict = if drop > HIT_RATIO_MAX_DROP {
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "N={} M={} arena_hit_ratio: baseline {base_v:.3} -> current {cur_v:.3} {verdict}",
                base.old_count, base.delta_count,
            );
            if drop > HIT_RATIO_MAX_DROP {
                failures.push(format!(
                    "N={} M={} arena_hit_ratio dropped {drop:.3} (> {HIT_RATIO_MAX_DROP} allowed)",
                    base.old_count, base.delta_count,
                ));
            }
        }
    }
    if compared == 0 {
        failures.push("no cases matched between baseline and current".to_string());
    }
    if failures.is_empty() {
        println!("bench gate passed: {compared} cases within {max_regression_pct}%");
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut max_regression_pct = 25.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--max-regression-pct" {
            match it.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => max_regression_pct = v,
                _ => {
                    eprintln!("--max-regression-pct needs a non-negative number");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline, current] = paths.as_slice() else {
        eprintln!("usage: wk-bench-gate <baseline.json> <current.json> [--max-regression-pct N]");
        return ExitCode::FAILURE;
    };
    match run(baseline, current, max_regression_pct) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench gate FAILED:\n{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(smoke: bool, remainder: f64, wall: f64) -> String {
        sample_full(smoke, remainder, wall, 1.0e6, 500.0, 0.95)
    }

    fn sample_full(
        smoke: bool,
        remainder: f64,
        wall: f64,
        recip: f64,
        allocs: f64,
        hit_ratio: f64,
    ) -> String {
        format!(
            r#"{{"bench":"ablation_incremental","smoke":{smoke},"cases":[
                {{"old_count":600,"delta_count":30,
                  "full_rebuild":{{"wall_ns":{wall},"remainder_tree_ns":{remainder},
                    "recip_build_ns":{recip},"alloc_events":{allocs},
                    "arena_hit_ratio":{hit_ratio}}},
                  "incremental":{{"wall_ns":1.0}}}}]}}"#
        )
    }

    fn write_temp(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!("wk-bench-gate-test-{name}.json"));
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn parses_the_bench_shape() {
        let v = parse_json(&sample(false, 2.0e7, 5.0e7)).unwrap();
        assert_eq!(v.get("smoke"), Some(&Json::Bool(false)));
        let Some(Json::Arr(cases)) = v.get("cases") else {
            panic!("cases array")
        };
        assert_eq!(
            cases[0].get("full_rebuild").unwrap().num("wall_ns"),
            Some(5.0e7)
        );
    }

    #[test]
    fn within_threshold_passes() {
        let base = write_temp("base-ok", &sample(false, 2.0e7, 5.0e7));
        let cur = write_temp("cur-ok", &sample(false, 2.4e7, 5.5e7));
        assert!(run(&base, &cur, 25.0).is_ok());
    }

    #[test]
    fn regression_fails_and_names_the_metric() {
        let base = write_temp("base-reg", &sample(false, 2.0e7, 5.0e7));
        let cur = write_temp("cur-reg", &sample(false, 2.6e7, 5.0e7));
        let err = run(&base, &cur, 25.0).unwrap_err();
        assert!(err.contains("remainder_tree_ns"), "{err}");
        assert!(err.contains("30.0%"), "{err}");
    }

    #[test]
    fn recip_regression_above_floor_fails() {
        let base = write_temp(
            "base-recip",
            &sample_full(false, 2.0e7, 5.0e7, 8.0e6, 500.0, 0.95),
        );
        let cur = write_temp(
            "cur-recip",
            &sample_full(false, 2.0e7, 5.0e7, 1.6e7, 500.0, 0.95),
        );
        let err = run(&base, &cur, 25.0).unwrap_err();
        assert!(err.contains("recip_build_ns"), "{err}");
    }

    #[test]
    fn recip_noise_floor_passes_tiny_values() {
        // 1ms -> 3ms is a 200% swing but both sides are under the 5ms
        // floor, where single-CPU scheduling jitter dominates.
        let base = write_temp(
            "base-recip-floor",
            &sample_full(false, 2.0e7, 5.0e7, 1.0e6, 500.0, 0.95),
        );
        let cur = write_temp(
            "cur-recip-floor",
            &sample_full(false, 2.0e7, 5.0e7, 3.0e6, 500.0, 0.95),
        );
        assert!(run(&base, &cur, 25.0).is_ok());
    }

    #[test]
    fn alloc_event_blowup_fails() {
        let base = write_temp(
            "base-alloc",
            &sample_full(false, 2.0e7, 5.0e7, 1.0e6, 2000.0, 0.95),
        );
        let cur = write_temp(
            "cur-alloc",
            &sample_full(false, 2.0e7, 5.0e7, 1.0e6, 9000.0, 0.95),
        );
        let err = run(&base, &cur, 25.0).unwrap_err();
        assert!(err.contains("alloc_events"), "{err}");
    }

    #[test]
    fn hit_ratio_drop_fails() {
        let base = write_temp(
            "base-hit",
            &sample_full(false, 2.0e7, 5.0e7, 1.0e6, 500.0, 0.95),
        );
        let cur = write_temp(
            "cur-hit",
            &sample_full(false, 2.0e7, 5.0e7, 1.0e6, 500.0, 0.70),
        );
        let err = run(&base, &cur, 25.0).unwrap_err();
        assert!(err.contains("arena_hit_ratio"), "{err}");
    }

    #[test]
    fn missing_new_metrics_in_baseline_is_tolerated() {
        // A baseline written before the metrics existed gates only on the
        // classic pair.
        let base = write_temp("base-legacy", &sample_legacy(2.0e7, 5.0e7));
        let cur = write_temp(
            "cur-modern",
            &sample_full(false, 2.0e7, 5.0e7, 1.0e6, 500.0, 0.95),
        );
        assert!(run(&base, &cur, 25.0).is_ok());
    }

    fn sample_legacy(remainder: f64, wall: f64) -> String {
        format!(
            r#"{{"bench":"ablation_incremental","smoke":false,"cases":[
                {{"old_count":600,"delta_count":30,
                  "full_rebuild":{{"wall_ns":{wall},"remainder_tree_ns":{remainder}}},
                  "incremental":{{"wall_ns":1.0}}}}]}}"#
        )
    }

    #[test]
    fn smoke_files_are_rejected() {
        let base = write_temp("base-smoke", &sample(true, 2.0e7, 5.0e7));
        let cur = write_temp("cur-smoke", &sample(false, 2.0e7, 5.0e7));
        let err = run(&base, &cur, 25.0).unwrap_err();
        assert!(err.contains("smoke"), "{err}");
    }
}
