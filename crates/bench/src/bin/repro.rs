//! `repro` — regenerate every table and figure of the paper from one
//! simulated study, printing paper-reported values next to measured ones.
//!
//! ```sh
//! cargo run --release -p wk-bench --bin repro            # everything
//! cargo run --release -p wk-bench --bin repro -- --table 1
//! cargo run --release -p wk-bench --bin repro -- --figure 3
//! cargo run --release -p wk-bench --bin repro -- --scale 0.5 --all
//! ```

use weakkeys::{render_table2, run_pipeline, BatchMode, StudyConfig, StudyResults};
use wk_analysis::report::{
    render_series, render_sparkline, render_table1, render_table3, render_table4, render_table5,
    render_transitions,
};
use wk_analysis::{
    aggregate_series, dataset_totals, eol_impact, first_last_scan_summary, heartbleed_impact,
    model_series, openssl_table, passive_exposure, protocol_table, rekey_vs_churn, vendor_series,
    vendor_transitions,
};
use wk_batchgcd::{batch_gcd, distributed_batch_gcd, ClusterConfig};
use wk_scan::{registry, VendorId};

struct Args {
    tables: Vec<u32>,
    figures: Vec<u32>,
    scale: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        tables: vec![],
        figures: vec![],
        scale: 0.4,
    };
    let mut all = true;
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--table" => {
                let n = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(usage);
                args.tables.push(n);
                all = false;
            }
            "--figure" => {
                let n = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(usage);
                args.figures.push(n);
                all = false;
            }
            "--scale" => {
                args.scale = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(usage);
            }
            "--all" => all = true,
            _ => usage(),
        }
    }
    if all {
        args.tables = (1..=5).collect();
        args.figures = (1..=10).collect();
    }
    args
}

fn usage<T>() -> T {
    eprintln!("usage: repro [--all] [--table N]* [--figure N]* [--scale S]");
    std::process::exit(2);
}

fn main() {
    let args = parse_args();
    let mut cfg = StudyConfig::default_scale();
    cfg.scale = args.scale;
    cfg.background_hosts = (cfg.background_hosts as f64 * args.scale) as usize;
    eprintln!(
        "simulating 2010-07..2016-04 at scale {} (seed {})...",
        cfg.scale, cfg.seed
    );
    let results =
        run_pipeline(&cfg, BatchMode::Classic { threads: 1 }).expect("repro pipeline run");
    eprintln!(
        "{} distinct moduli, {} factored, {} bit-error hits set aside, {} MITM suspects",
        results.dataset.moduli.len(),
        results.vulnerable.len(),
        results.bit_error_hits.len(),
        results.mitm_suspects.len()
    );
    if let Some(stats) = &results.batch_stats {
        eprintln!(
            "batch-GCD executor: product tree {}, remainder tree {}, gcd {}",
            fmt_exec(&stats.product_tree_exec),
            fmt_exec(&stats.remainder_tree_exec),
            fmt_exec(&stats.gcd_exec)
        );
    }
    let exposure = passive_exposure(&results.dataset, &results.vulnerable, None);
    eprintln!(
        "passive decryption exposure (paper: 74% of vulnerable hosts RSA-kex-only in 04/2016): \
         {}/{} = {:.0}%\n",
        exposure.passively_decryptable,
        exposure.vulnerable_hosts,
        100.0 * exposure.passive_fraction()
    );

    for t in &args.tables {
        print_table(*t, &results);
    }
    for f in &args.figures {
        print_figure(*f, &results);
    }
}

/// One-line summary of a phase's executor counters.
fn fmt_exec(e: &wk_batchgcd::PhaseExec) -> String {
    format!(
        "{} tasks / {} steals / {:?} busy on {}/{} workers",
        e.tasks(),
        e.steals,
        e.busy_total(),
        e.active_workers(),
        e.workers()
    )
}

fn header(what: &str, paper: &str) {
    println!("{}", "=".repeat(72));
    println!("{what}");
    println!("paper reports: {paper}");
    println!("{}", "-".repeat(72));
}

fn print_table(n: u32, r: &StudyResults) {
    match n {
        1 => {
            header(
                "Table 1: dataset totals",
                "1.53B HTTPS host records; 65.3M distinct certs; 81.2M distinct moduli; \
                 313,330 vulnerable (0.37%); 2.96M vulnerable host records",
            );
            println!(
                "{}",
                render_table1(&dataset_totals(&r.dataset, &r.vulnerable))
            );
        }
        2 => {
            header(
                "Table 2: 2012 vendor notifications",
                "37 vendors notified; 5 public advisories; ~half acknowledged",
            );
            println!("{}", render_table2());
        }
        3 => {
            header(
                "Table 3: earliest vs latest scan",
                "EFF 07/2010: 11.3M handshakes / 5.5M certs; Censys 04/2016: 38.0M / 10.7M",
            );
            let (first, last) = first_last_scan_summary(&r.dataset).expect("dataset has scans");
            println!("{}", render_table3(&first, &last));
        }
        4 => {
            header(
                "Table 4: per-protocol vulnerable hosts",
                "HTTPS 59,628 vulnerable; SSH 723; IMAPS/POP3S/SMTPS 0",
            );
            println!(
                "{}",
                render_table4(&protocol_table(&r.dataset, &r.vulnerable))
            );
        }
        5 => {
            header(
                "Table 5: OpenSSL prime fingerprint per vendor",
                "satisfy: Cisco, HP, IBM, Innominate, Fritz!Box, Thomson, D-Link, TP-LINK...; \
                 do not: Juniper, Fortinet, Huawei, Kronos, Siemens, Xerox, ZyXEL",
            );
            println!(
                "{}",
                render_table5(&openssl_table(&r.labeling, &r.factored))
            );
        }
        other => eprintln!("unknown table {other}"),
    }
}

fn vendor_fig(r: &StudyResults, v: VendorId, paper: &str) {
    header(&format!("{} time series", v.name()), paper);
    let s = vendor_series(&r.dataset, &r.labeling, &r.vulnerable, v);
    println!("{}", render_sparkline(&s));
    println!("{}", render_series(&s));
    let hb = heartbleed_impact(&s);
    println!(
        "largest vulnerable drop {} (at Heartbleed: {}), largest total drop {} (at Heartbleed: {})\n",
        hb.largest_vulnerable_drop,
        hb.vulnerable_drop_at_heartbleed,
        hb.largest_total_drop,
        hb.total_drop_at_heartbleed
    );
}

fn print_figure(n: u32, r: &StudyResults) {
    match n {
        1 => {
            header(
                "Figure 1: hosts on port 443 over time (all sources)",
                "total rises 11M->38M; vulnerable ~25-60K with a rise after 2012 and a drop at Heartbleed",
            );
            let s = aggregate_series(&r.dataset, &r.vulnerable);
            println!("{}", render_sparkline(&s));
            println!("{}", render_series(&s));
        }
        2 => {
            header(
                "Figure 2: k-subset distributed batch GCD",
                "k=16 on 81M moduli: 86 min wall / 1089 CPU-hours vs 500 min single-machine; 70-100GB/node",
            );
            let moduli = r.dataset.moduli.all();
            let classic = batch_gcd(moduli, 1);
            println!(
                "classic: {:?} total, tree {} KiB, {} vulnerable",
                classic.stats.total_time(),
                classic.stats.tree_bytes / 1024,
                classic.vulnerable_count()
            );
            println!(
                "classic executor: product tree {}; remainder tree {}; gcd {}",
                fmt_exec(&classic.stats.product_tree_exec),
                fmt_exec(&classic.stats.remainder_tree_exec),
                fmt_exec(&classic.stats.gcd_exec)
            );
            println!(
                "{:>4} {:>14} {:>14} {:>14} {:>14} {:>12} {:>8}",
                "k", "total CPU", "critical path", "peak node KiB", "vulnerable", "exec tasks", "steals"
            );
            for k in [2usize, 4, 8, 16] {
                let d = distributed_batch_gcd(moduli, ClusterConfig::sequential(k));
                let exec = d.report.total_exec();
                println!(
                    "{:>4} {:>14?} {:>14?} {:>14} {:>14} {:>12} {:>8}",
                    k,
                    d.report.total_cpu_time(),
                    d.report.critical_path(),
                    d.report.peak_node_bytes() / 1024,
                    d.vulnerable_count(),
                    exec.tasks(),
                    exec.steals
                );
            }
            println!();
        }
        3 => {
            vendor_fig(
                r,
                VendorId::Juniper,
                "vulnerable RISES for 2y after 04+07/2012 advisories; biggest drop at Heartbleed \
                 (~30K hosts, >9K vulnerable); transitions 1100 v->c / 1200 c->v / 250 multiple",
            );
            let t = vendor_transitions(&r.dataset, &r.labeling, &r.vulnerable, VendorId::Juniper);
            println!("{}", render_transitions("Juniper", &t));
        }
        4 => vendor_fig(
            r,
            VendorId::Innominate,
            "vulnerable roughly FIXED for 4y after 06/2012 advisory; total rises",
        ),
        5 => {
            vendor_fig(
                r,
                VendorId::Ibm,
                "already declining by 2012; marked decrease at Heartbleed; decline = devices offline, not patched",
            );
            // §4.1: the IBM decline is IP churn, not patching — vuln->clean
            // transitions with a *different* subject outnumber same-subject
            // rekeys.
            let rk = rekey_vs_churn(&r.dataset, &r.labeling, &r.vulnerable, VendorId::Ibm);
            println!(
                "IBM vuln->clean transitions: {} same-subject (rekeys) vs {} different-subject (IP churn)\n",
                rk.rekeyed_same_subject, rk.churned_different_subject
            );
        }
        6 => vendor_fig(
            r,
            VendorId::Cisco,
            "vulnerable increases steadily through 2014, begins to decrease in the last year",
        ),
        7 => {
            header(
                "Figure 7: Cisco end-of-life announcements vs population",
                "EOL announcements mark the start of a gradual decline in each model's population",
            );
            for spec in registry() {
                if spec.vendor != VendorId::Cisco {
                    continue;
                }
                let Some(eol) = spec.eol_announced else { continue };
                let model = spec.model.unwrap();
                let s = model_series(&r.dataset, &r.vulnerable, VendorId::Cisco, model);
                let impact = eol_impact(&s, eol);
                println!(
                    "{:<14} EOL {}: slope before {:+.2}/mo, after {:+.2}/mo, marks decline: {}",
                    model,
                    eol,
                    impact.slope_before,
                    impact.slope_after,
                    impact.marks_decline()
                );
            }
            println!();
        }
        8 => vendor_fig(
            r,
            VendorId::Hp,
            "vulnerable peaked 2012 then steady decline; total drops after Heartbleed (iLO crashes)",
        ),
        9 => {
            for v in [
                VendorId::Thomson,
                VendorId::FritzBox,
                VendorId::Linksys,
                VendorId::Fortinet,
                VendorId::Zyxel,
                VendorId::Dell,
                VendorId::Kronos,
                VendorId::Xerox,
                VendorId::McAfee,
                VendorId::TpLink,
            ] {
                vendor_fig(
                    r,
                    v,
                    "no response to disclosure; gradual decline (Fritz!Box: rise then post-2014 decline)",
                );
            }
        }
        10 => {
            for v in [
                VendorId::Adtran,
                VendorId::DLink,
                VendorId::Huawei,
                VendorId::Sangfor,
                VendorId::SchmidTelecom,
            ] {
                vendor_fig(
                    r,
                    v,
                    "no/few vulnerable devices in 2012; newly vulnerable product versions since (§4.4)",
                );
            }
        }
        other => eprintln!("unknown figure {other}"),
    }
}
