//! Arithmetic ablations (DESIGN.md A2, A3): the sub-quadratic algorithms
//! against their quadratic baselines, across the operand sizes the batch-GCD
//! trees actually produce.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use wk_bigint::Natural;

fn random_natural(limbs: usize, seed: u64) -> Natural {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    Natural::random_bits_exact(&mut rng, limbs as u64 * 64)
}

fn ablation_mul_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mul_algorithms");
    group.sample_size(10);
    // Sizes straddle the Karatsuba (32 limbs), Toom-3 (144), and NTT (2048)
    // thresholds.
    for limbs in [16usize, 64, 256, 1024, 4096] {
        let a = random_natural(limbs, 1);
        let b = random_natural(limbs, 2);
        group.bench_with_input(BenchmarkId::new("dispatched", limbs), &limbs, |bch, _| {
            bch.iter(|| black_box(&a) * black_box(&b))
        });
        if limbs <= 1024 {
            group.bench_with_input(BenchmarkId::new("schoolbook", limbs), &limbs, |bch, _| {
                bch.iter(|| black_box(&a).mul_schoolbook(black_box(&b)))
            });
        }
        if limbs >= 256 {
            group.bench_with_input(BenchmarkId::new("ntt", limbs), &limbs, |bch, _| {
                bch.iter(|| wk_bigint::mul_ntt(black_box(&a), black_box(&b)))
            });
        }
    }
    group.finish();
}

fn ablation_div_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_div_algorithms");
    group.sample_size(10);
    // Dividend twice the divisor size — the remainder-tree shape.
    for limbs in [32usize, 128, 512, 2048] {
        let a = random_natural(2 * limbs, 3);
        let b = random_natural(limbs, 4);
        group.bench_with_input(BenchmarkId::new("dispatched", limbs), &limbs, |bch, _| {
            bch.iter(|| black_box(&a).div_rem(black_box(&b)))
        });
        if limbs <= 512 {
            group.bench_with_input(BenchmarkId::new("knuth_only", limbs), &limbs, |bch, _| {
                bch.iter(|| black_box(&a).div_rem_knuth(black_box(&b)))
            });
        }
    }
    group.finish();
}

fn ablation_gcd_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gcd_algorithms");
    group.sample_size(10);
    // Modulus-sized operands: the final step of batch GCD.
    for limbs in [8usize, 16, 32, 64] {
        let a = random_natural(limbs, 5);
        let b = random_natural(limbs, 6);
        group.bench_with_input(BenchmarkId::new("lehmer", limbs), &limbs, |bch, _| {
            bch.iter(|| black_box(&a).gcd(black_box(&b)))
        });
        group.bench_with_input(BenchmarkId::new("binary", limbs), &limbs, |bch, _| {
            bch.iter(|| black_box(&a).gcd_binary(black_box(&b)))
        });
    }
    group.finish();
}

fn modpow_primality(c: &mut Criterion) {
    let mut group = c.benchmark_group("modpow_primality");
    group.sample_size(10);
    // The prime-generation hot path: Miller-Rabin on candidate primes.
    for bits in [64u64, 256, 512] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let candidate = {
            let mut n = Natural::random_bits_exact(&mut rng, bits);
            n.set_bit(0, true);
            n
        };
        group.bench_with_input(BenchmarkId::new("miller_rabin", bits), &bits, |bch, _| {
            bch.iter(|| black_box(&candidate).is_probable_prime_fixed())
        });
    }
    group.finish();
}

criterion_group! {
    name = bigint;
    config = Criterion::default().sample_size(10);
    targets = ablation_mul_algorithms, ablation_div_algorithms, ablation_gcd_algorithms,
              modpow_primality
}
criterion_main!(bigint);
