//! `ablation_incremental` — full tree rebuild vs the delta-update path
//! (DESIGN.md §8, A6): at several corpus/delta (`N`/`M`) ratios, compare a
//! from-scratch `TreeCache::build` over the union against one
//! `incremental_batch_gcd` call landing the delta on a warm cache, and
//! write the evidence (per-phase wall times, executor task/steal counts)
//! to `BENCH_batchgcd.json` at the workspace root.
//!
//! The vendored criterion stand-in does not parse CLI flags, so this bench
//! is a plain `main` that honors `-- --test` itself: smoke mode shrinks
//! the workload to seconds and skips the wall-clock assertion (timing on
//! a loaded CI box is noise), while the work assertion — the delta run
//! burns strictly less executor busy time than the rebuild — holds in
//! both modes. (Task counts stopped being comparable once the executor
//! started chunking leaf maps: the two paths chunk differently, so busy
//! time is the honest "does less work" measure.)

use std::fmt::Write as _;
use std::time::{Duration, Instant};
use wk_batchgcd::{incremental_batch_gcd, scratch_dir, BatchGcdResult, ShardStore, TreeCache};
use wk_bench::key_population;

const THREADS: usize = 4;

struct FullRun {
    wall: Duration,
    result: BatchGcdResult,
}

struct DeltaRun {
    wall: Duration,
    result: BatchGcdResult,
}

/// Best-of-`samples` from-scratch run over the union corpus.
fn measure_full(union: &[wk_bigint::Natural], capacity: usize, samples: usize) -> FullRun {
    let mut best: Option<FullRun> = None;
    for s in 0..samples {
        let store_dir = scratch_dir(&format!("bench-incr-full-store-{s}"));
        let cache_dir = scratch_dir(&format!("bench-incr-full-cache-{s}"));
        let store = ShardStore::create(&store_dir, capacity, union).unwrap();
        let start = Instant::now();
        let (cache, result) = TreeCache::build(&cache_dir, &store, THREADS).unwrap();
        let wall = start.elapsed();
        cache.remove().unwrap();
        store.remove().unwrap();
        if best.as_ref().is_none_or(|b| wall < b.wall) {
            best = Some(FullRun { wall, result });
        }
    }
    best.unwrap()
}

/// Best-of-`samples` delta run: the old corpus is cached (untimed setup);
/// only the `incremental_batch_gcd` call is measured.
fn measure_delta(
    old: &[wk_bigint::Natural],
    delta: &[wk_bigint::Natural],
    capacity: usize,
    samples: usize,
) -> DeltaRun {
    let mut best: Option<DeltaRun> = None;
    for s in 0..samples {
        let store_dir = scratch_dir(&format!("bench-incr-delta-store-{s}"));
        let cache_dir = scratch_dir(&format!("bench-incr-delta-cache-{s}"));
        let mut store = ShardStore::create(&store_dir, capacity, old).unwrap();
        let (mut cache, _) = TreeCache::build(&cache_dir, &store, THREADS).unwrap();
        let start = Instant::now();
        let result =
            incremental_batch_gcd(&mut store, &mut cache, delta, capacity, THREADS).unwrap();
        let wall = start.elapsed();
        cache.remove().unwrap();
        store.remove().unwrap();
        if best.as_ref().is_none_or(|b| wall < b.wall) {
            best = Some(DeltaRun { wall, result });
        }
    }
    best.unwrap()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--test");
    // N old moduli, several delta sizes M, fixed shard capacity.
    let (n_old, deltas, bits, capacity, samples) = if smoke {
        (48usize, vec![4usize, 12], 128u64, 16usize, 2usize)
    } else {
        // Best-of-5: the container's single CPU makes individual samples
        // noisy; more samples keep the committed baseline honest.
        (600, vec![30, 100, 300], 256, 64, 5)
    };
    let max_delta = *deltas.iter().max().unwrap();
    let union = key_population(n_old + max_delta, bits, 0.04, 1601);
    let old = &union[..n_old];

    let mut cases = String::new();
    let mut hist_cases = String::new();
    for (i, &m) in deltas.iter().enumerate() {
        let union_m = &union[..n_old + m];
        let delta = &union_m[n_old..];
        let full = measure_full(union_m, capacity, samples);
        let inc = measure_delta(old, delta, capacity, samples);

        // Correctness first: the delta run must reproduce the rebuild.
        assert_eq!(inc.result.raw_divisors, full.result.raw_divisors);
        assert_eq!(inc.result.statuses, full.result.statuses);

        // The ablation's work claim: the rebuild multiplies and descends
        // over the whole union, the delta run over M new moduli plus one
        // cheap reduction per cached modulus, so for M < N the executors
        // must show strictly less summed busy time end to end.
        let full_tree_tasks = full.result.stats.product_tree_exec.tasks();
        let inc_tree_tasks = inc.result.stats.product_tree_exec.tasks();
        let full_tasks = full.result.stats.total_exec().tasks();
        let inc_tasks = inc.result.stats.total_exec().tasks();
        let full_busy = full.result.stats.total_exec().busy_total();
        let inc_busy = inc.result.stats.total_exec().busy_total();
        assert!(
            inc_busy < full_busy,
            "delta run burned {inc_busy:?} of executor busy time, rebuild {full_busy:?} — \
             the delta path must do less work at N={n_old} M={m}"
        );
        if !smoke {
            assert!(
                inc.wall < full.wall,
                "delta run ({:?}) must beat the full rebuild ({:?}) at N={n_old} M={m}",
                inc.wall,
                full.wall
            );
        }

        let d = &inc.result.stats.delta;
        let fs = &full.result.stats;
        println!(
            "ablation_incremental N={n_old} M={m}: rebuild {:?} vs delta {:?} \
             (tree tasks {full_tree_tasks} -> {inc_tree_tasks}, \
             total tasks {full_tasks} -> {inc_tasks})",
            full.wall, inc.wall
        );
        if i > 0 {
            cases.push(',');
        }
        write!(
            cases,
            r#"
    {{
      "old_count": {n_old},
      "delta_count": {m},
      "full_rebuild": {{
        "wall_ns": {},
        "product_tree_ns": {},
        "recip_build_ns": {},
        "remainder_tree_ns": {},
        "barrett_rem_ns": {},
        "gcd_ns": {},
        "tree_tasks": {full_tree_tasks},
        "tree_steals": {},
        "total_tasks": {},
        "total_steals": {},
        "busy_ns": {},
        "alloc_events": {},
        "arena_hit_ratio": {:.4},
        "scaled_levels": {}
      }},
      "incremental": {{
        "wall_ns": {},
        "delta_tree_ns": {},
        "delta_sweep_ns": {},
        "delta_cross_ns": {},
        "delta_cache_update_ns": {},
        "recip_build_ns": {},
        "barrett_rem_ns": {},
        "tree_tasks": {inc_tree_tasks},
        "sweep_tasks": {},
        "cross_tasks": {},
        "total_steals": {},
        "busy_ns": {},
        "shards_read": {},
        "alloc_events": {},
        "arena_hit_ratio": {:.4},
        "cross_scaled_levels": {}
      }},
      "speedup": {:.3}
    }}"#,
            full.wall.as_nanos(),
            fs.product_tree_time.as_nanos(),
            fs.recip_build_time.as_nanos(),
            fs.remainder_tree_time.as_nanos(),
            fs.barrett_rem_time.as_nanos(),
            fs.gcd_time.as_nanos(),
            fs.product_tree_exec.steals,
            fs.total_exec().tasks(),
            fs.total_exec().steals,
            full_busy.as_nanos(),
            fs.alloc_events,
            fs.arena_hit_ratio,
            fs.scaled_levels,
            inc.wall.as_nanos(),
            d.delta_tree_time.as_nanos(),
            d.delta_sweep_time.as_nanos(),
            d.delta_cross_time.as_nanos(),
            d.delta_cache_update_time.as_nanos(),
            inc.result.stats.recip_build_time.as_nanos(),
            inc.result.stats.barrett_rem_time.as_nanos(),
            d.delta_sweep_exec.tasks(),
            d.delta_cross_exec.tasks(),
            inc.result.stats.total_exec().steals,
            inc_busy.as_nanos(),
            inc.result.stats.shard.shards_read,
            inc.result.stats.alloc_events,
            inc.result.stats.arena_hit_ratio,
            d.cross_scaled_levels,
            full.wall.as_secs_f64() / inc.wall.as_secs_f64().max(f64::MIN_POSITIVE),
        )
        .unwrap();
        if i > 0 {
            hist_cases.push(',');
        }
        // Compact per-case summary for the dated history line: the two
        // headline walls plus the hot-path total the perf gate tracks.
        write!(
            hist_cases,
            r#"{{"old":{n_old},"delta":{m},"full_wall_ns":{},"full_descent_ns":{},"inc_wall_ns":{}}}"#,
            full.wall.as_nanos(),
            (fs.remainder_tree_time + fs.recip_build_time).as_nanos(),
            inc.wall.as_nanos(),
        )
        .unwrap();
    }

    let json = format!(
        r#"{{
  "bench": "ablation_incremental",
  "smoke": {smoke},
  "threads": {THREADS},
  "modulus_bits": {bits},
  "shard_capacity": {capacity},
  "cases": [{cases}
  ]
}}
"#
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = root.join("BENCH_batchgcd.json");
    std::fs::write(&out, json).unwrap();
    println!("wrote {}", out.display());

    // Dated history line for trend tracking (capped; committed alongside
    // the snapshot). Smoke runs are sized for CI boxes, not comparison, so
    // they stay out of the record.
    if !smoke {
        let entry = format!(
            r#"{{"date":"{}","bench":"ablation_incremental","threads":{THREADS},"modulus_bits":{bits},"cases":[{hist_cases}]}}"#,
            wk_bench::utc_date_string(),
        );
        let hist = root.join("BENCH_history.jsonl");
        wk_bench::append_history_line(&hist, &entry, 50).unwrap();
        println!("appended {}", hist.display());
    }
}
