//! Benches regenerating Tables 1, 3, 4, and 5 from the shared simulated
//! study (Table 2 is static disclosure data; see `repro --table 2`).
//!
//! Each bench times the analysis step that produces the table, after the
//! expensive simulation+factoring phase has been done once and shared.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wk_analysis::{dataset_totals, first_last_scan_summary, openssl_table, protocol_table};
use wk_bench::shared_results;

fn table1_dataset_totals(c: &mut Criterion) {
    let r = shared_results();
    c.bench_function("table1_dataset_totals", |b| {
        b.iter(|| {
            let t = dataset_totals(black_box(&r.dataset), black_box(&r.vulnerable));
            assert!(t.vulnerable_moduli > 0);
            t
        })
    });
}

fn table3_first_last_scan(c: &mut Criterion) {
    let r = shared_results();
    c.bench_function("table3_first_last_scan", |b| {
        b.iter(|| {
            let (first, last) =
                first_last_scan_summary(black_box(&r.dataset)).expect("bench dataset has scans");
            assert!(last.handshakes > first.handshakes);
            (first, last)
        })
    });
}

fn table4_protocols(c: &mut Criterion) {
    let r = shared_results();
    c.bench_function("table4_protocols", |b| {
        b.iter(|| {
            let rows = protocol_table(black_box(&r.dataset), black_box(&r.vulnerable));
            assert_eq!(rows.len(), 5);
            rows
        })
    });
}

fn table5_openssl_fingerprint(c: &mut Criterion) {
    let r = shared_results();
    c.bench_function("table5_openssl_fingerprint", |b| {
        b.iter(|| {
            let t = openssl_table(black_box(&r.labeling), black_box(&r.factored));
            assert!(!t.is_empty());
            t
        })
    });
}

criterion_group! {
    name = tables;
    config = Criterion::default().sample_size(10);
    targets = table1_dataset_totals, table3_first_last_scan, table4_protocols,
              table5_openssl_fingerprint
}
criterion_main!(tables);
