//! Figure 2 and the batch-GCD ablations (DESIGN.md A1, A4, A5).
//!
//! * `fig2_distributed_batchgcd` — the k-subset variant across k, measuring
//!   the paper's trade: total work grows with k while the per-node tree
//!   (and with real nodes, the critical path) shrinks.
//! * `ablation_naive_vs_batch` — quasilinear batch GCD vs the quadratic
//!   pairwise baseline (§3.2's feasibility argument).
//! * `ablation_remainder_tree` — the remainder tree vs dividing the root
//!   product by each modulus directly.
//! * `exec_skewed_sizes` — the work-stealing case: a population whose
//!   bigint sizes are pathologically uneven, where static chunking would
//!   serialize on whichever chunk drew the large moduli.
//! * `ablation_corpus_shards` — in-memory classic batch GCD vs the
//!   disk-backed shard store feeding the same pool (DESIGN.md §7): what the
//!   bounded-memory streaming mode costs in shard re-reads and per-shard
//!   tree rebuilds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use wk_batchgcd::{
    batch_gcd, distributed_batch_gcd, naive_pairwise_gcd, scratch_dir, sharded_batch_gcd,
    ClusterConfig, ProductTree, ShardStore, SpilledProductTree, WorkerPool,
};
use wk_bench::key_population;

fn fig2_distributed_batchgcd(c: &mut Criterion) {
    let moduli = key_population(1500, 512, 0.02, 11);
    let mut group = c.benchmark_group("fig2_distributed_batchgcd");
    group.sample_size(10);
    group.bench_function("classic", |b| b.iter(|| batch_gcd(black_box(&moduli), 1)));
    for k in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("k_subset", k), &k, |b, &k| {
            b.iter(|| distributed_batch_gcd(black_box(&moduli), ClusterConfig::sequential(k)))
        });
    }
    group.finish();

    // Shape assertions printed once: work grows with k, per-node memory
    // shrinks.
    let classic = batch_gcd(&moduli, 1);
    let d4 = distributed_batch_gcd(&moduli, ClusterConfig::sequential(4));
    let d16 = distributed_batch_gcd(&moduli, ClusterConfig::sequential(16));
    assert_eq!(d4.vulnerable_count(), classic.vulnerable_count());
    assert_eq!(d16.vulnerable_count(), classic.vulnerable_count());
    let node4 = d4.report.nodes.iter().map(|n| n.tree_bytes).max().unwrap();
    let node16 = d16.report.nodes.iter().map(|n| n.tree_bytes).max().unwrap();
    assert!(node16 < node4 && node4 < classic.stats.tree_bytes);
    println!(
        "fig2 shape: tree bytes classic={} k4(max node)={} k16(max node)={}; \
         total CPU k4={:?} k16={:?}",
        classic.stats.tree_bytes,
        node4,
        node16,
        d4.report.total_cpu_time(),
        d16.report.total_cpu_time()
    );
}

fn ablation_naive_vs_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_naive_vs_batch");
    group.sample_size(10);
    for n in [100usize, 200, 400, 800] {
        let moduli = key_population(n, 512, 0.05, 23);
        group.bench_with_input(BenchmarkId::new("batch", n), &moduli, |b, m| {
            b.iter(|| batch_gcd(black_box(m), 1))
        });
        // The quadratic baseline is capped where it stops being polite on a
        // single core — which is the paper's point (§3.2).
        if n <= 400 {
            group.bench_with_input(BenchmarkId::new("naive", n), &moduli, |b, m| {
                b.iter(|| naive_pairwise_gcd(black_box(m)))
            });
        }
    }
    group.finish();
}

fn ablation_remainder_tree(c: &mut Criterion) {
    let moduli = key_population(600, 512, 0.05, 31);
    let pool = WorkerPool::new(1);
    let tree = ProductTree::build(&moduli, pool.exec()).unwrap();
    let root = tree.root().clone();
    let mut group = c.benchmark_group("ablation_remainder_tree");
    group.sample_size(10);
    group.bench_function("remainder_tree", |b| {
        b.iter(|| tree.remainder_tree(black_box(&root), pool.exec()))
    });
    group.bench_function("direct_division_per_leaf", |b| {
        b.iter(|| {
            moduli
                .iter()
                .map(|m| &root % &m.square())
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// The paper's disk-vs-RAM contrast (§3.2): the original hardware spilled
/// trees to disk (500 min); the cluster run kept them in RAM.
fn ablation_disk_spill(c: &mut Criterion) {
    let moduli = key_population(400, 512, 0.05, 37);
    let pool = WorkerPool::new(1);
    let mut group = c.benchmark_group("ablation_disk_spill");
    group.sample_size(10);
    group.bench_function("in_ram", |b| {
        b.iter(|| {
            let tree = ProductTree::build(black_box(&moduli), pool.exec()).unwrap();
            tree.remainder_tree(tree.root(), pool.exec())
        })
    });
    group.bench_function("spilled_to_disk", |b| {
        b.iter(|| {
            let dir = scratch_dir("bench");
            let tree = SpilledProductTree::build(black_box(&moduli), &dir, pool.exec()).unwrap();
            let root = tree.root().unwrap();
            let rems = tree.remainder_tree(&root, pool.exec()).unwrap();
            tree.cleanup().unwrap();
            rems
        })
    });
    group.finish();
}

/// In-memory vs disk-sharded runs of the same classic algorithm: the
/// sharded mode re-reads every shard twice and rebuilds per-shard trees,
/// buying O(shard + top tree) peak memory instead of O(corpus).
fn ablation_corpus_shards(c: &mut Criterion) {
    let moduli = key_population(400, 512, 0.05, 47);
    let mut group = c.benchmark_group("ablation_corpus_shards");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("in_memory", threads), &threads, |b, &t| {
            b.iter(|| batch_gcd(black_box(&moduli), t))
        });
        for capacity in [50usize, 200] {
            let dir = scratch_dir(&format!("bench-shards-{threads}-{capacity}"));
            let store = ShardStore::create(&dir, capacity, &moduli).unwrap();
            group.bench_with_input(
                BenchmarkId::new(format!("sharded_cap{capacity}"), threads),
                &threads,
                |b, &t| b.iter(|| sharded_batch_gcd(black_box(&store), t).unwrap()),
            );
            store.remove().unwrap();
        }
    }
    group.finish();

    // Print the equivalence + I/O evidence once.
    let dir = scratch_dir("bench-shards-check");
    let store = ShardStore::create(&dir, 50, &moduli).unwrap();
    let sharded = sharded_batch_gcd(&store, 4).unwrap();
    let classic = batch_gcd(&moduli, 4);
    assert_eq!(sharded.raw_divisors, classic.raw_divisors);
    assert_eq!(sharded.statuses, classic.statuses);
    println!(
        "ablation_corpus_shards: shards={} reads={} bytes_read={} busy={:?} \
         (identical output to in-memory)",
        sharded.stats.shard.shards_written,
        sharded.stats.shard.shards_read,
        sharded.stats.shard.bytes_read,
        sharded.stats.shard.total_busy()
    );
    store.remove().unwrap();
}

/// Peak-RSS bookkeeping for the low-memory ablation: `VmHWM` from
/// `/proc/self/status`, reset per-arm by writing `5` to
/// `/proc/self/clear_refs` (Linux >= 4.0). Returns KiB.
fn peak_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn reset_peak_rss() {
    // Best-effort: unsupported kernels just report a shared watermark.
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// Fold one nontrivial pairwise gcd into a per-modulus divisor accumulator,
/// mirroring `naive_pairwise_gcd`: the running value is the product of
/// distinct shared primes (lcm, clamped to a divisor of `n`).
fn merge_divisor(
    acc: &mut Option<wk_bigint::Natural>,
    g: &wk_bigint::Natural,
    n: &wk_bigint::Natural,
) {
    *acc = Some(match acc.take() {
        None => g.clone(),
        Some(prev) => {
            let l = &(&prev * g) / &prev.gcd(g);
            n.gcd(&l)
        }
    });
}

/// Pelofske-style all-to-all GCD over a shard store: every shard pair is
/// brought in as a tile, all cross-tile (and intra-tile) gcds are taken
/// directly, and at most two shards are resident at any moment. Quadratic
/// work, O(2 x shard) memory — the low-entropy-corpus trade from "An
/// Efficient All-to-All GCD Algorithm for Low Entropy RSA Key
/// Factorization" (PAPERS.md), as opposed to the quasilinear,
/// tree-resident batch descent.
fn all_to_all_blocked(store: &ShardStore) -> (Vec<Option<wk_bigint::Natural>>, u64) {
    let shards = store.shard_count() as u32;
    let capacity = store.capacity().max(1) as usize;
    let mut divisors: Vec<Option<wk_bigint::Natural>> = vec![None; store.total_moduli() as usize];
    let mut ops = 0u64;
    for i in 0..shards {
        let tile_a = store.read_shard(i).unwrap();
        let base_a = i as usize * capacity;
        // Intra-tile pairs.
        for x in 0..tile_a.len() {
            for y in (x + 1)..tile_a.len() {
                ops += 1;
                let g = tile_a[x].gcd(&tile_a[y]);
                if !g.is_one() {
                    merge_divisor(&mut divisors[base_a + x], &g, &tile_a[x]);
                    merge_divisor(&mut divisors[base_a + y], &g, &tile_a[y]);
                }
            }
        }
        // Cross-tile pairs against every later shard.
        for j in (i + 1)..shards {
            let tile_b = store.read_shard(j).unwrap();
            let base_b = j as usize * capacity;
            for (x, a) in tile_a.iter().enumerate() {
                for (y, b) in tile_b.iter().enumerate() {
                    ops += 1;
                    let g = a.gcd(b);
                    if !g.is_one() {
                        merge_divisor(&mut divisors[base_a + x], &g, a);
                        merge_divisor(&mut divisors[base_b + y], &g, b);
                    }
                }
            }
        }
    }
    (divisors, ops)
}

/// A8 — the low-memory baseline: all-to-all gcd over shard tiles vs the
/// tree-based descents, timing and peak-RSS per arm (EXPERIMENTS.md).
fn ablation_all_to_all_lowmem(c: &mut Criterion) {
    // Large enough that the classic tree (~2.4 MB at 1500 x 512-bit)
    // dominates the process baseline, so the peak-RSS contrast is real;
    // the quadratic arm runs ~1.1M pairwise gcds, which is exactly the
    // trade being measured.
    let n = 1500usize;
    let moduli = key_population(n, 512, 0.02, 53);
    let dir = scratch_dir("bench-a2a");
    let store = ShardStore::create(&dir, 64, &moduli).unwrap();

    let mut group = c.benchmark_group("ablation_all_to_all_lowmem");
    group.sample_size(3);
    group.bench_function("tree_in_memory", |b| {
        b.iter(|| batch_gcd(black_box(&moduli), 1))
    });
    group.bench_function("tree_sharded", |b| {
        b.iter(|| sharded_batch_gcd(black_box(&store), 1).unwrap())
    });
    group.bench_function("all_to_all_blocked", |b| {
        b.iter(|| all_to_all_blocked(black_box(&store)))
    });
    group.finish();

    // One measured pass per arm with a reset RSS watermark, low-memory arm
    // first so allocator page retention from the tree arms cannot mask its
    // floor: the headline numbers for the EXPERIMENTS.md table.
    let mut rss_rows = Vec::new();
    for (name, run) in [
        (
            "all_to_all_blocked",
            Box::new(|| {
                black_box(all_to_all_blocked(&store));
            }) as Box<dyn Fn()>,
        ),
        (
            "tree_sharded",
            Box::new(|| {
                black_box(sharded_batch_gcd(&store, 1).unwrap());
            }),
        ),
        (
            "tree_in_memory",
            Box::new(|| {
                black_box(batch_gcd(&moduli, 1));
            }),
        ),
    ] {
        reset_peak_rss();
        let start = std::time::Instant::now();
        run();
        let wall = start.elapsed();
        let hwm = peak_rss_kib().unwrap_or(0);
        rss_rows.push((name, wall, hwm));
    }
    for (name, wall, hwm) in &rss_rows {
        println!("ablation_all_to_all_lowmem: {name} wall={wall:?} peak_rss={hwm} KiB");
    }

    // Correctness: the quadratic tile sweep must agree with the tree.
    let classic = batch_gcd(&moduli, 1);
    let (divisors, ops) = all_to_all_blocked(&store);
    assert_eq!(divisors, classic.raw_divisors);
    assert_eq!(ops, (n * (n - 1) / 2) as u64);
    println!("ablation_all_to_all_lowmem: {ops} pairwise gcds, divisors identical to tree descent");
    store.remove().unwrap();
}

/// Work-stealing stress: mix 512-bit moduli with a sprinkle of much larger
/// ones so per-task costs are wildly uneven. With static chunking, whole
/// chunks of cheap tasks queue behind a chunk that drew the expensive
/// moduli; the deque-stealing pool keeps every worker busy.
fn exec_skewed_sizes(c: &mut Criterion) {
    let mut moduli = key_population(360, 512, 0.02, 41);
    // Every 24th modulus is 2048-bit: ~16x the multiply cost at the leaves.
    let fat = key_population(15, 2048, 0.0, 43);
    for (slot, big) in moduli.iter_mut().step_by(24).zip(fat) {
        *slot = big;
    }
    let mut group = c.benchmark_group("exec_skewed_sizes");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("batch_gcd_skewed", threads),
            &threads,
            |b, &t| b.iter(|| batch_gcd(black_box(&moduli), t)),
        );
    }
    group.finish();

    // Print the executor's own evidence once: with 4 workers, steals must
    // actually occur and every worker must have executed tasks.
    let res = batch_gcd(&moduli, 4);
    let exec = res.stats.total_exec();
    println!(
        "exec_skewed_sizes: tasks={} steals={} active_workers={}/{} busy={:?}",
        exec.tasks(),
        exec.steals,
        exec.active_workers(),
        exec.workers(),
        exec.busy_total()
    );
}

criterion_group! {
    name = batchgcd;
    config = Criterion::default().sample_size(10);
    targets = fig2_distributed_batchgcd, ablation_naive_vs_batch, ablation_remainder_tree,
              ablation_disk_spill, ablation_corpus_shards, ablation_all_to_all_lowmem,
              exec_skewed_sizes
}
criterion_main!(batchgcd);
