//! Benches regenerating the series behind Figures 1 and 3-10 from the
//! shared simulated study. Each bench asserts the figure's headline shape
//! while timing the regeneration (so a regression in either speed or shape
//! is caught).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wk_analysis::{
    aggregate_series, eol_impact, heartbleed_impact, model_series, vendor_series,
    vendor_transitions,
};
use wk_bench::shared_results;
use wk_scan::{registry, VendorId};

fn fig1_aggregate_timeseries(c: &mut Criterion) {
    let r = shared_results();
    c.bench_function("fig1_aggregate_timeseries", |b| {
        b.iter(|| {
            let s = aggregate_series(black_box(&r.dataset), &r.vulnerable);
            assert!(s.points.len() > 40);
            s
        })
    });
}

fn vendor_bench(c: &mut Criterion, name: &str, vendor: VendorId) {
    let r = shared_results();
    c.bench_function(name, |b| {
        b.iter(|| {
            let s = vendor_series(black_box(&r.dataset), &r.labeling, &r.vulnerable, vendor);
            assert!(!s.points.is_empty());
            s
        })
    });
}

fn fig3_juniper(c: &mut Criterion) {
    vendor_bench(c, "fig3_juniper", VendorId::Juniper);
    // Shape + transition analysis timing.
    let r = shared_results();
    c.bench_function("fig3_juniper_transitions", |b| {
        b.iter(|| vendor_transitions(&r.dataset, &r.labeling, &r.vulnerable, VendorId::Juniper))
    });
    let s = vendor_series(&r.dataset, &r.labeling, &r.vulnerable, VendorId::Juniper);
    assert!(heartbleed_impact(&s).vulnerable_drop_at_heartbleed);
}

fn fig4_innominate(c: &mut Criterion) {
    vendor_bench(c, "fig4_innominate", VendorId::Innominate);
}

fn fig5_ibm(c: &mut Criterion) {
    vendor_bench(c, "fig5_ibm", VendorId::Ibm);
}

fn fig6_cisco(c: &mut Criterion) {
    vendor_bench(c, "fig6_cisco", VendorId::Cisco);
}

fn fig7_cisco_eol(c: &mut Criterion) {
    let r = shared_results();
    c.bench_function("fig7_cisco_eol", |b| {
        b.iter(|| {
            let mut impacts = Vec::new();
            for spec in registry() {
                if spec.vendor != VendorId::Cisco {
                    continue;
                }
                let Some(eol) = spec.eol_announced else {
                    continue;
                };
                let s = model_series(
                    black_box(&r.dataset),
                    &r.vulnerable,
                    VendorId::Cisco,
                    spec.model.unwrap(),
                );
                impacts.push(eol_impact(&s, eol));
            }
            assert_eq!(impacts.len(), 5);
            impacts
        })
    });
}

fn fig8_hp(c: &mut Criterion) {
    vendor_bench(c, "fig8_hp_ilo", VendorId::Hp);
}

fn fig9_no_response(c: &mut Criterion) {
    let r = shared_results();
    let vendors = [
        VendorId::Thomson,
        VendorId::FritzBox,
        VendorId::Linksys,
        VendorId::Fortinet,
        VendorId::Zyxel,
        VendorId::Dell,
        VendorId::Kronos,
        VendorId::Xerox,
        VendorId::McAfee,
        VendorId::TpLink,
    ];
    c.bench_function("fig9_no_response_grid", |b| {
        b.iter(|| {
            vendors
                .iter()
                .map(|&v| vendor_series(black_box(&r.dataset), &r.labeling, &r.vulnerable, v))
                .collect::<Vec<_>>()
        })
    });
}

fn fig10_newly_vulnerable(c: &mut Criterion) {
    let r = shared_results();
    let vendors = [
        VendorId::Adtran,
        VendorId::DLink,
        VendorId::Huawei,
        VendorId::Sangfor,
        VendorId::SchmidTelecom,
    ];
    c.bench_function("fig10_newly_vulnerable", |b| {
        b.iter(|| {
            vendors
                .iter()
                .map(|&v| vendor_series(black_box(&r.dataset), &r.labeling, &r.vulnerable, v))
                .collect::<Vec<_>>()
        })
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = fig1_aggregate_timeseries, fig3_juniper, fig4_innominate, fig5_ibm,
              fig6_cisco, fig7_cisco_eol, fig8_hp, fig9_no_response,
              fig10_newly_vulnerable
}
criterion_main!(figures);
