//! The 2012 disclosure process (Table 2, §2.5).
//!
//! 61 vendors were notified between February and June 2012; 37 concerned
//! weak TLS/SSH RSA keys. Only five released public advisories; about half
//! acknowledged receipt. The paper's Table 2 groups the 37 RSA-affected
//! vendors into four response categories.
//!
//! Category assignments for the headline vendors follow the paper's text
//! (§4.1-4.4) exactly; the remaining minor vendors are distributed to match
//! Table 2's column structure and the "about half acknowledged" statement —
//! the scanned table in our source does not preserve cell alignment, so
//! those per-cell placements are reconstructed (documented in DESIGN.md).

use wk_scan::ResponseCategory;

/// One notified vendor and its response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotifiedVendor {
    /// Vendor name as listed in Table 2.
    pub name: &'static str,
    /// Response category.
    pub response: ResponseCategory,
    /// Whether the vulnerable keys were TLS (vs. SSH-only) — the paper's
    /// analysis covers only the TLS population.
    pub tls: bool,
}

/// Total vendors notified in 2012 (TLS + SSH + DSA).
pub const TOTAL_NOTIFIED_2012: usize = 61;
/// Vendors notified specifically about weak RSA keys (Table 2).
pub const RSA_NOTIFIED_2012: usize = 37;
/// Vendors with vulnerable TLS certificates among those (§2.5).
pub const TLS_AFFECTED: usize = 28;

/// Table 2: the 37 vendors notified about weak RSA keys in 2012.
pub fn table2() -> Vec<NotifiedVendor> {
    use ResponseCategory::*;
    let v = |name, response, tls| NotifiedVendor {
        name,
        response,
        tls,
    };
    vec![
        // Public advisories (§2.5/§4.1: five total; Intel and Tropos for
        // SSH host keys, the other three for TLS).
        v("Juniper", PublicAdvisory, true),
        v("Innominate", PublicAdvisory, true),
        v("IBM", PublicAdvisory, true),
        v("Intel", PublicAdvisory, false),
        v("Tropos", PublicAdvisory, false),
        // Private substantive responses (§4.2 names Cisco and HP).
        v("Cisco", PrivateResponse, true),
        v("HP", PrivateResponse, true),
        v("Emerson", PrivateResponse, true),
        v("Sentry", PrivateResponse, true),
        v("NTI", PrivateResponse, true),
        v("ADTRAN", PrivateResponse, false), // responded about SSH DSA in 2012
        v("Pogoplug", PrivateResponse, true),
        // Automated acknowledgments only.
        v("Brocade", AutoResponse, true),
        v("Technicolor", AutoResponse, true),
        v("Haivision", AutoResponse, true),
        v("Sinetica", AutoResponse, true),
        v("Motorola", AutoResponse, true),
        v("Pronto", AutoResponse, true),
        // Never responded (§4.3's ten tracked vendors and the rest).
        v("Dell", NoResponse, true),
        v("ZyXEL", NoResponse, true),
        v("McAfee", NoResponse, true),
        v("TP-Link", NoResponse, true),
        v("Fortinet", NoResponse, true),
        v("Hillstone Networks", NoResponse, true),
        v("2-Wire", NoResponse, true),
        v("D-Link", NoResponse, true),
        v("AudioCodes", NoResponse, true),
        v("Xerox", NoResponse, true),
        v("SkyStream", NoResponse, true),
        v("Ruckus", NoResponse, true),
        v("Kronos", NoResponse, true),
        v("Kyocera", NoResponse, true),
        v("BelAir", NoResponse, true),
        v("Simton", NoResponse, true),
        v("Linksys", NoResponse, true),
        v("AVM", NoResponse, true), // Fritz!Box
        v("JDSU", NoResponse, false),
    ]
}

/// Render Table 2 grouped by category.
pub fn render_table2() -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let groups = [
        ("Public Advisory", ResponseCategory::PublicAdvisory),
        ("Private Response", ResponseCategory::PrivateResponse),
        ("Auto-Response", ResponseCategory::AutoResponse),
        ("No Response", ResponseCategory::NoResponse),
    ];
    for (label, cat) in groups {
        let names: Vec<&str> = table2()
            .iter()
            .filter(|nv| nv.response == cat)
            .map(|nv| nv.name)
            .collect();
        let _ = writeln!(s, "{label} ({}):", names.len());
        let _ = writeln!(s, "  {}", names.join(", "));
    }
    let _ = writeln!(
        s,
        "{} vendors notified about weak RSA keys (of {} total 2012 notifications); \
         5 public advisories; about half acknowledged receipt.",
        RSA_NOTIFIED_2012, TOTAL_NOTIFIED_2012
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_37_vendors() {
        assert_eq!(table2().len(), RSA_NOTIFIED_2012);
    }

    #[test]
    fn exactly_five_public_advisories() {
        let advisories = table2()
            .iter()
            .filter(|v| v.response == ResponseCategory::PublicAdvisory)
            .count();
        assert_eq!(advisories, 5);
    }

    #[test]
    fn three_tls_public_advisories() {
        // Juniper, Innominate, IBM — the only vendors whose TLS patching
        // behavior §5.3 says is observable.
        let tls_adv: Vec<&str> = table2()
            .iter()
            .filter(|v| v.response == ResponseCategory::PublicAdvisory && v.tls)
            .map(|v| v.name)
            .collect();
        assert_eq!(tls_adv, vec!["Juniper", "Innominate", "IBM"]);
    }

    #[test]
    fn about_half_acknowledged() {
        let acknowledged = table2()
            .iter()
            .filter(|v| {
                matches!(
                    v.response,
                    ResponseCategory::PublicAdvisory | ResponseCategory::PrivateResponse
                )
            })
            .count();
        // "About half of the vendors acknowledged receipt" — we count
        // substantive responses as 13/37; with auto-responses, 19/37.
        let with_auto = acknowledged
            + table2()
                .iter()
                .filter(|v| v.response == ResponseCategory::AutoResponse)
                .count();
        assert!(acknowledged >= 12 && with_auto <= 20);
    }

    #[test]
    fn no_response_is_majority_of_nonresponders() {
        let none = table2()
            .iter()
            .filter(|v| v.response == ResponseCategory::NoResponse)
            .count();
        assert!(none >= 15, "most vendors never responded: {none}");
    }

    #[test]
    fn rendering_contains_all_groups_and_names() {
        let out = render_table2();
        for needle in ["Public Advisory", "No Response", "Juniper", "ZyXEL", "37"] {
            assert!(out.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn tracked_vendors_consistent_with_simulator_registry() {
        // Every §4.3 no-response vendor tracked by the simulator must be
        // NoResponse here too (AVM == Fritz!Box).
        let t2 = table2();
        for name in [
            "Thomson", "Linksys", "ZyXEL", "McAfee", "Fortinet", "Kronos", "Xerox",
        ] {
            if let Some(nv) = t2.iter().find(|v| v.name == name) {
                assert_eq!(
                    nv.response,
                    ResponseCategory::NoResponse,
                    "{name} must be NoResponse"
                );
            }
        }
    }
}
