//! # weakkeys — reproduction of *Weak Keys Remain Widespread in Network
//! Devices* (IMC 2016)
//!
//! An executable re-creation of the paper's entire methodology at laptop
//! scale: a generative model of six years of internet-wide HTTPS scans over
//! device populations with realistic RNG failures, the distributed batch-GCD
//! computation that factors every shared-prime key, the implementation
//! fingerprints of §3.3, and the longitudinal analyses behind every table
//! and figure.
//!
//! ## Quick start
//!
//! ```no_run
//! use weakkeys::{run_pipeline, BatchMode, StudyConfig};
//! use wk_analysis::{aggregate_series, dataset_totals};
//!
//! let results = run_pipeline(&StudyConfig::test_small(), BatchMode::default())
//!     .expect("scratch-space batch modes can fail on I/O");
//! let table1 = dataset_totals(&results.dataset, results.vulnerable_set());
//! println!("factored {} of {} distinct moduli ({:.2}%)",
//!     table1.vulnerable_moduli,
//!     table1.total_distinct_moduli,
//!     100.0 * table1.vulnerable_fraction());
//! let fig1 = aggregate_series(&results.dataset, results.vulnerable_set());
//! println!("{}", wk_analysis::report::render_series(&fig1));
//! ```
//!
//! ## Crate map
//!
//! | layer | crate | paper section |
//! |---|---|---|
//! | arbitrary-precision arithmetic | `wk-bigint` | §2.2-2.3 substrate |
//! | RNG failure models | `wk-rng` | §2.4 |
//! | key generation | `wk-keygen` | §2.4, §3.3.4 |
//! | batch GCD (classic, distributed, naive) | `wk-batchgcd` | §3.2, Fig. 2 |
//! | certificates + vendor templates | `wk-cert` | §3.3.1 |
//! | scan simulator | `wk-scan` | §3.1 |
//! | fingerprinting | `wk-fingerprint` | §3.3 |
//! | longitudinal analysis | `wk-analysis` | §4 |
//! | pipeline + disclosure data | `weakkeys` (this crate) | §2.5, §3-§4 |

#![forbid(unsafe_code)]

pub mod disclosure;
pub mod pipeline;

pub use disclosure::{
    render_table2, table2, NotifiedVendor, RSA_NOTIFIED_2012, TLS_AFFECTED, TOTAL_NOTIFIED_2012,
};
pub use pipeline::{
    analyze_dataset, partition_statuses, run_pipeline, BatchMode, PipelineError, StatusPartition,
    StudyResults,
};
pub use wk_batchgcd::ClusterConfig;
pub use wk_scan::StudyConfig;
