//! The end-to-end study pipeline.
//!
//! One call reproduces the paper's methodology chain (§3): simulate the
//! six-year scan corpus, batch-GCD every distinct modulus, set aside
//! bit-error hits, detect MITM key substitution, fingerprint vendors, and
//! hand the result to the analysis layer.

use std::collections::HashSet;
use std::fmt;
use wk_analysis::{labeling::label_dataset_with_cliques, Labeling};
use wk_batchgcd::{
    batch_gcd, distributed_batch_gcd, incremental_batch_gcd, sharded_batch_gcd, BatchStats,
    ClusterConfig, CorpusError, IncrementalError, KeyStatus, ShardStore, TreeCache,
};
use wk_fingerprint::{
    classify_divisor, detect_cliques, detect_key_substitution, DivisorKind, FactoredModulus,
    KeyObservation, MitmSuspect, PrimeClique,
};
use wk_scan::{run_study, ModulusId, StudyConfig, StudyDataset, VendorId};

/// Which batch-GCD algorithm the pipeline runs.
#[derive(Clone, Copy, Debug)]
pub enum BatchMode {
    /// Classic single-tree algorithm with `threads` workers.
    Classic { threads: usize },
    /// The paper's k-subset distributed variant.
    Distributed(ClusterConfig),
    /// Classic algorithm over a disk-backed shard store (DESIGN.md §7):
    /// the corpus is exported to scratch shards of `shard_capacity` moduli
    /// and workers stream them on demand, bounding resident moduli to one
    /// shard per worker. Output is identical to `Classic`.
    Sharded {
        /// Worker threads for the batch-GCD pool.
        threads: usize,
        /// Maximum moduli per shard file.
        shard_capacity: usize,
    },
    /// The delta-update path (DESIGN.md §8): the corpus is split into
    /// `batches` contiguous id-order chunks simulating successive scan
    /// months, and each chunk lands on a scratch shard store + persisted
    /// [`TreeCache`] via [`incremental_batch_gcd`], so every month after
    /// the first pays only delta-proportional tree work. The final chunk's
    /// result covers the whole corpus and is identical to `Classic`;
    /// `batch_stats.delta` carries the last month's per-phase delta
    /// metrics.
    Incremental {
        /// Worker threads for the batch-GCD pool.
        threads: usize,
        /// Maximum moduli per shard file.
        shard_capacity: usize,
        /// Number of simulated scan months (clamped to at least 1).
        batches: usize,
    },
}

impl Default for BatchMode {
    fn default() -> Self {
        BatchMode::Classic { threads: 1 }
    }
}

/// Everything the pipeline produces.
pub struct StudyResults {
    /// The simulated dataset (scans, cert/modulus stores, ground truth).
    pub dataset: StudyDataset,
    /// Moduli with genuinely shared primes (bit-error hits excluded).
    pub vulnerable: HashSet<ModulusId>,
    /// Full factorizations for the vulnerable moduli.
    pub factored: Vec<FactoredModulus>,
    /// Batch-GCD hits whose divisors were smooth — bit-error artifacts set
    /// aside per §3.3.5, not counted as vulnerable.
    pub bit_error_hits: Vec<ModulusId>,
    /// Moduli flagged as MITM key substitution (§3.3.3).
    pub mitm_suspects: Vec<MitmSuspect>,
    /// Vendor labeling (subject rules + clique fingerprint + prime
    /// extrapolation).
    pub labeling: Labeling,
    /// Detected fixed-pool prime cliques (the IBM nine-prime signature).
    pub cliques: Vec<PrimeClique>,
    /// Timing/memory stats from the classic, sharded, or incremental batch
    /// pass (None when the distributed mode ran); sharded and incremental
    /// runs also populate `stats.shard` with shard-store I/O metrics, and
    /// incremental runs populate `stats.delta` with the last month's
    /// per-phase delta metrics.
    pub batch_stats: Option<BatchStats>,
}

impl StudyResults {
    /// Convenience: the vulnerable set as required by `wk-analysis` calls.
    pub fn vulnerable_set(&self) -> &HashSet<ModulusId> {
        &self.vulnerable
    }
}

/// Batch-GCD hits partitioned into the paper's §3.3.5 categories: genuine
/// shared-prime factorizations vs. smooth-divisor bit-error artifacts.
#[derive(Clone, Debug, Default)]
pub struct StatusPartition {
    /// Moduli with genuinely shared primes (bit-error hits excluded).
    pub vulnerable: HashSet<ModulusId>,
    /// Full factorizations for the vulnerable moduli.
    pub factored: Vec<FactoredModulus>,
    /// Hits whose divisors were smooth — corruption artifacts set aside,
    /// not counted as vulnerable.
    pub bit_error_hits: Vec<ModulusId>,
}

/// Partition raw batch-GCD output into vulnerable / factored / bit-error
/// sets.
///
/// `raw` and `statuses` are the parallel per-modulus outputs of any
/// batch-GCD mode (`raw_divisors` and `statuses`); index `i` corresponds to
/// `ModulusId(i)`. This is the status partition `analyze_dataset` applies,
/// exposed so long-running consumers (the `wk-service` audit daemon) can
/// classify each month's incremental result with the same rules.
pub fn partition_statuses(
    raw: &[Option<wk_bigint::Natural>],
    statuses: &[KeyStatus],
) -> StatusPartition {
    let mut partition = StatusPartition::default();
    for (idx, status) in statuses.iter().enumerate() {
        let id = ModulusId(idx as u32);
        match status {
            KeyStatus::NotVulnerable => {}
            KeyStatus::Factored { p, q } => {
                let divisor_kind = raw
                    .get(idx)
                    .and_then(|d| d.as_ref())
                    .map(classify_divisor)
                    .unwrap_or(DivisorKind::SharedPrime);
                // A genuine shared-prime hit always has a (large-)prime
                // divisor; smooth or mixed divisors are corruption
                // artifacts and are set aside (§3.3.5).
                if divisor_kind == DivisorKind::SharedPrime {
                    partition.vulnerable.insert(id);
                    partition.factored.push(FactoredModulus {
                        id,
                        p: p.clone(),
                        q: q.clone(),
                    });
                } else {
                    partition.bit_error_hits.push(id);
                }
            }
            KeyStatus::SharedUnresolved => {
                partition.vulnerable.insert(id);
            }
        }
    }
    partition
}

/// Why a pipeline run failed. The disk-backed batch modes (`Sharded`,
/// `Incremental`) stage the corpus through scratch shard stores and tree
/// caches; any of that I/O can fail, and the pipeline propagates the cause
/// instead of panicking so library consumers (the audit daemon, benches)
/// choose their own recovery.
#[derive(Debug)]
pub enum PipelineError {
    /// Shard-store export, validation, or streaming failed.
    Corpus(CorpusError),
    /// The incremental tree cache could not be built or updated.
    Incremental(IncrementalError),
    /// Scratch-space cleanup failed after an otherwise complete run.
    Cleanup(std::io::Error),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Corpus(e) => write!(f, "shard store failure: {e}"),
            PipelineError::Incremental(e) => write!(f, "tree cache failure: {e}"),
            PipelineError::Cleanup(e) => write!(f, "scratch cleanup failure: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Corpus(e) => Some(e),
            PipelineError::Incremental(e) => Some(e),
            PipelineError::Cleanup(e) => Some(e),
        }
    }
}

impl From<CorpusError> for PipelineError {
    fn from(e: CorpusError) -> Self {
        PipelineError::Corpus(e)
    }
}

impl From<IncrementalError> for PipelineError {
    fn from(e: IncrementalError) -> Self {
        PipelineError::Incremental(e)
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Cleanup(e)
    }
}

/// Run the complete pipeline.
pub fn run_pipeline(study: &StudyConfig, mode: BatchMode) -> Result<StudyResults, PipelineError> {
    let dataset = run_study(study);
    analyze_dataset(dataset, mode)
}

/// Run batch GCD + fingerprinting over an existing dataset (lets callers
/// reuse one simulated corpus across analyses).
pub fn analyze_dataset(
    dataset: StudyDataset,
    mode: BatchMode,
) -> Result<StudyResults, PipelineError> {
    let moduli = dataset.moduli.all();
    let (raw, statuses, batch_stats) = match mode {
        BatchMode::Classic { threads } => {
            let r = batch_gcd(moduli, threads);
            (r.raw_divisors, r.statuses, Some(r.stats))
        }
        BatchMode::Distributed(cfg) => {
            let r = distributed_batch_gcd(moduli, cfg);
            (r.raw_divisors, r.statuses, None)
        }
        BatchMode::Sharded {
            threads,
            shard_capacity,
        } => {
            // Scratch export: the persistent-store workflow (export once,
            // analyze many times) goes through `ModulusStore::export_shards`
            // directly; here the store is transient.
            let dir = wk_batchgcd::scratch_dir("pipeline-shards");
            let store = dataset.moduli.export_shards(&dir, shard_capacity)?;
            let r = sharded_batch_gcd(&store, threads)?;
            store.remove()?;
            (r.raw_divisors, r.statuses, Some(r.stats))
        }
        BatchMode::Incremental {
            threads,
            shard_capacity,
            batches,
        } => {
            // Replay the corpus as `batches` successive scan months: an
            // empty store + cache bootstraps on the first chunk, and every
            // later chunk rides the delta path. Persistent-store workflows
            // keep the store/cache directories across processes; here both
            // are transient.
            let store_dir = wk_batchgcd::scratch_dir("pipeline-incr-store");
            let cache_dir = wk_batchgcd::scratch_dir("pipeline-incr-cache");
            let mut store = ShardStore::create(&store_dir, shard_capacity, std::iter::empty())?;
            let (mut cache, mut r) = TreeCache::build(&cache_dir, &store, threads)?;
            let chunk = moduli.len().div_ceil(batches.max(1)).max(1);
            for month in moduli.chunks(chunk) {
                r = incremental_batch_gcd(&mut store, &mut cache, month, shard_capacity, threads)?;
            }
            cache.remove()?;
            store.remove()?;
            (r.raw_divisors, r.statuses, Some(r.stats))
        }
    };

    // Partition hits: genuine shared-prime factorizations vs. smooth
    // divisors (bit errors).
    let StatusPartition {
        vulnerable,
        factored,
        bit_error_hits,
    } = partition_statuses(&raw, &statuses);

    // MITM detection over all HTTPS observations.
    let mut observations = Vec::new();
    for scan in dataset.https_scans() {
        for rec in &scan.records {
            let Some(leaf) = wk_analysis::record_leaf(&dataset, &rec.certs) else {
                continue;
            };
            observations.push(KeyObservation {
                modulus: rec.modulus,
                ip: rec.ip,
                subject: dataset.certs.get(leaf).subject.render(),
            });
        }
    }
    // A fixed-pool generator (IBM) also serves one modulus at many IPs
    // under many subjects; the Rimon signature is that the substituted key
    // is additionally *not* factorable (the ISP's own healthy key) — filter
    // factored moduli out, as the paper's manual investigation did.
    let mitm_suspects: Vec<MitmSuspect> = detect_key_substitution(&observations, 3, 3)
        .into_iter()
        .filter(|s| !vulnerable.contains(&s.modulus))
        .collect();

    // Fixed-pool clique detection: a 9-to-12-prime clique is the IBM
    // RSA-II/BladeCenter fingerprint (§3.3.1). The paper labels those
    // moduli from the known prime list of [21]; here the list is recovered
    // structurally from the same data.
    let cliques = detect_cliques(&factored, 6);
    let clique_labels: Vec<(PrimeClique, VendorId)> = cliques
        .iter()
        .filter(|c| c.primes.len() <= 12)
        .map(|c| (c.clone(), VendorId::Ibm))
        .collect();

    let labeling = label_dataset_with_cliques(&dataset, &factored, &clique_labels);

    Ok(StudyResults {
        dataset,
        vulnerable,
        factored,
        bit_error_hits,
        mitm_suspects,
        labeling,
        cliques,
        batch_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wk_scan::VendorId;

    fn tiny_config() -> StudyConfig {
        let mut cfg = StudyConfig::test_small();
        cfg.scale = 0.08;
        cfg.background_hosts = 60;
        cfg.ssh_hosts = 30;
        cfg.ssh_vulnerable = 2;
        cfg.mail_hosts = 10;
        cfg
    }

    #[test]
    fn pipeline_runs_and_finds_vulnerable_keys() {
        let results = run_pipeline(&tiny_config(), BatchMode::default()).expect("pipeline");
        assert!(
            !results.vulnerable.is_empty(),
            "simulated study must contain factorable keys"
        );
        assert!(results.factored.len() <= results.vulnerable.len());
        let stats = results
            .batch_stats
            .as_ref()
            .expect("classic mode records stats");
        // The work-stealing pool meters every phase, even single-threaded.
        assert!(stats.product_tree_exec.tasks() > 0);
        assert!(stats.remainder_tree_exec.tasks() > 0);
        assert!(stats.gcd_exec.tasks() > 0);
        assert!(stats.total_exec().busy_total() > std::time::Duration::ZERO);
        // Every factored modulus re-multiplies correctly.
        for f in &results.factored {
            let n = results.dataset.moduli.get(f.id);
            assert_eq!(&(&f.p * &f.q), n);
        }
    }

    #[test]
    fn classic_and_distributed_agree() {
        let cfg = tiny_config();
        let dataset_a = run_study(&cfg);
        let dataset_b = run_study(&cfg);
        let classic =
            analyze_dataset(dataset_a, BatchMode::Classic { threads: 1 }).expect("classic");
        let dist = analyze_dataset(
            dataset_b,
            BatchMode::Distributed(ClusterConfig::sequential(4)),
        )
        .expect("distributed");
        let mut a: Vec<_> = classic.vulnerable.iter().collect();
        let mut b: Vec<_> = dist.vulnerable.iter().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_mode_agrees_with_classic_and_reports_shard_io() {
        let cfg = tiny_config();
        let dataset_a = run_study(&cfg);
        let dataset_b = run_study(&cfg);
        let classic =
            analyze_dataset(dataset_a, BatchMode::Classic { threads: 1 }).expect("classic");
        let sharded = analyze_dataset(
            dataset_b,
            BatchMode::Sharded {
                threads: 2,
                shard_capacity: 64,
            },
        )
        .expect("sharded");
        let mut a: Vec<_> = classic.vulnerable.iter().collect();
        let mut b: Vec<_> = sharded.vulnerable.iter().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        let stats = sharded.batch_stats.expect("sharded mode records stats");
        assert!(stats.shard.shards_written > 0);
        assert_eq!(stats.shard.shards_read, 2 * stats.shard.shards_written);
        assert!(stats.shard.bytes_written > 0);
        assert!(classic.batch_stats.unwrap().shard.is_empty());
    }

    #[test]
    fn incremental_mode_agrees_with_classic_and_reports_delta_metrics() {
        let cfg = tiny_config();
        let dataset_a = run_study(&cfg);
        let dataset_b = run_study(&cfg);
        let classic =
            analyze_dataset(dataset_a, BatchMode::Classic { threads: 1 }).expect("classic");
        let incremental = analyze_dataset(
            dataset_b,
            BatchMode::Incremental {
                threads: 2,
                shard_capacity: 64,
                batches: 3,
            },
        )
        .expect("incremental");
        let mut a: Vec<_> = classic.vulnerable.iter().collect();
        let mut b: Vec<_> = incremental.vulnerable.iter().collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(classic.factored.len(), incremental.factored.len());
        let stats = incremental
            .batch_stats
            .expect("incremental mode records stats");
        // The last chunk ran as a delta against the two cached months.
        assert!(!stats.delta.is_empty());
        assert!(stats.delta.delta_count > 0);
        assert!(stats.delta.cached_count >= stats.delta.delta_count);
        assert!(stats.shard.shards_read > 0);
    }

    #[test]
    fn pipeline_matches_ground_truth() {
        let results = run_pipeline(&tiny_config(), BatchMode::default()).expect("pipeline");
        // No false positives: everything we factored is truly weak (or a
        // duplicate-modulus artifact, which the simulator doesn't produce).
        for id in &results.vulnerable {
            let truth = &results.dataset.truth.moduli[id];
            assert!(truth.weak, "factored a non-weak modulus {id:?}");
        }
        // Recall: most truly-weak moduli are found (singleton pool primes
        // are legitimately invisible to batch GCD).
        let weak_total = results
            .dataset
            .truth
            .moduli
            .values()
            .filter(|t| t.weak)
            .count();
        let found = results.vulnerable.len();
        assert!(
            found * 10 >= weak_total * 5,
            "recall too low: {found}/{weak_total}"
        );
    }

    #[test]
    fn mitm_detected_and_not_counted_vulnerable() {
        let results = run_pipeline(&tiny_config(), BatchMode::default()).expect("pipeline");
        assert!(
            !results.mitm_suspects.is_empty(),
            "Rimon-style substitution must be detected"
        );
        for suspect in &results.mitm_suspects {
            let truth = &results.dataset.truth.moduli[&suspect.modulus];
            assert!(truth.mitm, "MITM false positive");
            assert!(
                !results.vulnerable.contains(&suspect.modulus),
                "the substituted key is not factorable"
            );
        }
    }

    #[test]
    fn labeling_covers_major_vendors() {
        let results = run_pipeline(&tiny_config(), BatchMode::default()).expect("pipeline");
        let labeled: HashSet<VendorId> = results.labeling.cert_vendor.values().copied().collect();
        for vendor in [VendorId::Juniper, VendorId::Hp, VendorId::FritzBox] {
            assert!(labeled.contains(&vendor), "missing {vendor:?}");
        }
    }
}
