//! Property-based equivalence of Barrett reduction against plain division.
//!
//! `x.barrett_rem(n, recip)` must agree with `x.div_rem(n).1` for every
//! `(x, n)` and every reciprocal capacity — single-step or chunk-folded,
//! exact or deliberately undersized `mu` never changes the value, only the
//! correction count. Includes the Knuth-division add-back shape as a
//! pinned regression: moduli of the form `2^a - 2^b` drive the schoolbook
//! quotient-digit estimate to its maximum overshoot.

use proptest::prelude::*;
use wk_bigint::{Natural, Reciprocal};

/// Strategy: an arbitrary Natural up to `max_limbs` limbs, biased toward
/// carry-heavy shapes (all-ones limbs, single bits).
fn natural(max_limbs: usize) -> impl Strategy<Value = Natural> {
    prop_oneof![
        8 => proptest::collection::vec(any::<u64>(), 0..=max_limbs)
            .prop_map(Natural::from_limbs),
        2 => proptest::collection::vec(
            prop_oneof![Just(0u64), Just(u64::MAX), Just(1u64)], 0..=max_limbs)
            .prop_map(Natural::from_limbs),
        1 => (0u64..(64 * max_limbs as u64)).prop_map(|b| {
            let mut n = Natural::zero();
            n.set_bit(b, true);
            n
        }),
    ]
}

fn nonzero_natural(max_limbs: usize) -> impl Strategy<Value = Natural> {
    natural(max_limbs).prop_map(|n| if n.is_zero() { Natural::one() } else { n })
}

/// `2^a - 2^b` (`a > b`): long runs of set limbs that force quotient-digit
/// overshoot in schoolbook division and maximal correction pressure in
/// Barrett reduction.
fn pow2_minus_pow2(a: u64, b: u64) -> Natural {
    let mut hi = Natural::zero();
    hi.set_bit(a, true);
    let mut lo = Natural::zero();
    lo.set_bit(b, true);
    &hi - &lo
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Default-capacity reciprocal: one-step path for values below
    /// `beta^2m`, fold path above.
    #[test]
    fn barrett_matches_div_rem(x in natural(40), n in nonzero_natural(12)) {
        let recip = Reciprocal::new(&n).unwrap();
        let got = x.barrett_rem(&n, &recip).unwrap();
        prop_assert_eq!(got, x.div_rem(&n).1);
    }

    /// Capacity sweep: undersized caps force chunk folding, oversized caps
    /// raise `mu` precision — the remainder must not move.
    #[test]
    fn barrett_matches_div_rem_across_capacities(
        x in natural(24),
        n in nonzero_natural(8),
        cap in 1usize..40,
    ) {
        let recip = Reciprocal::with_capacity(&n, cap).unwrap();
        let got = x.barrett_rem(&n, &recip).unwrap();
        prop_assert_eq!(got, x.div_rem(&n).1);
    }

    /// Sparse power-of-two-difference moduli (the add-back family) against
    /// dense dividends.
    #[test]
    fn barrett_matches_div_rem_on_addback_family(
        x in natural(20),
        a in 2u64..512,
        b_off in 1u64..511,
    ) {
        let b = b_off.min(a - 1);
        let n = pow2_minus_pow2(a, a - b);
        let recip = Reciprocal::new(&n).unwrap();
        let got = x.barrett_rem(&n, &recip).unwrap();
        prop_assert_eq!(got, x.div_rem(&n).1);
    }
}

/// The classic Knuth add-back witness: `a = 2^512 - 1` against
/// `b = 2^192 - 2^64`. The all-ones dividend over the
/// `[0xFFFF.., 0xFFFF.., 0][..]`-shaped divisor maximizes the trial-digit
/// overshoot that the add-back branch corrects.
#[test]
fn knuth_addback_shape_is_exact() {
    let mut pow512 = Natural::zero();
    pow512.set_bit(512, true);
    let a = &pow512 - &Natural::one(); // 2^512 - 1
    let b = pow2_minus_pow2(192, 64);
    let (q, r) = a.div_rem(&b);
    // Division identity, checked independently of Barrett.
    assert_eq!(&(&(&q * &b) + &r), &a);
    assert!(r < b);

    let recip = Reciprocal::new(&b).unwrap();
    assert_eq!(a.barrett_rem(&b, &recip).unwrap(), r);

    // The same pair through every interesting capacity, including ones
    // that force multi-chunk folds of the 8-limb dividend.
    for cap in [1usize, 3, 4, 5, 6, 8, 11, 16, 40] {
        let recip = Reciprocal::with_capacity(&b, cap).unwrap();
        assert_eq!(
            a.barrett_rem(&b, &recip).unwrap(),
            r,
            "capacity {cap} changed the remainder"
        );
    }
}
