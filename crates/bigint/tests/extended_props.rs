//! Property tests for the extended arithmetic: NTT multiplication, integer
//! square root, lcm, and cross-algorithm agreement at dispatch boundaries.

use proptest::prelude::*;
use wk_bigint::Natural;

fn natural(max_limbs: usize) -> impl Strategy<Value = Natural> {
    proptest::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(Natural::from_limbs)
}

fn nonzero_natural(max_limbs: usize) -> impl Strategy<Value = Natural> {
    natural(max_limbs).prop_map(|n| if n.is_zero() { Natural::one() } else { n })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// NTT multiplication agrees with the dispatched algorithms at every
    /// size (the dispatcher itself only uses NTT above 2048 limbs, so this
    /// cross-checks the independent code path).
    #[test]
    fn ntt_matches_dispatched(a in natural(80), b in natural(80)) {
        prop_assert_eq!(wk_bigint::mul_ntt(&a, &b), &a * &b);
    }

    /// isqrt returns the exact floor square root.
    #[test]
    fn isqrt_bounds(a in natural(30)) {
        let r = a.isqrt();
        prop_assert!(r.square() <= a);
        let r1 = &r + &Natural::one();
        prop_assert!(r1.square() > a);
    }

    /// Perfect squares round-trip through isqrt.
    #[test]
    fn perfect_square_roundtrip(a in natural(15)) {
        let sq = a.square();
        prop_assert!(sq.is_perfect_square());
        prop_assert_eq!(sq.isqrt(), a);
    }

    /// lcm * gcd == a * b.
    #[test]
    fn lcm_gcd_identity(a in nonzero_natural(12), b in nonzero_natural(12)) {
        prop_assert_eq!(&a.lcm(&b) * &a.gcd(&b), &a * &b);
    }

    /// lcm is divisible by both arguments.
    #[test]
    fn lcm_is_common_multiple(a in nonzero_natural(8), b in nonzero_natural(8)) {
        let l = a.lcm(&b);
        prop_assert!((&l % &a).is_zero());
        prop_assert!((&l % &b).is_zero());
    }

    /// NTT at asymmetric sizes (one operand far larger).
    #[test]
    fn ntt_asymmetric(a in natural(4), b in natural(200)) {
        prop_assert_eq!(wk_bigint::mul_ntt(&a, &b), &a * &b);
    }

    /// The dispatched product crosses the NTT threshold consistently:
    /// build operands just below/above 2048 limbs deterministically from a
    /// seed and compare against schoolbook on a truncated check — instead,
    /// verify the ring identity (a+1)*b == a*b + b at large sizes, which
    /// any dispatch inconsistency would break.
    #[test]
    fn large_dispatch_ring_identity(seed in 0u64..32) {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        let limbs: Vec<u64> = (0..2100)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        let a = Natural::from_limbs(limbs.clone());
        let b = Natural::from_limbs(limbs.into_iter().rev().collect());
        let lhs = &(&a + &Natural::one()) * &b; // NTT path (2100 limbs)
        let rhs = &(&a * &b) + &b;
        prop_assert_eq!(lhs, rhs);
    }
}
