//! Property-based tests for `wk-bigint`.
//!
//! Two layers of oracle:
//! * small values are checked against native `u128` arithmetic;
//! * large values are checked against algebraic identities (ring axioms,
//!   the Euclidean division identity, Bezout, Fermat), which hold for every
//!   input regardless of size.

use proptest::prelude::*;
use wk_bigint::{Integer, Natural};

/// Strategy: an arbitrary Natural up to `max_limbs` limbs, biased toward
/// interesting shapes (all-ones limbs, single bits, zero).
fn natural(max_limbs: usize) -> impl Strategy<Value = Natural> {
    prop_oneof![
        8 => proptest::collection::vec(any::<u64>(), 0..=max_limbs)
            .prop_map(Natural::from_limbs),
        1 => proptest::collection::vec(prop_oneof![Just(0u64), Just(u64::MAX), Just(1u64)], 0..=max_limbs)
            .prop_map(Natural::from_limbs),
        1 => (0u64..(64 * max_limbs as u64)).prop_map(|b| {
            let mut n = Natural::zero();
            n.set_bit(b, true);
            n
        }),
    ]
}

fn nonzero_natural(max_limbs: usize) -> impl Strategy<Value = Natural> {
    natural(max_limbs).prop_map(|n| if n.is_zero() { Natural::one() } else { n })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // ---- u128 oracle ----

    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let sum = &Natural::from(a) + &Natural::from(b);
        prop_assert_eq!(sum, Natural::from(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let prod = &Natural::from(a) * &Natural::from(b);
        prop_assert_eq!(prod, Natural::from(a as u128 * b as u128));
    }

    #[test]
    fn div_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = Natural::from(a).div_rem(&Natural::from(b));
        prop_assert_eq!(q, Natural::from(a / b));
        prop_assert_eq!(r, Natural::from(a % b));
    }

    #[test]
    fn gcd_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        fn g(mut a: u128, mut b: u128) -> u128 {
            while b != 0 { let t = a % b; a = b; b = t; }
            a
        }
        prop_assert_eq!(Natural::from(a).gcd(&Natural::from(b)), Natural::from(g(a, b)));
    }

    // ---- algebraic identities at large sizes ----

    #[test]
    fn add_commutes(a in natural(40), b in natural(40)) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associates(a in natural(30), b in natural(30), c in natural(30)) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn add_sub_round_trip(a in natural(40), b in natural(40)) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn mul_commutes(a in natural(60), b in natural(60)) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes(a in natural(40), b in natural(40), c in natural(40)) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    // Crosses the Karatsuba threshold (32 limbs) and stresses block mul.
    #[test]
    fn mul_associates_large(a in natural(50), b in natural(50), c in natural(50)) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn division_identity(a in natural(80), b in nonzero_natural(40)) {
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    // Forces the Burnikel-Ziegler path (divisor > 48 limbs).
    #[test]
    fn division_identity_bz(a in natural(200), b in nonzero_natural(120)) {
        let b = &b + &(&Natural::one() << (64 * 60)); // ensure > threshold limbs
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn exact_division_round_trips(q in natural(60), b in nonzero_natural(60)) {
        let a = &q * &b;
        let (q2, r2) = a.div_rem(&b);
        prop_assert_eq!(q2, q);
        prop_assert!(r2.is_zero());
    }

    #[test]
    fn gcd_is_common_divisor_and_linear_combo(a in nonzero_natural(20), b in nonzero_natural(20)) {
        let g = a.gcd(&b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
        let (g2, x, y) = a.extended_gcd(&b);
        prop_assert_eq!(&g, &g2);
        let lhs = &(&Integer::from(a) * &x) + &(&Integer::from(b) * &y);
        prop_assert_eq!(lhs, Integer::from(g));
    }

    #[test]
    fn gcd_lehmer_matches_binary(a in natural(30), b in natural(30)) {
        prop_assert_eq!(a.gcd(&b), a.gcd_binary(&b));
    }

    #[test]
    fn gcd_scaling_law(a in nonzero_natural(10), b in nonzero_natural(10), k in nonzero_natural(5)) {
        // gcd(ka, kb) = k * gcd(a, b)
        prop_assert_eq!((&a * &k).gcd(&(&b * &k)), &a.gcd(&b) * &k);
    }

    #[test]
    fn shift_is_mul_by_power_of_two(a in natural(20), s in 0u64..500) {
        prop_assert_eq!(&a << s, &a * &(&Natural::one() << s));
    }

    #[test]
    fn shr_shl_round_trip(a in natural(20), s in 0u64..500) {
        prop_assert_eq!(&(&a << s) >> s, a);
    }

    #[test]
    fn format_parse_round_trip(a in natural(30)) {
        prop_assert_eq!(Natural::from_hex(&a.to_hex()).unwrap(), a.clone());
        prop_assert_eq!(Natural::from_decimal(&a.to_decimal()).unwrap(), a.clone());
        prop_assert_eq!(Natural::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn mod_pow_mul_law(b in natural(8), e1 in 0u64..200, e2 in 0u64..200, m in nonzero_natural(8)) {
        // b^(e1+e2) == b^e1 * b^e2 (mod m)
        let m = &m + &Natural::one(); // avoid modulus 1 edge dominating
        let lhs = b.mod_pow(&Natural::from(e1 + e2), &m);
        let rhs = b
            .mod_pow(&Natural::from(e1), &m)
            .mod_mul(&b.mod_pow(&Natural::from(e2), &m), &m);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn mod_inverse_is_inverse(a in nonzero_natural(8), m in nonzero_natural(8)) {
        let m = &m + &Natural::from(2u64);
        if let Some(inv) = a.mod_inverse(&m) {
            prop_assert_eq!(a.mod_mul(&inv, &m), Natural::one());
            prop_assert!(inv < m);
        } else {
            prop_assert!(!(&a % &m).gcd(&m).is_one() || (&a % &m).is_zero());
        }
    }

    #[test]
    fn miller_rabin_accepts_products_of_distinct_primes_never(
        i in 0usize..160, j in 0usize..160,
    ) {
        let primes = wk_bigint::first_primes(160);
        let n = Natural::from(primes[i] as u128 * primes[j] as u128);
        prop_assert!(!n.is_probable_prime_fixed());
    }

    #[test]
    fn abs_diff_symmetric(a in natural(20), b in natural(20)) {
        prop_assert_eq!(a.abs_diff(&b), b.abs_diff(&a));
        if a >= b {
            prop_assert_eq!(&a.abs_diff(&b) + &b, a);
        }
    }
}
