//! Property-based equivalence of the arena-backed kernels against their
//! allocating forms.
//!
//! The `*_into` variants and the thread-arena buffer pool behind them
//! (`wk_bigint::arena`) must be *invisible*: for every operand shape —
//! including sizes straddling the Karatsuba (64-limb) and Toom-3
//! (352-limb) dispatch thresholds — the results must be byte-identical to
//! the plain operators, even when the arena has been deliberately warmed
//! with dirty buffers full of stale limbs.

use proptest::prelude::*;
use wk_bigint::{arena, Natural, Reciprocal};

/// Strategy: an arbitrary Natural up to `max_limbs` limbs, biased toward
/// carry-heavy shapes (all-ones limbs, single bits).
fn natural(max_limbs: usize) -> impl Strategy<Value = Natural> {
    prop_oneof![
        8 => proptest::collection::vec(any::<u64>(), 0..=max_limbs)
            .prop_map(Natural::from_limbs),
        2 => proptest::collection::vec(
            prop_oneof![Just(0u64), Just(u64::MAX), Just(1u64)], 0..=max_limbs)
            .prop_map(Natural::from_limbs),
        1 => (0u64..(64 * max_limbs as u64)).prop_map(|b| {
            let mut n = Natural::zero();
            n.set_bit(b, true);
            n
        }),
    ]
}

fn nonzero_natural(max_limbs: usize) -> impl Strategy<Value = Natural> {
    natural(max_limbs).prop_map(|n| if n.is_zero() { Natural::one() } else { n })
}

/// Park stale garbage in the thread arena so every checkout hands the
/// kernel a dirty buffer: any missing clear/normalize shows up as a value
/// difference.
fn dirty_arena() {
    for i in 0..8u64 {
        let mut junk = arena::take(64 + i as usize * 37);
        junk.extend(std::iter::repeat_n(0xdead_beef_cafe_f00d ^ i, 40));
        arena::put(junk);
    }
}

/// Deterministic operand for the threshold-straddling fixed sizes.
fn pseudo(limbs: usize, seed: u64) -> Natural {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    Natural::from_limbs(
        (0..limbs)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `mul_into` into a recycled buffer equals the allocating product.
    #[test]
    fn mul_into_matches_operator(a in natural(70), b in natural(70)) {
        dirty_arena();
        let mut out = Natural::from_limbs(arena::take(4));
        a.mul_into(&b, &mut out);
        prop_assert_eq!(out, &a * &b);
    }

    /// `barrett_rem_into` equals the allocating Barrett form and plain
    /// division, whatever buffer it lands in.
    #[test]
    fn barrett_into_matches_allocating(x in natural(40), n in nonzero_natural(12)) {
        dirty_arena();
        let recip = Reciprocal::new(&n).unwrap();
        let mut out = Natural::from_limbs(arena::take(2));
        x.barrett_rem_into(&n, &recip, &mut out).unwrap();
        prop_assert_eq!(&out, &x.barrett_rem(&n, &recip).unwrap());
        prop_assert_eq!(out, x.div_rem(&n).1);
    }

    /// The arena-cloning `gcd`/`gcd_into` pair equals the reference binary
    /// GCD.
    #[test]
    fn gcd_into_matches_binary(a in natural(24), b in natural(24)) {
        dirty_arena();
        let mut out = Natural::from_limbs(arena::take(3));
        a.gcd_into(&b, &mut out);
        prop_assert_eq!(&out, &a.gcd_binary(&b));
        prop_assert_eq!(out, a.gcd(&b));
    }

    /// `clone_natural` through the arena is value-identical.
    #[test]
    fn arena_clone_is_identity(a in natural(48)) {
        dirty_arena();
        let c = arena::clone_natural(&a);
        prop_assert_eq!(&c, &a);
        arena::recycle(c);
    }

    /// `keep_low_bits` equals the subtract-the-high-part definition.
    #[test]
    fn keep_low_bits_matches_mask(a in natural(24), bits in 0u64..1600) {
        let mut kept = a.clone();
        kept.keep_low_bits(bits);
        let high = &(&a >> bits) << bits;
        prop_assert_eq!(kept, &a - &high);
    }
}

/// The multiply dispatch thresholds, crossed limb-by-limb: schoolbook /
/// Karatsuba at 63..=65 limbs, Karatsuba / Toom-3 at 351..=353. The split
/// paths share arena scratch; an off-by-one in a split is a value error
/// here long before any bench notices.
#[test]
fn mul_into_across_dispatch_thresholds() {
    dirty_arena();
    for &limbs in &[63usize, 64, 65, 351, 352, 353] {
        let a = pseudo(limbs, limbs as u64);
        let b = pseudo(limbs, limbs as u64 + 1);
        let mut out = Natural::from_limbs(arena::take(1));
        a.mul_into(&b, &mut out);
        assert_eq!(out, &a * &b, "limbs={limbs}");
        // Unbalanced: one operand just under the threshold, one just over.
        let small = pseudo(limbs / 2 + 1, limbs as u64 + 2);
        let mut out2 = Natural::from_limbs(arena::take(1));
        small.mul_into(&a, &mut out2);
        assert_eq!(out2, &small * &a, "unbalanced limbs={limbs}");
        arena::recycle(out);
        arena::recycle(out2);
    }
}

/// Reciprocal-backed reduction at modulus sizes straddling the Newton
/// direct/iterative boundary and the Karatsuba threshold.
#[test]
fn barrett_into_across_modulus_sizes() {
    dirty_arena();
    for &m in &[7usize, 8, 9, 63, 64, 65] {
        let n = pseudo(m, 777 + m as u64);
        let x = pseudo(2 * m + 1, 999 + m as u64);
        let recip = Reciprocal::new(&n).unwrap();
        let mut out = Natural::from_limbs(arena::take(1));
        x.barrett_rem_into(&n, &recip, &mut out).unwrap();
        assert_eq!(out, x.div_rem(&n).1, "m={m}");
        arena::recycle(out);
    }
}
