//! Limb-level primitive operations on little-endian `u64` slices.
//!
//! All multi-precision algorithms in this crate bottom out in the carry /
//! borrow propagating loops defined here. Slices are little-endian: index 0
//! holds the least-significant limb. Functions operating in place document
//! their aliasing requirements; none of them allocate.

/// Number of bits in one limb.
pub const LIMB_BITS: u32 = 64;

/// Add with carry: returns `(sum, carry_out)`.
#[inline(always)]
pub fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let (s1, c1) = a.overflowing_add(b);
    let (s2, c2) = s1.overflowing_add(carry);
    (s2, (c1 as u64) + (c2 as u64))
}

/// Subtract with borrow: returns `(diff, borrow_out)` where `borrow_out` is 0 or 1.
#[inline(always)]
pub fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let (d1, b1) = a.overflowing_sub(b);
    let (d2, b2) = d1.overflowing_sub(borrow);
    (d2, (b1 as u64) + (b2 as u64))
}

/// Full 64x64 -> 128 multiply returning `(lo, hi)`.
#[inline(always)]
pub fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let t = (a as u128) * (b as u128);
    (t as u64, (t >> 64) as u64)
}

/// `a + b*c + carry` returning `(lo, carry_out)`; cannot overflow the 128-bit
/// intermediate because `max + max*max + max < 2^128`.
#[inline(always)]
pub fn mul_add_carry(a: u64, b: u64, c: u64, carry: u64) -> (u64, u64) {
    let t = (a as u128) + (b as u128) * (c as u128) + (carry as u128);
    (t as u64, (t >> 64) as u64)
}

/// In-place addition: `acc += rhs`, where `acc.len() >= rhs.len()`.
/// Returns the final carry (0 or 1); the caller decides whether an extra
/// limb is needed.
pub fn add_assign_slice(acc: &mut [u64], rhs: &[u64]) -> u64 {
    debug_assert!(acc.len() >= rhs.len());
    let mut carry = 0u64;
    for (a, &b) in acc.iter_mut().zip(rhs.iter()) {
        let (s, c) = adc(*a, b, carry);
        *a = s;
        carry = c;
    }
    if carry != 0 {
        for a in acc[rhs.len()..].iter_mut() {
            let (s, c) = a.overflowing_add(carry);
            *a = s;
            carry = c as u64;
            if carry == 0 {
                break;
            }
        }
    }
    carry
}

/// In-place subtraction: `acc -= rhs`, where `acc >= rhs` numerically and
/// `acc.len() >= rhs.len()`. Returns the final borrow, which must be 0 if the
/// precondition holds; callers `debug_assert!` on it.
pub fn sub_assign_slice(acc: &mut [u64], rhs: &[u64]) -> u64 {
    debug_assert!(acc.len() >= rhs.len());
    let mut borrow = 0u64;
    for (a, &b) in acc.iter_mut().zip(rhs.iter()) {
        let (d, bo) = sbb(*a, b, borrow);
        *a = d;
        borrow = bo;
    }
    if borrow != 0 {
        for a in acc[rhs.len()..].iter_mut() {
            let (d, bo) = a.overflowing_sub(borrow);
            *a = d;
            borrow = bo as u64;
            if borrow == 0 {
                break;
            }
        }
    }
    borrow
}

/// `acc[..] += rhs * m`, propagating the carry through all of `acc`.
/// `acc.len()` must be at least `rhs.len() + 1` to absorb the carry unless
/// the caller knows the result fits. Returns the carry out of `acc`.
pub fn add_mul_slice(acc: &mut [u64], rhs: &[u64], m: u64) -> u64 {
    let mut carry = 0u64;
    for (a, &b) in acc.iter_mut().zip(rhs.iter()) {
        let (lo, hi) = mul_add_carry(*a, b, m, carry);
        *a = lo;
        carry = hi;
    }
    if carry != 0 {
        for a in acc[rhs.len()..].iter_mut() {
            let (s, c) = a.overflowing_add(carry);
            *a = s;
            carry = c as u64;
            if carry == 0 {
                break;
            }
        }
    }
    carry
}

/// `acc[..] -= rhs * m`; returns the final borrow limb (the amount by which
/// the subtraction underflowed at the top). Used by Knuth division step D4.
pub fn sub_mul_slice(acc: &mut [u64], rhs: &[u64], m: u64) -> u64 {
    debug_assert!(acc.len() >= rhs.len());
    let mut borrow = 0u64; // borrow is a full limb here
    for (a, &b) in acc.iter_mut().zip(rhs.iter()) {
        // a - b*m - borrow, tracked in 128 bits.
        let prod = (b as u128) * (m as u128) + (borrow as u128);
        let lo = prod as u64;
        let hi = (prod >> 64) as u64;
        let (d, under) = a.overflowing_sub(lo);
        *a = d;
        borrow = hi + under as u64;
    }
    for a in acc[rhs.len()..].iter_mut() {
        if borrow == 0 {
            break;
        }
        let (d, under) = a.overflowing_sub(borrow);
        *a = d;
        borrow = under as u64;
    }
    borrow
}

/// Compare two little-endian limb slices numerically. Leading zero limbs are
/// permitted on either side.
pub fn cmp_slices(a: &[u64], b: &[u64]) -> core::cmp::Ordering {
    use core::cmp::Ordering;
    let an = effective_len(a);
    let bn = effective_len(b);
    if an != bn {
        return an.cmp(&bn);
    }
    for i in (0..an).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Length of `a` ignoring high zero limbs.
#[inline]
pub fn effective_len(a: &[u64]) -> usize {
    let mut n = a.len();
    while n > 0 && a[n - 1] == 0 {
        n -= 1;
    }
    n
}

/// Shift `src` left by `bits` (< 64) into `dst`, returning the limb shifted
/// out of the top. `dst.len() == src.len()`; `dst` may alias `src`.
pub fn shl_limbs_small(dst: &mut [u64], src: &[u64], bits: u32) -> u64 {
    debug_assert!(bits < LIMB_BITS);
    debug_assert_eq!(dst.len(), src.len());
    if bits == 0 {
        dst.copy_from_slice(src);
        return 0;
    }
    let mut carry = 0u64;
    for i in 0..src.len() {
        let v = src[i];
        dst[i] = (v << bits) | carry;
        carry = v >> (LIMB_BITS - bits);
    }
    carry
}

/// Shift `src` right by `bits` (< 64) into `dst`. `dst.len() == src.len()`;
/// `dst` may alias `src`.
pub fn shr_limbs_small(dst: &mut [u64], src: &[u64], bits: u32) {
    debug_assert!(bits < LIMB_BITS);
    debug_assert_eq!(dst.len(), src.len());
    if bits == 0 {
        dst.copy_from_slice(src);
        return;
    }
    let n = src.len();
    for i in 0..n {
        let lo = src[i] >> bits;
        let hi = if i + 1 < n {
            src[i + 1] << (LIMB_BITS - bits)
        } else {
            0
        };
        dst[i] = lo | hi;
    }
}

/// 128/64 -> 64 division used by Knuth D3: divides `(hi, lo)` by `d`
/// assuming `hi < d` so the quotient fits one limb. Returns `(q, r)`.
#[inline]
pub fn div_wide(hi: u64, lo: u64, d: u64) -> (u64, u64) {
    debug_assert!(hi < d);
    let n = ((hi as u128) << 64) | (lo as u128);
    ((n / d as u128) as u64, (n % d as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_carries() {
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(1, 2, 0), (3, 0));
    }

    #[test]
    fn sbb_borrows() {
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(0, u64::MAX, 1), (0, 1));
        assert_eq!(sbb(5, 3, 1), (1, 0));
    }

    #[test]
    fn mul_wide_extremes() {
        assert_eq!(mul_wide(u64::MAX, u64::MAX), (1, u64::MAX - 1));
        assert_eq!(mul_wide(0, u64::MAX), (0, 0));
    }

    #[test]
    fn add_assign_ripple() {
        let mut acc = vec![u64::MAX, u64::MAX, 0];
        let carry = add_assign_slice(&mut acc, &[1]);
        assert_eq!(carry, 0);
        assert_eq!(acc, vec![0, 0, 1]);
    }

    #[test]
    fn add_assign_overflow_reported() {
        let mut acc = vec![u64::MAX];
        assert_eq!(add_assign_slice(&mut acc, &[1]), 1);
        assert_eq!(acc, vec![0]);
    }

    #[test]
    fn sub_assign_ripple() {
        let mut acc = vec![0, 0, 1];
        let borrow = sub_assign_slice(&mut acc, &[1]);
        assert_eq!(borrow, 0);
        assert_eq!(acc, vec![u64::MAX, u64::MAX, 0]);
    }

    #[test]
    fn sub_mul_matches_u128() {
        let mut acc = vec![100, 200];
        let borrow = sub_mul_slice(&mut acc, &[3], 7);
        assert_eq!(borrow, 0);
        assert_eq!(acc, vec![79, 200]);
    }

    #[test]
    fn cmp_ignores_leading_zeros() {
        use core::cmp::Ordering;
        assert_eq!(cmp_slices(&[1, 0, 0], &[1]), Ordering::Equal);
        assert_eq!(cmp_slices(&[0, 1], &[5]), Ordering::Greater);
        assert_eq!(cmp_slices(&[5], &[0, 1]), Ordering::Less);
    }

    #[test]
    fn shifts_round_trip() {
        let src = vec![0x0123_4567_89ab_cdef, 0xfedc_ba98_7654_3210];
        let mut shifted = vec![0; 2];
        let carry = shl_limbs_small(&mut shifted, &src, 13);
        let mut back = vec![0; 2];
        shr_limbs_small(&mut back, &shifted, 13);
        // Top 13 bits were carried out; put them back for equality check.
        back[1] |= carry << (64 - 13);
        assert_eq!(back, src);
    }

    #[test]
    fn div_wide_basic() {
        let (q, r) = div_wide(1, 0, 3);
        // 2^64 / 3
        assert_eq!(q, 0x5555_5555_5555_5555);
        assert_eq!(r, 1);
    }
}
