//! Parsing and formatting: decimal and hexadecimal.

use crate::natural::Natural;
use core::fmt;
use core::str::FromStr;

/// Error returned when parsing a [`Natural`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNaturalError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseNaturalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
        }
    }
}

impl std::error::Error for ParseNaturalError {}

impl Natural {
    /// Parse from a hexadecimal string (no prefix, case-insensitive,
    /// underscores permitted as separators).
    pub fn from_hex(s: &str) -> Result<Natural, ParseNaturalError> {
        let digits: Vec<u8> = s
            .chars()
            .filter(|&c| c != '_')
            .map(|c| {
                c.to_digit(16).map(|d| d as u8).ok_or(ParseNaturalError {
                    kind: ParseErrorKind::InvalidDigit(c),
                })
            })
            .collect::<Result<_, _>>()?;
        if digits.is_empty() {
            return Err(ParseNaturalError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut limbs = vec![0u64; digits.len().div_ceil(16)];
        for (i, &d) in digits.iter().rev().enumerate() {
            limbs[i / 16] |= (d as u64) << (4 * (i % 16));
        }
        Ok(Natural::from_limbs(limbs))
    }

    /// Lowercase hexadecimal representation without prefix ("0" for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::with_capacity(self.limb_len() * 16);
        let mut iter = self.limbs().iter().rev();
        if let Some(top) = iter.next() {
            s.push_str(&format!("{top:x}"));
        }
        for l in iter {
            s.push_str(&format!("{l:016x}"));
        }
        s
    }

    /// Decimal representation. Uses repeated division by 10^19; intended for
    /// reporting, not for bulk serialization of megabit integers.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        const CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
        let mut chunks: Vec<u64> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_limb(CHUNK);
            chunks.push(r);
            cur = q;
        }
        // The zero case returned early, so at least one chunk was pushed;
        // the most significant chunk prints unpadded.
        let mut high_to_low = chunks.iter().rev();
        let mut s = high_to_low.next().map(u64::to_string).unwrap_or_default();
        for c in high_to_low {
            s.push_str(&format!("{c:019}"));
        }
        s
    }

    /// Parse a decimal string (underscores permitted).
    pub fn from_decimal(s: &str) -> Result<Natural, ParseNaturalError> {
        let mut seen = false;
        let mut acc = Natural::zero();
        let mut block = 0u64;
        let mut block_len = 0u32;
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            let d = c.to_digit(10).ok_or(ParseNaturalError {
                kind: ParseErrorKind::InvalidDigit(c),
            })?;
            seen = true;
            block = block * 10 + d as u64;
            block_len += 1;
            if block_len == 19 {
                acc = acc.mul_limb(10_000_000_000_000_000_000);
                acc += block;
                block = 0;
                block_len = 0;
            }
        }
        if !seen {
            return Err(ParseNaturalError {
                kind: ParseErrorKind::Empty,
            });
        }
        if block_len > 0 {
            acc = acc.mul_limb(10u64.pow(block_len));
            acc += block;
        }
        Ok(acc)
    }
}

impl FromStr for Natural {
    type Err = ParseNaturalError;

    /// Parses decimal by default; a `0x` prefix selects hexadecimal.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
            Natural::from_hex(hex)
        } else {
            Natural::from_decimal(s)
        }
    }
}

impl fmt::Display for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "", &self.to_decimal())
    }
}

impl fmt::Debug for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Hex is the natural debugging view for crypto-sized integers.
        write!(f, "0x{}", self.to_hex())
    }
}

impl fmt::LowerHex for Natural {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad_integral(true, "0x", &self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn hex_round_trip() {
        for v in [0u128, 1, 15, 16, 0xdead_beef, u64::MAX as u128, u128::MAX] {
            let h = n(v).to_hex();
            assert_eq!(Natural::from_hex(&h).unwrap(), n(v), "v={v:#x}");
            assert_eq!(h, format!("{v:x}"), "v={v:#x}");
        }
    }

    #[test]
    fn decimal_round_trip() {
        for v in [0u128, 1, 9, 10, 12345678901234567890, u128::MAX] {
            let d = n(v).to_decimal();
            assert_eq!(d, v.to_string());
            assert_eq!(Natural::from_decimal(&d).unwrap(), n(v));
        }
    }

    #[test]
    fn from_str_dispatches_on_prefix() {
        assert_eq!("255".parse::<Natural>().unwrap(), n(255));
        assert_eq!("0xff".parse::<Natural>().unwrap(), n(255));
        assert_eq!("0XFF".parse::<Natural>().unwrap(), n(255));
        assert_eq!("1_000_000".parse::<Natural>().unwrap(), n(1_000_000));
    }

    #[test]
    fn parse_errors() {
        assert!("".parse::<Natural>().is_err());
        assert!("0x".parse::<Natural>().is_err());
        assert!("12a".parse::<Natural>().is_err());
        assert!("0xgg".parse::<Natural>().is_err());
        assert!("_".parse::<Natural>().is_err());
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", n(1234)), "1234");
        assert_eq!(format!("{:?}", n(255)), "0xff");
        assert_eq!(format!("{:x}", n(255)), "ff");
        assert_eq!(format!("{}", Natural::zero()), "0");
    }

    #[test]
    fn large_round_trip_via_both_bases() {
        let mut x = Natural::one();
        x.set_bit(1000, true);
        x += 12345u64;
        assert_eq!(Natural::from_hex(&x.to_hex()).unwrap(), x);
        assert_eq!(Natural::from_decimal(&x.to_decimal()).unwrap(), x);
    }

    #[test]
    fn decimal_multi_chunk_padding() {
        // Exercise the 19-digit zero padding between chunks.
        let v = Natural::from_decimal("100000000000000000000000000001").unwrap();
        assert_eq!(v.to_decimal(), "100000000000000000000000000001");
    }
}
