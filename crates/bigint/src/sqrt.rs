//! Integer square root and related helpers.

use crate::natural::Natural;

impl Natural {
    /// Integer square root: the largest `r` with `r*r <= self`.
    ///
    /// Newton's iteration on integers with a bit-length-based initial
    /// guess; converges in O(log bits) iterations.
    pub fn isqrt(&self) -> Natural {
        if self.is_zero() || self.is_one() {
            return self.clone();
        }
        // Initial guess: 2^ceil(bits/2) >= sqrt(self).
        let mut x = &Natural::one() << self.bit_len().div_ceil(2);
        loop {
            // x' = (x + self/x) / 2
            let next = &(&x + &(self / &x)) >> 1u64;
            if next >= x {
                break;
            }
            x = next;
        }
        debug_assert!(&x.square() <= self);
        x
    }

    /// Is the value a perfect square?
    pub fn is_perfect_square(&self) -> bool {
        // Cheap residue filter: squares mod 16 are in {0,1,4,9}.
        if !self.is_zero() {
            let low = self.low_limb() & 0xf;
            if !matches!(low, 0 | 1 | 4 | 9) {
                return false;
            }
        }
        self.isqrt().square() == *self
    }

    /// Least common multiple. `lcm(0, x) == 0`.
    pub fn lcm(&self, other: &Natural) -> Natural {
        if self.is_zero() || other.is_zero() {
            return Natural::zero();
        }
        &(self / &self.gcd(other)) * other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn isqrt_matches_u128() {
        for v in [
            0u128,
            1,
            2,
            3,
            4,
            8,
            9,
            15,
            16,
            17,
            99,
            100,
            u64::MAX as u128,
            u128::MAX,
        ] {
            let r = n(v).isqrt().to_u128().unwrap();
            assert!(r * r <= v, "v={v} r={r}");
            assert!(
                r.checked_add(1)
                    .is_none_or(|r1| r1.checked_mul(r1).is_none_or(|sq| sq > v)),
                "v={v} r={r}"
            );
        }
    }

    #[test]
    fn isqrt_of_large_square_is_exact() {
        let mut x = Natural::one();
        x.set_bit(777, true);
        x += 12345u64;
        assert_eq!(x.square().isqrt(), x);
    }

    #[test]
    fn perfect_square_detection() {
        assert!(n(0).is_perfect_square());
        assert!(n(1).is_perfect_square());
        assert!(n(144).is_perfect_square());
        assert!(!n(145).is_perfect_square());
        assert!(!n(2).is_perfect_square());
        let big = n(0xdead_beef_cafe).square();
        assert!(big.is_perfect_square());
        assert!(!(&big + &n(1)).is_perfect_square());
    }

    #[test]
    fn lcm_values() {
        assert_eq!(n(4).lcm(&n(6)), n(12));
        assert_eq!(n(7).lcm(&n(13)), n(91));
        assert_eq!(n(0).lcm(&n(5)), n(0));
        assert_eq!(n(5).lcm(&n(5)), n(5));
    }

    #[test]
    fn lcm_gcd_product_identity() {
        let a = n(35 * 9);
        let b = n(21 * 4);
        assert_eq!(&a.lcm(&b) * &a.gcd(&b), &a * &b);
    }
}
