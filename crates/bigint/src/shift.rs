//! Bit-shift operators for [`Natural`].

use crate::limb;
use crate::natural::Natural;
use core::ops::{Shl, ShlAssign, Shr, ShrAssign};

impl Natural {
    /// `self << bits` as a new value.
    pub fn shl_bits(&self, bits: u64) -> Natural {
        if self.is_zero() || bits == 0 {
            let mut out = self.clone();
            out.shl_assign_bits(bits);
            return out;
        }
        let limb_shift = (bits / 64) as usize;
        let bit_shift = (bits % 64) as u32;
        let mut limbs = crate::arena::take(limb_shift + self.limbs.len() + 1);
        limbs.resize(limb_shift + self.limbs.len() + 1, 0);
        let carry = limb::shl_limbs_small(
            &mut limbs[limb_shift..limb_shift + self.limbs.len()],
            &self.limbs,
            bit_shift,
        );
        let top = limb_shift + self.limbs.len();
        limbs[top] = carry;
        Natural::from_limbs(limbs)
    }

    /// `self >>= bits` in place.
    pub fn shr_assign_bits(&mut self, bits: u64) {
        if self.is_zero() || bits == 0 {
            return;
        }
        let limb_shift = (bits / 64) as usize;
        if limb_shift >= self.limbs.len() {
            self.limbs.clear();
            return;
        }
        self.limbs.drain(..limb_shift);
        let bit_shift = (bits % 64) as u32;
        let n = self.limbs.len();
        if bit_shift != 0 {
            let src = core::mem::take(&mut self.limbs);
            let mut dst = crate::arena::take(n);
            dst.resize(n, 0);
            limb::shr_limbs_small(&mut dst, &src, bit_shift);
            crate::arena::put(src);
            *self = Natural::from_limbs(dst);
        } else {
            self.normalize();
        }
    }

    /// `self <<= bits` in place.
    pub fn shl_assign_bits(&mut self, bits: u64) {
        if self.is_zero() || bits == 0 {
            return;
        }
        let shifted = self.shl_bits(bits);
        let old = core::mem::replace(self, shifted);
        crate::arena::recycle(old);
    }

    /// Truncate in place to the low `bits` bits: `self mod 2^bits`.
    ///
    /// The scaled remainder tree's child step is a multiply *mod a power of
    /// two* — this is that modulus, done by limb truncation plus one mask
    /// rather than arithmetic.
    pub fn keep_low_bits(&mut self, bits: u64) {
        let whole = (bits / 64) as usize;
        let partial = (bits % 64) as u32;
        if whole >= self.limbs.len() {
            return;
        }
        if partial == 0 {
            self.limbs.truncate(whole);
        } else {
            self.limbs.truncate(whole + 1);
            self.limbs[whole] &= (1u64 << partial) - 1;
        }
        self.normalize();
    }
}

impl Shl<u64> for &Natural {
    type Output = Natural;
    fn shl(self, bits: u64) -> Natural {
        self.shl_bits(bits)
    }
}

impl Shr<u64> for &Natural {
    type Output = Natural;
    fn shr(self, bits: u64) -> Natural {
        let mut out = self.clone();
        out.shr_assign_bits(bits);
        out
    }
}

impl ShlAssign<u64> for Natural {
    fn shl_assign(&mut self, bits: u64) {
        self.shl_assign_bits(bits);
    }
}

impl ShrAssign<u64> for Natural {
    fn shr_assign(&mut self, bits: u64) {
        self.shr_assign_bits(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn shl_matches_u128() {
        for v in [0u128, 1, 0xdead_beef, u64::MAX as u128] {
            for s in [0u64, 1, 13, 63, 64, 65] {
                if v.leading_zeros() as u64 >= s {
                    assert_eq!(&n(v) << s, n(v << s), "v={v} s={s}");
                }
            }
        }
    }

    #[test]
    fn shr_matches_u128() {
        for v in [0u128, 1, 0xdead_beef_cafe_f00d_1234_5678u128, u128::MAX] {
            for s in [0u64, 1, 13, 63, 64, 65, 127, 128, 200] {
                assert_eq!(
                    &n(v) >> s,
                    n(v.checked_shr(s as u32).unwrap_or(0)),
                    "v={v} s={s}"
                );
            }
        }
    }

    #[test]
    fn shift_round_trip_large() {
        let mut x = Natural::one();
        x.set_bit(1000, true);
        let y = &(&x << 777) >> 777;
        assert_eq!(y, x);
    }

    #[test]
    fn keep_low_bits_matches_mask() {
        for v in [1u128, 0xdead_beef_cafe_f00d_1234_5678u128, u128::MAX] {
            for bits in [0u64, 1, 13, 63, 64, 65, 127, 128, 300] {
                let mut x = n(v);
                x.keep_low_bits(bits);
                let expect = if bits >= 128 {
                    v
                } else {
                    v & ((1u128 << bits) - 1)
                };
                assert_eq!(x, n(expect), "v={v} bits={bits}");
            }
        }
        let mut big = Natural::one();
        big.set_bit(1000, true);
        big.keep_low_bits(1000);
        assert_eq!(big, Natural::one());
    }

    #[test]
    fn shr_to_zero() {
        let mut x = n(12345);
        x >>= 1000;
        assert!(x.is_zero());
    }
}
