//! Number-theoretic-transform multiplication over the Goldilocks prime.
//!
//! Karatsuba/Toom-3 give `n^1.58` / `n^1.46`; the batch-GCD feasibility
//! argument (§3.2) ultimately rests on `M(n) = n^(1+o(1))`, which requires
//! FFT-style multiplication. This module implements it the modern way:
//! an iterative radix-2 NTT over `p = 2^64 - 2^32 + 1` ("Goldilocks"),
//! whose multiplicative group contains `2^32`-th roots of unity and whose
//! special form reduces 128-bit products with shifts and adds.
//!
//! Inputs are split into 16-bit digits, so convolution coefficients are
//! bounded by `len * (2^16 - 1)^2 < 2^32 * 2^32 = 2^64 > ...` — precisely:
//! with `len <= 2^26` digits the coefficient bound `len * (2^16-1)^2 <
//! 2^58` stays far below `p`, so a single prime suffices for operands up to
//! ~128 MiB. The dispatcher turns NTT on above [`NTT_THRESHOLD`] limbs.

use crate::natural::Natural;

/// The Goldilocks prime `2^64 - 2^32 + 1`.
pub const P: u64 = 0xFFFF_FFFF_0000_0001;

/// Operand size (limbs, smaller operand) at which NTT takes over from
/// Toom-3 in the multiplication dispatcher.
pub const NTT_THRESHOLD: usize = 16384;

/// Reduce a 128-bit value modulo `P` using `2^64 ≡ 2^32 - 1` and
/// `2^96 ≡ -1 (mod P)`.
#[inline]
fn reduce128(x: u128) -> u64 {
    let lo = x as u64; // bits 0..64
    let mid = ((x >> 64) as u64) & 0xFFFF_FFFF; // bits 64..96
    let hi = (x >> 96) as u64; // bits 96..128
                               // x ≡ lo + mid*(2^32 - 1) - hi (mod P)
    let mid_term = (mid << 32) - mid; // mid * (2^32-1) < 2^64: fits
    let (mut r, carry) = lo.overflowing_add(mid_term);
    if carry {
        // Adding 2^64 ≡ 2^32 - 1.
        r = r.wrapping_add(0xFFFF_FFFF);
    }
    // Subtract hi (hi < 2^32 <= P).
    let (mut r2, borrow) = r.overflowing_sub(hi);
    if borrow {
        r2 = r2.wrapping_sub(0xFFFF_FFFF); // subtracting 2^64 ≡ subtract 2^32-1
    }
    if r2 >= P {
        r2 -= P;
    }
    r2
}

#[inline]
fn mul_mod(a: u64, b: u64) -> u64 {
    reduce128(a as u128 * b as u128)
}

#[inline]
fn add_mod(a: u64, b: u64) -> u64 {
    let (s, c) = a.overflowing_add(b);
    let mut s = if c { s.wrapping_add(0xFFFF_FFFF) } else { s };
    if s >= P {
        s -= P;
    }
    s
}

#[inline]
fn sub_mod(a: u64, b: u64) -> u64 {
    let (d, borrow) = a.overflowing_sub(b);
    if borrow {
        d.wrapping_add(P)
    } else {
        d
    }
}

fn pow_mod(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod(acc, base);
        }
        base = mul_mod(base, base);
        exp >>= 1;
    }
    acc
}

/// Primitive `n`-th root of unity (`n` a power of two dividing `2^32`),
/// derived from the generator 7 of the Goldilocks multiplicative group.
fn root_of_unity(n: u64) -> u64 {
    debug_assert!(n.is_power_of_two() && n <= 1 << 32);
    // ord(7) = P - 1 = 2^32 * (2^32 - 1).
    pow_mod(7, (P - 1) / n)
}

/// In-place iterative radix-2 Cooley-Tukey NTT. `values.len()` must be a
/// power of two ≤ 2^32; `invert` runs the inverse transform (including the
/// 1/n scaling).
fn ntt(values: &mut [u64], invert: bool) {
    let n = values.len();
    debug_assert!(n.is_power_of_two());
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            values.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let mut w_len = root_of_unity(len as u64);
        if invert {
            w_len = pow_mod(w_len, P - 2); // inverse root
        }
        for start in (0..n).step_by(len) {
            let mut w = 1u64;
            for k in 0..len / 2 {
                let u = values[start + k];
                let v = mul_mod(values[start + k + len / 2], w);
                values[start + k] = add_mod(u, v);
                values[start + k + len / 2] = sub_mod(u, v);
                w = mul_mod(w, w_len);
            }
        }
        len <<= 1;
    }
    if invert {
        let n_inv = pow_mod(n as u64, P - 2);
        for v in values.iter_mut() {
            *v = mul_mod(*v, n_inv);
        }
    }
}

/// Split a Natural into little-endian 16-bit digits.
fn to_digits(n: &Natural) -> Vec<u64> {
    let mut digits = Vec::with_capacity(n.limb_len() * 4);
    for &limb in n.limbs() {
        digits.push(limb & 0xFFFF);
        digits.push((limb >> 16) & 0xFFFF);
        digits.push((limb >> 32) & 0xFFFF);
        digits.push((limb >> 48) & 0xFFFF);
    }
    digits
}

/// Rebuild a Natural from 16-bit-digit convolution coefficients
/// (each < 2^58), propagating carries in 128-bit arithmetic.
fn from_coefficients(coeffs: &[u64]) -> Natural {
    let mut limbs = vec![0u64; coeffs.len() / 4 + 2];
    let mut carry: u128 = 0;
    for (i, chunk) in coeffs.chunks(4).enumerate() {
        // Assemble one 64-bit limb from four 16-bit positions plus carry.
        let mut acc: u128 = carry;
        for (k, &c) in chunk.iter().enumerate() {
            acc += (c as u128) << (16 * k);
        }
        limbs[i] = acc as u64;
        carry = acc >> 64;
    }
    let tail = coeffs.chunks(4).count();
    let mut i = tail;
    while carry > 0 {
        limbs[i] = carry as u64;
        carry >>= 64;
        i += 1;
    }
    Natural::from_limbs(limbs)
}

/// NTT multiplication. Exposed for the ablation bench; the dispatcher in
/// `crate::mul` calls it automatically above [`NTT_THRESHOLD`].
///
/// # Panics
/// Panics if the required transform size exceeds `2^32` (operands beyond
/// ~8 GiB) — far past anything this workspace constructs.
pub fn mul_ntt(a: &Natural, b: &Natural) -> Natural {
    if a.is_zero() || b.is_zero() {
        return Natural::zero();
    }
    let da = to_digits(a);
    let db = to_digits(b);
    let result_len = da.len() + db.len();
    let n = result_len.next_power_of_two();
    assert!(
        n as u64 <= 1 << 32,
        "operand too large for single-prime NTT"
    );
    let mut fa = da;
    fa.resize(n, 0);
    let mut fb = db;
    fb.resize(n, 0);
    ntt(&mut fa, false);
    ntt(&mut fb, false);
    for (x, y) in fa.iter_mut().zip(fb.iter()) {
        *x = mul_mod(*x, *y);
    }
    ntt(&mut fa, true);
    from_coefficients(&fa)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u64) -> Natural {
        let mut state = seed | 1;
        let limbs: Vec<u64> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        Natural::from_limbs(limbs)
    }

    #[test]
    fn reduce128_matches_u128_remainder() {
        for x in [
            0u128,
            1,
            P as u128,
            P as u128 + 1,
            u64::MAX as u128,
            u128::MAX,
            (P as u128) * (P as u128) - 1,
            0xdead_beef_cafe_f00d_1234_5678_9abc_def0,
        ] {
            assert_eq!(reduce128(x) as u128, x % P as u128, "x={x:#x}");
        }
    }

    #[test]
    fn modular_ops_match_u128() {
        for a in [0u64, 1, P - 1, 0x1234_5678_9abc_def0] {
            for b in [0u64, 1, P - 1, 0xfeed_face_dead_beef % P] {
                assert_eq!(add_mod(a, b) as u128, (a as u128 + b as u128) % P as u128);
                assert_eq!(
                    sub_mod(a, b) as u128,
                    (a as u128 + P as u128 - b as u128) % P as u128
                );
                assert_eq!(mul_mod(a, b) as u128, (a as u128 * b as u128) % P as u128);
            }
        }
    }

    #[test]
    fn roots_have_exact_order() {
        for log_n in [1u32, 2, 8, 16] {
            let n = 1u64 << log_n;
            let w = root_of_unity(n);
            assert_eq!(pow_mod(w, n), 1, "w^n must be 1 (n=2^{log_n})");
            assert_ne!(pow_mod(w, n / 2), 1, "w must be primitive (n=2^{log_n})");
        }
    }

    #[test]
    fn ntt_round_trips() {
        let mut values: Vec<u64> = (0..64u64).map(|i| i * i + 7).collect();
        let original = values.clone();
        ntt(&mut values, false);
        assert_ne!(values, original);
        ntt(&mut values, true);
        assert_eq!(values, original);
    }

    #[test]
    fn small_products_match_schoolbook() {
        for (la, lb, seed) in [(1, 1, 1), (2, 3, 2), (8, 8, 3), (20, 5, 4)] {
            let a = pseudo(la, seed);
            let b = pseudo(lb, seed + 50);
            assert_eq!(mul_ntt(&a, &b), a.mul_schoolbook(&b), "la={la} lb={lb}");
        }
    }

    #[test]
    fn large_products_match_dispatched() {
        for (la, lb, seed) in [(300, 300, 9), (1000, 700, 10), (2500, 2500, 11)] {
            let a = pseudo(la, seed);
            let b = pseudo(lb, seed + 99);
            assert_eq!(mul_ntt(&a, &b), &a * &b, "la={la} lb={lb}");
        }
    }

    #[test]
    fn zero_and_one() {
        let a = pseudo(50, 5);
        assert_eq!(mul_ntt(&a, &Natural::zero()), Natural::zero());
        assert_eq!(mul_ntt(&Natural::one(), &a), a);
    }

    #[test]
    fn square_via_ntt() {
        let a = pseudo(600, 6);
        assert_eq!(mul_ntt(&a, &a), a.square());
    }
}
