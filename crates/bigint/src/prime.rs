//! Primality: small-prime sieve, trial division, and Miller-Rabin.
//!
//! The sieve doubles as the data source for the OpenSSL prime fingerprint
//! (Mironov): OpenSSL rejects candidate primes `p` where `p - 1` is
//! divisible by any of the first 2048 odd-checked primes, so fingerprinting
//! needs exactly that prime list.

use crate::natural::Natural;
use rand::RngCore;

/// Return the first `count` primes (2, 3, 5, ...) by a segmented trial sieve.
pub fn first_primes(count: usize) -> Vec<u64> {
    let mut primes: Vec<u64> = Vec::with_capacity(count);
    if count == 0 {
        return primes;
    }
    primes.push(2);
    let mut candidate = 3u64;
    while primes.len() < count {
        let is_prime = primes
            .iter()
            .take_while(|&&p| p * p <= candidate)
            .all(|&p| !candidate.is_multiple_of(p));
        if is_prime {
            primes.push(candidate);
        }
        candidate += 2;
    }
    primes
}

/// Primes below 1000, used for cheap trial division before Miller-Rabin.
fn trial_primes() -> &'static [u64] {
    use std::sync::OnceLock;
    static PRIMES: OnceLock<Vec<u64>> = OnceLock::new();
    PRIMES.get_or_init(|| first_primes(168)) // 168 primes below 1000
}

/// Deterministic Miller-Rabin witness set: proves primality for all
/// `n < 3.317e24` (Sorenson-Webster) and is an extremely strong
/// probabilistic test beyond that for non-adversarial inputs.
const FIXED_WITNESSES: [u64; 13] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41];

impl Natural {
    /// Probabilistic primality test: trial division by small primes, then
    /// Miller-Rabin with the fixed witness set plus `extra_rounds` random
    /// bases drawn from `rng`.
    ///
    /// For the 512/1024-bit simulator keys this is overwhelming evidence;
    /// the fixed witnesses alone are deterministic below 3.3e24.
    pub fn is_probable_prime<R: RngCore + ?Sized>(&self, extra_rounds: u32, rng: &mut R) -> bool {
        if let Some(v) = self.to_u64() {
            if v < 2 {
                return false;
            }
        }
        for &p in trial_primes() {
            if self.to_u64() == Some(p) {
                return true;
            }
            if self.rem_limb(p) == 0 {
                return false;
            }
        }
        // Decompose n-1 = d * 2^s.
        let n_minus_1 = self - &Natural::one();
        let s = n_minus_1.trailing_zeros().expect("n > 2 is odd here"); // lint:allow(no-panic-in-lib) invariant: n odd and > 2, so n-1 >= 2 is nonzero
        let d = &n_minus_1 >> s;

        for &w in FIXED_WITNESSES.iter() {
            let wn = Natural::from(w);
            if &wn % self == Natural::zero() {
                continue; // witness is a multiple of n (tiny n): skip
            }
            if !miller_rabin_round(self, &d, s, &wn) {
                return false;
            }
        }
        for _ in 0..extra_rounds {
            let w = Natural::random_range(rng, &Natural::from(2u64), &n_minus_1);
            if !miller_rabin_round(self, &d, s, &w) {
                return false;
            }
        }
        true
    }

    /// Deterministic-witness-only convenience used where no RNG is at hand.
    pub fn is_probable_prime_fixed(&self) -> bool {
        struct NoRng;
        impl RngCore for NoRng {
            fn next_u32(&mut self) -> u32 {
                unreachable!("no random rounds requested") // lint:allow(no-panic-in-lib) invariant: passed with extra_rounds = 0; a call is a logic bug
            }
            fn next_u64(&mut self) -> u64 {
                unreachable!("no random rounds requested") // lint:allow(no-panic-in-lib) invariant: passed with extra_rounds = 0; a call is a logic bug
            }
            fn fill_bytes(&mut self, _dest: &mut [u8]) {
                unreachable!("no random rounds requested") // lint:allow(no-panic-in-lib) invariant: passed with extra_rounds = 0; a call is a logic bug
            }
            fn try_fill_bytes(&mut self, _dest: &mut [u8]) -> Result<(), rand::Error> {
                unreachable!("no random rounds requested") // lint:allow(no-panic-in-lib) invariant: passed with extra_rounds = 0; a call is a logic bug
            }
        }
        self.is_probable_prime(0, &mut NoRng)
    }
}

/// One Miller-Rabin round: returns `true` when `n` passes for witness `w`.
fn miller_rabin_round(n: &Natural, d: &Natural, s: u64, w: &Natural) -> bool {
    let n_minus_1 = n - &Natural::one();
    let mut x = w.mod_pow(d, n);
    if x.is_one() || x == n_minus_1 {
        return true;
    }
    for _ in 1..s {
        x = x.mod_pow(&Natural::from(2u64), n);
        if x == n_minus_1 {
            return true;
        }
        if x.is_one() {
            return false; // nontrivial square root of 1 found
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn first_primes_prefix() {
        assert_eq!(first_primes(0), Vec::<u64>::new());
        assert_eq!(first_primes(10), vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29]);
        let p2048 = first_primes(2048);
        assert_eq!(p2048.len(), 2048);
        assert_eq!(*p2048.last().unwrap(), 17863); // the 2048th prime
    }

    #[test]
    fn trial_prime_count_below_1000() {
        let p = first_primes(168);
        assert_eq!(*p.last().unwrap(), 997);
    }

    #[test]
    fn small_primality_table() {
        let primes = [2u128, 3, 5, 7, 11, 97, 101, 997, 65537, 1000003];
        let composites = [0u128, 1, 4, 9, 15, 91, 561, 1000001, 65536];
        for p in primes {
            assert!(n(p).is_probable_prime_fixed(), "{p} should be prime");
        }
        for c in composites {
            assert!(!n(c).is_probable_prime_fixed(), "{c} should be composite");
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Fermat liars galore: 561, 1105, 1729, 2465, 2821, 6601, 8911.
        for c in [561u128, 1105, 1729, 2465, 2821, 6601, 8911, 41041] {
            assert!(!n(c).is_probable_prime_fixed(), "{c} is Carmichael");
        }
    }

    #[test]
    fn mersenne_primes_accepted() {
        for e in [13u64, 17, 19, 31, 61, 89, 107, 127] {
            let p = &(&Natural::one() << e) - &Natural::one();
            assert!(p.is_probable_prime_fixed(), "2^{e}-1 is prime");
        }
        // And non-prime Mersenne numbers rejected.
        for e in [11u64, 23, 29, 37, 41] {
            let p = &(&Natural::one() << e) - &Natural::one();
            assert!(!p.is_probable_prime_fixed(), "2^{e}-1 is composite");
        }
    }

    #[test]
    fn random_rounds_agree_with_fixed() {
        let mut rng = rand::rngs::mock::StepRng::new(0x1234_5678, 0x9e37_79b9);
        let p = &(&Natural::one() << 127u64) - &Natural::one();
        assert!(p.is_probable_prime(5, &mut rng));
        let c = &p * &n(3);
        assert!(!c.is_probable_prime(5, &mut rng));
    }

    #[test]
    fn product_of_two_large_primes_is_composite() {
        let p = &(&Natural::one() << 89u64) - &Natural::one();
        let q = &(&Natural::one() << 107u64) - &Natural::one();
        assert!(!(&p * &q).is_probable_prime_fixed());
    }
}
