//! Multiplication: schoolbook, Karatsuba, and Toom-3 with size-based dispatch.
//!
//! Sub-quadratic multiplication is load-bearing for the reproduction: the
//! batch-GCD product tree multiplies pairs of multi-megabit integers, and the
//! quasilinear feasibility argument of the paper (§3.2) assumes
//! `M(n) = n^(1+o(1))`. Karatsuba gives `n^1.585`, Toom-3 `n^1.465`, which is
//! sufficient at the scales the simulator and benches run at.

use crate::integer::Integer;
use crate::natural::Natural;
use core::ops::{Mul, MulAssign};

/// Operand size (in limbs, of the smaller operand) at which Karatsuba takes
/// over from schoolbook multiplication.
pub const KARATSUBA_THRESHOLD: usize = 64;

/// Operand size (in limbs, of the smaller operand) at which Toom-3 takes over
/// from Karatsuba.
pub const TOOM3_THRESHOLD: usize = 352;

/// Schoolbook `O(n*m)` multiplication on limb slices.
pub(crate) fn schoolbook(a: &[u64], b: &[u64]) -> Vec<u64> {
    // lint:allow(arena-discipline) returned to the caller, which wraps the buffer or puts it back
    let mut out = crate::arena::take(a.len() + b.len());
    schoolbook_into(a, b, &mut out);
    out
}

/// Schoolbook multiplication writing into a caller-provided buffer (cleared
/// and resized here; no allocation when its capacity suffices).
pub(crate) fn schoolbook_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    out.resize(a.len() + b.len(), 0);
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let (lo, hi) = crate::limb::mul_add_carry(out[i + j], bj, ai, carry);
            out[i + j] = lo;
            carry = hi;
        }
        out[i + b.len()] = carry;
    }
}

/// Strip high zero limbs from a slice view.
#[inline]
pub(crate) fn trim(a: &[u64]) -> &[u64] {
    &a[..crate::limb::effective_len(a)]
}

/// `acc[offset..] += add` with the carry rippled through the rest of `acc`.
/// The caller guarantees the sum fits (true for every polynomial assembly
/// here); the final carry is debug-asserted away.
fn add_at(acc: &mut [u64], offset: usize, add: &[u64]) {
    if add.is_empty() {
        return;
    }
    let carry = crate::limb::add_assign_slice(&mut acc[offset..], add);
    debug_assert_eq!(carry, 0, "add_at overflowed its accumulator");
}

/// `out = a + b` over slices, into a caller-provided buffer.
fn add_slices_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    out.clear();
    out.extend_from_slice(long);
    out.push(0);
    let carry = crate::limb::add_assign_slice(out, short);
    debug_assert_eq!(carry, 0);
}

/// Slice-level multiply dispatch into a caller-provided buffer, with every
/// scratch intermediate checked out of the thread's
/// [`arena`](crate::arena). This is the single kernel all multiplication
/// entry points funnel through; a warmed arena runs the schoolbook,
/// Karatsuba, and unbalanced-block paths without heap allocation. The
/// Toom-3 and NTT tiers (operands of hundreds to thousands of limbs, a
/// handful of nodes near a tree root) still build their evaluation
/// polynomials on the heap: their signed interpolation works over
/// [`Integer`]s, and at those sizes the multiply dwarfs its allocations.
pub(crate) fn mul_slices_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    let a = trim(a);
    let b = trim(b);
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let sn = small.len();
    if sn == 0 {
        out.clear();
        return;
    }
    if sn < KARATSUBA_THRESHOLD {
        return schoolbook_into(small, large, out);
    }
    // Highly unbalanced operands: multiply block-by-block so the recursive
    // algorithms always see roughly balanced halves.
    if large.len() > 2 * sn {
        out.clear();
        out.resize(small.len() + large.len(), 0);
        let mut part = crate::arena::take(2 * sn);
        let mut offset = 0usize;
        for chunk in large.chunks(sn) {
            mul_slices_into(small, chunk, &mut part);
            add_at(out, offset, trim(&part));
            offset += sn;
        }
        crate::arena::put(part);
        return;
    }
    if sn < TOOM3_THRESHOLD {
        return karatsuba_into(a, b, out);
    }
    let an = Natural::from_limb_slice(a);
    let bn = Natural::from_limb_slice(b);
    let r = if sn < crate::ntt::NTT_THRESHOLD {
        toom3(&an, &bn)
    } else {
        crate::ntt::mul_ntt(&an, &bn)
    };
    let old = core::mem::replace(out, r.into_limbs());
    crate::arena::put(old);
}

/// Karatsuba over slices: 3 recursive multiplications of half-size operands,
/// all scratch from the arena.
fn karatsuba_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    let m = a.len().max(b.len()).div_ceil(2);
    let (a0, a1) = a.split_at(m.min(a.len()));
    let (b0, b1) = b.split_at(m.min(b.len()));
    let (a0, a1, b0, b1) = (trim(a0), trim(a1), trim(b0), trim(b1));

    let mut z0 = crate::arena::take(a0.len() + b0.len());
    mul_slices_into(a0, b0, &mut z0);
    let mut z2 = crate::arena::take(a1.len() + b1.len());
    mul_slices_into(a1, b1, &mut z2);

    let mut sa = crate::arena::take(m + 1);
    add_slices_into(a0, a1, &mut sa);
    let mut sb = crate::arena::take(m + 1);
    add_slices_into(b0, b1, &mut sb);
    let mut z1 = crate::arena::take(sa.len() + sb.len());
    mul_slices_into(trim(&sa), trim(&sb), &mut z1);
    crate::arena::put(sa);
    crate::arena::put(sb);
    // z1 = sa*sb - z0 - z2 >= 0 always.
    let borrow = crate::limb::sub_assign_slice(&mut z1, trim(&z0));
    debug_assert_eq!(borrow, 0);
    let borrow = crate::limb::sub_assign_slice(&mut z1, trim(&z2));
    debug_assert_eq!(borrow, 0);

    // out = z2 << 2m | z1 << m | z0, assembled with rippled adds.
    out.clear();
    out.resize(a.len() + b.len(), 0);
    let z0t = trim(&z0);
    out[..z0t.len()].copy_from_slice(z0t);
    add_at(out, m, trim(&z1));
    add_at(out, 2 * m, trim(&z2));
    crate::arena::put(z0);
    crate::arena::put(z1);
    crate::arena::put(z2);
}

/// Split `n` at `at` limbs: returns `(low, high)` as Naturals.
fn split(n: &Natural, at: usize) -> (Natural, Natural) {
    let limbs = n.limbs();
    if limbs.len() <= at {
        (n.clone(), Natural::zero())
    } else {
        (
            Natural::from_limb_slice(&limbs[..at]),
            Natural::from_limb_slice(&limbs[at..]),
        )
    }
}

/// Shift left by whole limbs (multiply by `2^(64*limbs)`).
fn shl_limbs(n: &Natural, limbs: usize) -> Natural {
    if n.is_zero() {
        return Natural::zero();
    }
    let mut v = vec![0u64; limbs + n.limb_len()];
    v[limbs..].copy_from_slice(n.limbs());
    Natural::from_limbs(v)
}

/// Toom-3 with evaluation points {0, 1, -1, 2, inf} and Bodrato's
/// interpolation sequence. Intermediates at -1 can be negative, so the
/// evaluation/interpolation runs over signed [`Integer`]s.
fn toom3(a: &Natural, b: &Natural) -> Natural {
    let m = a.limb_len().max(b.limb_len()).div_ceil(3);
    let (a0, rest) = split(a, m);
    let (a1, a2) = split(&rest, m);
    let (b0, rest) = split(b, m);
    let (b1, b2) = split(&rest, m);

    let a0 = Integer::from_natural(a0);
    let a1 = Integer::from_natural(a1);
    let a2 = Integer::from_natural(a2);
    let b0 = Integer::from_natural(b0);
    let b1 = Integer::from_natural(b1);
    let b2 = Integer::from_natural(b2);

    // Evaluation.
    let pa = &a0 + &a2; // a(1) helper
    let va1 = &pa + &a1; // a(1)
    let vam1 = &pa - &a1; // a(-1)
    let va2 = &(&(&(&a2 << 1u64) + &a1) << 1u64) + &a0; // a(2) = 4*a2 + 2*a1 + a0

    let pb = &b0 + &b2;
    let vb1 = &pb + &b1;
    let vbm1 = &pb - &b1;
    let vb2 = &(&(&(&b2 << 1u64) + &b1) << 1u64) + &b0;

    // Pointwise products (recurse into Natural multiplication).
    let w0 = &a0 * &b0; // c(0)
    let w1 = &va1 * &vb1; // c(1)
    let wm1 = &vam1 * &vbm1; // c(-1)
    let w2 = &va2 * &vb2; // c(2)
    let winf = &a2 * &b2; // c(inf)

    // Interpolation (Bodrato): recover coefficients c0..c4 of the product
    // polynomial c(x) = c4 x^4 + ... + c0.
    let mut t3 = &(&w2 - &wm1) / 3u64; // exact
    let t1 = &(&w1 - &wm1) >> 1u64; // exact: (c(1)-c(-1))/2
    let mut t2 = &w1 - &w0; // c(1) - c(0)
    t3 = &(&t3 - &t2) >> 1u64;
    t2 = &(&t2 - &t1) - &winf;
    t3 = &t3 - &(&winf << 1u64);
    let t1 = &t1 - &t3;

    // c0 = w0, c1 = t1, c2 = t2, c3 = t3, c4 = winf; all nonnegative for a
    // product of naturals.
    let c0 = w0.into_natural_checked("toom3 c0");
    let c1 = t1.into_natural_checked("toom3 c1");
    let c2 = t2.into_natural_checked("toom3 c2");
    let c3 = t3.into_natural_checked("toom3 c3");
    let c4 = winf.into_natural_checked("toom3 c4");

    let mut out = shl_limbs(&c4, 4 * m);
    out.add_assign_ref(&shl_limbs(&c3, 3 * m));
    out.add_assign_ref(&shl_limbs(&c2, 2 * m));
    out.add_assign_ref(&shl_limbs(&c1, m));
    out.add_assign_ref(&c0);
    out
}

/// Multiply, dispatching on operand size. This is the single entry point all
/// operator impls funnel through; the result buffer and every scratch
/// intermediate come from the thread's arena.
pub(crate) fn mul_naturals(a: &Natural, b: &Natural) -> Natural {
    let mut out = crate::arena::take(a.limb_len() + b.limb_len());
    mul_slices_into(a.limbs(), b.limbs(), &mut out);
    Natural::from_limbs(out)
}

impl Natural {
    /// Schoolbook multiplication regardless of size — the ablation baseline
    /// for the sub-quadratic algorithms (bench `ablation_mul_algorithms`).
    pub fn mul_schoolbook(&self, rhs: &Natural) -> Natural {
        Natural::from_limbs(schoolbook(self.limbs(), rhs.limbs()))
    }

    /// Karatsuba at the top level regardless of [`KARATSUBA_THRESHOLD`]
    /// (recursive calls still dispatch normally) — the threshold-tuning
    /// probe for bench example `mul_tuning`.
    pub fn mul_karatsuba(&self, rhs: &Natural) -> Natural {
        let mut out = crate::arena::take(self.limb_len() + rhs.limb_len());
        karatsuba_into(self.limbs(), rhs.limbs(), &mut out);
        Natural::from_limbs(out)
    }

    /// Multiply into a caller-provided value, reusing its backing storage
    /// (and the thread arena for scratch). Semantically identical to
    /// `out = self * rhs`; the allocating operators are thin wrappers over
    /// this kernel.
    pub fn mul_into(&self, rhs: &Natural, out: &mut Natural) {
        mul_slices_into(self.limbs(), rhs.limbs(), out.vec_mut());
        out.normalize();
    }

    /// Toom-3 at the top level regardless of [`TOOM3_THRESHOLD`]
    /// (recursive calls still dispatch normally) — the threshold-tuning
    /// probe for bench example `mul_tuning`.
    pub fn mul_toom3(&self, rhs: &Natural) -> Natural {
        toom3(self, rhs)
    }

    /// Multiply by a single limb.
    pub fn mul_limb(&self, m: u64) -> Natural {
        if m == 0 || self.is_zero() {
            return Natural::zero();
        }
        let mut out = crate::arena::take(self.limb_len() + 1);
        out.extend_from_slice(self.limbs());
        out.push(0);
        let mut carry = 0u64;
        for l in out.iter_mut() {
            let (lo, hi) = crate::limb::mul_add_carry(0, *l, m, carry);
            *l = lo;
            carry = hi;
        }
        debug_assert_eq!(carry, 0);
        Natural::from_limbs(out)
    }
}

impl Mul<&Natural> for &Natural {
    type Output = Natural;
    fn mul(self, rhs: &Natural) -> Natural {
        mul_naturals(self, rhs)
    }
}

impl Mul for Natural {
    type Output = Natural;
    fn mul(self, rhs: Natural) -> Natural {
        mul_naturals(&self, &rhs)
    }
}

impl Mul<u64> for &Natural {
    type Output = Natural;
    fn mul(self, rhs: u64) -> Natural {
        self.mul_limb(rhs)
    }
}

impl MulAssign<&Natural> for Natural {
    fn mul_assign(&mut self, rhs: &Natural) {
        *self = mul_naturals(self, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn small_products_match_u128() {
        for a in [0u128, 1, 2, u64::MAX as u128, 0x1234_5678_9abc_def0] {
            for b in [0u128, 1, 3, u64::MAX as u128] {
                assert_eq!(&n(a) * &n(b), n(a * b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn mul_limb_matches_general() {
        let a = n(u128::MAX / 7);
        assert_eq!(a.mul_limb(7), &a * &n(7));
        assert_eq!(a.mul_limb(0), Natural::zero());
    }

    /// Deterministic pseudo-random Natural for cross-algorithm checks.
    fn pseudo(len: usize, seed: u64) -> Natural {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let limbs: Vec<u64> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        Natural::from_limbs(limbs)
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        for (la, lb, seed) in [(40, 40, 1), (40, 65, 2), (64, 33, 3), (100, 100, 4)] {
            let a = pseudo(la, seed);
            let b = pseudo(lb, seed + 100);
            let fast = &a * &b;
            let slow = Natural::from_limbs(schoolbook(a.limbs(), b.limbs()));
            assert_eq!(fast, slow, "la={la} lb={lb}");
        }
    }

    #[test]
    fn toom3_matches_schoolbook() {
        for (la, lb, seed) in [(150, 150, 1), (160, 200, 2), (300, 150, 3)] {
            let a = pseudo(la, seed);
            let b = pseudo(lb, seed + 7);
            let fast = toom3(&a, &b);
            let slow = Natural::from_limbs(schoolbook(a.limbs(), b.limbs()));
            assert_eq!(fast, slow, "la={la} lb={lb}");
        }
    }

    #[test]
    fn unbalanced_block_path_matches_schoolbook() {
        let a = pseudo(35, 9); // above Karatsuba threshold
        let b = pseudo(400, 10); // > 2x longer
        let fast = &a * &b;
        let slow = Natural::from_limbs(schoolbook(a.limbs(), b.limbs()));
        assert_eq!(fast, slow);
    }

    #[test]
    fn distributive_law_large() {
        let a = pseudo(200, 1);
        let b = pseudo(180, 2);
        let c = pseudo(190, 3);
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn square_is_self_product() {
        let a = pseudo(170, 4);
        assert_eq!(a.square(), &a * &a);
    }
}
