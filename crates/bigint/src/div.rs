//! Division: short division, Knuth Algorithm D, and Burnikel-Ziegler
//! recursive division.
//!
//! The batch-GCD remainder tree divides a huge product by each half-size
//! child; with quadratic (Knuth-only) division the tree would be `O(n^2)` and
//! the paper's feasibility argument (§3.2) collapses. Burnikel-Ziegler
//! reduces division to multiplication, so the remainder tree inherits the
//! sub-quadratic multiplication cost.

use crate::integer::Integer;
use crate::limb;
use crate::natural::Natural;
use core::ops::{Div, Rem};

/// Divisor size (limbs) at or below which Knuth Algorithm D is used directly.
pub const BZ_THRESHOLD: usize = 48;

impl Natural {
    /// Divide by a single limb: returns `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn div_rem_limb(&self, d: u64) -> (Natural, u64) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0u64; self.limb_len()];
        let mut rem = 0u64;
        for i in (0..self.limb_len()).rev() {
            let (qi, r) = limb::div_wide(rem, self.limbs[i], d);
            q[i] = qi;
            rem = r;
        }
        (Natural::from_limbs(q), rem)
    }

    /// `self mod d` for a single limb `d`.
    pub fn rem_limb(&self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u64;
        for i in (0..self.limb_len()).rev() {
            rem = (((rem as u128) << 64 | self.limbs[i] as u128) % d as u128) as u64;
        }
        rem
    }

    /// Euclidean division: returns `(quotient, remainder)` with
    /// `self == quotient * rhs + remainder` and `remainder < rhs`.
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    pub fn div_rem(&self, rhs: &Natural) -> (Natural, Natural) {
        assert!(!rhs.is_zero(), "division by zero");
        if self < rhs {
            return (Natural::zero(), self.clone());
        }
        if let [limb] = rhs.limbs[..] {
            let (q, r) = self.div_rem_limb(limb);
            return (q, Natural::from(r));
        }
        if rhs.limb_len() <= BZ_THRESHOLD {
            return knuth_div_rem(self, rhs);
        }
        bz_div_rem(self, rhs)
    }

    /// Knuth Algorithm D regardless of size — the quadratic ablation
    /// baseline for Burnikel-Ziegler (bench `ablation_div_algorithms`).
    ///
    /// # Panics
    /// Panics if `rhs` is zero.
    pub fn div_rem_knuth(&self, rhs: &Natural) -> (Natural, Natural) {
        assert!(!rhs.is_zero(), "division by zero");
        if self < rhs {
            return (Natural::zero(), self.clone());
        }
        if let [limb] = rhs.limbs[..] {
            let (q, r) = self.div_rem_limb(limb);
            return (q, Natural::from(r));
        }
        knuth_div_rem(self, rhs)
    }
}

/// Knuth Algorithm D (TAOCP 4.3.1) after bit-normalizing the divisor so its
/// top limb has its high bit set. The normalized dividend/divisor copies and
/// the quotient buffer all come from the thread arena, so a warmed pool runs
/// the division without heap allocation.
fn knuth_div_rem(a: &Natural, b: &Natural) -> (Natural, Natural) {
    debug_assert!(b.limb_len() >= 2);
    debug_assert!(a >= b);
    // `top_limb()` is the true top limb here: callers assert `b` nonzero.
    let shift = b.top_limb().leading_zeros();
    // lint:allow(arena-discipline) ownership moves into knuth_normalized, which hands the storage back as the remainder limbs the caller wraps
    let mut u_limbs = crate::arena::take(a.limb_len() + 2);
    u_limbs.resize(a.limb_len(), 0);
    let carry = limb::shl_limbs_small(&mut u_limbs, a.limbs(), shift);
    if carry != 0 {
        u_limbs.push(carry);
    }
    let mut v_limbs = crate::arena::take(b.limb_len());
    v_limbs.resize(b.limb_len(), 0);
    let v_carry = limb::shl_limbs_small(&mut v_limbs, b.limbs(), shift);
    debug_assert_eq!(v_carry, 0, "normalizing shift cannot overflow the divisor");
    let (q, r) = knuth_normalized(&mut u_limbs, &v_limbs);
    crate::arena::put(v_limbs);
    let mut rem = Natural::from_limbs(r);
    rem.shr_assign_bits(shift as u64);
    (Natural::from_limbs(q), rem)
}

/// Core of Algorithm D. `v` must have its top bit set and `len >= 2`;
/// returns `(quotient, remainder)` limbs.
fn knuth_normalized(u: &mut Vec<u64>, v: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let n = v.len();
    debug_assert!(v[n - 1] >> 63 == 1);
    if u.len() < n {
        return (Vec::new(), core::mem::take(u));
    }
    let m = u.len() - n;
    u.push(0);
    // lint:allow(arena-discipline) returned as the quotient limbs; the caller wraps them in Natural::from_limbs
    let mut q = crate::arena::take(m + 1);
    q.resize(m + 1, 0);
    let v1 = v[n - 1];
    let v0 = v[n - 2];
    for j in (0..=m).rev() {
        let u2 = u[j + n];
        let u1 = u[j + n - 1];
        let u0 = u[j + n - 2];
        debug_assert!(u2 <= v1);
        // D3: estimate qhat from the top two limbs of the current window.
        let (mut qhat, rhat, rhat_valid) = if u2 == v1 {
            let (r, overflow) = u1.overflowing_add(v1);
            (u64::MAX, r, !overflow)
        } else {
            let (qh, rh) = limb::div_wide(u2, u1, v1);
            (qh, rh, true)
        };
        // Refine using the third limb: loop runs at most twice.
        if rhat_valid {
            let mut rhat = rhat;
            loop {
                let lhs = (qhat as u128) * (v0 as u128);
                let rhs = ((rhat as u128) << 64) | (u0 as u128);
                if lhs > rhs {
                    qhat -= 1;
                    let (nr, overflow) = rhat.overflowing_add(v1);
                    if overflow {
                        break;
                    }
                    rhat = nr;
                } else {
                    break;
                }
            }
        }
        // D4: multiply and subtract over the n+1 limb window.
        let window = &mut u[j..=j + n];
        let borrow = limb::sub_mul_slice(window, v, qhat);
        // D5/D6: qhat was at most one too large; add back on borrow.
        if borrow != 0 {
            debug_assert_eq!(borrow, 1);
            qhat -= 1;
            let carry = limb::add_assign_slice(window, v);
            debug_assert_eq!(carry, 1); // cancels the borrow
        }
        q[j] = qhat;
    }
    u.truncate(n);
    (q, core::mem::take(u))
}

/// Split `a` into little-endian blocks of `n` limbs each.
fn blocks_of(a: &Natural, n: usize) -> Vec<Natural> {
    a.limbs().chunks(n).map(Natural::from_limb_slice).collect()
}

/// Shift left by whole limbs.
fn shl_limbs(a: &Natural, n: usize) -> Natural {
    a << (64 * n as u64)
}

/// Low `n` limbs of `a`.
fn low_limbs(a: &Natural, n: usize) -> Natural {
    if a.limb_len() <= n {
        a.clone()
    } else {
        Natural::from_limb_slice(&a.limbs()[..n])
    }
}

/// `a >> (64*n)` — the limbs above the low `n`.
fn high_limbs(a: &Natural, n: usize) -> Natural {
    if a.limb_len() <= n {
        Natural::zero()
    } else {
        Natural::from_limb_slice(&a.limbs()[n..])
    }
}

/// Burnikel-Ziegler driver. Pads the divisor to `n = j * 2^k` limbs
/// (`j <= BZ_THRESHOLD`) with its top bit set, processes the dividend in
/// `n`-limb blocks from the top, and unscales the remainder.
fn bz_div_rem(a: &Natural, b: &Natural) -> (Natural, Natural) {
    let s = b.limb_len();
    // Choose n = j * 2^k >= s with j <= BZ_THRESHOLD so recursive halving
    // always lands on even sizes until the base case.
    let mut k = 0u32;
    while s.div_ceil(1 << k) > BZ_THRESHOLD {
        k += 1;
    }
    let j = s.div_ceil(1 << k);
    let n = j << k;
    // Normalize: limb-pad to n limbs and bit-shift so the top bit is set.
    let sigma = 64 * (n - s) as u64 + b.top_limb().leading_zeros() as u64;
    let bn = b << sigma;
    let an = a << sigma;
    debug_assert_eq!(bn.limb_len(), n);

    let blocks = blocks_of(&an, n);
    let t = blocks.len();
    let mut r = blocks[t - 1].clone();
    // Top block is < beta^n <= 2*bn (bn has its top bit set), so the leading
    // quotient digit is 0 or 1.
    let mut q_top = Natural::zero();
    if r >= bn {
        q_top = Natural::one();
        r.sub_assign_ref(&bn);
    }
    let mut q = q_top;
    for i in (0..t - 1).rev() {
        let combined = &shl_limbs(&r, n) + &blocks[i];
        let (qi, ri) = bz_div_2n_1n(&combined, &bn, n);
        q = &shl_limbs(&q, n) + &qi;
        r = ri;
    }
    (q, &r >> sigma)
}

/// Divide a (up to) `2n`-limb value `a < b * beta^n` by the `n`-limb
/// normalized divisor `b`. Recurses via two 3h/2h divisions.
fn bz_div_2n_1n(a: &Natural, b: &Natural, n: usize) -> (Natural, Natural) {
    if n % 2 == 1 || n <= BZ_THRESHOLD {
        return a.div_rem(b); // falls through to Knuth / short division
    }
    let h = n / 2;
    let a_lo = low_limbs(a, h);
    let a_hi = high_limbs(a, h); // up to 3h limbs
    let (q1, r1) = bz_div_3h_2h(&a_hi, b, h);
    let (q0, r) = bz_div_3h_2h(&(&shl_limbs(&r1, h) + &a_lo), b, h);
    (&shl_limbs(&q1, h) + &q0, r)
}

/// Divide a (up to) `3h`-limb value `a < b * beta^h` by the `2h`-limb
/// normalized divisor `b`. One recursive 2h/h division plus one full
/// `h x h` multiplication — this multiplication is where sub-quadratic
/// multiplication pays off.
fn bz_div_3h_2h(a: &Natural, b: &Natural, h: usize) -> (Natural, Natural) {
    let b1 = high_limbs(b, h); // top h limbs, top bit set
    let b0 = low_limbs(b, h);
    let a12 = high_limbs(a, h); // top 2h limbs
    let a0 = low_limbs(a, h);
    let a2 = high_limbs(a, 2 * h); // top h limbs

    let (mut q, r1) = if a2 < b1 {
        bz_div_2n_1n(&a12, &b1, h)
    } else {
        // q = beta^h - 1; r1 = a12 - q*b1 = a12 - b1*beta^h + b1 (>= 0 here).
        let q = &shl_limbs(&Natural::one(), h) - &Natural::one();
        let r1 = &(&a12 - &shl_limbs(&b1, h)) + &b1;
        (q, r1)
    };
    let d = &q * &b0;
    let lhs = Integer::from_natural(&shl_limbs(&r1, h) + &a0);
    let mut r = &lhs - &Integer::from_natural(d);
    // q may be up to 2 too large (standard BZ bound).
    let bi = Integer::from_natural(b.clone());
    while r.is_negative() {
        q.sub_assign_ref(&Natural::one());
        r = &r + &bi;
    }
    (q, r.into_magnitude())
}

impl Div<&Natural> for &Natural {
    type Output = Natural;
    fn div(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).0
    }
}

impl Rem<&Natural> for &Natural {
    type Output = Natural;
    fn rem(self, rhs: &Natural) -> Natural {
        self.div_rem(rhs).1
    }
}

impl Div<u64> for &Natural {
    type Output = Natural;
    fn div(self, rhs: u64) -> Natural {
        self.div_rem_limb(rhs).0
    }
}

impl Rem<u64> for &Natural {
    type Output = u64;
    fn rem(self, rhs: u64) -> u64 {
        self.rem_limb(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    fn pseudo(len: usize, seed: u64) -> Natural {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let limbs: Vec<u64> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        Natural::from_limbs(limbs)
    }

    fn check_div_identity(a: &Natural, b: &Natural) {
        let (q, r) = a.div_rem(b);
        assert!(r < *b, "remainder not reduced");
        assert_eq!(&(&q * b) + &r, *a, "a != q*b + r");
    }

    #[test]
    fn small_division_matches_u128() {
        for a in [
            0u128,
            1,
            17,
            u64::MAX as u128,
            u128::MAX,
            12345678901234567890,
        ] {
            for b in [1u128, 2, 3, 17, u64::MAX as u128, 1 << 100] {
                let (q, r) = n(a).div_rem(&n(b));
                assert_eq!(q, n(a / b), "q a={a} b={b}");
                assert_eq!(r, n(a % b), "r a={a} b={b}");
            }
        }
    }

    #[test]
    fn rem_limb_matches_div_rem_limb() {
        let a = pseudo(10, 3);
        for d in [1u64, 2, 3, 65537, u64::MAX] {
            assert_eq!(a.rem_limb(d), a.div_rem_limb(d).1);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = n(1).div_rem(&Natural::zero());
    }

    #[test]
    fn knuth_various_shapes() {
        for (la, lb, seed) in [
            (4, 2, 1),
            (10, 3, 2),
            (20, 19, 3),
            (40, 2, 4),
            (48, 48, 5),
            (30, 25, 6),
        ] {
            check_div_identity(&pseudo(la, seed), &pseudo(lb, seed + 50));
        }
    }

    #[test]
    fn knuth_add_back_case() {
        // Construct a case exercising the rare D6 add-back: dividend with
        // many high ones against divisor just below a power of two.
        let a = &(&Natural::one() << 512u64) - &Natural::one();
        let b = &(&Natural::one() << 192u64) - &(&Natural::one() << 64u64);
        check_div_identity(&a, &b);
    }

    #[test]
    fn bz_matches_knuth() {
        for (la, lb, seed) in [
            (120, 60, 1),
            (200, 100, 2),
            (256, 96, 3),
            (300, 97, 4), // odd-ish divisor length forces padding
            (512, 200, 5),
        ] {
            let a = pseudo(la, seed);
            let b = pseudo(lb, seed + 99);
            let (q_bz, r_bz) = bz_div_rem(&a, &b);
            let (q_kn, r_kn) = knuth_div_rem(&a, &b);
            assert_eq!(q_bz, q_kn, "quotient la={la} lb={lb}");
            assert_eq!(r_bz, r_kn, "remainder la={la} lb={lb}");
        }
    }

    #[test]
    fn bz_identity_large() {
        let a = pseudo(1000, 7);
        let b = pseudo(333, 8);
        check_div_identity(&a, &b);
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let a = pseudo(10, 1);
        let b = pseudo(60, 2);
        let (q, r) = a.div_rem(&b);
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn exact_division_zero_remainder() {
        let b = pseudo(70, 3);
        let q_expect = pseudo(130, 4);
        let a = &b * &q_expect;
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, q_expect);
        assert!(r.is_zero());
    }
}
