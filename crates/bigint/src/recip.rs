//! Barrett reduction against precomputed reciprocals.
//!
//! The batch-GCD remainder tree reduces one huge value modulo every node of
//! a product tree. Each node's modulus is fixed across the whole descent
//! (and, in the incremental path, across *runs*), so the division can be
//! split into a per-modulus precomputation — a fixed-point reciprocal
//! `mu = floor(beta^cap / n)` with `beta = 2^64` — and a per-value
//! reduction of two multiplies plus at most two correction subtractions
//! (HAC Algorithm 14.42, generalized to a configurable dividend capacity).
//!
//! The reciprocal itself is computed by Newton's method on truncated
//! operands (precision roughly doubles per iteration, so the total cost is
//! a small constant number of full-size multiplies). The iteration is
//! *deliberately left approximate*: it maintains `mu <= floor(beta^cap/n)`
//! throughout (every truncation under-estimates) and lands within
//! [`MU_MAX_SLACK_ULPS`] of the exact value. Making it exact would need a
//! full `mu * n` verification product — empirically the single most
//! expensive operation of the whole precomputation, and the only thing it
//! buys is shrinking the Barrett correction loop from "a few" subtractions
//! to two. The correction loop is O(m) per pass; the verification product
//! is a full multiply. So the slack is kept and the loop bound widened.
//!
//! # Correctness bound
//!
//! For `x < beta^cap` and normalized `n` (`beta^(m-1) <= n < beta^m`,
//! `m >= 2`), with `mu = floor(beta^cap / n) - delta` for `0 <= delta`,
//! the estimate
//! `q_hat = floor(floor(x / beta^(m-1)) * mu / beta^(cap-m+1))` satisfies
//! `q - 2 - delta <= q_hat <= q` where `q = floor(x / n)`:
//!
//! * upper: `mu <= beta^cap/n` and both inner floors only shrink their
//!   operands, so `q_hat <= x/n`. This direction is what makes the
//!   mod-`beta^(m+1)` remainder arithmetic sound — `x - q_hat*n` is never
//!   negative — and is why the iteration must *never* over-estimate;
//! * lower: writing `a = floor(x / beta^(m-1)) > x/beta^(m-1) - 1` and
//!   `mu > beta^cap/n - 1 - delta`, expanding `a*mu / beta^(cap-m+1)`
//!   gives `q_hat > x/n - x/beta^cap - beta^(m-1)/n - 1 - delta*a/beta^(cap-m+1)
//!   > x/n - 3 - delta`, using `x < beta^cap`, `n >= beta^(m-1)` and
//!   `a < beta^(cap-m+1)`.
//!
//! Hence `x - q_hat*n` lands in `[x mod n, x mod n + (2 + delta) n)`,
//! which stays below `beta^(m+1)` for any `delta < 2^64 - 3`: the low
//! `m + 1` limbs still determine the remainder, and at most `2 + delta`
//! subtractions of `n` finish the reduction. The correction loop is
//! bounded by [`MAX_BARRETT_CORRECTIONS`]; exceeding it (impossible for a
//! reciprocal built here, conceivable only for a damaged persisted one)
//! falls back to one exact division, so the result is the true remainder
//! unconditionally. Larger values are folded in `(cap - m)`-limb chunks
//! from the top, each step staying under the capacity — the division-free
//! analog of short division.

use crate::natural::Natural;
use std::fmt;

/// Modulus size (limbs) at or below which the reciprocal is computed by one
/// direct division instead of Newton iteration — at these sizes Knuth
/// division is cheaper than the iteration bookkeeping.
const NEWTON_DIRECT_LIMBS: usize = 8;

/// Guard bits carried through each Newton step over the bits the step is
/// expected to get right; generous so the finished reciprocal sits within
/// [`MU_MAX_SLACK_ULPS`] of exact.
const NEWTON_GUARD_BITS: u64 = 32;

/// How far below the exact `floor(beta^cap / n)` a Newton-built reciprocal
/// may land, in ulps. The iteration only ever under-estimates (seed and
/// every truncation round toward zero; the subtracted term's operand
/// rounds up), and the 32 guard bits leave at most a few ulps unresolved —
/// 4 was the observed worst case across the adversarial test shapes, 16 is
/// that with headroom. Each ulp of slack costs one O(m) subtraction in the
/// Barrett correction loop, which is far cheaper than the full `mu * n`
/// product an exactness pass would need.
const MU_MAX_SLACK_ULPS: u32 = 16;

/// Upper bound on Barrett correction subtractions: the two the exact-`mu`
/// analysis allows plus one per ulp of reciprocal slack. Exceeding it is
/// impossible for reciprocals built by [`Reciprocal::with_capacity`];
/// reaching it (a damaged persisted reciprocal that slipped past the
/// structural checks) falls back to one exact division instead of looping
/// or returning a wrong remainder.
const MAX_BARRETT_CORRECTIONS: u32 = 2 + MU_MAX_SLACK_ULPS;

/// Why a reciprocal could not be built or applied. Misuse (a zero modulus,
/// or pairing a reciprocal with a different modulus than it was built for)
/// is a typed error, not a panic: reciprocals flow through persisted tree
/// caches where a confused pairing must surface as a recoverable condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RecipError {
    /// The modulus was zero — no reciprocal exists.
    ZeroModulus,
    /// The reciprocal was built for a different modulus than the one it
    /// was applied to (sizes bound at construction time disagree).
    ModulusMismatch {
        /// Bit length of the modulus the reciprocal was built for.
        expected_bits: u64,
        /// Bit length of the modulus it was applied to.
        found_bits: u64,
    },
    /// A deserialized `(mu, capacity)` pair is structurally impossible for
    /// the claimed modulus (wrong magnitude or undersized capacity).
    MalformedParts {
        /// Which structural check failed.
        detail: &'static str,
    },
}

impl fmt::Display for RecipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecipError::ZeroModulus => write!(f, "reciprocal of zero modulus"),
            RecipError::ModulusMismatch {
                expected_bits,
                found_bits,
            } => write!(
                f,
                "reciprocal built for a {expected_bits}-bit modulus applied to a \
                 {found_bits}-bit one"
            ),
            RecipError::MalformedParts { detail } => {
                write!(f, "malformed reciprocal parts: {detail}")
            }
        }
    }
}

impl std::error::Error for RecipError {}

/// A precomputed fixed-point reciprocal `mu` of one modulus `n` — equal to
/// `floor(beta^cap / n)` up to `MU_MAX_SLACK_ULPS` of one-sided
/// under-estimate — sized to reduce dividends below `beta^cap` in a single
/// Barrett step. The modulus itself is not stored (tree nodes already own
/// it); its limb and bit lengths are, so a mismatched pairing is caught as
/// [`RecipError::ModulusMismatch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reciprocal {
    /// `floor(beta^cap / n)`, up to the permitted one-sided under-estimate.
    mu: Natural,
    /// `limb_len(n)`.
    m: usize,
    /// Dividend capacity in limbs: one Barrett step handles `x < beta^cap`.
    cap: usize,
    /// `bit_len(n)` — binds the reciprocal to its modulus.
    n_bits: u64,
}

/// `2^bits` as a [`Natural`].
fn pow2(bits: u64) -> Natural {
    let mut p = Natural::zero();
    p.set_bit(bits, true);
    p
}

/// `a >> (64*k)` — the limbs above the low `k`, as a borrowed view.
#[inline]
fn high_limb_slice(a: &[u64], k: usize) -> &[u64] {
    if a.len() <= k {
        &[]
    } else {
        &a[k..]
    }
}

/// `floor(beta^cap / n)`, possibly under-estimated by at most
/// [`MU_MAX_SLACK_ULPS`], by Newton iteration on truncated operands. The
/// under-estimate is one-sided by construction — see the module docs for
/// why over-estimating would be unsound and why the slack is kept rather
/// than corrected away. Falls back to one exact direct division for small
/// moduli or near-unit quotients, where the iteration's bookkeeping costs
/// more than Knuth division.
fn invert_newton(n: &Natural, cap: usize) -> Natural {
    let m = n.limb_len();
    let e = 64 * cap as u64; // mu = floor(2^e / n)
    let t = n.bit_len();
    if m <= NEWTON_DIRECT_LIMBS || e - t < 128 {
        return &pow2(e) / n;
    }

    // Seed from the top 64 bits of n (top bit set, by normalization):
    // z0 = floor(2^128 / (n1 + 1)) approximates 2^(t+64)/n from below with
    // absolute error <= 5 ulps (n1 >= 2^63 bounds the bracket width), i.e.
    // ~61 correct bits.
    let n1 = (n >> (t - 64)).low_limb();
    let mut z = if n1 == u64::MAX {
        pow2(64)
    } else {
        Natural::from(u128::MAX / (n1 as u128 + 1))
    };
    let mut g = t + 64; // z ~ 2^g / n
    let correct: u64 = 60;
    let needed = e - t + 2; // significant bits of mu, plus slack

    // Precision ladder, built backwards from the target so the last step
    // runs from exactly half precision. Doubling forward instead can land
    // the second-to-last step arbitrarily close to `needed` (e.g. 87% of
    // it), making the final full-size multiply redo almost-converged work
    // — measured at ~2x the total build cost. Each rung satisfies
    // `rung <= 2 * previous - 4`, the same 4-bit truncation budget per
    // step as before: `prev = ceil(rung/2) + 2` gives
    // `2*prev - 4 = 2*ceil(rung/2) >= rung`.
    let mut ladder: Vec<u64> = Vec::new();
    let mut c = needed;
    while c > correct {
        ladder.push(c);
        c = c.div_ceil(2) + 2;
    }

    for &c_next in ladder.iter().rev() {
        // Each step squares the relative error; budget 4 bits of it for
        // the truncations below. The working exponent saturates at the
        // target `e` (near-unit quotients get there with bits still to
        // earn); late rungs then run at constant exponent — the classical
        // fixed-precision Newton iteration — while the error squares down.
        let g_next = (t - 1 + c_next + NEWTON_GUARD_BITS).min(e);
        // Truncate n to the precision this step can use, rounding up so
        // the subtracted term over-estimates (keeps z' from overshooting).
        let h = t.min(c_next + NEWTON_GUARD_BITS);
        let sigma = t - h;
        let n_hat = if sigma == 0 {
            n.clone()
        } else {
            &(n >> sigma) + &Natural::one()
        };
        // z' = 2^(g_next-g+1)*z - floor(z^2 * n_hat / 2^(2g - g_next - sigma))
        // approximates 2^g_next/n with the relative error squared.
        debug_assert!(g_next >= g && 2 * g >= g_next + sigma);
        let down = 2 * g - g_next - sigma;
        let sub = &(&(&z * &z) * &n_hat) >> down;
        let up = &z << (g_next - g + 1);
        z = match up.checked_sub(&sub) {
            Some(v) => v,
            // Unreachable for in-range errors; exact fallback keeps the
            // routine total without a panic path.
            None => return &pow2(e) / n,
        };
        g = g_next;
    }

    // z is now within a few ulps of floor(2^e/n) and is left approximate
    // (the exactness product `z * n` would dominate the whole build) — but
    // it must first be made one-sided. Each step computes a concave
    // function of the previous z whose maximum over all inputs is the true
    // 2^g/n (the Newton map touches its fixed point at its critical
    // point); the floored shift adds less than one, so every step ends at
    // most one ulp above the true value, however far off its input was.
    // Subtracting that ulp yields z <= floor(2^e/n) unconditionally —
    // the direction the Barrett remainder arithmetic depends on.
    z = match z.checked_sub(&Natural::one()) {
        Some(v) => v,
        // Unreachable (z is astronomically large here); exact fallback
        // keeps the routine total without a panic path.
        None => return &pow2(e) / n,
    };
    // One shape needs patching: when floor(2^e/n) is exactly the minimal
    // 2^(e-t) (n just below a power of two), the slack can drop z below
    // mu's guaranteed magnitude window, which the structural checks in
    // `from_parts` and the capacity maths both rely on. Clamping up to
    // 2^(e-t) is always sound: floor(2^e/n) >= 2^(e-t) for t-bit n.
    let floor_min = pow2(e - t);
    if z < floor_min {
        z = floor_min;
    }
    debug_assert!(
        (&pow2(e) / n)
            .checked_sub(&z)
            .and_then(|slack| slack.to_u64())
            .is_some_and(|slack| slack <= u64::from(MU_MAX_SLACK_ULPS)),
        "Newton over-estimated or left more than MU_MAX_SLACK_ULPS of error"
    );
    z
}

impl Reciprocal {
    /// Reciprocal with the default capacity `2m` (the classic HAC 14.42
    /// shape): one Barrett step reduces any `x < beta^(2m)`, larger values
    /// fold in `m`-limb chunks.
    ///
    /// # Errors
    /// [`RecipError::ZeroModulus`] if `n` is zero.
    pub fn new(n: &Natural) -> Result<Reciprocal, RecipError> {
        Reciprocal::with_capacity(n, 2 * n.limb_len())
    }

    /// Reciprocal sized for dividends below `beta^cap_limbs`. Remainder
    /// trees know each node's incoming-value bound (the parent's modulus),
    /// so they size `mu` once and take the single-step path on every
    /// descent. The capacity is clamped to at least `m + 1` so `mu` always
    /// has at least one full limb of precision.
    ///
    /// # Errors
    /// [`RecipError::ZeroModulus`] if `n` is zero.
    pub fn with_capacity(n: &Natural, cap_limbs: usize) -> Result<Reciprocal, RecipError> {
        if n.is_zero() {
            return Err(RecipError::ZeroModulus);
        }
        let m = n.limb_len();
        let cap = cap_limbs.max(m + 1);
        Ok(Reciprocal {
            mu: invert_newton(n, cap),
            m,
            cap,
            n_bits: n.bit_len(),
        })
    }

    /// Reassemble a reciprocal from persisted parts, validating them
    /// against the modulus they claim to invert. The checks are
    /// structural (capacity and magnitude), not a full recomputation —
    /// persisted reciprocals are integrity-protected by their container's
    /// checksums, the same trust model as the cached products themselves.
    ///
    /// # Errors
    /// [`RecipError::ZeroModulus`] for a zero modulus;
    /// [`RecipError::MalformedParts`] when `(mu, cap_limbs)` cannot be a
    /// reciprocal of this `n` (wrong magnitude window or capacity).
    pub fn from_parts(
        mu: Natural,
        cap_limbs: usize,
        n: &Natural,
    ) -> Result<Reciprocal, RecipError> {
        if n.is_zero() {
            return Err(RecipError::ZeroModulus);
        }
        let m = n.limb_len();
        if cap_limbs < m + 1 {
            return Err(RecipError::MalformedParts {
                detail: "capacity smaller than the modulus",
            });
        }
        // floor(2^e/n) has e - t + 1 bits, except one more when n is a
        // power of two.
        let e = 64 * cap_limbs as u64;
        let t = n.bit_len();
        let bits = mu.bit_len();
        if bits < e - t + 1 || bits > e - t + 2 {
            return Err(RecipError::MalformedParts {
                detail: "mu magnitude impossible for this modulus",
            });
        }
        Ok(Reciprocal {
            mu,
            m,
            cap: cap_limbs,
            n_bits: t,
        })
    }

    /// The stored fixed-point reciprocal (`floor(beta^cap / n)` up to the
    /// permitted under-estimate), for serialization.
    pub fn mu(&self) -> &Natural {
        &self.mu
    }

    /// Dividend capacity in limbs.
    pub fn cap_limbs(&self) -> usize {
        self.cap
    }

    /// Limb length of the modulus this reciprocal inverts.
    pub fn modulus_limbs(&self) -> usize {
        self.m
    }

    /// Stored size in bytes (limb storage of `mu`).
    pub fn bytes(&self) -> usize {
        self.mu.limb_len() * 8
    }

    /// One generalized-Barrett step for `x < beta^cap`: two multiplies and
    /// at most `2 + MU_MAX_SLACK_ULPS` correction subtractions (see the
    /// module-level bound), writing the remainder into `out` (which may
    /// carry high zero limbs; callers normalize). Both product scratches
    /// come from the thread arena, so a warmed pool runs the step without
    /// heap allocation. A reciprocal so damaged that the correction bound
    /// is exceeded — impossible for ones built here — degrades to one
    /// exact division rather than a wrong remainder.
    fn step_into(&self, x: &[u64], n: &Natural, out: &mut Vec<u64>) {
        use crate::limb::{cmp_slices, effective_len, sub_assign_slice};
        use core::cmp::Ordering;
        debug_assert!(effective_len(x) <= self.cap);
        out.clear();
        if cmp_slices(x, n.limbs()) == Ordering::Less {
            out.extend_from_slice(x);
            return;
        }
        let m = self.m;
        // q_hat = floor(floor(x / beta^(m-1)) * mu / beta^(cap-m+1)).
        let q1 = high_limb_slice(x, m - 1);
        let mut t1 = crate::arena::take(q1.len() + self.mu.limb_len());
        crate::mul::mul_slices_into(q1, self.mu.limbs(), &mut t1);
        let q3 = high_limb_slice(&t1, self.cap - m + 1);
        // r = x - q_hat*n, computed mod beta^(m+1): the true value lies in
        // [0, (3 + slack) n) which is far below beta^(m+1), so the low
        // limbs determine it. The fixed-width subtraction ignoring the
        // final borrow IS the mod-beta^(m+1) arithmetic (a wrapped result
        // equals r1 + beta^k - r2).
        let k = m + 1;
        let mut t2 = crate::arena::take(q3.len() + m);
        crate::mul::mul_slices_into(q3, n.limbs(), &mut t2);
        out.extend_from_slice(&x[..k.min(x.len())]);
        out.resize(k, 0);
        let r2 = &t2[..k.min(t2.len())];
        let _wrap = sub_assign_slice(out, r2);
        crate::arena::put(t1);
        crate::arena::put(t2);
        let mut corrections = 0u32;
        while cmp_slices(out, n.limbs()) != Ordering::Less {
            if corrections == MAX_BARRETT_CORRECTIONS {
                let r = Natural::from_limb_slice(x).div_rem(n).1;
                let old = core::mem::replace(out, r.into_limbs());
                crate::arena::put(old);
                return;
            }
            let borrow = sub_assign_slice(out, n.limbs());
            debug_assert_eq!(borrow, 0);
            corrections += 1;
        }
    }
}

impl Natural {
    /// `self mod n` by Barrett reduction against a precomputed
    /// [`Reciprocal`] of `n`. The result is the exact remainder —
    /// byte-identical to [`Natural::div_rem`]'s — for any operand sizes:
    /// values at or below the reciprocal's capacity reduce in one step
    /// (two multiplies + at most two subtractions), larger values fold
    /// top-down in capacity-sized chunks.
    ///
    /// # Errors
    /// [`RecipError::ZeroModulus`] if `n` is zero;
    /// [`RecipError::ModulusMismatch`] if `recip` was built for a
    /// different modulus.
    pub fn barrett_rem(&self, n: &Natural, recip: &Reciprocal) -> Result<Natural, RecipError> {
        let mut out = Natural::from_limbs(crate::arena::take(recip.m + 1));
        self.barrett_rem_into(n, recip, &mut out)?;
        Ok(out)
    }

    /// [`barrett_rem`](Natural::barrett_rem) into a caller-provided value,
    /// reusing its backing storage; the allocating form is a thin wrapper
    /// over this kernel. With a warmed thread arena the reduction performs
    /// no heap allocation.
    ///
    /// # Errors
    /// Same conditions as [`barrett_rem`](Natural::barrett_rem); `out` is
    /// untouched on error.
    pub fn barrett_rem_into(
        &self,
        n: &Natural,
        recip: &Reciprocal,
        out: &mut Natural,
    ) -> Result<(), RecipError> {
        if n.is_zero() {
            return Err(RecipError::ZeroModulus);
        }
        if recip.m != n.limb_len() || recip.n_bits != n.bit_len() {
            return Err(RecipError::ModulusMismatch {
                expected_bits: recip.n_bits,
                found_bits: n.bit_len(),
            });
        }
        let buf = out.vec_mut();
        if self < n {
            buf.clear();
            buf.extend_from_slice(self.limbs());
            return Ok(());
        }
        if recip.m == 1 {
            buf.clear();
            buf.push(self.rem_limb(n.low_limb()));
            out.normalize();
            return Ok(());
        }
        if self.limb_len() <= recip.cap {
            recip.step_into(self.limbs(), n, buf);
            out.normalize();
            return Ok(());
        }
        // Fold from the top in chunks sized so every step stays under the
        // capacity: r < n < beta^m, so r * beta^take + chunk has at most
        // m + take <= cap limbs.
        let limbs = self.limbs();
        let take_per_step = recip.cap - recip.m;
        let mut pos = limbs.len() - recip.cap;
        recip.step_into(&limbs[pos..], n, buf);
        let mut window = crate::arena::take(recip.cap);
        while pos > 0 {
            let take = take_per_step.min(pos);
            pos -= take;
            // window = r * beta^take + limbs[pos..pos+take], assembled
            // without shifts: low limbs from the value, high from r.
            window.clear();
            window.extend_from_slice(&limbs[pos..pos + take]);
            window.extend_from_slice(crate::mul::trim(buf));
            recip.step_into(&window, n, buf);
        }
        crate::arena::put(window);
        out.normalize();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, seed: u64) -> Natural {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let limbs: Vec<u64> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        Natural::from_limbs(limbs)
    }

    /// mu must be exactly floor(beta^cap / n) — the direct-division path.
    fn check_mu_exact(n: &Natural, cap: usize) {
        let r = Reciprocal::with_capacity(n, cap).unwrap();
        let expect = &pow2(64 * r.cap_limbs() as u64) / n;
        assert_eq!(
            r.mu(),
            &expect,
            "mu not exact for n={} limbs cap={cap}",
            n.limb_len()
        );
    }

    /// mu must never exceed floor(beta^cap / n) — the soundness direction —
    /// and must sit within MU_MAX_SLACK_ULPS below it.
    fn check_mu_slack(n: &Natural, cap: usize) {
        let r = Reciprocal::with_capacity(n, cap).unwrap();
        let exact = &pow2(64 * r.cap_limbs() as u64) / n;
        let slack = exact.checked_sub(r.mu()).unwrap_or_else(|| {
            panic!(
                "mu over-estimates the reciprocal for n={} limbs cap={cap}",
                n.limb_len()
            )
        });
        assert!(
            slack
                .to_u64()
                .is_some_and(|s| s <= u64::from(MU_MAX_SLACK_ULPS)),
            "mu slack beyond bound for n={} limbs cap={cap}",
            n.limb_len()
        );
    }

    #[test]
    fn mu_exact_small_and_direct_path() {
        for (len, seed) in [(1, 1), (2, 2), (4, 3), (8, 4)] {
            check_mu_exact(&pseudo(len, seed), 2 * len);
        }
    }

    #[test]
    fn mu_bounded_newton_path() {
        for (len, seed) in [(9, 1), (16, 2), (33, 3), (64, 4), (150, 5), (300, 6)] {
            check_mu_slack(&pseudo(len, seed), 2 * len);
        }
    }

    #[test]
    fn mu_bounded_asymmetric_capacities() {
        let n = pseudo(40, 9);
        for cap in [41, 50, 80, 120, 200] {
            check_mu_slack(&n, cap);
        }
    }

    #[test]
    fn mu_bounded_adversarial_shapes() {
        // Powers of two (2^e divides evenly), all-ones, just below/above a
        // power of two: the shapes where floor corrections bite and where
        // the magnitude-window clamp (n just below a power of two) matters.
        let p = pow2(64 * 20);
        check_mu_slack(&p, 40);
        let ones = &pow2(64 * 20) - &Natural::one();
        check_mu_slack(&ones, 40);
        let above = &pow2(64 * 20 + 1) + &Natural::one();
        check_mu_slack(&above, 42);
        // Top limb minimal (1): worst normalization case.
        let mut low_top = pseudo(20, 7);
        let mut limbs = low_top.limbs().to_vec();
        limbs[19] = 1;
        low_top = Natural::from_limbs(limbs);
        check_mu_slack(&low_top, 40);
    }

    #[test]
    fn mu_bounded_saturated_exponent() {
        // Capacities barely past the direct-division cutoff (e - t just
        // over 128): the Newton exponent saturates at the target while
        // correct bits are still accruing, forcing constant-exponent
        // steps. Regression shape: a 16-limb modulus with a short top limb
        // and cap 18 once tripped the step-scheduling invariant.
        for (len, top_bits, cap, seed) in [
            (16usize, 59u64, 18usize, 1u64),
            (16, 1, 18, 2),
            (32, 33, 35, 3),
            (9, 64, 11, 4),
        ] {
            let mut limbs = pseudo(len, seed).limbs().to_vec();
            let keep = top_bits.clamp(1, 64);
            limbs[len - 1] = (limbs[len - 1] | (1 << (keep - 1))) & (u64::MAX >> (64 - keep));
            let n = Natural::from_limbs(limbs);
            check_mu_slack(&n, cap);
        }
    }

    #[test]
    fn mu_magnitude_window_holds_under_slack() {
        // from_parts requires bit_len(mu) in [e-t+1, e-t+2]; the clamp in
        // invert_newton must keep approximate reciprocals inside it even
        // for moduli just below a power of two (exact mu minimal).
        for (len, seed) in [(9, 3), (20, 5), (64, 8)] {
            let ones = &pow2(64 * len) - &Natural::one();
            let r = Reciprocal::with_capacity(&ones, 2 * len as usize).unwrap();
            let back = Reciprocal::from_parts(r.mu().clone(), r.cap_limbs(), &ones).unwrap();
            let x = pseudo(2 * len as usize, seed);
            assert_eq!(x.barrett_rem(&ones, &back).unwrap(), x.div_rem(&ones).1);
        }
    }

    #[test]
    fn barrett_matches_div_rem() {
        for (xl, nl, seed) in [
            (8, 4, 1),
            (20, 10, 2),
            (64, 32, 3),
            (100, 60, 4),
            (120, 49, 5), // divisor just above BZ_THRESHOLD
            (200, 100, 6),
        ] {
            let x = pseudo(xl, seed);
            let n = pseudo(nl, seed + 50);
            let r = Reciprocal::new(&n).unwrap();
            assert_eq!(
                x.barrett_rem(&n, &r).unwrap(),
                x.div_rem(&n).1,
                "xl={xl} nl={nl}"
            );
        }
    }

    #[test]
    fn barrett_chunked_fold_matches_div_rem() {
        // Values far above the capacity exercise the folding loop.
        for (xl, nl, seed) in [(50, 5, 1), (200, 12, 2), (500, 32, 3), (333, 10, 4)] {
            let x = pseudo(xl, seed);
            let n = pseudo(nl, seed + 9);
            let r = Reciprocal::new(&n).unwrap();
            assert_eq!(
                x.barrett_rem(&n, &r).unwrap(),
                x.div_rem(&n).1,
                "xl={xl} nl={nl}"
            );
        }
    }

    #[test]
    fn barrett_single_limb_modulus() {
        let x = pseudo(30, 3);
        let n = Natural::from(0xdead_beef_u64);
        let r = Reciprocal::new(&n).unwrap();
        assert_eq!(x.barrett_rem(&n, &r).unwrap(), x.div_rem(&n).1);
    }

    #[test]
    fn barrett_knuth_add_back_shape() {
        // The dividend/divisor pair exercising Knuth's rare D6 add-back;
        // Barrett must agree with the division path on it.
        let x = &pow2(512) - &Natural::one();
        let n = &pow2(192) - &pow2(64);
        let r = Reciprocal::new(&n).unwrap();
        assert_eq!(x.barrett_rem(&n, &r).unwrap(), x.div_rem(&n).1);
    }

    #[test]
    fn barrett_boundary_values() {
        let n = pseudo(10, 42);
        let r = Reciprocal::new(&n).unwrap();
        // x < n, x == n, x == n+1, x just below beta^cap, multiples of n.
        let cases = [
            Natural::zero(),
            Natural::one(),
            &n - &Natural::one(),
            n.clone(),
            &n + &Natural::one(),
            &pow2(64 * 20) - &Natural::one(),
            &n * &pseudo(10, 7),
            &(&n * &pseudo(10, 8)) + &Natural::one(),
        ];
        for x in &cases {
            assert_eq!(x.barrett_rem(&n, &r).unwrap(), x.div_rem(&n).1);
        }
    }

    #[test]
    fn sized_capacity_single_step_matches() {
        // A tree-shaped use: modulus m limbs, values up to 4m limbs, one
        // reciprocal sized for the whole range.
        let n = pseudo(30, 11);
        let r = Reciprocal::with_capacity(&n, 120).unwrap();
        for (xl, seed) in [(31, 1), (60, 2), (90, 3), (120, 4)] {
            let x = pseudo(xl, seed);
            assert_eq!(x.barrett_rem(&n, &r).unwrap(), x.div_rem(&n).1, "xl={xl}");
        }
    }

    #[test]
    fn zero_modulus_is_typed_error() {
        assert_eq!(
            Reciprocal::new(&Natural::zero()).unwrap_err(),
            RecipError::ZeroModulus
        );
        let n = pseudo(4, 1);
        let r = Reciprocal::new(&n).unwrap();
        assert_eq!(
            Natural::one()
                .barrett_rem(&Natural::zero(), &r)
                .unwrap_err(),
            RecipError::ZeroModulus
        );
    }

    #[test]
    fn modulus_mismatch_is_typed_error() {
        let n = pseudo(6, 1);
        let other = pseudo(6, 2);
        let r = Reciprocal::new(&n).unwrap();
        let err = pseudo(12, 3).barrett_rem(&other, &r).unwrap_err();
        match err {
            RecipError::ModulusMismatch { .. } => {}
            e => panic!("expected ModulusMismatch, got {e:?}"),
        }
    }

    #[test]
    fn from_parts_roundtrip_and_validation() {
        let n = pseudo(12, 5);
        let r = Reciprocal::new(&n).unwrap();
        let back = Reciprocal::from_parts(r.mu().clone(), r.cap_limbs(), &n).unwrap();
        assert_eq!(back, r);
        let x = pseudo(24, 6);
        assert_eq!(x.barrett_rem(&n, &back).unwrap(), x.div_rem(&n).1);

        // Undersized capacity and wrong-magnitude mu are rejected.
        assert!(matches!(
            Reciprocal::from_parts(r.mu().clone(), 11, &n),
            Err(RecipError::MalformedParts { .. })
        ));
        assert!(matches!(
            Reciprocal::from_parts(Natural::one(), r.cap_limbs(), &n),
            Err(RecipError::MalformedParts { .. })
        ));
        assert!(matches!(
            Reciprocal::from_parts(r.mu().clone(), r.cap_limbs(), &Natural::zero()),
            Err(RecipError::ZeroModulus)
        ));
    }

    #[test]
    fn error_display() {
        assert!(RecipError::ZeroModulus.to_string().contains("zero"));
        let e = RecipError::ModulusMismatch {
            expected_bits: 100,
            found_bits: 99,
        };
        assert!(e.to_string().contains("100"));
        let e = RecipError::MalformedParts { detail: "x" };
        assert!(e.to_string().contains("malformed"));
    }
}
