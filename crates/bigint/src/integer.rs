//! Signed arbitrary-precision integers.
//!
//! [`Integer`] is a thin sign-magnitude wrapper over [`Natural`], used where
//! intermediates can go negative: Toom-3 interpolation, the extended
//! Euclidean algorithm, and Burnikel-Ziegler correction steps.

use crate::natural::Natural;
use core::cmp::Ordering;
use core::ops::{Add, Mul, Neg, Shl, Shr, Sub};

/// Sign of an [`Integer`]. Zero always carries [`Sign::Zero`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Sign {
    Negative,
    Zero,
    Positive,
}

/// Signed arbitrary-precision integer (sign + magnitude).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Integer {
    sign: Sign,
    magnitude: Natural,
}

impl Integer {
    /// The value 0.
    pub fn zero() -> Self {
        Integer {
            sign: Sign::Zero,
            magnitude: Natural::zero(),
        }
    }

    /// Wrap a natural as a nonnegative integer.
    pub fn from_natural(n: Natural) -> Self {
        let sign = if n.is_zero() {
            Sign::Zero
        } else {
            Sign::Positive
        };
        Integer { sign, magnitude: n }
    }

    /// Construct from sign and magnitude, normalizing zero.
    pub fn from_sign_magnitude(negative: bool, magnitude: Natural) -> Self {
        let sign = if magnitude.is_zero() {
            Sign::Zero
        } else if negative {
            Sign::Negative
        } else {
            Sign::Positive
        };
        Integer { sign, magnitude }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// True iff the value is negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// True iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Borrow the magnitude.
    pub fn magnitude(&self) -> &Natural {
        &self.magnitude
    }

    /// Consume into the magnitude, discarding the sign.
    pub fn into_magnitude(self) -> Natural {
        self.magnitude
    }

    /// Convert to a [`Natural`], panicking (with `context`) if negative.
    /// Used where an algorithm invariant guarantees nonnegativity, e.g.
    /// Toom-3 interpolated coefficients.
    pub fn into_natural_checked(self, context: &str) -> Natural {
        assert!(
            self.sign != Sign::Negative,
            "negative intermediate in {context}"
        );
        self.magnitude
    }

    /// Exact division by a small limb; panics if the division is not exact.
    /// Used by Toom-3 interpolation (division by 3 is always exact there).
    pub fn div_exact_limb(&self, d: u64) -> Integer {
        let (q, r) = self.magnitude.div_rem_limb(d);
        assert_eq!(r, 0, "div_exact_limb: remainder {r} dividing by {d}");
        Integer::from_sign_magnitude(self.is_negative(), q)
    }
}

impl From<i64> for Integer {
    fn from(v: i64) -> Self {
        Integer::from_sign_magnitude(v < 0, Natural::from(v.unsigned_abs()))
    }
}

impl From<Natural> for Integer {
    fn from(n: Natural) -> Self {
        Integer::from_natural(n)
    }
}

impl Ord for Integer {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Negative, Negative) => other.magnitude.cmp(&self.magnitude),
            (Negative, _) => Ordering::Less,
            (Zero, Negative) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Positive) => Ordering::Less,
            (Positive, Positive) => self.magnitude.cmp(&other.magnitude),
            (Positive, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for Integer {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &Integer {
    type Output = Integer;
    fn neg(self) -> Integer {
        Integer::from_sign_magnitude(self.sign == Sign::Positive, self.magnitude.clone())
    }
}

impl Add<&Integer> for &Integer {
    type Output = Integer;
    fn add(self, rhs: &Integer) -> Integer {
        if self.is_zero() {
            return rhs.clone();
        }
        if rhs.is_zero() {
            return self.clone();
        }
        if self.sign == rhs.sign {
            return Integer {
                sign: self.sign,
                magnitude: &self.magnitude + &rhs.magnitude,
            };
        }
        // Opposite signs: subtract smaller magnitude from larger; the sign of
        // the result is the sign of the larger-magnitude operand.
        match self.magnitude.cmp(&rhs.magnitude) {
            Ordering::Equal => Integer::zero(),
            Ordering::Greater => Integer {
                sign: self.sign,
                magnitude: &self.magnitude - &rhs.magnitude,
            },
            Ordering::Less => Integer {
                sign: rhs.sign,
                magnitude: &rhs.magnitude - &self.magnitude,
            },
        }
    }
}

impl Sub<&Integer> for &Integer {
    type Output = Integer;
    fn sub(self, rhs: &Integer) -> Integer {
        self + &(-rhs)
    }
}

impl Mul<&Integer> for &Integer {
    type Output = Integer;
    fn mul(self, rhs: &Integer) -> Integer {
        if self.is_zero() || rhs.is_zero() {
            return Integer::zero();
        }
        Integer::from_sign_magnitude(self.sign != rhs.sign, &self.magnitude * &rhs.magnitude)
    }
}

impl Shl<u64> for &Integer {
    type Output = Integer;
    fn shl(self, bits: u64) -> Integer {
        Integer::from_sign_magnitude(self.is_negative(), &self.magnitude << bits)
    }
}

/// Arithmetic right shift, exact-division semantics: only used in Toom-3
/// where the shifted value is known to be even; panics otherwise so the
/// exactness invariant is enforced rather than silently truncated.
impl Shr<u64> for &Integer {
    type Output = Integer;
    fn shr(self, bits: u64) -> Integer {
        debug_assert!(
            self.magnitude.trailing_zeros().is_none_or(|t| t >= bits),
            "inexact right shift of Integer"
        );
        Integer::from_sign_magnitude(self.is_negative(), &self.magnitude >> bits)
    }
}

/// Division by a small limb, used in Toom-3 interpolation (`w / 3`); must be
/// exact.
impl core::ops::Div<u64> for &Integer {
    type Output = Integer;
    fn div(self, d: u64) -> Integer {
        self.div_exact_limb(d)
    }
}

impl core::fmt::Debug for Integer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_negative() {
            write!(f, "-")?;
        }
        write!(f, "{:?}", self.magnitude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn i(v: i64) -> Integer {
        Integer::from(v)
    }

    #[test]
    fn signed_addition_table() {
        for a in [-7i64, -1, 0, 1, 7] {
            for b in [-5i64, -1, 0, 1, 5] {
                assert_eq!(&i(a) + &i(b), i(a + b), "a={a} b={b}");
                assert_eq!(&i(a) - &i(b), i(a - b), "a={a} b={b}");
                assert_eq!(&i(a) * &i(b), i(a * b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn zero_normalization() {
        let z = &i(5) - &i(5);
        assert!(z.is_zero());
        assert_eq!(z.sign(), Sign::Zero);
        assert_eq!(
            Integer::from_sign_magnitude(true, Natural::zero()).sign(),
            Sign::Zero
        );
    }

    #[test]
    fn ordering() {
        assert!(i(-10) < i(-2));
        assert!(i(-2) < i(0));
        assert!(i(0) < i(3));
        assert!(i(3) < i(10));
    }

    #[test]
    fn exact_division_by_three() {
        assert_eq!(i(-9).div_exact_limb(3), i(-3));
        assert_eq!(i(0).div_exact_limb(3), i(0));
    }

    #[test]
    #[should_panic(expected = "remainder")]
    fn inexact_division_panics() {
        let _ = i(10).div_exact_limb(3);
    }

    #[test]
    #[should_panic(expected = "negative intermediate")]
    fn negative_into_natural_panics() {
        let _ = i(-1).into_natural_checked("test");
    }

    #[test]
    fn shifts_preserve_sign() {
        assert_eq!(&i(-4) << 2u64, i(-16));
        assert_eq!(&i(-16) >> 2u64, i(-4));
    }
}
