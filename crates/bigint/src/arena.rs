//! Per-thread limb-buffer arenas: recycled `Vec<u64>` storage for the hot
//! multiply / reduce / divide kernels.
//!
//! The batch-GCD descent performs millions of small-to-medium bignum
//! operations whose intermediate buffers live for exactly one tree node.
//! Allocating each from the global heap makes the descent an allocator
//! benchmark; this module gives every thread a pool of reusable limb
//! buffers with checkout/return semantics:
//!
//! * [`take`] — check a cleared buffer out of the calling thread's pool
//!   (or allocate fresh on a miss);
//! * [`put`] — return a buffer to the pool for the next checkout;
//! * [`recycle`] — return a [`Natural`]'s backing storage once the value
//!   is dead.
//!
//! The kernels in `mul`, `div`, `recip`, and `gcd` route their scratch and
//! result buffers through the arena, so a warmed pool runs the whole
//! remainder descent without touching the heap (pinned by the
//! counting-allocator test in `wk-batchgcd`). Ownership discipline — every
//! checkout returned on all paths, no arena buffer parked in a long-lived
//! struct — is enforced by the `arena-discipline` lint rule.
//!
//! The pool is deliberately bounded ([`POOL_SLOTS`] buffers per thread):
//! returning to a full pool drops the buffer, so the arena can never hold
//! more memory than one descent's working set. The free list itself is
//! pre-sized at thread init and never grows, keeping [`put`] itself
//! allocation-free.
//!
//! Counters are process-global atomics so callers in other crates can
//! report `alloc_events` / `arena_hit_ratio` without threading state
//! through every kernel; see [`stats`] and [`ArenaStats::delta_since`].

use crate::natural::Natural;
use core::cell::RefCell;
use core::sync::atomic::{AtomicU64, Ordering};

/// Maximum buffers a thread's pool retains; returns beyond this drop the
/// buffer. Sized for the deepest kernel recursion in play (Karatsuba over
/// multi-thousand-limb operands holds ~5 scratch buffers per level) with
/// generous headroom.
pub const POOL_SLOTS: usize = 128;

/// Checkouts served from the pool with adequate capacity.
static HITS: AtomicU64 = AtomicU64::new(0);
/// Checkouts that had to touch the heap (empty pool, or every pooled
/// buffer under the requested capacity — the buffer will grow on resize).
static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The calling thread's free list, pre-sized so `put` never allocates.
    static POOL: RefCell<Vec<Vec<u64>>> = RefCell::new(Vec::with_capacity(POOL_SLOTS));
}

/// Snapshot of the process-wide arena counters (monotonic; diff two
/// snapshots with [`delta_since`](ArenaStats::delta_since) to meter one
/// phase).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ArenaStats {
    /// Checkouts served from a pooled buffer of adequate capacity.
    pub hits: u64,
    /// Checkouts that allocated (or will grow) heap storage.
    pub alloc_events: u64,
}

impl ArenaStats {
    /// Total checkouts.
    pub fn checkouts(&self) -> u64 {
        self.hits + self.alloc_events
    }

    /// Fraction of checkouts served without touching the heap; 1.0 for an
    /// idle arena (no checkouts yet).
    pub fn hit_ratio(&self) -> f64 {
        let total = self.checkouts();
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter movement since an earlier snapshot (saturating, so a
    /// snapshot from a different process epoch degrades to zeros rather
    /// than nonsense).
    pub fn delta_since(&self, earlier: &ArenaStats) -> ArenaStats {
        ArenaStats {
            hits: self.hits.saturating_sub(earlier.hits),
            alloc_events: self.alloc_events.saturating_sub(earlier.alloc_events),
        }
    }
}

/// Current process-wide arena counters.
pub fn stats() -> ArenaStats {
    ArenaStats {
        hits: HITS.load(Ordering::Relaxed),
        alloc_events: ALLOC_EVENTS.load(Ordering::Relaxed),
    }
}

/// Check a limb buffer out of the calling thread's pool. The returned
/// buffer is empty (`len == 0`); on a pool hit its capacity is at least
/// `min_limbs`, on a miss it is freshly allocated at that capacity.
///
/// Pair every `take` with a [`put`] (directly, or via [`recycle`] once the
/// buffer has become a [`Natural`]) — the `arena-discipline` lint rule
/// checks this pairing in the hot crates.
pub fn take(min_limbs: usize) -> Vec<u64> {
    let reused = POOL.with(|pool| {
        // A panic can never be in flight here (no reentrancy: the pool
        // borrow spans only this closure, which calls nothing that takes
        // it again), but try_borrow keeps the failure mode "allocate
        // fresh" rather than a poisoned-RefCell panic.
        let mut pool = match pool.try_borrow_mut() {
            Ok(p) => p,
            Err(_) => return None,
        };
        // Prefer the most recently returned buffer with enough capacity
        // (cache-warm); fall back to the last buffer regardless — reusing
        // an undersized buffer still saves the free() even though resize
        // will reallocate.
        let found = pool.iter().rposition(|b| b.capacity() >= min_limbs);
        match found {
            Some(i) => Some((pool.swap_remove(i), true)),
            None => pool.pop().map(|b| (b, false)),
        }
    });
    match reused {
        Some((buf, true)) => {
            HITS.fetch_add(1, Ordering::Relaxed);
            buf
        }
        Some((buf, false)) => {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
            buf
        }
        None => {
            ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
            Vec::with_capacity(min_limbs)
        }
    }
}

/// Return a buffer to the calling thread's pool. Contents are cleared;
/// zero-capacity buffers and returns to a full pool are dropped. Never
/// allocates.
pub fn put(mut buf: Vec<u64>) {
    if buf.capacity() == 0 {
        return;
    }
    buf.clear();
    POOL.with(|pool| {
        if let Ok(mut pool) = pool.try_borrow_mut() {
            if pool.len() < POOL_SLOTS {
                pool.push(buf);
            }
        }
    });
}

/// Return a dead [`Natural`]'s backing buffer to the pool. The idiomatic
/// way for callers outside this crate (the remainder descent recycles each
/// parent residue once both children are reduced).
pub fn recycle(n: Natural) {
    put(n.into_limbs());
}

/// Check out a buffer and wrap `src`'s limbs in it — an allocation-free
/// `clone` when the pool is warm. The copy is normalized by construction
/// (`src` is).
pub fn clone_natural(src: &Natural) -> Natural {
    let mut buf = take(src.limb_len());
    buf.extend_from_slice(src.limbs());
    Natural::from_limbs(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_roundtrip_hits() {
        let before = stats();
        let mut b = take(32);
        assert!(b.is_empty());
        b.resize(32, 7);
        put(b);
        let b2 = take(16);
        assert!(b2.is_empty(), "returned buffers are cleared");
        assert!(b2.capacity() >= 32);
        put(b2);
        let after = stats();
        assert!(after.checkouts() >= before.checkouts() + 2);
        assert!(after.hits > before.hits, "second take must hit the pool");
    }

    #[test]
    fn undersized_pool_counts_alloc_event() {
        // Drain this thread's pool of large buffers first.
        let mut drained = Vec::new();
        for _ in 0..POOL_SLOTS {
            drained.push(take(1));
        }
        let before = stats();
        let b = take(1 << 20);
        assert!(b.capacity() >= 1 << 20);
        let after = stats();
        assert!(after.alloc_events > before.alloc_events);
        put(b);
        for d in drained {
            put(d);
        }
    }

    #[test]
    fn recycle_then_clone_natural_reuses() {
        let n = Natural::from(0xdead_beef_u64);
        let c = clone_natural(&n);
        assert_eq!(c, n);
        recycle(c);
        let before = stats();
        let c2 = clone_natural(&n);
        assert_eq!(c2, n);
        assert!(stats().hits > before.hits);
        recycle(c2);
    }

    #[test]
    fn hit_ratio_bounds() {
        let s = ArenaStats {
            hits: 3,
            alloc_events: 1,
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(ArenaStats::default().hit_ratio(), 1.0);
        let earlier = ArenaStats {
            hits: 1,
            alloc_events: 1,
        };
        let d = s.delta_since(&earlier);
        assert_eq!(
            d,
            ArenaStats {
                hits: 2,
                alloc_events: 0
            }
        );
    }
}
