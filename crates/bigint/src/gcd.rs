//! Greatest common divisors: binary GCD, Lehmer's algorithm, and the
//! extended Euclidean algorithm.
//!
//! `gcd` is the other half of the batch-GCD kernel: after the remainder tree
//! produces `z_i = P mod N_i^2`, each modulus is tested with
//! `gcd(N_i, z_i / N_i)`. Operands there are modulus-sized (tens of limbs),
//! so Lehmer's single-precision simulation of Euclid's algorithm is the
//! sweet spot; binary GCD is kept as the small-size base case and as a
//! reference implementation for tests.

use crate::integer::Integer;
use crate::natural::Natural;

impl Natural {
    /// Greatest common divisor. `gcd(0, b) == b`.
    ///
    /// Working copies of both operands come from the thread arena
    /// ([`crate::arena`]), so repeated GCDs over same-sized operands — the
    /// batch-GCD per-modulus test — reuse the same limb buffers.
    pub fn gcd(&self, other: &Natural) -> Natural {
        gcd_lehmer(
            crate::arena::clone_natural(self),
            crate::arena::clone_natural(other),
        )
    }

    /// Arena-disciplined [`gcd`](Natural::gcd) variant: writes the result
    /// into `out`, recycling `out`'s previous buffer through the arena.
    pub fn gcd_into(&self, other: &Natural, out: &mut Natural) {
        let g = self.gcd(other);
        let old = core::mem::replace(out, g);
        crate::arena::recycle(old);
    }

    /// Binary (Stein's) GCD. Exposed for tests and the ablation bench;
    /// [`Natural::gcd`] is the production entry point.
    pub fn gcd_binary(&self, other: &Natural) -> Natural {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Both nonzero (handled above), so both have a lowest set bit.
        let za = a.trailing_zeros().unwrap_or(0);
        let zb = b.trailing_zeros().unwrap_or(0);
        let common = za.min(zb);
        a >>= za;
        b >>= zb;
        // Both odd from here on.
        loop {
            if a == b {
                break;
            }
            if a < b {
                core::mem::swap(&mut a, &mut b);
            }
            a.sub_assign_ref(&b);
            let z = a.trailing_zeros();
            match z {
                None => break, // a == b happened via subtraction to zero
                Some(z) => a >>= z,
            }
        }
        &(if b.is_zero() { a } else { b }) << common
    }

    /// Extended GCD: returns `(g, x, y)` with `g = self*x + other*y`.
    pub fn extended_gcd(&self, other: &Natural) -> (Natural, Integer, Integer) {
        let mut r0 = self.clone();
        let mut r1 = other.clone();
        let mut x0 = Integer::from(1i64);
        let mut x1 = Integer::zero();
        let mut y0 = Integer::zero();
        let mut y1 = Integer::from(1i64);
        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1);
            let qi = Integer::from_natural(q);
            let nx = &x0 - &(&qi * &x1);
            let ny = &y0 - &(&qi * &y1);
            r0 = r1;
            r1 = r;
            x0 = x1;
            x1 = nx;
            y0 = y1;
            y1 = ny;
        }
        (r0, x0, y0)
    }

    /// Modular inverse of `self` mod `m`, or `None` if `gcd(self, m) != 1`.
    pub fn mod_inverse(&self, m: &Natural) -> Option<Natural> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        let a = self % m;
        if a.is_zero() {
            return None;
        }
        let (g, x, _) = a.extended_gcd(m);
        if !g.is_one() {
            return None;
        }
        // Normalize x into [0, m).
        let mag = x.magnitude() % m;
        Some(if x.is_negative() && !mag.is_zero() {
            m - &mag
        } else {
            mag
        })
    }
}

/// Lehmer's GCD: repeatedly simulate Euclid's algorithm on the top 63 bits
/// of both operands with single-precision cofactors, then apply the
/// accumulated 2x2 matrix to the full operands. Falls back to one full
/// division step when the simulation makes no progress, and to a `u128`
/// binary GCD once operands fit in two limbs.
///
/// Three things keep the per-round cost down to two single-pass limb scans:
/// windows are read straight out of the limb slices (no shifted copies),
/// the simulated quotients come from hardware `u64` division (63-bit
/// windows guarantee the cofactor-adjusted sums fit a word; `i128`
/// division compiles to a libcall an order of magnitude slower), and the
/// matrix application is a fused two-scalar linear combination instead of
/// four scalar products glued together with signed bigint adds.
fn gcd_lehmer(mut a: Natural, mut b: Natural) -> Natural {
    if a < b {
        core::mem::swap(&mut a, &mut b);
    }
    loop {
        if b.is_zero() {
            return a;
        }
        // `b <= a`, so when `a` fits a u128 both do and the word-size
        // algorithm finishes the job.
        if let (Some(x), Some(y)) = (a.to_u128(), b.to_u128()) {
            return Natural::from(gcd_u128(x, y));
        }
        // Top 63-bit window of `a` and the aligned bits of `b`. 63 rather
        // than 64 so that window + cofactor (capped at 2^62) stays below
        // 2^64 and the simulated quotients divide in one word.
        let k = a.bit_len();
        let shift = k - 63;
        let x = window_at(a.limbs(), shift);
        let y = window_at(b.limbs(), shift);

        // Simulate Euclid on (x, y) tracking cofactors: at every step
        // a' = A*x0 + B*y0, b' = C*x0 + D*y0 for the original window values.
        // Quotients are trusted only while both cofactor-adjusted ratios
        // agree (Collins' condition).
        let (mut xa, mut ya) = (x, y);
        let (mut ma, mut mb, mut mc, mut md) = (1i128, 0i128, 0i128, 1i128);
        loop {
            let n1 = xa as i128 + ma;
            let d1 = ya as i128 + mc;
            let n2 = xa as i128 + mb;
            let d2 = ya as i128 + md;
            if n1 < 0 || n2 < 0 || d1 <= 0 || d2 <= 0 {
                break;
            }
            // Windows < 2^63 and cofactors <= 2^62, so the sums fit u64;
            // the checks above are sign guards, the divisions are hardware.
            let q = (n1 as u64) / (d1 as u64);
            if q != (n2 as u64) / (d2 as u64) {
                break;
            }
            // (x, y) <- (y, x - q*y), matrix update alike.
            let qi = q as i128;
            let nya = xa as i128 - qi * ya as i128;
            let (nmc, nmd) = (ma - qi * mc, mb - qi * md);
            if nya < 0 || nmc.abs() > (1 << 62) || nmd.abs() > (1 << 62) {
                break;
            }
            xa = ya;
            ya = nya as u64;
            (ma, mb) = (mc, md);
            (mc, md) = (nmc, nmd);
        }

        if mb == 0 {
            // No progress possible in single precision: one full Euclid step.
            let r = &a % &b;
            crate::arena::recycle(core::mem::replace(&mut a, b));
            b = r;
        } else {
            // Apply the matrix: (a, b) <- (|A*a + B*b|, |C*a + D*b|). Each
            // row always carries one nonnegative and one nonpositive entry
            // (rows swap and subtract a positive multiple every step), so
            // the row value is a plain difference of two scalar products.
            let na = apply_row(ma, mb, &a, &b);
            let nb = apply_row(mc, md, &a, &b);
            debug_assert!(nb < b, "Lehmer step must make progress");
            // The outgoing operands' buffers feed the next iteration's
            // products through the arena.
            crate::arena::recycle(core::mem::replace(&mut a, na));
            crate::arena::recycle(core::mem::replace(&mut b, nb));
            if a < b {
                core::mem::swap(&mut a, &mut b);
            }
        }
    }
}

/// Bits `[shift, shift+64)` of a limb slice, read without materializing a
/// shifted copy. Bits past the top limb read as zero.
#[inline]
fn window_at(limbs: &[u64], shift: u64) -> u64 {
    let idx = (shift / 64) as usize;
    let off = (shift % 64) as u32;
    let lo = limbs.get(idx).map_or(0, |&w| w) >> off;
    if off == 0 {
        lo
    } else {
        lo | limbs.get(idx + 1).map_or(0, |&w| w) << (64 - off)
    }
}

/// One Lehmer matrix row `|p*a + q*b|` where `p` and `q` have opposite
/// signs and magnitudes below `2^63` — dispatched to the positive-result
/// orientation of [`lincomb_sub`].
fn apply_row(p: i128, q: i128, a: &Natural, b: &Natural) -> Natural {
    if q <= 0 {
        debug_assert!(p >= 0, "Lehmer row signs must oppose");
        lincomb_sub(p.unsigned_abs() as u64, a, q.unsigned_abs() as u64, b)
    } else {
        debug_assert!(p <= 0, "Lehmer row signs must oppose");
        lincomb_sub(q.unsigned_abs() as u64, b, p.unsigned_abs() as u64, a)
    }
}

/// `p*a - q*b` for a result the caller guarantees nonnegative, in one pass
/// over the limbs with a signed 128-bit carry: each position accumulates
/// `p*a_i - q*b_i + carry` and emits the low word. With `p, q < 2^63` the
/// partial products stay below `2^126`, so the accumulator never wraps.
/// The output buffer comes from the thread arena.
fn lincomb_sub(p: u64, a: &Natural, q: u64, b: &Natural) -> Natural {
    let la = a.limbs();
    let lb = b.limbs();
    let len = la.len().max(lb.len()) + 1;
    let mut out = crate::arena::take(len);
    let mut carry: i128 = 0;
    for i in 0..len {
        let av = la.get(i).map_or(0, |&w| w) as u128;
        let bv = lb.get(i).map_or(0, |&w| w) as u128;
        let acc = carry + (p as u128 * av) as i128 - (q as u128 * bv) as i128;
        out.push(acc as u64);
        carry = acc >> 64;
    }
    debug_assert_eq!(carry, 0, "negative Lehmer row combination");
    Natural::from_limbs(out)
}

/// u128 binary GCD base case.
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    fn pseudo(len: usize, seed: u64) -> Natural {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let limbs: Vec<u64> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        Natural::from_limbs(limbs)
    }

    #[test]
    fn gcd_small_values() {
        assert_eq!(n(0).gcd(&n(0)), n(0));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(13)), n(1));
        assert_eq!(n(1 << 20).gcd(&n(1 << 13)), n(1 << 13));
    }

    #[test]
    fn lehmer_matches_binary_large() {
        for seed in 0..8u64 {
            let g = pseudo(5, seed * 3 + 1);
            let a = &pseudo(20, seed * 3 + 2) * &g;
            let b = &pseudo(18, seed * 3 + 3) * &g;
            let fast = a.gcd(&b);
            let slow = a.gcd_binary(&b);
            assert_eq!(fast, slow, "seed={seed}");
            // The planted common factor must divide the gcd.
            assert!((&fast % &g).is_zero(), "planted factor lost, seed={seed}");
        }
    }

    #[test]
    fn gcd_divides_both() {
        let a = pseudo(30, 11);
        let b = pseudo(25, 12);
        let g = a.gcd(&b);
        assert!((&a % &g).is_zero());
        assert!((&b % &g).is_zero());
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        for (a, b) in [(240u128, 46u128), (17, 0), (0, 9), (1, 1), (101, 103)] {
            let (g, x, y) = n(a).extended_gcd(&n(b));
            let lhs = &(&Integer::from_natural(n(a)) * &x) + &(&Integer::from_natural(n(b)) * &y);
            assert_eq!(lhs, Integer::from_natural(g.clone()), "a={a} b={b}");
            if a != 0 && b != 0 {
                assert!((&n(a) % &g).is_zero());
                assert!((&n(b) % &g).is_zero());
            }
        }
    }

    #[test]
    fn extended_gcd_bezout_large() {
        let a = pseudo(20, 42);
        let b = pseudo(16, 43);
        let (g, x, y) = a.extended_gcd(&b);
        let lhs = &(&Integer::from_natural(a) * &x) + &(&Integer::from_natural(b) * &y);
        assert_eq!(lhs, Integer::from_natural(g));
    }

    #[test]
    fn mod_inverse_round_trips() {
        let m = n(1000003); // prime
        for v in [2u128, 3, 65537, 999999] {
            let inv = n(v).mod_inverse(&m).expect("invertible");
            assert_eq!(&(&n(v) * &inv) % &m, n(1), "v={v}");
        }
    }

    #[test]
    fn mod_inverse_nonexistent() {
        assert_eq!(n(6).mod_inverse(&n(9)), None);
        assert_eq!(n(0).mod_inverse(&n(7)), None);
        assert_eq!(n(3).mod_inverse(&n(1)), None);
    }

    #[test]
    fn mod_inverse_large_prime_modulus() {
        // 2^127 - 1 is prime (Mersenne).
        let m = &(&Natural::one() << 127u64) - &Natural::one();
        let v = pseudo(1, 77);
        let inv = v.mod_inverse(&m).expect("invertible mod prime");
        assert_eq!(&(&v * &inv) % &m, Natural::one());
    }

    #[test]
    fn shared_prime_recovery_shape() {
        // The core attack primitive: two moduli sharing one prime factor.
        let p = n(0xffff_ffff_ffff_fffb); // close to 2^64, arbitrary odd
        let q1 = n(0xffff_ffff_ffff_ffc5);
        let q2 = n(0xffff_ffff_ffff_ff99);
        let n1 = &p * &q1;
        let n2 = &p * &q2;
        let g = n1.gcd(&n2);
        // gcd recovers exactly the shared factor (q1, q2 coprime here).
        assert_eq!(&n1 % &g, Natural::zero());
        assert_eq!(&n2 % &g, Natural::zero());
        assert!((&g % &p).is_zero());
    }
}
