//! Greatest common divisors: binary GCD, Lehmer's algorithm, and the
//! extended Euclidean algorithm.
//!
//! `gcd` is the other half of the batch-GCD kernel: after the remainder tree
//! produces `z_i = P mod N_i^2`, each modulus is tested with
//! `gcd(N_i, z_i / N_i)`. Operands there are modulus-sized (tens of limbs),
//! so Lehmer's single-precision simulation of Euclid's algorithm is the
//! sweet spot; binary GCD is kept as the small-size base case and as a
//! reference implementation for tests.

use crate::integer::Integer;
use crate::natural::Natural;

impl Natural {
    /// Greatest common divisor. `gcd(0, b) == b`.
    pub fn gcd(&self, other: &Natural) -> Natural {
        gcd_lehmer(self.clone(), other.clone())
    }

    /// Binary (Stein's) GCD. Exposed for tests and the ablation bench;
    /// [`Natural::gcd`] is the production entry point.
    pub fn gcd_binary(&self, other: &Natural) -> Natural {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        // Both nonzero (handled above), so both have a lowest set bit.
        let za = a.trailing_zeros().unwrap_or(0);
        let zb = b.trailing_zeros().unwrap_or(0);
        let common = za.min(zb);
        a >>= za;
        b >>= zb;
        // Both odd from here on.
        loop {
            if a == b {
                break;
            }
            if a < b {
                core::mem::swap(&mut a, &mut b);
            }
            a.sub_assign_ref(&b);
            let z = a.trailing_zeros();
            match z {
                None => break, // a == b happened via subtraction to zero
                Some(z) => a >>= z,
            }
        }
        &(if b.is_zero() { a } else { b }) << common
    }

    /// Extended GCD: returns `(g, x, y)` with `g = self*x + other*y`.
    pub fn extended_gcd(&self, other: &Natural) -> (Natural, Integer, Integer) {
        let mut r0 = self.clone();
        let mut r1 = other.clone();
        let mut x0 = Integer::from(1i64);
        let mut x1 = Integer::zero();
        let mut y0 = Integer::zero();
        let mut y1 = Integer::from(1i64);
        while !r1.is_zero() {
            let (q, r) = r0.div_rem(&r1);
            let qi = Integer::from_natural(q);
            let nx = &x0 - &(&qi * &x1);
            let ny = &y0 - &(&qi * &y1);
            r0 = r1;
            r1 = r;
            x0 = x1;
            x1 = nx;
            y0 = y1;
            y1 = ny;
        }
        (r0, x0, y0)
    }

    /// Modular inverse of `self` mod `m`, or `None` if `gcd(self, m) != 1`.
    pub fn mod_inverse(&self, m: &Natural) -> Option<Natural> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        let a = self % m;
        if a.is_zero() {
            return None;
        }
        let (g, x, _) = a.extended_gcd(m);
        if !g.is_one() {
            return None;
        }
        // Normalize x into [0, m).
        let mag = x.magnitude() % m;
        Some(if x.is_negative() && !mag.is_zero() {
            m - &mag
        } else {
            mag
        })
    }
}

/// Lehmer's GCD: repeatedly simulate Euclid's algorithm on the top 64 bits
/// of both operands with single-precision cofactors, then apply the
/// accumulated 2x2 matrix to the full operands. Falls back to one full
/// division step when the simulation makes no progress, and to a `u128`
/// binary GCD once operands fit in two limbs.
fn gcd_lehmer(mut a: Natural, mut b: Natural) -> Natural {
    if a < b {
        core::mem::swap(&mut a, &mut b);
    }
    loop {
        if b.is_zero() {
            return a;
        }
        // `b <= a`, so when `a` fits a u128 both do and the word-size
        // algorithm finishes the job.
        if let (Some(x), Some(y)) = (a.to_u128(), b.to_u128()) {
            return Natural::from(gcd_u128(x, y));
        }
        // Take the top 64-bit window of `a` and the aligned bits of `b`.
        let k = a.bit_len();
        let shift = k - 64;
        let x = (&a >> shift).to_u64().expect("window fits u64"); // lint:allow(no-panic-in-lib) invariant: shift = bit_len - 64 leaves exactly 64 bits
        let y = (&b >> shift).to_u64().expect("window fits u64"); // lint:allow(no-panic-in-lib) invariant: b <= a, so b's window fits whenever a's does

        // Simulate Euclid on (x, y) tracking cofactors: at every step
        // a' = A*x0 + B*y0, b' = C*x0 + D*y0 for the original window values.
        let (mut xa, mut ya) = (x as i128, y as i128);
        let (mut ma, mut mb, mut mc, mut md) = (1i128, 0i128, 0i128, 1i128);
        loop {
            if ya + mc == 0 || ya + md == 0 {
                break;
            }
            let q = (xa + ma) / (ya + mc);
            let q2 = (xa + mb) / (ya + md);
            if q != q2 {
                break;
            }
            // (x, y) <- (y, x - q*y), matrix update alike.
            let (nxa, nya) = (ya, xa - q * ya);
            let (nma, nmb) = (mc, md);
            let (nmc, nmd) = (ma - q * mc, mb - q * md);
            if nya < 0 || nmc.abs() > (1 << 62) || nmd.abs() > (1 << 62) {
                break;
            }
            xa = nxa;
            ya = nya;
            ma = nma;
            mb = nmb;
            mc = nmc;
            md = nmd;
        }

        if mb == 0 {
            // No progress possible in single precision: one full Euclid step.
            let r = &a % &b;
            a = b;
            b = r;
        } else {
            // Apply the matrix: (a, b) <- (|A*a + B*b|, |C*a + D*b|).
            let apply = |p: i128, q: i128, a: &Natural, b: &Natural| -> Natural {
                let pa = &int_mul(a, p);
                let qb = &int_mul(b, q);
                (pa + qb).into_natural_checked("lehmer matrix application")
            };
            let na = apply(ma, mb, &a, &b);
            let nb = apply(mc, md, &a, &b);
            debug_assert!(nb < b, "Lehmer step must make progress");
            a = na;
            b = nb;
            if a < b {
                core::mem::swap(&mut a, &mut b);
            }
        }
    }
}

/// Multiply a Natural by a signed 128-bit cofactor.
fn int_mul(n: &Natural, c: i128) -> Integer {
    let mag = n * &Natural::from(c.unsigned_abs());
    Integer::from_sign_magnitude(c < 0, mag)
}

/// u128 binary GCD base case.
fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    fn pseudo(len: usize, seed: u64) -> Natural {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let limbs: Vec<u64> = (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect();
        Natural::from_limbs(limbs)
    }

    #[test]
    fn gcd_small_values() {
        assert_eq!(n(0).gcd(&n(0)), n(0));
        assert_eq!(n(0).gcd(&n(5)), n(5));
        assert_eq!(n(5).gcd(&n(0)), n(5));
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(13)), n(1));
        assert_eq!(n(1 << 20).gcd(&n(1 << 13)), n(1 << 13));
    }

    #[test]
    fn lehmer_matches_binary_large() {
        for seed in 0..8u64 {
            let g = pseudo(5, seed * 3 + 1);
            let a = &pseudo(20, seed * 3 + 2) * &g;
            let b = &pseudo(18, seed * 3 + 3) * &g;
            let fast = a.gcd(&b);
            let slow = a.gcd_binary(&b);
            assert_eq!(fast, slow, "seed={seed}");
            // The planted common factor must divide the gcd.
            assert!((&fast % &g).is_zero(), "planted factor lost, seed={seed}");
        }
    }

    #[test]
    fn gcd_divides_both() {
        let a = pseudo(30, 11);
        let b = pseudo(25, 12);
        let g = a.gcd(&b);
        assert!((&a % &g).is_zero());
        assert!((&b % &g).is_zero());
    }

    #[test]
    fn extended_gcd_bezout_identity() {
        for (a, b) in [(240u128, 46u128), (17, 0), (0, 9), (1, 1), (101, 103)] {
            let (g, x, y) = n(a).extended_gcd(&n(b));
            let lhs = &(&Integer::from_natural(n(a)) * &x) + &(&Integer::from_natural(n(b)) * &y);
            assert_eq!(lhs, Integer::from_natural(g.clone()), "a={a} b={b}");
            if a != 0 && b != 0 {
                assert!((&n(a) % &g).is_zero());
                assert!((&n(b) % &g).is_zero());
            }
        }
    }

    #[test]
    fn extended_gcd_bezout_large() {
        let a = pseudo(20, 42);
        let b = pseudo(16, 43);
        let (g, x, y) = a.extended_gcd(&b);
        let lhs = &(&Integer::from_natural(a) * &x) + &(&Integer::from_natural(b) * &y);
        assert_eq!(lhs, Integer::from_natural(g));
    }

    #[test]
    fn mod_inverse_round_trips() {
        let m = n(1000003); // prime
        for v in [2u128, 3, 65537, 999999] {
            let inv = n(v).mod_inverse(&m).expect("invertible");
            assert_eq!(&(&n(v) * &inv) % &m, n(1), "v={v}");
        }
    }

    #[test]
    fn mod_inverse_nonexistent() {
        assert_eq!(n(6).mod_inverse(&n(9)), None);
        assert_eq!(n(0).mod_inverse(&n(7)), None);
        assert_eq!(n(3).mod_inverse(&n(1)), None);
    }

    #[test]
    fn mod_inverse_large_prime_modulus() {
        // 2^127 - 1 is prime (Mersenne).
        let m = &(&Natural::one() << 127u64) - &Natural::one();
        let v = pseudo(1, 77);
        let inv = v.mod_inverse(&m).expect("invertible mod prime");
        assert_eq!(&(&v * &inv) % &m, Natural::one());
    }

    #[test]
    fn shared_prime_recovery_shape() {
        // The core attack primitive: two moduli sharing one prime factor.
        let p = n(0xffff_ffff_ffff_fffb); // close to 2^64, arbitrary odd
        let q1 = n(0xffff_ffff_ffff_ffc5);
        let q2 = n(0xffff_ffff_ffff_ff99);
        let n1 = &p * &q1;
        let n2 = &p * &q2;
        let g = n1.gcd(&n2);
        // gcd recovers exactly the shared factor (q1, q2 coprime here).
        assert_eq!(&n1 % &g, Natural::zero());
        assert_eq!(&n2 % &g, Natural::zero());
        assert!((&g % &p).is_zero());
    }
}
