//! The [`Natural`] type: an arbitrary-precision unsigned integer.
//!
//! Representation: little-endian `Vec<u64>` limbs with the invariant that the
//! highest limb is nonzero (zero is the empty vector). Every constructor and
//! arithmetic routine restores this invariant before returning.

use crate::limb;
use core::cmp::Ordering;

/// Arbitrary-precision unsigned integer.
///
/// `Natural` is the workhorse of the reproduction: RSA moduli, primes, and
/// the multi-megabit products in the batch-GCD trees are all `Natural`s.
///
/// # Examples
///
/// ```
/// use wk_bigint::Natural;
/// let a = Natural::from(35u64);
/// let b = Natural::from(49u64);
/// assert_eq!(a.gcd(&b), Natural::from(7u64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Natural {
    pub(crate) limbs: Vec<u64>,
}

impl Natural {
    /// The value 0.
    pub const fn zero() -> Self {
        Natural { limbs: Vec::new() }
    }

    /// The value 1.
    pub fn one() -> Self {
        Natural { limbs: vec![1] }
    }

    /// Construct from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        Natural { limbs }
    }

    /// Construct from a little-endian limb slice.
    pub fn from_limb_slice(limbs: &[u64]) -> Self {
        Self::from_limbs(limbs.to_vec())
    }

    /// Borrow the little-endian limbs (highest limb nonzero, empty for zero).
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// Take the backing limb storage (little-endian, normalized). The
    /// counterpart of [`from_limbs`](Natural::from_limbs); the arena's
    /// [`recycle`](crate::arena::recycle) uses it to reclaim a dead
    /// value's buffer.
    pub fn into_limbs(self) -> Vec<u64> {
        self.limbs
    }

    /// Mutable access to the backing storage for in-place kernels
    /// (`*_into` variants in `mul`/`div`/`recip`). Callers must restore
    /// the normalization invariant (via [`normalize`](Natural::normalize))
    /// before the value is observed.
    pub(crate) fn vec_mut(&mut self) -> &mut Vec<u64> {
        &mut self.limbs
    }

    /// Number of limbs (0 for the value 0).
    pub fn limb_len(&self) -> usize {
        self.limbs.len()
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the value is 1.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Lowest limb — the value reduced mod 2^64. 0 for the value 0.
    pub fn low_limb(&self) -> u64 {
        self.limbs.first().copied().unwrap_or(0)
    }

    /// Highest (nonzero, by the normalization invariant) limb. 0 for the
    /// value 0.
    pub fn top_limb(&self) -> u64 {
        self.limbs.last().copied().unwrap_or(0)
    }

    /// True iff the value is even. Zero is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// True iff the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Bit length: position of the highest set bit plus one; 0 for zero.
    pub fn bit_len(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// Value of bit `i` (little-endian bit numbering).
    pub fn bit(&self, i: u64) -> bool {
        let limb = (i / 64) as usize;
        if limb >= self.limbs.len() {
            return false;
        }
        (self.limbs[limb] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to `value`, growing the limb vector as needed.
    pub fn set_bit(&mut self, i: u64, value: bool) {
        let limb = (i / 64) as usize;
        if value {
            if limb >= self.limbs.len() {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << (i % 64);
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << (i % 64));
            self.normalize();
        }
    }

    /// Number of trailing zero bits; `None` for the value 0.
    pub fn trailing_zeros(&self) -> Option<u64> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i as u64 * 64 + l.trailing_zeros() as u64);
            }
        }
        None
    }

    /// Convert to `u64` if the value fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs[..] {
            [] => Some(0),
            [lo] => Some(lo),
            _ => None,
        }
    }

    /// Convert to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs[..] {
            [] => Some(0),
            [lo] => Some(lo as u128),
            [lo, hi] => Some((hi as u128) << 64 | lo as u128),
            _ => None,
        }
    }

    /// Convert to `f64`, saturating to infinity for huge values. Used only
    /// for reporting/statistics, never for arithmetic.
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &l in self.limbs.iter().rev() {
            acc = acc * 1.8446744073709552e19 + l as f64;
        }
        acc
    }

    /// Big-endian byte encoding with no leading zero byte (empty for 0).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Parse a big-endian byte string. The limb buffer comes from the
    /// thread arena, so bulk decodes (shard reads) reuse recycled storage.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = crate::arena::take(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        Self::from_limbs(limbs)
    }

    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self^2` — delegates to multiplication (a dedicated squaring path is
    /// a possible optimization; products dominate in the remainder tree where
    /// operands differ anyway).
    pub fn square(&self) -> Natural {
        self * self
    }

    /// Compute `self^exp` by binary exponentiation. Intended for small
    /// exponents (the result size grows linearly in `exp`).
    pub fn pow(&self, exp: u32) -> Natural {
        let mut base = self.clone();
        let mut result = Natural::one();
        let mut e = exp;
        while e > 0 {
            if e & 1 == 1 {
                result = &result * &base;
            }
            e >>= 1;
            if e > 0 {
                base = base.square();
            }
        }
        result
    }

    /// Checked subtraction: `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &Natural) -> Option<Natural> {
        if self < rhs {
            None
        } else {
            Some(self - rhs)
        }
    }

    /// Absolute difference `|self - rhs|`.
    pub fn abs_diff(&self, rhs: &Natural) -> Natural {
        if self >= rhs {
            self - rhs
        } else {
            rhs - self
        }
    }
}

impl Ord for Natural {
    fn cmp(&self, other: &Self) -> Ordering {
        limb::cmp_slices(&self.limbs, &other.limbs)
    }
}

impl PartialOrd for Natural {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Natural {
            fn from(v: $t) -> Self {
                Natural::from_limbs(vec![v as u64])
            }
        }
    )*};
}
impl_from_unsigned!(u8, u16, u32, u64, usize);

impl From<u128> for Natural {
    fn from(v: u128) -> Self {
        Natural::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialEq<u64> for Natural {
    fn eq(&self, other: &u64) -> bool {
        self.to_u64() == Some(*other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_normalized_empty() {
        assert!(Natural::zero().is_zero());
        assert_eq!(Natural::from_limbs(vec![0, 0, 0]), Natural::zero());
        assert_eq!(Natural::zero().bit_len(), 0);
    }

    #[test]
    fn bit_len_matches_u128() {
        for v in [
            1u128,
            2,
            3,
            u64::MAX as u128,
            u64::MAX as u128 + 1,
            u128::MAX,
        ] {
            assert_eq!(Natural::from(v).bit_len(), (128 - v.leading_zeros()) as u64);
        }
    }

    #[test]
    fn bit_get_set_roundtrip() {
        let mut n = Natural::zero();
        n.set_bit(200, true);
        assert!(n.bit(200));
        assert!(!n.bit(199));
        assert_eq!(n.bit_len(), 201);
        n.set_bit(200, false);
        assert!(n.is_zero());
    }

    #[test]
    fn byte_roundtrip() {
        let n = Natural::from(0x0102_0304_0506_0708_090a_u128);
        let bytes = n.to_bytes_be();
        assert_eq!(bytes[0], 0x01); // no leading zero byte
        assert_eq!(Natural::from_bytes_be(&bytes), n);
        assert!(Natural::zero().to_bytes_be().is_empty());
        assert_eq!(Natural::from_bytes_be(&[]), Natural::zero());
        assert_eq!(Natural::from_bytes_be(&[0, 0, 5]), Natural::from(5u64));
    }

    #[test]
    fn ordering_across_sizes() {
        let small = Natural::from(u64::MAX);
        let big = Natural::from(u64::MAX as u128 + 1);
        assert!(small < big);
        assert!(big > small);
        assert_eq!(small.cmp(&small.clone()), Ordering::Equal);
    }

    #[test]
    fn parity() {
        assert!(Natural::zero().is_even());
        assert!(Natural::one().is_odd());
        assert!(Natural::from(u64::MAX as u128 + 1).is_even());
    }

    #[test]
    fn trailing_zeros_counts_across_limbs() {
        assert_eq!(Natural::zero().trailing_zeros(), None);
        let mut n = Natural::zero();
        n.set_bit(67, true);
        assert_eq!(n.trailing_zeros(), Some(67));
    }

    #[test]
    fn pow_small() {
        assert_eq!(Natural::from(3u64).pow(0), Natural::one());
        assert_eq!(Natural::from(3u64).pow(5), Natural::from(243u64));
        assert_eq!(Natural::from(2u64).pow(130).bit_len(), 131);
    }

    #[test]
    fn to_f64_reasonable() {
        let n = Natural::from(1u64 << 52);
        assert_eq!(n.to_f64(), (1u64 << 52) as f64);
    }
}
