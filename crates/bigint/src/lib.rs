//! # wk-bigint — arbitrary-precision arithmetic for the weakkeys reproduction
//!
//! From-scratch big-integer arithmetic sized for the IMC 2016 *Weak Keys
//! Remain Widespread in Network Devices* reproduction. The paper's batch-GCD
//! computation multiplies and divides integers of tens of megabits; its
//! feasibility argument assumes sub-quadratic multiplication and division,
//! which this crate provides:
//!
//! * [`Natural`] — unsigned big integers: schoolbook / Karatsuba / Toom-3
//!   multiplication, short / Knuth-D / Burnikel-Ziegler division, binary and
//!   Lehmer GCD, extended GCD, Montgomery modular exponentiation,
//!   Miller-Rabin primality, random generation over any [`rand::RngCore`].
//! * [`Integer`] — sign-magnitude signed integers for algorithms with
//!   negative intermediates (Toom-3 interpolation, extended Euclid,
//!   Burnikel-Ziegler corrections).
//!
//! The crate replaces GMP in the original study's toolchain (see DESIGN.md,
//! substitution table). Routines are **not constant-time**: the reproduction
//! *breaks* weak keys in a simulator, it does not guard live secrets.
//!
//! ## Example: the attack primitive
//!
//! Two RSA moduli sharing a prime factor are both factored by one GCD:
//!
//! ```
//! use wk_bigint::Natural;
//!
//! let p: Natural = "64919".parse().unwrap();
//! let q1: Natural = "65011".parse().unwrap();
//! let q2: Natural = "65027".parse().unwrap();
//! let n1 = &p * &q1;
//! let n2 = &p * &q2;
//! assert_eq!(n1.gcd(&n2), p);
//! assert_eq!(&n1 / &n1.gcd(&n2), q1);
//! ```

#![forbid(unsafe_code)]

pub mod arena;
pub mod limb;

mod add;
mod div;
mod fmt;
mod gcd;
mod integer;
mod modular;
mod mul;
mod natural;
mod ntt;
mod prime;
mod random;
mod recip;
mod shift;
mod sqrt;

pub use div::BZ_THRESHOLD;
pub use fmt::ParseNaturalError;
pub use integer::{Integer, Sign};
pub use modular::MontgomeryContext;
pub use mul::{KARATSUBA_THRESHOLD, TOOM3_THRESHOLD};
pub use natural::Natural;
pub use ntt::{mul_ntt, NTT_THRESHOLD};
pub use prime::first_primes;
pub use recip::{RecipError, Reciprocal};
