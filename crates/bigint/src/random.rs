//! Random [`Natural`] generation over any [`rand::RngCore`].
//!
//! Key generation in the simulator draws its randomness from *modeled*
//! entropy sources (see `wk-rng`), which implement `RngCore`; these helpers
//! are the bridge from raw generator output to big integers.

use crate::natural::Natural;
use rand::RngCore;

impl Natural {
    /// Uniformly random value with exactly `bits` bits (top bit set),
    /// or zero when `bits == 0`.
    pub fn random_bits_exact<R: RngCore + ?Sized>(rng: &mut R, bits: u64) -> Natural {
        if bits == 0 {
            return Natural::zero();
        }
        let mut n = Self::random_bits(rng, bits);
        n.set_bit(bits - 1, true);
        n
    }

    /// Uniformly random value in `[0, 2^bits)`.
    pub fn random_bits<R: RngCore + ?Sized>(rng: &mut R, bits: u64) -> Natural {
        if bits == 0 {
            return Natural::zero();
        }
        let limbs_needed = bits.div_ceil(64) as usize;
        let mut limbs: Vec<u64> = (0..limbs_needed).map(|_| rng.next_u64()).collect();
        let top_bits = bits % 64;
        if top_bits != 0 {
            limbs[limbs_needed - 1] &= (1u64 << top_bits) - 1;
        }
        Natural::from_limbs(limbs)
    }

    /// Uniformly random value in `[0, bound)` by rejection sampling.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn random_below<R: RngCore + ?Sized>(rng: &mut R, bound: &Natural) -> Natural {
        assert!(!bound.is_zero(), "empty range");
        let bits = bound.bit_len();
        loop {
            let candidate = Self::random_bits(rng, bits);
            if &candidate < bound {
                return candidate;
            }
        }
    }

    /// Uniformly random value in `[low, high)`.
    ///
    /// # Panics
    /// Panics if `low >= high`.
    pub fn random_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: &Natural,
        high: &Natural,
    ) -> Natural {
        assert!(low < high, "empty range");
        let width = high - low;
        low + &Self::random_below(rng, &width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::mock::StepRng;
    use rand::SeedableRng;

    fn rng() -> impl RngCore {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn random_bits_exact_has_exact_length() {
        let mut r = rng();
        for bits in [1u64, 2, 63, 64, 65, 512, 1000] {
            let n = Natural::random_bits_exact(&mut r, bits);
            assert_eq!(n.bit_len(), bits, "bits={bits}");
        }
    }

    #[test]
    fn random_bits_bounded() {
        let mut r = rng();
        for bits in [1u64, 7, 64, 100] {
            for _ in 0..20 {
                let n = Natural::random_bits(&mut r, bits);
                assert!(n.bit_len() <= bits);
            }
        }
    }

    #[test]
    fn zero_bits_is_zero() {
        let mut r = StepRng::new(u64::MAX, 0);
        assert!(Natural::random_bits(&mut r, 0).is_zero());
        assert!(Natural::random_bits_exact(&mut r, 0).is_zero());
    }

    #[test]
    fn random_below_respects_bound() {
        let mut r = rng();
        let bound = Natural::from(1000u64);
        for _ in 0..200 {
            assert!(Natural::random_below(&mut r, &bound) < bound);
        }
    }

    #[test]
    fn random_below_covers_small_range() {
        let mut r = rng();
        let bound = Natural::from(4u64);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let v = Natural::random_below(&mut r, &bound).to_u64().unwrap();
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn random_range_within_bounds() {
        let mut r = rng();
        let low = Natural::from(100u64);
        let high = Natural::from(110u64);
        for _ in 0..100 {
            let v = Natural::random_range(&mut r, &low, &high);
            assert!(v >= low && v < high);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn random_below_zero_panics() {
        let mut r = StepRng::new(0, 1);
        let _ = Natural::random_below(&mut r, &Natural::zero());
    }

    #[test]
    fn deterministic_under_seeded_rng() {
        let mut a = rand::rngs::StdRng::seed_from_u64(7);
        let mut b = rand::rngs::StdRng::seed_from_u64(7);
        assert_eq!(
            Natural::random_bits(&mut a, 512),
            Natural::random_bits(&mut b, 512)
        );
    }
}
