//! Addition and subtraction operators for [`Natural`].
//!
//! Subtraction panics on underflow (naturals are unsigned); use
//! [`Natural::checked_sub`] or [`Natural::abs_diff`] when the ordering is not
//! known statically.

use crate::limb;
use crate::natural::Natural;
use core::ops::{Add, AddAssign, Sub, SubAssign};

impl Natural {
    /// `self += rhs` without consuming `rhs`.
    pub fn add_assign_ref(&mut self, rhs: &Natural) {
        if rhs.limbs.len() > self.limbs.len() {
            self.limbs.resize(rhs.limbs.len(), 0);
        }
        let carry = limb::add_assign_slice(&mut self.limbs, &rhs.limbs);
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// `self -= rhs`; panics if `rhs > self`.
    pub fn sub_assign_ref(&mut self, rhs: &Natural) {
        let borrow = limb::sub_assign_slice(&mut self.limbs, &rhs.limbs);
        assert_eq!(borrow, 0, "Natural subtraction underflow");
        self.normalize();
    }
}

impl Add<&Natural> for &Natural {
    type Output = Natural;
    fn add(self, rhs: &Natural) -> Natural {
        let mut out = self.clone();
        out.add_assign_ref(rhs);
        out
    }
}

impl Add for Natural {
    type Output = Natural;
    fn add(mut self, rhs: Natural) -> Natural {
        self.add_assign_ref(&rhs);
        self
    }
}

impl Add<u64> for &Natural {
    type Output = Natural;
    fn add(self, rhs: u64) -> Natural {
        self + &Natural::from(rhs)
    }
}

impl AddAssign<&Natural> for Natural {
    fn add_assign(&mut self, rhs: &Natural) {
        self.add_assign_ref(rhs);
    }
}

impl AddAssign<u64> for Natural {
    fn add_assign(&mut self, rhs: u64) {
        self.add_assign_ref(&Natural::from(rhs));
    }
}

impl Sub<&Natural> for &Natural {
    type Output = Natural;
    fn sub(self, rhs: &Natural) -> Natural {
        let mut out = self.clone();
        out.sub_assign_ref(rhs);
        out
    }
}

impl Sub for Natural {
    type Output = Natural;
    fn sub(mut self, rhs: Natural) -> Natural {
        self.sub_assign_ref(&rhs);
        self
    }
}

impl Sub<u64> for &Natural {
    type Output = Natural;
    fn sub(self, rhs: u64) -> Natural {
        self - &Natural::from(rhs)
    }
}

impl SubAssign<&Natural> for Natural {
    fn sub_assign(&mut self, rhs: &Natural) {
        self.sub_assign_ref(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    #[test]
    fn add_carries_across_limbs() {
        assert_eq!(&n(u64::MAX as u128) + &n(1), n(u64::MAX as u128 + 1));
        assert_eq!(&n(u128::MAX) + &n(1), {
            let mut x = Natural::zero();
            x.set_bit(128, true);
            x
        });
    }

    #[test]
    fn sub_borrows_across_limbs() {
        assert_eq!(&n(u64::MAX as u128 + 1) - &n(1), n(u64::MAX as u128));
        assert_eq!(&n(12345) - &n(12345), Natural::zero());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &n(1) - &n(2);
    }

    #[test]
    fn checked_sub_and_abs_diff() {
        assert_eq!(n(1).checked_sub(&n(2)), None);
        assert_eq!(n(7).checked_sub(&n(2)), Some(n(5)));
        assert_eq!(n(1).abs_diff(&n(2)), n(1));
        assert_eq!(n(9).abs_diff(&n(2)), n(7));
    }

    #[test]
    fn scalar_ops() {
        assert_eq!(&n(10) + 5u64, n(15));
        assert_eq!(&n(10) - 5u64, n(5));
        let mut a = n(1);
        a += 2u64;
        a += &n(3);
        assert_eq!(a, n(6));
    }
}
