//! Modular arithmetic: Montgomery reduction and modular exponentiation.
//!
//! Miller-Rabin (and therefore all prime generation in the simulator) runs
//! on top of [`Natural::mod_pow`], so Montgomery form is worth having: it
//! turns every modular reduction in the square-and-multiply loop into a
//! word-level REDC pass instead of a full division.
//!
//! These routines are **not constant-time** — the reproduction factors and
//! generates keys in a simulator, it does not hold secrets against a local
//! observer. This is a deliberate scope decision, documented here so the
//! crate is not mistaken for production key-generation material.

use crate::natural::Natural;

/// Precomputed Montgomery context for a fixed odd modulus.
///
/// # Examples
///
/// ```
/// use wk_bigint::{Natural, MontgomeryContext};
/// let m = Natural::from(1000003u64);
/// let ctx = MontgomeryContext::new(m.clone()).unwrap();
/// let x = ctx.pow(&Natural::from(2u64), &Natural::from(20u64));
/// assert_eq!(x, Natural::from(1048576u64 % 1000003));
/// ```
pub struct MontgomeryContext {
    modulus: Natural,
    /// Number of limbs in the modulus; R = 2^(64*len).
    len: usize,
    /// `-modulus^{-1} mod 2^64`.
    n0_inv: u64,
    /// `R^2 mod modulus`, used to convert into Montgomery form.
    r_squared: Natural,
}

impl MontgomeryContext {
    /// Build a context; returns `None` when the modulus is even or < 2
    /// (Montgomery reduction requires an odd modulus).
    pub fn new(modulus: Natural) -> Option<Self> {
        if modulus.is_even() || modulus.is_one() || modulus.is_zero() {
            return None;
        }
        let len = modulus.limb_len();
        let n0_inv = inv_limb_2_64(modulus.low_limb()).wrapping_neg();
        // R^2 mod n where R = 2^(64*len).
        let r_squared = &(&Natural::one() << (128 * len as u64)) % &modulus;
        Some(MontgomeryContext {
            modulus,
            len,
            n0_inv,
            r_squared,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &Natural {
        &self.modulus
    }

    /// Montgomery reduction: given `t < modulus * R`, compute
    /// `t * R^{-1} mod modulus`.
    fn redc(&self, t: &Natural) -> Natural {
        let mut limbs = t.limbs().to_vec();
        limbs.resize(2 * self.len + 1, 0);
        for i in 0..self.len {
            let m = limbs[i].wrapping_mul(self.n0_inv);
            // limbs[i..] += m * modulus; the addition zeroes limbs[i].
            let carry = crate::limb::add_mul_slice(&mut limbs[i..], self.modulus.limbs(), m);
            debug_assert_eq!(carry, 0);
            debug_assert_eq!(limbs[i], 0);
        }
        let mut out = Natural::from_limb_slice(&limbs[self.len..]);
        if out >= self.modulus {
            out.sub_assign_ref(&self.modulus);
        }
        out
    }

    /// Convert into Montgomery form: `x -> x*R mod n`.
    fn to_mont(&self, x: &Natural) -> Natural {
        self.redc(&(x * &self.r_squared))
    }

    /// Convert out of Montgomery form: `x*R -> x`.
    #[allow(clippy::wrong_self_convention)]
    fn from_mont(&self, x: &Natural) -> Natural {
        self.redc(x)
    }

    /// Modular multiplication via Montgomery form (operands in normal form).
    pub fn mul(&self, a: &Natural, b: &Natural) -> Natural {
        let am = self.to_mont(&(a % &self.modulus));
        let bm = self.to_mont(&(b % &self.modulus));
        self.from_mont(&self.redc(&(&am * &bm)))
    }

    /// Modular exponentiation `base^exp mod modulus` by left-to-right
    /// square-and-multiply entirely in Montgomery form.
    pub fn pow(&self, base: &Natural, exp: &Natural) -> Natural {
        if self.modulus.is_one() {
            return Natural::zero();
        }
        if exp.is_zero() {
            return Natural::one();
        }
        let bm = self.to_mont(&(base % &self.modulus));
        let mut acc = self.to_mont(&Natural::one());
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            acc = self.redc(&acc.square());
            if exp.bit(i) {
                acc = self.redc(&(&acc * &bm));
            }
        }
        self.from_mont(&acc)
    }
}

/// Inverse of an odd limb modulo 2^64 by Newton-Hensel lifting
/// (doubling precision each step: 5 steps from 3 correct bits).
fn inv_limb_2_64(n: u64) -> u64 {
    debug_assert!(n & 1 == 1);
    let mut x = n; // correct to 3 bits (odd n: n*n ≡ 1 mod 8)
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(n.wrapping_mul(x)));
    }
    debug_assert_eq!(n.wrapping_mul(x), 1);
    x
}

impl Natural {
    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Uses Montgomery form for odd moduli and plain square-and-multiply
    /// with division-based reduction otherwise.
    pub fn mod_pow(&self, exp: &Natural, m: &Natural) -> Natural {
        assert!(!m.is_zero(), "modulus must be nonzero");
        if m.is_one() {
            return Natural::zero();
        }
        if m.is_odd() {
            if let Some(ctx) = MontgomeryContext::new(m.clone()) {
                return ctx.pow(self, exp);
            }
        }
        // Fallback: plain square-and-multiply.
        let mut base = self % m;
        let mut acc = Natural::one();
        let bits = exp.bit_len();
        for i in 0..bits {
            if exp.bit(i) {
                acc = &(&acc * &base) % m;
            }
            if i + 1 < bits {
                base = &base.square() % m;
            }
        }
        acc
    }

    /// Modular multiplication `(self * rhs) mod m`.
    pub fn mod_mul(&self, rhs: &Natural, m: &Natural) -> Natural {
        &(self * rhs) % m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u128) -> Natural {
        Natural::from(v)
    }

    /// Reference modpow over u128 (modulus small enough to avoid overflow).
    fn ref_modpow(mut b: u128, mut e: u128, m: u128) -> u128 {
        let mut acc = 1u128 % m;
        b %= m;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc * b % m;
            }
            b = b * b % m;
            e >>= 1;
        }
        acc
    }

    #[test]
    fn inv_limb_examples() {
        for v in [1u64, 3, 5, 0xdead_beef | 1, u64::MAX] {
            assert_eq!(v.wrapping_mul(inv_limb_2_64(v)), 1, "v={v}");
        }
    }

    #[test]
    fn mont_pow_matches_reference_odd_moduli() {
        for m in [3u128, 1000003, 0xffff_ffff_ffff_fffb, (1 << 61) - 1] {
            for b in [0u128, 1, 2, 65537, m - 1] {
                for e in [0u128, 1, 2, 3, 1000, m - 1] {
                    assert_eq!(
                        n(b).mod_pow(&n(e), &n(m)),
                        n(ref_modpow(b, e, m)),
                        "b={b} e={e} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn even_modulus_fallback_matches_reference() {
        for m in [2u128, 4, 100, 65536, 1 << 40] {
            for b in [0u128, 1, 3, 12345] {
                for e in [0u128, 1, 2, 17] {
                    assert_eq!(
                        n(b).mod_pow(&n(e), &n(m)),
                        n(ref_modpow(b, e, m)),
                        "b={b} e={e} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn mont_context_rejects_even_or_trivial() {
        assert!(MontgomeryContext::new(n(4)).is_none());
        assert!(MontgomeryContext::new(n(1)).is_none());
        assert!(MontgomeryContext::new(n(0)).is_none());
        assert!(MontgomeryContext::new(n(9)).is_some());
    }

    #[test]
    fn fermat_little_theorem_multilimb() {
        // 2^127 - 1 is prime: a^(p-1) ≡ 1 mod p for a coprime to p.
        let p = &(&Natural::one() << 127u64) - &Natural::one();
        let e = &p - &Natural::one();
        for a in [2u128, 3, 65537, 0xdead_beef_cafe] {
            assert_eq!(n(a).mod_pow(&e, &p), Natural::one(), "a={a}");
        }
    }

    #[test]
    fn mont_mul_matches_plain() {
        let m = n(0xffff_ffff_ffff_fffb);
        let ctx = MontgomeryContext::new(m.clone()).unwrap();
        let a = n(0x1234_5678_9abc_def0);
        let b = n(0xfeed_face_dead_beef);
        assert_eq!(ctx.mul(&a, &b), a.mod_mul(&b, &m));
    }

    #[test]
    fn rsa_round_trip_small() {
        // Tiny RSA: p=61, q=53, n=3233, e=17, d=413.
        let modulus = n(3233);
        let e = n(17);
        let d = n(413);
        for msg in [0u128, 1, 42, 3000] {
            let c = n(msg).mod_pow(&e, &modulus);
            assert_eq!(c.mod_pow(&d, &modulus), n(msg), "msg={msg}");
        }
    }
}
