//! Counting-allocator proof that the steady-state cofactor descent is
//! allocation-free (DESIGN.md §13).
//!
//! A warmed [`ProductTree::remainder_tree_cofactor_local_into`] pass —
//! same tree, caller-owned [`DescentScratch`] and output vector, limb
//! arena populated by the first pass — must touch the global allocator
//! zero times. Every limb buffer the descent needs comes back out of the
//! thread arena, and the level containers keep their capacity.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use wk_batchgcd::{DescentScratch, ProductTree, WorkerPool};
use wk_bigint::Natural;
use wk_keygen::{KeygenBehavior, ModelKeygen, PrimeShaping};

/// Pass-through to the system allocator that counts `alloc`/`realloc`
/// calls while armed. Deallocations are free of charge: recycling is the
/// point, releasing is not.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// lint:allow missing-docs -- trait impl on a test-local type
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Mixed 256-bit population, odd-sized so the tree carries a promoted
/// node (the pass-through shape the descent must also handle without
/// allocating).
fn population(count: usize, seed: u64) -> Vec<Natural> {
    let mut vuln = ModelKeygen::new(
        KeygenBehavior::SharedPrimePool {
            shaping: PrimeShaping::OpensslStyle,
            pool_size: 3,
        },
        256,
        seed,
    );
    let mut healthy = ModelKeygen::new(
        KeygenBehavior::Healthy {
            shaping: PrimeShaping::OpensslStyle,
        },
        256,
        seed + 1,
    );
    (0..count)
        .map(|i| {
            if i % 3 == 0 {
                vuln.generate().public.n
            } else {
                healthy.generate().public.n
            }
        })
        .collect()
}

#[test]
fn warmed_cofactor_descent_allocates_nothing() {
    let moduli = population(21, 0xa110c);

    // Build and cache-attach on a worker pool, then drop it: the
    // measurement below must see only this thread.
    let tree = {
        let pool = WorkerPool::new(2);
        let domain = pool.domain();
        let mut t = ProductTree::build(&moduli, pool.exec_in(&domain)).unwrap();
        t.attach_cofactor_recips(pool.exec_in(&domain));
        t
    };

    let one = Natural::one();
    let mut scratch = DescentScratch::default();
    let mut out = Vec::new();

    // Pass 1: cold. Containers grow, the arena fills with limb buffers.
    tree.remainder_tree_cofactor_local_into(&one, &mut scratch, &mut out);
    let reference = out.clone();
    // Pass 2: unmeasured warm-up, so pass 1's buffers are already pooled
    // in their steady-state sizes.
    tree.remainder_tree_cofactor_local_into(&one, &mut scratch, &mut out);

    // Passes 3..6: steady state, armed. Zero allocations — per level, per
    // pass, total.
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    for _ in 0..4 {
        tree.remainder_tree_cofactor_local_into(&one, &mut scratch, &mut out);
    }
    ARMED.store(false, Ordering::SeqCst);
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(
        allocs, 0,
        "steady-state cofactor descent hit the heap {allocs} times"
    );
    assert_eq!(out, reference, "warmed passes must stay byte-identical");
}
